//! Reproducibility guarantees: identical seeds give bit-identical results
//! through every layer of the stack, and different seeds genuinely differ.

use netsim::rng::SimRng;
use netsim::topology::DumbbellSpec;
use netsim::{SimDuration, SimTime};
use scenarios::figures::{walkthrough, web_response};
use scenarios::runner::{plans_from_schedule, run_dumbbell, run_path, FlowPlan, RunOptions};
use scenarios::{Protocol, Scale};
use workload::{planetlab_paths, Corpus, Schedule};

fn fingerprint(protocol: Protocol, seed: u64) -> Vec<(u64, u64)> {
    let spec = DumbbellSpec::emulab(1);
    let horizon = SimTime::ZERO + SimDuration::from_secs(15);
    let schedule = Schedule::fixed_size(
        spec.bottleneck_rate,
        100_000,
        0.6,
        horizon,
        SimRng::new(seed),
    );
    let plans = plans_from_schedule(&schedule, protocol);
    let opts = RunOptions {
        seed,
        ..Default::default()
    };
    run_dumbbell(&spec, &plans, &opts)
        .records
        .iter()
        .map(|r| (r.fct.as_nanos(), r.counters.data_packets_sent))
        .collect()
}

#[test]
fn dumbbell_runs_are_bit_reproducible() {
    for p in [
        Protocol::Tcp,
        Protocol::JumpStart,
        Protocol::Halfback,
        Protocol::Pcp,
    ] {
        assert_eq!(fingerprint(p, 11), fingerprint(p, 11), "{p}");
    }
}

#[test]
fn different_seeds_differ() {
    assert_ne!(
        fingerprint(Protocol::Halfback, 11),
        fingerprint(Protocol::Halfback, 12)
    );
}

#[test]
fn path_population_is_stable() {
    let a = planetlab_paths(100, 5);
    let b = planetlab_paths(100, 5);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.rtt, y.rtt);
        assert_eq!(x.rate, y.rate);
        assert_eq!(x.buffer, y.buffer);
    }
}

#[test]
fn path_runs_are_reproducible_with_loss() {
    let paths = planetlab_paths(20, 9);
    for (i, spec) in paths.iter().enumerate() {
        let plan = [FlowPlan {
            at: SimTime::ZERO,
            bytes: 100_000,
            protocol: Protocol::Halfback,
        }];
        let (a, ca) = run_path(spec, &plan, 100 + i as u64, SimDuration::from_secs(120));
        let (b, cb) = run_path(spec, &plan, 100 + i as u64, SimDuration::from_secs(120));
        assert_eq!(ca, cb);
        assert_eq!(
            a.iter().map(|r| r.fct.as_nanos()).collect::<Vec<_>>(),
            b.iter().map(|r| r.fct.as_nanos()).collect::<Vec<_>>(),
            "path {i}"
        );
    }
}

#[test]
fn web_workload_is_reproducible() {
    let a = web_response::run_web(Protocol::JumpStart, 0.25, Scale::Quick);
    let b = web_response::run_web(Protocol::JumpStart, 0.25, Scale::Quick);
    assert_eq!(a.response_ms, b.response_ms);
    assert_eq!(a.censored, b.censored);
}

#[test]
fn corpus_and_walkthrough_are_reproducible() {
    let c1 = Corpus::synthesize(50, 3);
    let c2 = Corpus::synthesize(50, 3);
    assert_eq!(c1.mean_page_bytes(), c2.mean_page_bytes());
    let (lines1, rec1) = walkthrough::run();
    let (lines2, rec2) = walkthrough::run();
    assert_eq!(lines1, lines2);
    assert_eq!(rec1.fct, rec2.fct);
}

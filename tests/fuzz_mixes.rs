//! Property-style fuzzing of the whole stack: random protocol mixes,
//! sizes, and loads on the dumbbell must always run to completion without
//! panics, stray packets, or unaccounted flows. Cases are drawn from a
//! seeded [`SimRng`] so every run checks the same corpus.

use netsim::rng::SimRng;
use netsim::topology::DumbbellSpec;
use netsim::{SimDuration, SimTime};
use scenarios::runner::{run_dumbbell, FlowPlan, RunOptions};
use scenarios::Protocol;

const MENU: [Protocol; 10] = [
    Protocol::Tcp,
    Protocol::Tcp10,
    Protocol::TcpCache,
    Protocol::Reactive,
    Protocol::Proactive,
    Protocol::JumpStart,
    Protocol::Pcp,
    Protocol::Halfback,
    Protocol::HalfbackForward,
    Protocol::HalfbackBurst,
];

/// Arbitrary mixed workloads: everything completes (given generous
/// grace) and accounting adds up.
#[test]
fn random_mixes_run_clean() {
    let mut gen = SimRng::new(0xF022);
    for case in 0..24 {
        let seed = 1 + gen.index(9_999) as u64;
        let n_flows = 1 + gen.index(39);
        let util_scale = 1 + gen.index(7) as u32; // controls arrival spacing

        let spec = DumbbellSpec::emulab(1);
        let mut rng = SimRng::new(seed);
        let mut at = SimTime::ZERO;
        let mut plans = Vec::with_capacity(n_flows);
        for _ in 0..n_flows {
            at += SimDuration::from_millis((rng.exponential(80.0 * util_scale as f64)) as u64);
            let bytes = match rng.index(4) {
                0 => 1 + rng.index(3000) as u64,
                1 => 10_000 + rng.index(90_000) as u64,
                2 => 100_000,
                _ => 200_000 + rng.index(800_000) as u64,
            };
            let protocol = MENU[rng.index(MENU.len())];
            plans.push(FlowPlan {
                at,
                bytes,
                protocol,
            });
        }
        let opts = RunOptions {
            host_pairs: 6,
            grace: SimDuration::from_secs(180),
            seed,
            trace_bin_ns: None,
            min_rto: None,
        };
        let out = run_dumbbell(&spec, &plans, &opts);
        assert_eq!(out.records.len() + out.censored, plans.len(), "case {case}");
        // With 180 s of grace at these light loads nothing should be stuck.
        assert_eq!(
            out.censored, 0,
            "case {case} (seed {seed}): censored flows in a light mix"
        );
        // Each record corresponds to a planned flow with matching size.
        for r in &out.records {
            assert!(
                plans
                    .iter()
                    .any(|p| p.bytes == r.bytes && p.protocol.name() == r.protocol),
                "case {case}: record with no matching plan"
            );
            assert!(r.fct.as_nanos() > 0, "case {case}");
        }
    }
}

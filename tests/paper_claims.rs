//! Cross-crate integration tests asserting the paper's headline claims at
//! reduced (Quick) scale. These are the repository's "shape" guarantees:
//! who wins, in which regime, and by roughly what kind of margin.

use netsim::rng::SimRng;
use netsim::topology::DumbbellSpec;
use netsim::{SimDuration, SimTime};
use scenarios::figures::{bufferbloat, feasible, planetlab, web_response};
use scenarios::metrics::{feasible_capacity, FctStats};
use scenarios::runner::{plans_from_schedule, run_dumbbell, RunOptions};
use scenarios::{Protocol, Scale};
use workload::Schedule;

fn mean_fct_at(protocol: Protocol, utilization: f64, secs: u64) -> FctStats {
    let spec = DumbbellSpec::emulab(1);
    let horizon = SimTime::ZERO + SimDuration::from_secs(secs);
    let schedule = Schedule::fixed_size(
        spec.bottleneck_rate,
        100_000,
        utilization,
        horizon,
        SimRng::new(42).fork_indexed("claims", (utilization * 1000.0) as u64),
    );
    let plans = plans_from_schedule(&schedule, protocol);
    let out = run_dumbbell(&spec, &plans, &RunOptions::default());
    FctStats::from_records(&out.records, out.censored)
}

/// §4.2.1 / Fig. 6: at low load, the latency order is
/// Halfback <= JumpStart < TCP-10 < TCP <= Proactive.
#[test]
fn low_load_latency_ordering() {
    let fct = |p| mean_fct_at(p, 0.05, 30).mean_ms;
    let hb = fct(Protocol::Halfback);
    let js = fct(Protocol::JumpStart);
    let t10 = fct(Protocol::Tcp10);
    let tcp = fct(Protocol::Tcp);
    let pro = fct(Protocol::Proactive);
    assert!(hb <= js * 1.05, "Halfback {hb} vs JumpStart {js}");
    assert!(js < t10, "JumpStart {js} vs TCP-10 {t10}");
    assert!(t10 < tcp, "TCP-10 {t10} vs TCP {tcp}");
    assert!(tcp < pro, "TCP {tcp} vs Proactive {pro}");
}

/// Fig. 12's central safety claim: Halfback's feasible capacity clearly
/// exceeds JumpStart's (paper: 70% vs 50%), and the TCP family exceeds
/// both (paper: 85-90%).
#[test]
fn feasible_capacity_ordering() {
    let fc = |p| {
        let pts = feasible::sweep(p, Scale::Quick, 42);
        feasible_capacity(
            &pts,
            feasible::COLLAPSE_FACTOR,
            feasible::COLLAPSE_FLOOR_MS,
            feasible::MIN_COMPLETION,
        )
    };
    let hb = fc(Protocol::Halfback);
    let js = fc(Protocol::JumpStart);
    let tcp = fc(Protocol::Tcp);
    assert!(hb > js, "Halfback feasible {hb} must exceed JumpStart {js}");
    assert!(tcp >= hb, "TCP feasible {tcp} must be >= Halfback {hb}");
    assert!(
        js >= 0.3,
        "JumpStart should still be feasible at moderate load, got {js}"
    );
}

/// §4.2.1 headline: Halfback cuts mean FCT vs every baseline on the
/// PlanetLab-style population (paper: 13% vs JumpStart, 52% vs TCP,
/// 29% vs TCP-10, 51% vs Reactive, 61% vs Proactive).
#[test]
fn planetlab_headline_reductions() {
    let data = planetlab::run(Scale::Quick);
    let mean = |p: Protocol| {
        let recs = data.records(p);
        recs.iter().map(|r| r.fct.as_millis_f64()).sum::<f64>() / recs.len() as f64
    };
    let hb = mean(Protocol::Halfback);
    assert!(hb < mean(Protocol::JumpStart) * 0.97, "vs JumpStart");
    assert!(hb < mean(Protocol::Tcp) * 0.65, "vs TCP");
    assert!(hb < mean(Protocol::Tcp10) * 0.85, "vs TCP-10");
    assert!(hb < mean(Protocol::Reactive) * 0.65, "vs Reactive");
    assert!(hb < mean(Protocol::Proactive) * 0.60, "vs Proactive");
}

/// Fig. 7: most Halfback flows finish in a small handful of RTTs; TCP
/// needs roughly three times more (paper: "one third of TCP's time").
#[test]
fn rtt_count_ratio() {
    let data = planetlab::run(Scale::Quick);
    let med_rtts = |p: Protocol| {
        let recs = data.records(p);
        scenarios::metrics::rtt_count_ecdf(&recs).median().unwrap()
    };
    let hb = med_rtts(Protocol::Halfback);
    let tcp = med_rtts(Protocol::Tcp);
    assert!(hb <= 3.5, "Halfback median RTTs {hb}");
    assert!(tcp / hb >= 2.0, "TCP/Halfback RTT ratio {:.2}", tcp / hb);
}

/// Fig. 10(b): with small router buffers, Halfback needs far fewer normal
/// retransmissions than JumpStart (paper: 6 vs ~57, i.e. ~10%).
#[test]
fn small_buffer_retransmissions() {
    let hb = bufferbloat::cell(Protocol::Halfback, 15_000, Scale::Quick);
    let js = bufferbloat::cell(Protocol::JumpStart, 15_000, Scale::Quick);
    assert!(
        hb.mean_normal_retx < js.mean_normal_retx * 0.35,
        "Halfback {:.1} vs JumpStart {:.1} normal retx",
        hb.mean_normal_retx,
        js.mean_normal_retx
    );
    // And Halfback's FCT is much lower there too (paper: up to 45% lower).
    assert!(
        hb.mean_ms < js.mean_ms * 0.8,
        "FCT {} vs {}",
        hb.mean_ms,
        js.mean_ms
    );
}

/// Fig. 16: at the application level Halfback beats JumpStart, and
/// JumpStart falls behind TCP by ~30% utilization.
#[test]
fn web_level_ordering() {
    let hb = web_response::run_web(Protocol::Halfback, 0.3, Scale::Quick);
    let js = web_response::run_web(Protocol::JumpStart, 0.3, Scale::Quick);
    let tcp = web_response::run_web(Protocol::Tcp, 0.3, Scale::Quick);
    assert!(
        hb.mean_ms() < js.mean_ms(),
        "Halfback pages {:.0} vs JumpStart {:.0}",
        hb.mean_ms(),
        js.mean_ms()
    );
    assert!(
        js.mean_ms() > tcp.mean_ms() * 0.95,
        "JumpStart {:.0} should have caught up with TCP {:.0} by 30%",
        js.mean_ms(),
        tcp.mean_ms()
    );
}

/// §5 ablations: both the forward-order and line-rate ROPR variants are
/// less safe than the real design at high utilization.
#[test]
fn ablations_are_worse_under_load() {
    let at = |p| mean_fct_at(p, 0.65, 40);
    let hb = at(Protocol::Halfback);
    let fwd = at(Protocol::HalfbackForward);
    let burst = at(Protocol::HalfbackBurst);
    assert!(
        fwd.mean_ms > hb.mean_ms,
        "forward ROPR {:.0} must be worse than reverse {:.0} under load",
        fwd.mean_ms,
        hb.mean_ms
    );
    assert!(
        burst.mean_ms > hb.mean_ms,
        "line-rate ROPR {:.0} must be worse than ACK-clocked {:.0} under load",
        burst.mean_ms,
        hb.mean_ms
    );
}

/// Fig. 13 directionality: in a 10/90 short/long mix, Halfback shorts are
/// far faster than TCP shorts while longs are barely slowed.
#[test]
fn long_short_mix() {
    use scenarios::figures::long_short;
    let (hb_short, hb_long) = long_short::cell(Protocol::Halfback, 0.5, Scale::Quick);
    let (tcp_short, tcp_long) = long_short::cell(Protocol::Tcp, 0.5, Scale::Quick);
    assert!(
        hb_short.mean_ms < tcp_short.mean_ms * 0.7,
        "short flows: Halfback {:.0} vs TCP {:.0}",
        hb_short.mean_ms,
        tcp_short.mean_ms
    );
    if hb_long.completed > 0 && tcp_long.completed > 0 {
        assert!(
            hb_long.mean_ms < tcp_long.mean_ms * 1.25,
            "long flows slowed too much: {:.0} vs {:.0}",
            hb_long.mean_ms,
            tcp_long.mean_ms
        );
    }
}

/// Proactive TCP is the safety floor: it collapses earlier than Halfback
/// (paper: 45% vs 70%).
#[test]
fn proactive_collapses_before_halfback() {
    let at = |p, u| mean_fct_at(p, u, 40);
    let hb = at(Protocol::Halfback, 0.65);
    let pro = at(Protocol::Proactive, 0.65);
    // Proactive's relative degradation vs its own low-load baseline is
    // worse than Halfback's.
    let hb_base = at(Protocol::Halfback, 0.05).mean_ms;
    let pro_base = at(Protocol::Proactive, 0.05).mean_ms;
    assert!(
        pro.mean_ms / pro_base > hb.mean_ms / hb_base,
        "Proactive degradation {:.1}x vs Halfback {:.1}x",
        pro.mean_ms / pro_base,
        hb.mean_ms / hb_base
    );
}

//! Robustness: every scheme must complete flows under hostile conditions —
//! heavy random loss, bursty wireless loss, tiny buffers, tiny and odd
//! flow sizes, extreme RTTs — without stalling or panicking.

use netsim::loss::LossModel;
use netsim::topology::PathSpec;
use netsim::{Rate, SimDuration, SimTime};
use scenarios::runner::{run_path, run_single_path_flow, FlowPlan};
use scenarios::Protocol;

const ALL: [Protocol; 8] = Protocol::EVALUATED;

fn clean_path() -> PathSpec {
    PathSpec::clean(Rate::from_mbps(20), SimDuration::from_millis(50))
}

#[test]
fn heavy_random_loss_still_completes() {
    let mut spec = clean_path();
    spec.loss = LossModel::Bernoulli { p: 0.10 };
    for p in ALL {
        let rec = run_single_path_flow(&spec, p, 100_000, 77)
            .unwrap_or_else(|| panic!("{p} did not finish under 10% loss"));
        assert!(rec.fct.as_millis_f64() > 100.0, "{p}");
    }
}

#[test]
fn bursty_wifi_loss_still_completes() {
    let mut spec = clean_path();
    spec.loss = LossModel::wifi_bursty();
    for p in ALL {
        for seed in [1u64, 2, 3] {
            assert!(
                run_single_path_flow(&spec, p, 100_000, seed).is_some(),
                "{p} stalled under bursty wifi loss (seed {seed})"
            );
        }
    }
}

#[test]
fn lossy_ack_path_still_completes() {
    let mut spec = clean_path();
    spec.reverse_loss = LossModel::Bernoulli { p: 0.05 };
    for p in ALL {
        assert!(
            run_single_path_flow(&spec, p, 100_000, 5).is_some(),
            "{p} stalled with lossy ACKs"
        );
    }
}

#[test]
fn tiny_buffer_still_completes() {
    let mut spec = clean_path();
    spec.buffer = 3_000; // two packets
    for p in ALL {
        assert!(
            run_single_path_flow(&spec, p, 100_000, 6).is_some(),
            "{p} stalled with a 2-packet buffer"
        );
    }
}

#[test]
fn odd_flow_sizes_complete() {
    let spec = clean_path();
    // 1 byte, one MSS, MSS+1, an odd prime, a fraction of the window, and
    // just past the 141 KB pacing threshold.
    for bytes in [1u64, 1460, 1461, 77_777, 140_999, 141_001, 142_000] {
        for p in ALL {
            let rec = run_single_path_flow(&spec, p, bytes, 8)
                .unwrap_or_else(|| panic!("{p} did not finish {bytes} bytes"));
            assert_eq!(rec.bytes, bytes, "{p}");
        }
    }
}

#[test]
fn extreme_rtts_complete() {
    for rtt_ms in [1u64, 400] {
        let spec = PathSpec::clean(Rate::from_mbps(20), SimDuration::from_millis(rtt_ms));
        for p in ALL {
            let rec = run_single_path_flow(&spec, p, 100_000, 9)
                .unwrap_or_else(|| panic!("{p} failed at {rtt_ms}ms RTT"));
            assert!(
                rec.fct.as_millis_f64() >= rtt_ms as f64,
                "{p}: FCT below one RTT at {rtt_ms}ms?"
            );
        }
    }
}

#[test]
fn slow_link_completes() {
    // 1 Mbps DSL-ish: 100 KB takes at least 800 ms of serialization.
    let spec = PathSpec::clean(Rate::from_mbps(1), SimDuration::from_millis(40));
    for p in ALL {
        let rec = run_single_path_flow(&spec, p, 100_000, 10)
            .unwrap_or_else(|| panic!("{p} failed on 1 Mbps link"));
        assert!(rec.fct.as_millis_f64() > 800.0, "{p} beat the line rate");
    }
}

#[test]
fn syn_loss_is_survived() {
    let mut spec = clean_path();
    // Drop the very first packet on the wire (the SYN).
    spec.loss = LossModel::DropList { ordinals: vec![1] };
    for p in ALL {
        let rec = run_single_path_flow(&spec, p, 50_000, 11)
            .unwrap_or_else(|| panic!("{p} never recovered from SYN loss"));
        // Handshake retry costs at least the initial RTO (1 s).
        assert!(rec.fct.as_millis_f64() > 1000.0, "{p}: {}", rec.fct);
        assert!(rec.counters.syn_sent >= 2, "{p}");
    }
}

#[test]
fn back_to_back_flows_on_one_path() {
    // Five sequential flows per scheme on the same path; all must finish
    // and TCP-Cache must warm up.
    let spec = clean_path();
    for p in ALL {
        let plans: Vec<FlowPlan> = (0..5)
            .map(|i| FlowPlan {
                at: SimTime::ZERO + SimDuration::from_millis(1500 * i),
                bytes: 100_000,
                protocol: p,
            })
            .collect();
        let (records, censored) = run_path(&spec, &plans, 13, SimDuration::from_secs(60));
        assert_eq!(censored, 0, "{p}");
        assert_eq!(records.len(), 5, "{p}");
        if p == Protocol::TcpCache {
            let first = records[0].fct;
            let last = records[4].fct;
            assert!(last < first, "TCP-Cache did not warm up: {first} -> {last}");
        }
    }
}

#[test]
fn concurrent_flows_one_sender() {
    // Two flows from the same host at the same instant must not interfere
    // with each other's bookkeeping.
    use netsim::topology::build_path;
    use transport::{Host, TransportSim};
    let spec = clean_path();
    let mut sim = TransportSim::new(21);
    let net = build_path(&mut sim, &spec, |_| Box::new(Host::new()));
    sim.with_node_mut::<Host, _>(net.sender, |h, _| h.wire(net.sender, net.forward));
    sim.with_node_mut::<Host, _>(net.receiver, |h, _| h.wire(net.receiver, net.reverse));
    let cache = baselines::path_cache();
    for (i, p) in [Protocol::Halfback, Protocol::Tcp].into_iter().enumerate() {
        let strategy = p.make(&cache, (net.sender, net.receiver));
        sim.with_node_mut::<Host, _>(net.sender, |h, core| {
            h.start_flow(
                core,
                netsim::FlowId(i as u64 + 1),
                net.receiver,
                50_000,
                strategy,
            )
        });
    }
    sim.run_to_completion(10_000_000);
    let host = sim.node_as::<Host>(net.sender).unwrap();
    assert_eq!(host.completed().len(), 2);
    assert_eq!(host.stray_packets, 0);
}

//! Web browsing scenario: load synthetic top-100-style pages (Chrome-like
//! request order, up to 6 concurrent connections per page) under a chosen
//! background utilization, comparing page response time across schemes —
//! the paper's application-level benchmark (§4.4).
//!
//! ```text
//! cargo run --release -p scenarios --example web_browsing [utilization]
//! cargo run --release -p scenarios --example web_browsing 0.3
//! ```

use scenarios::figures::web_response::run_web;
use scenarios::{Protocol, Scale};

fn main() {
    let utilization: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("utilization must be a number in (0, 1)"))
        .unwrap_or(0.3);
    assert!(
        utilization > 0.0 && utilization < 0.95,
        "utilization must be in (0, 0.95)"
    );

    println!(
        "Web page response time at {:.0}% offered utilization",
        utilization * 100.0
    );
    println!("(synthetic 100-page corpus, <=6 concurrent connections per page)\n");
    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>12}",
        "scheme", "pages", "mean (ms)", "completion", "RTO objects"
    );
    for p in [
        Protocol::Halfback,
        Protocol::JumpStart,
        Protocol::Tcp,
        Protocol::Tcp10,
    ] {
        let r = run_web(p, utilization, Scale::Quick);
        println!(
            "{:<12} {:>8} {:>10.0} {:>11.0}% {:>9}/{}",
            p.name(),
            r.response_ms.len(),
            r.mean_ms(),
            r.completion_rate() * 100.0,
            r.rto_objects,
            r.objects,
        );
    }
    println!(
        "\nThe paper's §4.4 finding: concurrent short flows create transient\n\
         overload, so flow-level winners can lose at the page level —\n\
         JumpStart's response time crosses above TCP's at ~30% utilization\n\
         while Halfback's ROPR keeps recovering without timeouts."
    );
}

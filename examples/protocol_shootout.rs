//! Protocol shootout: run every scheme the paper evaluates over the same
//! Poisson workload on the Emulab dumbbell and print a head-to-head table.
//!
//! ```text
//! cargo run --release -p scenarios --example protocol_shootout [utilization] [flow_kb]
//! cargo run --release -p scenarios --example protocol_shootout 0.5 100
//! ```

use netsim::rng::SimRng;
use netsim::topology::DumbbellSpec;
use netsim::{SimDuration, SimTime};
use scenarios::metrics::FctStats;
use scenarios::runner::{plans_from_schedule, run_dumbbell, RunOptions};
use scenarios::Protocol;
use workload::Schedule;

fn main() {
    let utilization: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    let flow_kb: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let flow_bytes = flow_kb * 1000;
    assert!(utilization > 0.0 && utilization < 1.0);

    let spec = DumbbellSpec::emulab(1);
    let horizon = SimTime::ZERO + SimDuration::from_secs(60);
    // One shared arrival schedule: every scheme sees identical flows.
    let schedule = Schedule::fixed_size(
        spec.bottleneck_rate,
        flow_bytes,
        utilization,
        horizon,
        SimRng::new(7).fork("shootout"),
    );
    println!(
        "{} flows of {} KB at {:.0}% utilization, identical arrivals for all schemes\n",
        schedule.flows.len(),
        flow_kb,
        utilization * 100.0
    );
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "scheme", "mean (ms)", "median", "p99", "retx/flow", "pro/flow", "RTOs"
    );
    for p in Protocol::EVALUATED {
        let plans = plans_from_schedule(&schedule, p);
        let out = run_dumbbell(&spec, &plans, &RunOptions::default());
        let s = FctStats::from_records(&out.records, out.censored);
        println!(
            "{:<12} {:>10.0} {:>10.0} {:>10.0} {:>9.2} {:>9.2} {:>9.2}",
            p.name(),
            s.mean_ms,
            s.median_ms,
            s.p99_ms,
            s.mean_normal_retx,
            s.mean_proactive_retx,
            s.mean_rtos
        );
    }
    println!(
        "\nTry higher utilizations (0.6, 0.7, 0.8) to watch JumpStart collapse\n\
         while Halfback holds — the paper's Fig. 12 in miniature."
    );
}

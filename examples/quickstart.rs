//! Quickstart: transmit one 100 KB short flow with Halfback over the
//! paper's Emulab dumbbell (15 Mbps / 60 ms RTT / 115 KB buffer) and
//! compare it with vanilla TCP.
//!
//! Run with:
//! ```text
//! cargo run --release -p scenarios --example quickstart
//! ```

use halfback::Halfback;
use netsim::topology::{build_dumbbell, DumbbellSpec};
use netsim::FlowId;
use transport::strategy::Strategy;
use transport::{Host, TransportSim};

/// Run one flow with the given strategy; return (fct ms, proactive copies).
fn run_one(strategy: Box<dyn Strategy>) -> (f64, u64, u64) {
    let mut sim = TransportSim::new(42);
    let spec = DumbbellSpec::emulab(1);
    let net = build_dumbbell(&mut sim, &spec, |_, _| Box::new(Host::new()));
    sim.with_node_mut::<Host, _>(net.left_hosts[0], |h, _| {
        h.wire(net.left_hosts[0], net.left_egress[0])
    });
    sim.with_node_mut::<Host, _>(net.right_hosts[0], |h, _| {
        h.wire(net.right_hosts[0], net.right_egress[0])
    });
    sim.with_node_mut::<Host, _>(net.left_hosts[0], |h, core| {
        h.start_flow(core, FlowId(1), net.right_hosts[0], 100_000, strategy)
    });
    sim.run_to_completion(1_000_000);
    let rec = &sim.node_as::<Host>(net.left_hosts[0]).unwrap().completed()[0];
    (
        rec.fct.as_millis_f64(),
        rec.counters.proactive_retx,
        rec.counters.data_packets_sent,
    )
}

fn main() {
    println!("One 100 KB flow over the paper's Emulab dumbbell (Fig. 4):");
    println!("  15 Mbps bottleneck, 60 ms RTT, 115 KB drop-tail buffer\n");

    let (hb_fct, hb_pro, hb_pkts) = run_one(Box::new(Halfback::new()));
    let (tcp_fct, _, tcp_pkts) = run_one(Box::new(baselines::Tcp::new()));

    println!(
        "Halfback: FCT {hb_fct:.0} ms  ({hb_pkts} data packets, {hb_pro} proactive ROPR copies)"
    );
    println!("TCP:      FCT {tcp_fct:.0} ms  ({tcp_pkts} data packets)");
    println!();
    println!(
        "Halfback finishes in {:.1}x less time: the whole flow is paced out in\n\
         the first RTT after the handshake, while TCP slow-starts through\n\
         ~6 doubling rounds. ROPR re-sent ~half the flow ({} of 69 segments)\n\
         as loss insurance, clocked by returning ACKs.",
        tcp_fct / hb_fct,
        hb_pro
    );
}

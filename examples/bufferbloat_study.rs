//! Bufferbloat study (§4.2.3 / Fig. 10): sweep the bottleneck router's
//! buffer from tiny to bloated while one long TCP flow keeps it occupied,
//! and watch what each scheme's short flows pay.
//!
//! ```text
//! cargo run --release -p scenarios --example bufferbloat_study
//! ```

use scenarios::figures::bufferbloat::cell;
use scenarios::{Protocol, Scale};

fn main() {
    let buffers_kb = [15u64, 60, 115, 250, 400, 600];
    let schemes = [
        Protocol::Tcp,
        Protocol::Tcp10,
        Protocol::JumpStart,
        Protocol::Halfback,
    ];

    println!("Short-flow mean FCT (ms) vs router buffer, one background TCP flow:\n");
    print!("{:>12}", "buffer (KB)");
    for p in schemes {
        print!(" {:>11}", p.name());
    }
    println!();
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for &kb in &buffers_kb {
        print!("{kb:>12}");
        for (i, p) in schemes.into_iter().enumerate() {
            let stats = cell(p, kb * 1000, Scale::Quick);
            print!(" {:>11.0}", stats.mean_ms);
            per_scheme[i].push(stats.mean_ms);
        }
        println!();
    }
    println!();
    for (i, p) in schemes.into_iter().enumerate() {
        let min = per_scheme[i].iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_scheme[i].iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{:<10} spread across buffers: {:>5.0} ms",
            p.name(),
            max - min
        );
    }
    println!(
        "\nTwo effects, as in the paper: small buffers punish aggressive\n\
         startups (JumpStart most — its retransmissions burst into the full\n\
         queue; Halfback recovers via ROPR), while bloated buffers inflate\n\
         every RTT-bound scheme's completion time. Halfback is least\n\
         affected at both extremes because it finishes in few RTTs *and*\n\
         repairs loss without timeouts."
    );
}

//! Parallel experiment execution: a fixed-size worker pool fanning out
//! independent simulation jobs.
//!
//! Every experiment in `figures/` decomposes into cells — one simulation
//! per (figure, seed, protocol, load-point) — that share no state. This
//! module runs such cells on a pool of OS threads while keeping the
//! results **deterministic**: jobs carry stable keys, results are returned
//! in submission order regardless of completion order, and nothing a job
//! prints or returns depends on the worker count. `repro --jobs 1` and
//! `--jobs 8` therefore produce byte-identical `out/` trees.
//!
//! Panics inside a job are isolated with [`std::panic::catch_unwind`]: one
//! diverging simulation aborts that cell, not the whole sweep. Each job
//! also reports wall-clock time, simulated virtual time, and event count
//! (fed by the runners through [`meter_add`]), which `repro` summarizes on
//! stderr — never into `out/`, preserving byte-identity.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One unit of work: a stable key (used in progress lines, metrics, and
/// panic reports) plus the closure that computes the result.
pub struct Job<'a, T> {
    /// Stable identifier, e.g. `"fig12/Halfback/u35"`.
    pub key: String,
    run: Box<dyn FnOnce() -> T + Send + 'a>,
}

impl<'a, T> Job<'a, T> {
    /// Package a closure as a job.
    pub fn new(key: impl Into<String>, f: impl FnOnce() -> T + Send + 'a) -> Job<'a, T> {
        Job {
            key: key.into(),
            run: Box::new(f),
        }
    }
}

/// A job that panicked instead of returning.
#[derive(Debug, Clone)]
pub struct JobPanic {
    /// The job's key.
    pub key: String,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job '{}' panicked: {}", self.key, self.message)
    }
}

/// Timing record of one completed job.
#[derive(Debug, Clone)]
pub struct JobMetrics {
    /// The job's key.
    pub key: String,
    /// Wall-clock execution time.
    pub wall: Duration,
    /// Simulated virtual time advanced by the job's simulations (ns).
    pub virtual_ns: u64,
    /// Discrete events processed by the job's simulations.
    pub events: u64,
    /// Whether the job returned normally.
    pub ok: bool,
}

/// Worker count: 0 = unset, resolve to available parallelism on use.
static WORKERS: AtomicUsize = AtomicUsize::new(0);
/// Whether to print a progress line per completed job (repro turns this
/// on; tests leave it off).
static PROGRESS: AtomicBool = AtomicBool::new(false);
/// Completed-job metrics, drained by [`take_metrics`].
static METRICS: Mutex<Vec<JobMetrics>> = Mutex::new(Vec::new());
/// Watchdog: per-job virtual-time cap in ns (0 = disabled).
static CAP_VIRTUAL_NS: AtomicU64 = AtomicU64::new(0);
/// Watchdog: per-job event-count cap (0 = disabled).
static CAP_EVENTS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// (virtual ns, events) accumulated by the job running on this thread.
    static METER: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
    /// Set while a job executes: nested `run_jobs` calls then run inline
    /// instead of spawning a second pool.
    static IN_JOB: Cell<bool> = const { Cell::new(false) };
}

/// Set the worker-pool size used by [`run_jobs`] (the `--jobs N` flag).
pub fn set_workers(n: usize) {
    WORKERS.store(n, Ordering::Relaxed);
}

/// Shard-thread count for intra-scenario parallelism: 0 = unset, resolve
/// to available parallelism on use (the `--shards N` flag).
static SHARDS: AtomicUsize = AtomicUsize::new(0);

/// Set the shard-thread count used by sharded scenarios (`--shards N`).
/// Like `--jobs`, this only changes how partitions map onto threads; the
/// partition count — and therefore the output — is fixed by the scenario.
pub fn set_shards(n: usize) {
    SHARDS.store(n, Ordering::Relaxed);
}

/// The effective shard-thread count: the value set via [`set_shards`], or
/// the machine's available parallelism.
pub fn shards() -> usize {
    match SHARDS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// The effective worker count: the value set via [`set_workers`], or the
/// machine's available parallelism.
pub fn workers() -> usize {
    match WORKERS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Enable or disable per-job progress lines on stderr.
pub fn set_progress(on: bool) {
    PROGRESS.store(on, Ordering::Relaxed);
}

/// Whether progress reporting is on — long-running scenarios gate their
/// stderr heartbeat on this so tests stay quiet.
pub fn progress_on() -> bool {
    PROGRESS.load(Ordering::Relaxed)
}

/// Shard-telemetry JSONL destination (the `--telemetry <path>` flag).
/// `None` keeps every telemetry branch on its cold path.
static TELEMETRY_PATH: Mutex<Option<std::path::PathBuf>> = Mutex::new(None);

/// Set (or clear) the shard-telemetry output path.
pub fn set_telemetry_path(path: Option<std::path::PathBuf>) {
    *TELEMETRY_PATH.lock().unwrap() = path;
}

/// The shard-telemetry output path, if `--telemetry` was given.
pub fn telemetry_path() -> Option<std::path::PathBuf> {
    TELEMETRY_PATH.lock().unwrap().clone()
}

/// High-water mark of sketch memory noted since the last drain — fed by
/// scenarios that aggregate through `LogHistogram`s, reported per
/// experiment in the run manifest. Deterministic (bucket counts, not
/// allocator state).
static SKETCH_MEM_HIWATER: AtomicU64 = AtomicU64::new(0);

/// Note a scenario's sketch footprint; keeps the maximum.
pub fn note_sketch_mem(bytes: usize) {
    SKETCH_MEM_HIWATER.fetch_max(bytes as u64, Ordering::Relaxed);
}

/// Drain the sketch-memory high-water mark (resets to zero).
pub fn take_sketch_mem() -> u64 {
    SKETCH_MEM_HIWATER.swap(0, Ordering::Relaxed)
}

/// Credit the currently running job with simulated time and events.
/// Called by the runners after each simulation; a no-op outside a job.
pub fn meter_add(virtual_ns: u64, events: u64) {
    METER.with(|m| {
        let (v, e) = m.get();
        m.set((v.saturating_add(virtual_ns), e.saturating_add(events)));
    });
}

/// Drain the metrics of all jobs completed since the last call, in
/// submission order (independent of the worker count).
pub fn take_metrics() -> Vec<JobMetrics> {
    std::mem::take(&mut METRICS.lock().unwrap())
}

/// Record a metrics entry directly — used by sharded scenarios that
/// parallelize inside one simulation instead of fanning out through
/// [`run_jobs`], so their event totals still reach `repro`'s per-job
/// report and the run manifest.
pub fn push_metrics(m: JobMetrics) {
    METRICS.lock().unwrap().push(m);
}

/// Set the per-job watchdog caps (0 disables a cap). A job whose
/// simulations exceed either cap panics with a diagnostic; the panic is
/// caught by the job isolation in [`run_jobs`], so a livelocked cell fails
/// alone instead of hanging the sweep. Checked cooperatively by the
/// runners via [`check_caps`].
pub fn set_job_caps(virtual_ns: u64, events: u64) {
    CAP_VIRTUAL_NS.store(virtual_ns, Ordering::Relaxed);
    CAP_EVENTS.store(events, Ordering::Relaxed);
}

/// The current watchdog caps `(virtual_ns, events)`; 0 means disabled.
pub fn job_caps() -> (u64, u64) {
    (
        CAP_VIRTUAL_NS.load(Ordering::Relaxed),
        CAP_EVENTS.load(Ordering::Relaxed),
    )
}

/// Watchdog check: panic if the job's accumulated meter plus the
/// in-progress simulation's `(extra_virtual_ns, extra_events)` exceeds a
/// cap. A no-op when both caps are disabled.
pub fn check_caps(extra_virtual_ns: u64, extra_events: u64) {
    let (cap_ns, cap_ev) = job_caps();
    if cap_ns == 0 && cap_ev == 0 {
        return;
    }
    let (v, e) = METER.with(|m| m.get());
    let v = v.saturating_add(extra_virtual_ns);
    let e = e.saturating_add(extra_events);
    if cap_ns != 0 && v > cap_ns {
        panic!(
            "watchdog: job exceeded its virtual-time cap \
             ({:.1}s > {:.1}s after {e} events) — livelocked simulation?",
            v as f64 / 1e9,
            cap_ns as f64 / 1e9,
        );
    }
    if cap_ev != 0 && e > cap_ev {
        panic!(
            "watchdog: job exceeded its event-count cap \
             ({e} > {cap_ev} events at virtual {:.1}s) — livelocked simulation?",
            v as f64 / 1e9,
        );
    }
}

/// Run one job under the panic guard and the meter. Returns the result
/// together with the job's metrics; the caller batches metrics into the
/// global buffer (one lock per pool run, in submission order, instead of a
/// contended push per job).
fn execute<T>(
    job: Job<'_, T>,
    done: &AtomicUsize,
    total: usize,
) -> (Result<T, JobPanic>, JobMetrics) {
    let key = job.key;
    let run = job.run;
    METER.with(|m| m.set((0, 0)));
    IN_JOB.with(|f| f.set(true));
    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(run));
    let wall = t0.elapsed();
    IN_JOB.with(|f| f.set(false));
    let (virtual_ns, events) = METER.with(|m| m.get());
    let ok = result.is_ok();
    let n_done = done.fetch_add(1, Ordering::Relaxed) + 1;
    if PROGRESS.load(Ordering::Relaxed) {
        eprintln!(
            ":: [{n_done}/{total}] {key}: wall {:.2}s, virtual {:.1}s, {events} events{}",
            wall.as_secs_f64(),
            virtual_ns as f64 / 1e9,
            if ok { "" } else { " [PANICKED]" },
        );
    }
    let metrics = JobMetrics {
        key: key.clone(),
        wall,
        virtual_ns,
        events,
        ok,
    };
    let result = result.map_err(|payload| {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        JobPanic { key, message }
    });
    (result, metrics)
}

/// Run jobs on the configured pool ([`workers`]); results come back in
/// submission order, one `Result` per job.
pub fn run_jobs<T: Send>(jobs: Vec<Job<'_, T>>) -> Vec<Result<T, JobPanic>> {
    run_jobs_on(jobs, workers())
}

/// Run jobs on a pool of exactly `n_workers` threads.
///
/// Scheduling is work-stealing from a shared queue, so execution *order*
/// varies with the worker count — but results *and metrics* are collected by
/// submission slot, so the returned vector, the [`take_metrics`] buffer, and
/// anything derived from them do not.
pub fn run_jobs_on<T: Send>(jobs: Vec<Job<'_, T>>, n_workers: usize) -> Vec<Result<T, JobPanic>> {
    let total = jobs.len();
    let done = AtomicUsize::new(0);
    // Serial path: one worker, one job, or a nested call from inside a
    // running job (the pool is already busy executing us).
    if n_workers <= 1 || total <= 1 || IN_JOB.with(|f| f.get()) {
        let mut out = Vec::with_capacity(total);
        let mut metrics = Vec::with_capacity(total);
        for j in jobs {
            let (r, m) = execute(j, &done, total);
            out.push(r);
            metrics.push(m);
        }
        METRICS.lock().unwrap().extend(metrics);
        return out;
    }

    let slots: Mutex<Vec<Option<Job<'_, T>>>> = Mutex::new(jobs.into_iter().map(Some).collect());
    type Outcome<T> = (Result<T, JobPanic>, JobMetrics);
    let results: Mutex<Vec<Option<Outcome<T>>>> = Mutex::new((0..total).map(|_| None).collect());
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..n_workers.min(total) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let job = slots.lock().unwrap()[i].take().expect("job taken twice");
                let outcome = execute(job, &done, total);
                results.lock().unwrap()[i] = Some(outcome);
            });
        }
    });

    let mut out = Vec::with_capacity(total);
    let mut metrics_buf = METRICS.lock().unwrap();
    for r in results.into_inner().unwrap() {
        let (res, m) = r.expect("worker exited without storing a result");
        metrics_buf.push(m);
        out.push(res);
    }
    drop(metrics_buf);
    out
}

/// Map `f` over `items` in parallel, preserving order. Panics (with the
/// offending job's key) if any item's job panics — the behaviour the
/// figure modules had when they ran their loops inline.
pub fn parallel_map<I, T>(
    items: Vec<I>,
    key: impl Fn(&I) -> String,
    f: impl Fn(I) -> T + Sync,
) -> Vec<T>
where
    I: Send,
    T: Send,
{
    let f = &f;
    let jobs: Vec<Job<'_, T>> = items
        .into_iter()
        .map(|item| {
            let k = key(&item);
            Job::new(k, move || f(item))
        })
        .collect();
    run_jobs(jobs)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(p) => panic!("{p}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_submission_order() {
        let jobs: Vec<Job<'_, usize>> = (0..64)
            .map(|i| Job::new(format!("j{i}"), move || i * i))
            .collect();
        let out = run_jobs_on(jobs, 8);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i * i);
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mk = || {
            (0..32)
                .map(|i| Job::new(format!("j{i}"), move || i * 7 + 1))
                .collect::<Vec<Job<'_, usize>>>()
        };
        let serial: Vec<usize> = run_jobs_on(mk(), 1)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let parallel: Vec<usize> = run_jobs_on(mk(), 8)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn panics_are_isolated() {
        let jobs: Vec<Job<'_, u32>> = vec![
            Job::new("ok1", || 1),
            Job::new("boom", || panic!("deliberate test panic")),
            Job::new("ok2", || 2),
        ];
        let out = run_jobs_on(jobs, 4);
        assert_eq!(*out[0].as_ref().unwrap(), 1);
        let err = out[1].as_ref().unwrap_err();
        assert_eq!(err.key, "boom");
        assert!(err.message.contains("deliberate test panic"));
        assert_eq!(*out[2].as_ref().unwrap(), 2);
    }

    #[test]
    fn nested_run_jobs_runs_inline() {
        let jobs: Vec<Job<'_, usize>> = (0..4)
            .map(|i| {
                Job::new(format!("outer{i}"), move || {
                    let inner: Vec<Job<'_, usize>> = (0..3)
                        .map(|j| Job::new(format!("inner{j}"), move || i + j))
                        .collect();
                    run_jobs_on(inner, 8).into_iter().map(|r| r.unwrap()).sum()
                })
            })
            .collect();
        let out = run_jobs_on(jobs, 2);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), 3 * i + 3);
        }
    }

    #[test]
    fn meter_accumulates_per_job() {
        let jobs: Vec<Job<'_, ()>> = vec![
            Job::new("meter/a", || meter_add(10, 2)),
            Job::new("meter/b", || {
                meter_add(5, 1);
                meter_add(5, 1);
            }),
        ];
        run_jobs_on(jobs, 1);
        // Other tests in this binary push into the global metrics buffer
        // concurrently; select our own jobs by key.
        let m: Vec<JobMetrics> = take_metrics()
            .into_iter()
            .filter(|x| x.key.starts_with("meter/"))
            .collect();
        assert_eq!(m.len(), 2);
        assert_eq!((m[0].virtual_ns, m[0].events), (10, 2));
        assert_eq!((m[1].virtual_ns, m[1].events), (10, 2));
        assert!(m.iter().all(|x| x.ok));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..20).collect(), |i| format!("k{i}"), |i: i32| i * 2);
        assert_eq!(out, (0..20).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn watchdog_trips_through_panic_isolation() {
        // Caps are process-global; run the capped jobs serially and restore
        // the disabled state afterwards so other tests are unaffected.
        set_job_caps(1_000_000_000, 10_000);
        let jobs: Vec<Job<'_, u32>> = vec![
            Job::new("wd/ok", || {
                meter_add(500, 100);
                check_caps(0, 0);
                1
            }),
            Job::new("wd/livelock", || {
                // A "livelocked" cell: events pile up without the virtual
                // clock advancing past the cap.
                for _ in 0..100 {
                    meter_add(0, 5_000);
                    check_caps(0, 0);
                }
                2
            }),
            Job::new("wd/after", || 3),
        ];
        let out = run_jobs_on(jobs, 1);
        set_job_caps(0, 0);
        assert_eq!(*out[0].as_ref().unwrap(), 1);
        let err = out[1].as_ref().unwrap_err();
        assert!(
            err.message.contains("watchdog") && err.message.contains("event-count cap"),
            "unexpected watchdog message: {}",
            err.message
        );
        assert_eq!(*out[2].as_ref().unwrap(), 3, "pool survives a cap trip");
    }

    #[test]
    fn watchdog_disabled_is_noop() {
        set_job_caps(0, 0);
        // Would trip any finite cap; must not panic while disabled.
        meter_add(u64::MAX / 2, u64::MAX / 2);
        check_caps(u64::MAX / 2, u64::MAX / 2);
    }
}

//! Plain-text tables and CSV output for experiment results.
//!
//! Each figure module produces a [`Figure`]: named series of `(x, y)`
//! points plus free-form summary lines. `repro` prints the table and can
//! write gnuplot-ready CSV next to it.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

/// A reproduced figure: series plus headline numbers.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier, e.g. "fig12".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Axis labels (x, y).
    pub axes: (String, String),
    /// The series.
    pub series: Vec<Series>,
    /// Headline lines ("Halfback feasible capacity: 70%").
    pub summary: Vec<String>,
}

impl Figure {
    /// Create an empty figure shell.
    pub fn new(id: &str, title: &str, x: &str, y: &str) -> Figure {
        Figure {
            id: id.to_string(),
            title: title.to_string(),
            axes: (x.to_string(), y.to_string()),
            series: Vec::new(),
            summary: Vec::new(),
        }
    }

    /// Add a series.
    pub fn push_series(&mut self, label: impl Into<String>, points: Vec<(f64, f64)>) {
        self.series.push(Series {
            label: label.into(),
            points,
        });
    }

    /// Add a summary line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.summary.push(line.into());
    }

    /// Render as a text report: summary lines plus a downsampled table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.title);
        let _ = writeln!(out, "   x: {}   y: {}", self.axes.0, self.axes.1);
        for line in &self.summary {
            let _ = writeln!(out, "   * {line}");
        }
        if !self.series.is_empty() {
            // Tabulate on the union of x values (downsampled to <= 24 rows).
            let mut xs: Vec<f64> = self
                .series
                .iter()
                .flat_map(|s| s.points.iter().map(|p| p.0))
                .collect();
            xs.sort_by(f64::total_cmp);
            xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
            let stride = xs.len().div_ceil(24).max(1);
            let rows: Vec<f64> = xs.iter().copied().step_by(stride).collect();

            let _ = write!(out, "{:>12}", self.axes.0);
            for s in &self.series {
                let _ = write!(out, " {:>18}", truncate(&s.label, 18));
            }
            let _ = writeln!(out);
            for x in rows {
                let _ = write!(out, "{x:>12.3}");
                for s in &self.series {
                    match lookup(&s.points, x) {
                        Some(y) => {
                            let _ = write!(out, " {y:>18.3}");
                        }
                        None => {
                            let _ = write!(out, " {:>18}", "-");
                        }
                    }
                }
                let _ = writeln!(out);
            }
        }
        out
    }

    /// Render a compact ASCII chart of the series (log-insensitive, linear
    /// axes): one glyph per series, 64x20 cells. Useful for eyeballing a
    /// figure straight from the terminal (`repro <id> --chart`).
    pub fn render_ascii_chart(&self) -> String {
        const W: usize = 64;
        const H: usize = 20;
        const GLYPHS: &[u8] = b"*o+x#@%&$~^=";
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if pts.is_empty() {
            return String::from("(no data)\n");
        }
        let (x0, x1) = pts
            .iter()
            .fold((f64::MAX, f64::MIN), |(a, b), &(x, _)| (a.min(x), b.max(x)));
        let (y0, y1) = pts
            .iter()
            .fold((f64::MAX, f64::MIN), |(a, b), &(_, y)| (a.min(y), b.max(y)));
        let xr = (x1 - x0).max(1e-12);
        let yr = (y1 - y0).max(1e-12);
        let mut grid = vec![vec![b' '; W]; H];
        for (si, s) in self.series.iter().enumerate() {
            let g = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in &s.points {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let cx = (((x - x0) / xr) * (W - 1) as f64).round() as usize;
                let cy = (((y - y0) / yr) * (H - 1) as f64).round() as usize;
                grid[H - 1 - cy.min(H - 1)][cx.min(W - 1)] = g;
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{:>10.6} +{}", y1, "-".repeat(W));
        for row in &grid {
            let _ = writeln!(out, "{:>10} |{}", "", String::from_utf8_lossy(row));
        }
        let _ = writeln!(out, "{:>10.6} +{}", y0, "-".repeat(W));
        let _ = writeln!(
            out,
            "{:>12}{:<32}{:>32}",
            "",
            format!("{:.3}", x0),
            format!("{:.3}", x1)
        );
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(
                out,
                "   {} = {}",
                GLYPHS[si % GLYPHS.len()] as char,
                s.label
            );
        }
        out
    }

    /// Write `<dir>/<id>.gp`: a gnuplot script that renders the figure from
    /// its CSV (one `plot` entry per series). Run with
    /// `gnuplot out/<id>.gp` to get `<id>.png`.
    pub fn write_gnuplot(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut gp = String::new();
        let _ = writeln!(gp, "set terminal pngcairo size 900,600");
        let _ = writeln!(gp, "set output '{}.png'", self.id);
        let _ = writeln!(gp, "set title \"{}\"", self.title.replace('"', "'"));
        let _ = writeln!(gp, "set xlabel \"{}\"", self.axes.0);
        let _ = writeln!(gp, "set ylabel \"{}\"", self.axes.1);
        let _ = writeln!(gp, "set key outside right");
        let _ = writeln!(gp, "set datafile separator ','");
        let mut parts = Vec::new();
        for s in &self.series {
            let label = s.label.replace(',', ";");
            parts.push(format!(
                "'{}.csv' using 2:($0 >= 0 && stringcolumn(1) eq \"{}\" ? $3 : NaN) with linespoints title \"{}\"",
                self.id, label, label
            ));
        }
        let _ = writeln!(gp, "plot {}", parts.join(", \\\n     "));
        fs::write(dir.join(format!("{}.gp", self.id)), gp)
    }

    /// Write `<dir>/<id>.csv` with columns `series,x,y`.
    pub fn write_csv(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut csv = String::from("series,x,y\n");
        for s in &self.series {
            for &(x, y) in &s.points {
                let _ = writeln!(csv, "{},{x},{y}", s.label.replace(',', ";"));
            }
        }
        fs::write(dir.join(format!("{}.csv", self.id)), csv)?;
        if !self.summary.is_empty() {
            fs::write(
                dir.join(format!("{}.summary.txt", self.id)),
                self.summary.join("\n") + "\n",
            )?;
        }
        Ok(())
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

fn lookup(points: &[(f64, f64)], x: f64) -> Option<f64> {
    points.iter().find(|p| (p.0 - x).abs() < 1e-12).map(|p| p.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_series_and_summary() {
        let mut f = Figure::new("figX", "Test figure", "load", "fct");
        f.push_series("TCP", vec![(0.1, 100.0), (0.2, 120.0)]);
        f.push_series("Halfback", vec![(0.1, 50.0), (0.2, 55.0)]);
        f.note("Halfback wins");
        let text = f.render_text();
        assert!(text.contains("figX"));
        assert!(text.contains("Halfback wins"));
        assert!(text.contains("TCP"));
        assert!(text.contains("120.000"));
    }

    /// Regression: a NaN-bearing series used to panic the whole report in
    /// `partial_cmp(..).unwrap()`; `f64::total_cmp` sorts NaN to the end
    /// and the table still renders every finite row.
    #[test]
    fn render_survives_nan_samples() {
        let mut f = Figure::new("figN", "NaN robustness", "x", "y");
        f.push_series("A", vec![(f64::NAN, 1.0), (0.5, 2.0), (0.25, f64::NAN)]);
        f.push_series("B", vec![(0.5, 3.0)]);
        let text = f.render_text();
        assert!(text.contains("figN"));
        assert!(text.contains("2.000"));
        let chart = f.render_ascii_chart();
        assert!(!chart.is_empty());
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join(format!("halfback-report-test-{}", std::process::id()));
        let mut f = Figure::new("figY", "T", "x", "y");
        f.push_series("A", vec![(1.0, 2.0)]);
        f.note("note");
        f.write_csv(&dir).unwrap();
        let csv = std::fs::read_to_string(dir.join("figY.csv")).unwrap();
        assert!(csv.contains("A,1,2"));
        let summary = std::fs::read_to_string(dir.join("figY.summary.txt")).unwrap();
        assert!(summary.contains("note"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gnuplot_script_mentions_every_series() {
        let dir = std::env::temp_dir().join(format!("halfback-gp-test-{}", std::process::id()));
        let mut f = Figure::new("figG", "T", "x", "y");
        f.push_series("A", vec![(1.0, 2.0)]);
        f.push_series("B,C", vec![(3.0, 4.0)]);
        f.write_gnuplot(&dir).unwrap();
        let gp = std::fs::read_to_string(dir.join("figG.gp")).unwrap();
        assert!(gp.contains("figG.png"));
        assert!(gp.contains("\"A\""));
        assert!(
            gp.contains("B;C"),
            "commas in labels must be escaped like the CSV"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_points_render_dash() {
        let mut f = Figure::new("figZ", "T", "x", "y");
        f.push_series("A", vec![(1.0, 2.0)]);
        f.push_series("B", vec![(3.0, 4.0)]);
        let text = f.render_text();
        assert!(text.contains('-'));
    }
}

//! Shard runtime telemetry export: the `--telemetry <path>` JSONL file.
//!
//! One line per (window, partition) [`WindowTelemetry`] record, in
//! canonical order, preceded by a single header line — schema
//! `halfback-telemetry-v1`. Every top-level field is **virtual-time
//! deterministic**: a pure function of `(parts, seeds, horizon)`,
//! byte-identical across `--shards 1` and `--shards N` (pinned by
//! `ci/check_telemetry.sh`). The only nondeterministic measurements —
//! barrier wait and window wall time — are quarantined in a nested
//! `"wall":{...}` object so a checker can strip them with one regular
//! expression and golden the rest.

use netsim::shard::WindowTelemetry;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Schema tag stamped on the header line.
pub const TELEMETRY_SCHEMA: &str = "halfback-telemetry-v1";

/// Render the header line: run shape, no per-window data.
pub fn header_line(experiment: &str, parts: usize, windows: u64) -> String {
    format!(
        "{{\"schema\":\"{TELEMETRY_SCHEMA}\",\"kind\":\"run\",\"experiment\":\"{experiment}\",\
         \"parts\":{parts},\"windows\":{windows}}}"
    )
}

/// Render one record as a JSONL line. Deterministic fields first, wall
/// fields last under `"wall"` — strip with `s/,"wall":\{[^}]*\}//`.
pub fn record_line(t: &WindowTelemetry) -> String {
    let mut line = String::with_capacity(256);
    let _ = write!(
        line,
        "{{\"kind\":\"window\",\"window\":{},\"part\":{},\"w_end_ns\":{},\
         \"events\":{},\"deposited\":{},\"injected\":{},\"mailbox_max\":{},\
         \"wheel_depth\":{},\"arena_live\":{},\"arena_hiwater\":{},\
         \"wall\":{{\"barrier_ns\":{},\"window_ns\":{}}}}}",
        t.window,
        t.part,
        t.w_end_ns,
        t.events,
        t.deposited,
        t.injected,
        t.mailbox_max,
        t.wheel_depth,
        t.arena_live,
        t.arena_hiwater,
        t.wall_barrier_ns,
        t.wall_window_ns,
    );
    line
}

/// Write the full JSONL file (header + one line per record) to `path`.
pub fn write_jsonl(
    path: &Path,
    experiment: &str,
    parts: usize,
    records: &[WindowTelemetry],
) -> io::Result<()> {
    let windows = records.iter().map(|r| r.window + 1).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str(&header_line(experiment, parts, windows));
    out.push('\n');
    for r in records {
        out.push_str(&record_line(r));
        out.push('\n');
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(window: u64, part: usize) -> WindowTelemetry {
        WindowTelemetry {
            window,
            part,
            w_end_ns: 1_000 + window,
            events: 10,
            deposited: 1,
            injected: 2,
            mailbox_max: 2,
            wheel_depth: 3,
            arena_live: 4,
            arena_hiwater: 5,
            wall_barrier_ns: 12345,
            wall_window_ns: 67890,
        }
    }

    #[test]
    fn lines_quarantine_wall_fields() {
        let line = record_line(&record(7, 1));
        // Deterministic prefix, wall-only suffix: stripping the wall object
        // (everything from `,"wall"` to the closing brace) must leave no
        // wall data behind.
        let cut = line.find(",\"wall\"").unwrap();
        let stripped = format!("{}}}", &line[..cut]);
        assert!(stripped.contains("\"window\":7"));
        assert!(stripped.contains("\"part\":1"));
        assert!(!stripped.contains("12345"));
        assert!(!stripped.contains("barrier_ns"));
        assert!(line.ends_with("\"wall\":{\"barrier_ns\":12345,\"window_ns\":67890}}"));
    }

    #[test]
    fn header_counts_windows() {
        let recs = [record(0, 0), record(0, 1), record(3, 0)];
        let windows = recs.iter().map(|r| r.window + 1).max().unwrap();
        assert_eq!(windows, 4);
        let h = header_line("planetlab100k", 8, windows);
        assert!(h.contains("\"schema\":\"halfback-telemetry-v1\""));
        assert!(h.contains("\"parts\":8"));
        assert!(h.contains("\"windows\":4"));
    }
}

//! `repro` — regenerate any table or figure of the Halfback paper.
//!
//! ```text
//! repro <experiment>... [--quick | --scale quick|full] [--jobs N] [--out DIR]
//! repro all [--quick] [--out DIR]
//! repro list
//! ```
//!
//! Experiments: fig1 fig2 fig3 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//! fig13 fig14 fig15 fig16 fig17 table1. `--quick` runs the reduced-scale
//! version (the same code paths the test suite and benches exercise);
//! without it the paper-scale parameters run (use `--release`!).
//!
//! `--jobs N` sets the simulation worker-pool size (default: all cores).
//! Results are byte-identical for every N: jobs carry stable keys and are
//! collected in submission order, so `out/*.csv` never depends on thread
//! interleaving.

use scenarios::figures::{distinct_experiment_ids, run_experiment};
use scenarios::{harness, Scale};
use std::path::PathBuf;
use std::process::ExitCode;

/// Resident set size in MB (Linux; `None` elsewhere).
fn rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS"))?;
    Some(line.split_whitespace().nth(1)?.parse::<f64>().ok()? / 1024.0)
}

/// Per-experiment job accounting, printed to stderr only so the files in
/// `--out` stay byte-identical across `--jobs` settings.
fn report_jobs(id: &str, wall_s: f64) {
    let metrics = harness::take_metrics();
    if metrics.is_empty() {
        return;
    }
    let virt_s: f64 = metrics.iter().map(|m| m.virtual_ns as f64 / 1e9).sum();
    let events: u64 = metrics.iter().map(|m| m.events).sum();
    let busy_s: f64 = metrics.iter().map(|m| m.wall.as_secs_f64()).sum();
    let panicked = metrics.iter().filter(|m| !m.ok).count();
    eprintln!(
        ">> {id}: {} jobs on {} workers: wall {wall_s:.1}s, cpu {busy_s:.1}s, \
         virtual {virt_s:.0}s, {events} events{}",
        metrics.len(),
        harness::workers(),
        if panicked > 0 {
            format!(", {panicked} PANICKED")
        } else {
            String::new()
        }
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: repro <experiment>... [--quick] [--scale quick|full] [--jobs N] [--chart] [--out DIR] | repro all | repro list"
        );
        return ExitCode::FAILURE;
    }

    let mut scale = Scale::Full;
    let mut chart = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut experiments: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" | "-q" => scale = Scale::Quick,
            "--scale" => match it.next().as_deref() {
                Some("quick") => scale = Scale::Quick,
                Some("full") => scale = Scale::Full,
                other => {
                    eprintln!("--scale needs 'quick' or 'full', got {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" | "-j" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => harness::set_workers(n),
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--chart" | "-c" => chart = true,
            "--out" | "-o" => match it.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "list" => {
                println!("experiments:");
                for id in distinct_experiment_ids() {
                    println!("  {id}");
                }
                println!("aliases: fig1 (with fig12), fig5/fig7/fig8 (with fig6)");
                return ExitCode::SUCCESS;
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = distinct_experiment_ids()
            .into_iter()
            .map(String::from)
            .collect();
    }

    harness::set_progress(true);
    let started = std::time::Instant::now();
    for id in &experiments {
        eprintln!(
            ">> running {id} ({scale:?} scale, {} workers)...",
            harness::workers()
        );
        let exp_started = std::time::Instant::now();
        match run_experiment(id, scale) {
            Some(figs) => {
                for fig in figs {
                    println!("{}", fig.render_text());
                    if chart {
                        println!("{}", fig.render_ascii_chart());
                    }
                    if let Some(dir) = &out_dir {
                        if let Err(e) = fig.write_csv(dir).and_then(|()| fig.write_gnuplot(dir)) {
                            eprintln!("failed to write CSV/gnuplot for {}: {e}", fig.id);
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            None => {
                eprintln!("unknown experiment '{id}'; try `repro list`");
                return ExitCode::FAILURE;
            }
        }
        let wall_s = exp_started.elapsed().as_secs_f64();
        report_jobs(id, wall_s);
        eprintln!(
            ">> {id} done in {wall_s:.1}s (rss {:.0} MB)",
            rss_mb().unwrap_or(0.0)
        );
    }
    eprintln!(">> done in {:.1}s", started.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}

//! `repro` — regenerate any table or figure of the Halfback paper.
//!
//! ```text
//! repro <experiment>... [--quick] [--out DIR]
//! repro all [--quick] [--out DIR]
//! repro list
//! ```
//!
//! Experiments: fig1 fig2 fig3 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//! fig13 fig14 fig15 fig16 fig17 table1. `--quick` runs the reduced-scale
//! version (the same code paths the test suite and benches exercise);
//! without it the paper-scale parameters run (use `--release`!).

use scenarios::figures::{distinct_experiment_ids, run_experiment};
use scenarios::Scale;
use std::path::PathBuf;
use std::process::ExitCode;

/// Resident set size in MB (Linux; `None` elsewhere).
fn rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS"))?;
    Some(line.split_whitespace().nth(1)?.parse::<f64>().ok()? / 1024.0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: repro <experiment>... [--quick] [--chart] [--out DIR] | repro all | repro list"
        );
        return ExitCode::FAILURE;
    }

    let mut scale = Scale::Full;
    let mut chart = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut experiments: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" | "-q" => scale = Scale::Quick,
            "--chart" | "-c" => chart = true,
            "--out" | "-o" => match it.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "list" => {
                println!("experiments:");
                for id in distinct_experiment_ids() {
                    println!("  {id}");
                }
                println!("aliases: fig1 (with fig12), fig5/fig7/fig8 (with fig6)");
                return ExitCode::SUCCESS;
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = distinct_experiment_ids()
            .into_iter()
            .map(String::from)
            .collect();
    }

    let started = std::time::Instant::now();
    for id in &experiments {
        eprintln!(">> running {id} ({scale:?} scale)...");
        let exp_started = std::time::Instant::now();
        match run_experiment(id, scale) {
            Some(figs) => {
                for fig in figs {
                    println!("{}", fig.render_text());
                    if chart {
                        println!("{}", fig.render_ascii_chart());
                    }
                    if let Some(dir) = &out_dir {
                        if let Err(e) = fig.write_csv(dir).and_then(|()| fig.write_gnuplot(dir)) {
                            eprintln!("failed to write CSV/gnuplot for {}: {e}", fig.id);
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            None => {
                eprintln!("unknown experiment '{id}'; try `repro list`");
                return ExitCode::FAILURE;
            }
        }
        eprintln!(
            ">> {id} done in {:.1}s (rss {:.0} MB)",
            exp_started.elapsed().as_secs_f64(),
            rss_mb().unwrap_or(0.0)
        );
    }
    eprintln!(">> done in {:.1}s", started.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}

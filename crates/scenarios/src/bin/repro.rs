//! `repro` — regenerate any table or figure of the Halfback paper.
//!
//! ```text
//! repro <experiment>... [--quick | --scale quick|full] [--jobs N] [--shards N]
//!                       [--telemetry FILE] [--out DIR]
//! repro all [--quick] [--out DIR]
//! repro trace [--figure F] [--protocol P] [--seed S] [--flow N] [--bytes B] [--out DIR]
//! repro simcheck [--seed S] [--cases N] [--jobs N] [--out DIR]
//! repro simcheck --case ID [--seed S] [--keep-flows L] [--keep-faults L] [--keep-hops K]
//! repro weather [--scheme P] [--utilization F] [--hours H | --minutes M] [--window S]
//!               [--warmup S] [--checkpoint-every N] [--amplitude F] [--period-hours H]
//!               [--pairs N] [--seed S] [--out DIR] [--resume] [--stop-after-checkpoints K]
//! repro list
//! ```
//!
//! `weather` is the open-loop "internet weather" service mode: a streaming
//! Poisson(+diurnal) arrival driver injects short flows forever, reports
//! steady-state per-window stats to `out/windows.csv`, and checkpoints the
//! complete engine/host/arrival state to `out/weather.ckpt` so a killed run
//! resumes byte-identically (`--resume`). `--stop-after-checkpoints K`
//! exits right after the Kth checkpoint — the deterministic kill the CI
//! restore battery uses.
//!
//! Experiments: fig1 fig2 fig3 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//! fig13 fig14 fig15 fig16 fig17 table1. `--quick` runs the reduced-scale
//! version (the same code paths the test suite and benches exercise);
//! without it the paper-scale parameters run (use `--release`!).
//!
//! `--jobs N` sets the simulation worker-pool size (default: all cores).
//! Results are byte-identical for every N: jobs carry stable keys and are
//! collected in submission order, so `out/*.csv` never depends on thread
//! interleaving.
//!
//! `--shards N` sets the worker-thread count for sharded scenarios
//! (`planetlab100k`), which parallelize *inside* one simulation. The
//! partition count is fixed by the scenario, so output is byte-identical
//! for every N here too.
//!
//! `--telemetry FILE` makes sharded scenarios emit per-window runtime
//! stats as JSONL (schema `halfback-telemetry-v1`). Virtual-time fields
//! are byte-identical across `--shards N`; wall-clock fields live in a
//! nested `"wall"` object that checkers strip.
//!
//! With `--out DIR`, a machine-readable `manifest.json` (schema
//! `halfback-manifest-v1`) is written next to the figures: scale, scheme
//! set, per-experiment event totals, virtual time, sketch memory, and
//! wall time. Machine-varying fields sit on their own lines so
//! `grep -vE '"wall_|"machine"'` leaves a deterministic document.

use netsim::SimDuration;
use scenarios::figures::{distinct_experiment_ids, run_experiment};
use scenarios::harness::JobMetrics;
use scenarios::manifest::{ExperimentEntry, Manifest};
use scenarios::simcheck;
use scenarios::trace::{run_trace, TraceSpec};
use scenarios::weather::{self, WeatherConfig, WeatherRunOptions};
use scenarios::{harness, Protocol, Scale};
use std::path::PathBuf;
use std::process::ExitCode;

/// Resident set size in MB (Linux; `None` elsewhere).
fn rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS"))?;
    Some(line.split_whitespace().nth(1)?.parse::<f64>().ok()? / 1024.0)
}

/// Per-experiment job accounting, printed to stderr only so the files in
/// `--out` stay byte-identical across `--jobs` settings. The caller drains
/// `harness::take_metrics()` once and shares the slice with the manifest.
fn report_jobs(id: &str, wall_s: f64, metrics: &[JobMetrics]) {
    if metrics.is_empty() {
        return;
    }
    let virt_s: f64 = metrics.iter().map(|m| m.virtual_ns as f64 / 1e9).sum();
    let events: u64 = metrics.iter().map(|m| m.events).sum();
    let busy_s: f64 = metrics.iter().map(|m| m.wall.as_secs_f64()).sum();
    let panicked = metrics.iter().filter(|m| !m.ok).count();
    eprintln!(
        ">> {id}: {} jobs on {} workers: wall {wall_s:.1}s, cpu {busy_s:.1}s, \
         virtual {virt_s:.0}s, {events} events{}",
        metrics.len(),
        harness::workers(),
        if panicked > 0 {
            format!(", {panicked} PANICKED")
        } else {
            String::new()
        }
    );
}

/// `repro trace`: replay one (figure, protocol, seed, flow) with the
/// flight recorder on and write `trace.jsonl` + `trace_timeseq.csv` under
/// `--out` (default `out/`).
fn trace_main(args: Vec<String>) -> ExitCode {
    let mut spec = TraceSpec::default();
    let mut out_dir = PathBuf::from("out");
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--figure" | "-f" => match it.next() {
                Some(f) => spec.figure = f,
                None => {
                    eprintln!("--figure needs a name (fig5..fig8 or chaos)");
                    return ExitCode::FAILURE;
                }
            },
            "--protocol" | "-p" => match it.next().as_deref().and_then(Protocol::parse) {
                Some(p) => spec.protocol = p,
                None => {
                    eprintln!("--protocol needs a scheme name (e.g. Halfback, TCP, JumpStart)");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" | "-s" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(s) => spec.seed = s,
                None => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--flow" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(f) if f >= 1 => spec.flow = f,
                _ => {
                    eprintln!("--flow needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--bytes" | "-b" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(b) if b >= 1 => spec.bytes = b,
                _ => {
                    eprintln!("--bytes needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" | "-o" => match it.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown trace flag '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!(
        ">> tracing {} on {} (seed {}, flow {}, {} bytes)...",
        spec.protocol.name(),
        spec.figure,
        spec.seed,
        spec.flow,
        spec.bytes
    );
    let out = match run_trace(&spec) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("trace failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("failed to create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let jsonl_path = out_dir.join("trace.jsonl");
    let csv_path = out_dir.join("trace_timeseq.csv");
    if let Err(e) = std::fs::write(&jsonl_path, &out.jsonl) {
        eprintln!("failed to write {}: {e}", jsonl_path.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&csv_path, &out.timeseq_csv) {
        eprintln!("failed to write {}: {e}", csv_path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "trace: {} events -> {} and {}",
        out.events,
        jsonl_path.display(),
        csv_path.display()
    );
    match out.meet {
        Some(m) => println!(
            "meet point: cursor {} met cum_ack {} of {} paced segments (fraction {:.3}; paper: ~0.5 on a clean path)",
            m.cursor, m.cum_ack, m.batch_segs, m.fraction
        ),
        None => println!("meet point: none (non-Halfback scheme, or ROPR ended by RTO)"),
    }
    ExitCode::SUCCESS
}

/// Parse a `--keep-*` index list: comma-separated indices, or `none` for
/// the empty selection.
fn parse_keep_list(s: &str) -> Option<Vec<usize>> {
    if s == "none" {
        return Some(Vec::new());
    }
    s.split(',')
        .map(|p| p.trim().parse::<usize>().ok())
        .collect()
}

/// `repro simcheck`: run the invariant-fuzzer battery (default), or replay
/// one case — possibly restricted by the `--keep-*` flags an emitted repro
/// command carries. Battery summaries go to stdout and are byte-identical
/// across `--jobs N`; failing-case traces are written under `--out`.
fn simcheck_main(args: Vec<String>) -> ExitCode {
    let mut seed = 42u64;
    let mut cases = simcheck::DEFAULT_CASES;
    let mut single: Option<u64> = None;
    let mut keep_flows: Option<Vec<usize>> = None;
    let mut keep_faults: Option<Vec<usize>> = None;
    let mut keep_hops: Option<usize> = None;
    let mut out_dir = PathBuf::from("out");
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" | "-s" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--cases" | "-n" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => cases = n,
                _ => {
                    eprintln!("--cases needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--case" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(id) => single = Some(id),
                None => {
                    eprintln!("--case needs a case id");
                    return ExitCode::FAILURE;
                }
            },
            "--keep-flows" => match it.next().as_deref().and_then(parse_keep_list) {
                Some(l) => keep_flows = Some(l),
                None => {
                    eprintln!("--keep-flows needs comma-separated indices or 'none'");
                    return ExitCode::FAILURE;
                }
            },
            "--keep-faults" => match it.next().as_deref().and_then(parse_keep_list) {
                Some(l) => keep_faults = Some(l),
                None => {
                    eprintln!("--keep-faults needs comma-separated indices or 'none'");
                    return ExitCode::FAILURE;
                }
            },
            "--keep-hops" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(k) if k >= 1 => keep_hops = Some(k),
                _ => {
                    eprintln!("--keep-hops needs a positive hop count");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" | "-j" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => harness::set_workers(n),
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" | "-o" => match it.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown simcheck flag '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(id) = single {
        let spec = simcheck::generate_case(seed, id);
        let mut sel = simcheck::Selection::full(&spec);
        if let Some(l) = keep_flows {
            sel.flows = l.into_iter().filter(|&i| i < spec.flows.len()).collect();
        }
        if let Some(l) = keep_faults {
            sel.faults = l.into_iter().filter(|&i| i < spec.faults.len()).collect();
        }
        if let Some(k) = keep_hops {
            sel.hops = k.clamp(1, spec.hops.len());
        }
        let out = simcheck::run_single(&spec, &sel);
        println!("{}", out.line);
        if out.failed {
            if let Some(trace) = &out.trace {
                let path = out_dir.join(format!("simcheck_case{id}.trace.jsonl"));
                match std::fs::create_dir_all(&out_dir).and_then(|()| std::fs::write(&path, trace))
                {
                    Ok(()) => eprintln!(">> trace written to {}", path.display()),
                    Err(e) => eprintln!("failed to write {}: {e}", path.display()),
                }
            }
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    eprintln!(
        ">> simcheck: seed {seed}, {cases} cases on {} workers...",
        harness::workers()
    );
    let started = std::time::Instant::now();
    let battery = simcheck::run_battery(seed, cases);
    print!("{}", battery.render_text());
    // Failing cases get their shrunk trace exported; files only, so stdout
    // stays byte-identical across worker counts.
    for c in battery.cases.iter().filter(|c| !c.ok()) {
        if let Some(trace) = &c.trace {
            let path = out_dir.join(format!("simcheck_case{}.trace.jsonl", c.id));
            match std::fs::create_dir_all(&out_dir).and_then(|()| std::fs::write(&path, trace)) {
                Ok(()) => eprintln!(">> case {}: trace written to {}", c.id, path.display()),
                Err(e) => eprintln!("failed to write {}: {e}", path.display()),
            }
        }
    }
    report_jobs(
        "simcheck",
        started.elapsed().as_secs_f64(),
        &harness::take_metrics(),
    );
    if battery.failures() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `repro weather`: run (or resume) the open-loop service mode. Output
/// files (`windows.csv`, `weather.json`) are byte-identical across
/// kill/resume; progress and machine-varying stats go to stderr.
fn weather_main(args: Vec<String>) -> ExitCode {
    let mut cfg = WeatherConfig::default();
    let mut opts = WeatherRunOptions::default();
    let mut out_dir = PathBuf::from("out/weather");
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scheme" | "-p" => match it.next().as_deref().and_then(Protocol::parse) {
                Some(p) => cfg.protocol = p,
                None => {
                    eprintln!("--scheme needs a scheme name (e.g. Halfback, TCP, JumpStart)");
                    return ExitCode::FAILURE;
                }
            },
            "--utilization" | "-u" => match it.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(u) if u > 0.0 => cfg.utilization = u,
                _ => {
                    eprintln!("--utilization needs a positive fraction");
                    return ExitCode::FAILURE;
                }
            },
            "--hours" => match it.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(h) if h > 0.0 => cfg.duration = SimDuration::from_secs_f64(h * 3600.0),
                _ => {
                    eprintln!("--hours needs a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--minutes" => match it.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(m) if m > 0.0 => cfg.duration = SimDuration::from_secs_f64(m * 60.0),
                _ => {
                    eprintln!("--minutes needs a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--window" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(s) if s >= 1 => cfg.window = SimDuration::from_secs(s),
                _ => {
                    eprintln!("--window needs a positive number of seconds");
                    return ExitCode::FAILURE;
                }
            },
            "--warmup" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(s) => cfg.warmup = SimDuration::from_secs(s),
                None => {
                    eprintln!("--warmup needs a number of seconds");
                    return ExitCode::FAILURE;
                }
            },
            "--checkpoint-every" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => cfg.checkpoint_every = n,
                _ => {
                    eprintln!("--checkpoint-every needs a positive window count");
                    return ExitCode::FAILURE;
                }
            },
            "--amplitude" => match it.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(a) if (0.0..1.0).contains(&a) => cfg.amplitude = a,
                _ => {
                    eprintln!("--amplitude needs a fraction in [0, 1)");
                    return ExitCode::FAILURE;
                }
            },
            "--period-hours" => match it.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(h) if h > 0.0 => cfg.period = SimDuration::from_secs_f64(h * 3600.0),
                _ => {
                    eprintln!("--period-hours needs a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--pairs" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cfg.host_pairs = n,
                _ => {
                    eprintln!("--pairs needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" | "-s" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(s) => cfg.seed = s,
                None => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" | "-j" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                // Weather runs one simulation inline; the flag is accepted
                // so callers can pass a uniform command line, and output is
                // byte-identical for every N by construction.
                Some(n) if n >= 1 => harness::set_workers(n),
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" | "-o" => match it.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--resume" => opts.resume = true,
            "--stop-after-checkpoints" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(k) if k >= 1 => opts.stop_after_checkpoints = Some(k),
                _ => {
                    eprintln!("--stop-after-checkpoints needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown weather flag '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!(
        ">> weather: {} at {:.0}% payload utilization (amplitude {:.0}%), {:.2} simulated hours, \
         {}s windows, checkpoint every {} windows{}...",
        cfg.protocol.name(),
        cfg.utilization * 100.0,
        cfg.amplitude * 100.0,
        cfg.duration.as_secs_f64() / 3600.0,
        cfg.window.as_secs_f64(),
        cfg.checkpoint_every,
        if opts.resume { " (resuming)" } else { "" }
    );
    let started = std::time::Instant::now();
    let out = match weather::run_weather(&cfg, &out_dir, &opts) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("weather run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if out.stopped_early {
        eprintln!(
            ">> stopped after checkpoint as requested: {} windows emitted, {} flows started; \
             resume with --resume",
            out.windows, out.started
        );
        return ExitCode::SUCCESS;
    }
    println!(
        "weather: {} started, {} completed, {} aborted, {} censored over {} windows \
         ({:.0} flows/hour)",
        out.started, out.completed, out.aborted, out.censored, out.windows, out.flows_per_hour
    );
    println!(
        "steady-state FCT: mean {:.1} ms, p50 {:.1} ms, p99 {:.1} ms ({} receivers reaped, \
         sketch {} bytes)",
        out.fct_ms.0, out.fct_ms.1, out.fct_ms.2, out.reaped, out.sketch_mem_bytes
    );
    eprintln!(
        ">> done in {:.1}s wall (rss {:.0} MB); outputs in {}",
        started.elapsed().as_secs_f64(),
        rss_mb().unwrap_or(0.0),
        out_dir.display()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace") {
        return trace_main(args.split_off(1));
    }
    if args.first().map(String::as_str) == Some("simcheck") {
        return simcheck_main(args.split_off(1));
    }
    if args.first().map(String::as_str) == Some("weather") {
        return weather_main(args.split_off(1));
    }
    if args.is_empty() {
        eprintln!(
            "usage: repro <experiment>... [--quick] [--scale quick|full] [--jobs N] [--shards N] [--telemetry FILE] [--chart] [--out DIR] | repro all | repro list | repro weather [...]"
        );
        return ExitCode::FAILURE;
    }

    let mut scale = Scale::Full;
    let mut chart = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut experiments: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" | "-q" => scale = Scale::Quick,
            "--scale" => match it.next().as_deref() {
                Some("quick") => scale = Scale::Quick,
                Some("full") => scale = Scale::Full,
                other => {
                    eprintln!("--scale needs 'quick' or 'full', got {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" | "-j" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => harness::set_workers(n),
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--shards" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => harness::set_shards(n),
                _ => {
                    eprintln!("--shards needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--telemetry" => match it.next() {
                Some(path) => harness::set_telemetry_path(Some(PathBuf::from(path))),
                None => {
                    eprintln!("--telemetry needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--chart" | "-c" => chart = true,
            "--out" | "-o" => match it.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "list" => {
                println!("experiments:");
                for id in distinct_experiment_ids() {
                    println!("  {id}");
                }
                println!("aliases: fig1 (with fig12), fig5/fig7/fig8 (with fig6)");
                return ExitCode::SUCCESS;
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = distinct_experiment_ids()
            .into_iter()
            .map(String::from)
            .collect();
    }

    harness::set_progress(true);
    let started = std::time::Instant::now();
    let mut entries: Vec<ExperimentEntry> = Vec::new();
    for id in &experiments {
        eprintln!(
            ">> running {id} ({scale:?} scale, {} workers)...",
            harness::workers()
        );
        let exp_started = std::time::Instant::now();
        let mut figure_ids: Vec<String> = Vec::new();
        match run_experiment(id, scale) {
            Some(figs) => {
                for fig in figs {
                    figure_ids.push(fig.id.to_string());
                    println!("{}", fig.render_text());
                    if chart {
                        println!("{}", fig.render_ascii_chart());
                    }
                    if let Some(dir) = &out_dir {
                        if let Err(e) = fig.write_csv(dir).and_then(|()| fig.write_gnuplot(dir)) {
                            eprintln!("failed to write CSV/gnuplot for {}: {e}", fig.id);
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            None => {
                eprintln!("unknown experiment '{id}'; try `repro list`");
                return ExitCode::FAILURE;
            }
        }
        let wall_s = exp_started.elapsed().as_secs_f64();
        let metrics = harness::take_metrics();
        report_jobs(id, wall_s, &metrics);
        entries.push(ExperimentEntry {
            id: id.clone(),
            figures: figure_ids,
            jobs_run: metrics.len(),
            events: metrics.iter().map(|m| m.events).sum(),
            virtual_ns: metrics.iter().map(|m| m.virtual_ns).sum(),
            sketch_mem_bytes: harness::take_sketch_mem(),
            wall_s,
        });
        eprintln!(
            ">> {id} done in {wall_s:.1}s (rss {:.0} MB)",
            rss_mb().unwrap_or(0.0)
        );
    }
    if let Some(dir) = &out_dir {
        let manifest = Manifest {
            scale: format!("{scale:?}").to_lowercase(),
            schemes: Protocol::ALL.iter().map(|p| p.name().to_string()).collect(),
            experiments: entries,
            jobs: harness::workers(),
            shards: harness::shards(),
            rss_mb: rss_mb().unwrap_or(0.0) as u64,
        };
        let path = dir.join("manifest.json");
        if let Err(e) = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(&path, manifest.render_json()))
        {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(">> manifest written to {}", path.display());
    }
    eprintln!(">> done in {:.1}s", started.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}

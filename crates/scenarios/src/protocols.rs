//! The protocol registry: every scheme the paper evaluates, constructible
//! by name, plus the Table 1 design-space taxonomy.

use baselines::{JumpStart, PathCache, Pcp, ProactiveTcp, ReactiveTcp, Tcp, TcpCache};
use halfback::{Halfback, HalfbackConfig};
use netsim::NodeId;
use transport::strategy::Strategy;

/// Every scheme in the evaluation (§4: "eight schemes"), plus the §5
/// ablation variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Vanilla NewReno TCP, ICW = 2.
    Tcp,
    /// TCP with ICW = 10.
    Tcp10,
    /// Per-path cwnd/ssthresh caching.
    TcpCache,
    /// Tail-loss-probe TCP (\[18\]).
    Reactive,
    /// Duplicate-everything TCP (\[18\]).
    Proactive,
    /// Whole-flow pacing, bursty reactive retransmission (\[25\]).
    JumpStart,
    /// Probe-then-send (\[7\]).
    Pcp,
    /// The paper's contribution (§3).
    Halfback,
    /// §5 ablation: forward-order proactive retransmission.
    HalfbackForward,
    /// §5 ablation: line-rate proactive retransmission.
    HalfbackBurst,
    /// Pacing-only (ROPR disabled) — isolates the startup phase.
    HalfbackNoRopr,
    /// §4.2.4 refinement: 10-segment head-start burst before pacing.
    HalfbackBurstFirst,
    /// §5 future-work knob: two proactive copies per three ACKs (~33%).
    HalfbackRatio23,
    /// §5 future-work knob: one proactive copy per two ACKs (~25%).
    HalfbackRatio12,
}

impl Protocol {
    /// The eight schemes of §4, in the paper's listing order.
    pub const EVALUATED: [Protocol; 8] = [
        Protocol::Tcp,
        Protocol::Tcp10,
        Protocol::TcpCache,
        Protocol::JumpStart,
        Protocol::Pcp,
        Protocol::Reactive,
        Protocol::Proactive,
        Protocol::Halfback,
    ];

    /// The six schemes shown in the PlanetLab figures (PCP's released code
    /// ran separately in the paper; TCP-Cache needs repeat visits).
    pub const PLANETLAB: [Protocol; 6] = [
        Protocol::Halfback,
        Protocol::JumpStart,
        Protocol::Tcp10,
        Protocol::Reactive,
        Protocol::Tcp,
        Protocol::Proactive,
    ];

    /// The Fig. 17 ablation set.
    pub const ABLATION: [Protocol; 7] = [
        Protocol::Proactive,
        Protocol::Tcp,
        Protocol::Tcp10,
        Protocol::HalfbackBurst,
        Protocol::HalfbackForward,
        Protocol::JumpStart,
        Protocol::Halfback,
    ];

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Tcp => "TCP",
            Protocol::Tcp10 => "TCP-10",
            Protocol::TcpCache => "TCP-Cache",
            Protocol::Reactive => "Reactive",
            Protocol::Proactive => "Proactive",
            Protocol::JumpStart => "JumpStart",
            Protocol::Pcp => "PCP",
            Protocol::Halfback => "Halfback",
            Protocol::HalfbackForward => "Halfback-Forward",
            Protocol::HalfbackBurst => "Halfback-Burst",
            Protocol::HalfbackNoRopr => "Halfback-NoROPR",
            Protocol::HalfbackBurstFirst => "Halfback-BurstFirst",
            Protocol::HalfbackRatio23 => "Halfback-2per3",
            Protocol::HalfbackRatio12 => "Halfback-1per2",
        }
    }

    /// Every scheme in registry order — the "scheme set" the run manifest
    /// records so perf trajectories stay comparable across builds.
    pub const ALL: [Protocol; 14] = [
        Protocol::Tcp,
        Protocol::Tcp10,
        Protocol::TcpCache,
        Protocol::Reactive,
        Protocol::Proactive,
        Protocol::JumpStart,
        Protocol::Pcp,
        Protocol::Halfback,
        Protocol::HalfbackForward,
        Protocol::HalfbackBurst,
        Protocol::HalfbackNoRopr,
        Protocol::HalfbackBurstFirst,
        Protocol::HalfbackRatio23,
        Protocol::HalfbackRatio12,
    ];

    /// Parse a name (case-insensitive, hyphens optional).
    pub fn parse(s: &str) -> Option<Protocol> {
        let norm: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_lowercase();
        Protocol::ALL.into_iter().find(|p| {
            p.name()
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_lowercase()
                == norm
        })
    }

    /// Build a sender strategy for a flow on path `key`. `cache` is the
    /// scenario-wide TCP-Cache store (ignored by other schemes).
    pub fn make(self, cache: &PathCache, key: (NodeId, NodeId)) -> Box<dyn Strategy> {
        match self {
            Protocol::Tcp => Box::new(Tcp::new()),
            Protocol::Tcp10 => Box::new(Tcp::with_icw10()),
            Protocol::TcpCache => Box::new(TcpCache::new(cache.clone(), key)),
            Protocol::Reactive => Box::new(ReactiveTcp::new()),
            Protocol::Proactive => Box::new(ProactiveTcp::new()),
            Protocol::JumpStart => Box::new(JumpStart::new()),
            Protocol::Pcp => Box::new(Pcp::new()),
            Protocol::Halfback => Box::new(Halfback::new()),
            Protocol::HalfbackForward => Box::new(Halfback::with_config(HalfbackConfig::forward())),
            Protocol::HalfbackBurst => Box::new(Halfback::with_config(HalfbackConfig::burst())),
            Protocol::HalfbackNoRopr => {
                Box::new(Halfback::with_config(HalfbackConfig::pacing_only()))
            }
            Protocol::HalfbackBurstFirst => {
                Box::new(Halfback::with_config(HalfbackConfig::burst_first()))
            }
            Protocol::HalfbackRatio23 => {
                Box::new(Halfback::with_config(HalfbackConfig::with_ratio(2, 3)))
            }
            Protocol::HalfbackRatio12 => {
                Box::new(Halfback::with_config(HalfbackConfig::with_ratio(1, 2)))
            }
        }
    }

    /// Table 1 row: (startup phase, additional bandwidth, retransmission
    /// direction, retransmission rate).
    pub fn table1_row(self) -> (&'static str, &'static str, &'static str, &'static str) {
        match self {
            Protocol::Tcp | Protocol::Reactive => {
                ("slow start (ICW 2)", "0%", "original order", "ACK-clocked")
            }
            Protocol::Tcp10 => ("slow start (ICW 10)", "0%", "original order", "ACK-clocked"),
            Protocol::TcpCache => ("cached window", "0%", "original order", "ACK-clocked"),
            Protocol::Proactive => ("slow start (ICW 2)", "100%", "original order", "with data"),
            Protocol::JumpStart => (
                "pacing, whole flow in 1 RTT",
                "0%",
                "original order",
                "line rate",
            ),
            Protocol::Pcp => ("probe trains", "probe overhead", "original order", "paced"),
            Protocol::Halfback | Protocol::HalfbackBurstFirst => (
                "pacing, whole flow in 1 RTT",
                "~50%",
                "reverse order",
                "ACK-clocked",
            ),
            Protocol::HalfbackForward => (
                "pacing, whole flow in 1 RTT",
                "~50%",
                "forward order",
                "ACK-clocked",
            ),
            Protocol::HalfbackBurst => (
                "pacing, whole flow in 1 RTT",
                "~50-100%",
                "reverse order",
                "line rate",
            ),
            Protocol::HalfbackNoRopr => ("pacing, whole flow in 1 RTT", "0%", "-", "-"),
            Protocol::HalfbackRatio23 => (
                "pacing, whole flow in 1 RTT",
                "~33%",
                "reverse order",
                "2 per 3 ACKs",
            ),
            Protocol::HalfbackRatio12 => (
                "pacing, whole flow in 1 RTT",
                "~25%",
                "reverse order",
                "1 per 2 ACKs",
            ),
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::path_cache;

    #[test]
    fn names_round_trip_through_parse() {
        for p in [
            Protocol::Tcp,
            Protocol::Tcp10,
            Protocol::TcpCache,
            Protocol::Reactive,
            Protocol::Proactive,
            Protocol::JumpStart,
            Protocol::Pcp,
            Protocol::Halfback,
            Protocol::HalfbackForward,
            Protocol::HalfbackBurst,
        ] {
            assert_eq!(Protocol::parse(p.name()), Some(p), "{p}");
        }
        assert_eq!(Protocol::parse("halfback"), Some(Protocol::Halfback));
        assert_eq!(Protocol::parse("tcp-10"), Some(Protocol::Tcp10));
        assert_eq!(Protocol::parse("nonsense"), None);
    }

    #[test]
    fn make_produces_matching_strategy_names() {
        let cache = path_cache();
        let key = (NodeId(0), NodeId(1));
        for p in Protocol::EVALUATED {
            let s = p.make(&cache, key);
            assert_eq!(s.name(), p.name(), "{p}");
        }
    }

    #[test]
    fn table1_covers_all_evaluated() {
        for p in Protocol::EVALUATED {
            let (startup, bw, dir, rate) = p.table1_row();
            assert!(!startup.is_empty() && !bw.is_empty() && !dir.is_empty() && !rate.is_empty());
        }
    }
}

//! Simulation runners: execute flow schedules on topologies and collect
//! records.

use crate::protocols::Protocol;
use baselines::{path_cache, PathCache};
use netsim::topology::{build_dumbbell, build_path, DumbbellSpec, PathSpec};
use netsim::{FlowId, NodeId, SimDuration, SimTime};
use transport::sender::FlowRecord;
use transport::{Host, TransportSim};

/// Advance `sim` to `until` under the harness watchdog: every
/// `WATCHDOG_STRIDE` events the job's virtual-time/event caps are checked,
/// so a livelocked simulation panics (isolated per cell by the harness)
/// instead of hanging the sweep. With the caps disabled this is exactly
/// `run_until`.
pub fn run_until_checked(sim: &mut TransportSim, until: SimTime) {
    const WATCHDOG_STRIDE: u64 = 4096;
    let (cap_ns, cap_ev) = crate::harness::job_caps();
    if cap_ns == 0 && cap_ev == 0 {
        sim.run_until(until);
        return;
    }
    loop {
        let mut stepped = 0;
        while stepped < WATCHDOG_STRIDE {
            match sim.next_event_time() {
                Some(t) if t <= until => {
                    sim.step();
                    stepped += 1;
                }
                // Horizon reached: clamp the clock like `run_until` does.
                _ => {
                    sim.run_until(until);
                    return;
                }
            }
        }
        crate::harness::check_caps(
            sim.now().saturating_since(SimTime::ZERO).as_nanos(),
            sim.events_processed(),
        );
    }
}

/// Debug-build hygiene check: once every flow has reached a terminal state,
/// drain any in-flight stragglers and assert nothing leaked (live timers,
/// busy links, queued packets). A no-op in release builds and whenever
/// flows were censored (they legitimately still own timers).
fn debug_check_hygiene(sim: &mut TransportSim, censored: usize) {
    if censored != 0 {
        return;
    }
    #[cfg(debug_assertions)]
    {
        sim.run_to_completion(10_000_000);
        sim.assert_drained();
    }
    #[cfg(not(debug_assertions))]
    let _ = sim;
}

/// A flow to launch: arrival time, payload bytes, scheme.
#[derive(Debug, Clone, Copy)]
pub struct FlowPlan {
    /// When the sender opens the connection.
    pub at: SimTime,
    /// Payload bytes.
    pub bytes: u64,
    /// Transmission scheme.
    pub protocol: Protocol,
}

/// Result of a dumbbell run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Completed flows (sender-side records), in completion order per host.
    pub records: Vec<FlowRecord>,
    /// Flows that gave up (max retransmissions / SYN timeout) instead of
    /// completing. Kept out of `records` so FCT statistics only ever see
    /// real completions.
    pub aborted: Vec<FlowRecord>,
    /// Flows started but unfinished at the end of the run.
    pub censored: usize,
    /// Packets dropped at the forward bottleneck queue.
    pub bottleneck_drops: u64,
    /// Bytes carried by the forward bottleneck.
    pub bottleneck_tx_bytes: u64,
    /// Virtual duration of the run.
    pub elapsed: SimDuration,
}

impl RunOutcome {
    /// Records for one scheme only (mixed-protocol runs).
    pub fn records_for(&self, protocol: Protocol) -> Vec<FlowRecord> {
        self.records
            .iter()
            .filter(|r| r.protocol == protocol.name())
            .cloned()
            .collect()
    }
}

/// Options for a dumbbell run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Host pairs in the dumbbell (flows round-robin across pairs).
    pub host_pairs: usize,
    /// Extra virtual time after the last arrival for stragglers to finish.
    pub grace: SimDuration,
    /// Engine seed.
    pub seed: u64,
    /// Record receiver-side delivery traces with this bin width (Fig. 15).
    pub trace_bin_ns: Option<u64>,
    /// Override the minimum RTO on all sender hosts (sensitivity studies).
    pub min_rto: Option<SimDuration>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            host_pairs: 12,
            grace: SimDuration::from_secs(30),
            seed: 1,
            trace_bin_ns: None,
            min_rto: None,
        }
    }
}

/// Everything built for a dumbbell run, pre-flight.
pub struct DumbbellRig {
    /// The simulator.
    pub sim: TransportSim,
    /// Topology ids.
    pub net: netsim::topology::Dumbbell,
    /// TCP-Cache store shared across flows.
    pub cache: PathCache,
    next_flow: u64,
    started: u64,
}

impl DumbbellRig {
    /// Build hosts and wire them into `spec`'s dumbbell.
    pub fn new(spec: &DumbbellSpec, opts: &RunOptions) -> DumbbellRig {
        let mut spec = spec.clone();
        spec.n_left = opts.host_pairs;
        spec.n_right = opts.host_pairs;
        let mut sim = TransportSim::new(opts.seed);
        let net = build_dumbbell(&mut sim, &spec, |_, _| Box::new(Host::new()));
        for i in 0..opts.host_pairs {
            let (h, e) = (net.left_hosts[i], net.left_egress[i]);
            sim.with_node_mut::<Host, _>(h, |host, _| {
                host.wire(h, e);
                host.min_rto = opts.min_rto;
            });
            let (h, e) = (net.right_hosts[i], net.right_egress[i]);
            sim.with_node_mut::<Host, _>(h, |host, _| {
                host.wire(h, e);
                if let Some(bin) = opts.trace_bin_ns {
                    host.timelines = Some(transport::trace::DeliveryTimelines::new(bin));
                }
            });
        }
        DumbbellRig {
            sim,
            net,
            cache: path_cache(),
            next_flow: 1,
            started: 0,
        }
    }

    /// Start a flow on host pair `pair` right now (the simulator clock must
    /// already be at the flow's arrival time).
    pub fn start_flow_now(&mut self, pair: usize, bytes: u64, protocol: Protocol) -> FlowId {
        let flow = FlowId(self.next_flow);
        self.next_flow += 1;
        self.started += 1;
        let src = self.net.left_hosts[pair % self.net.left_hosts.len()];
        let dst = self.net.right_hosts[pair % self.net.right_hosts.len()];
        let strategy = protocol.make(&self.cache, (src, dst));
        self.sim.with_node_mut::<Host, _>(src, |h, core| {
            h.start_flow(core, flow, dst, bytes, strategy)
        });
        flow
    }

    /// Collect the outcome after the run (credits the harness meter with
    /// the virtual time and events this simulation consumed).
    pub fn outcome(&mut self) -> RunOutcome {
        crate::harness::meter_add(
            self.sim.now().saturating_since(SimTime::ZERO).as_nanos(),
            self.sim.events_processed(),
        );
        let elapsed = self.sim.now().saturating_since(SimTime::ZERO);
        let mut records = Vec::new();
        let mut aborted = Vec::new();
        for &h in &self.net.left_hosts {
            for r in self.sim.node_as::<Host>(h).unwrap().completed() {
                if r.outcome.is_completed() {
                    records.push(r.clone());
                } else {
                    aborted.push(r.clone());
                }
            }
        }
        let qs = self.sim.queue_stats(self.net.bottleneck_lr);
        let ls = self.sim.link_stats(self.net.bottleneck_lr);
        let censored = self.started as usize - records.len() - aborted.len();
        debug_check_hygiene(&mut self.sim, censored);
        RunOutcome {
            censored,
            records,
            aborted,
            bottleneck_drops: qs.dropped,
            bottleneck_tx_bytes: ls.tx_bytes,
            elapsed,
        }
    }
}

/// Run a schedule of flows on a dumbbell and collect the outcome.
///
/// Flows round-robin across host pairs; after the last arrival the
/// simulation gets `opts.grace` of drain time, after which unfinished flows
/// count as censored.
pub fn run_dumbbell(spec: &DumbbellSpec, flows: &[FlowPlan], opts: &RunOptions) -> RunOutcome {
    let mut rig = DumbbellRig::new(spec, opts);
    let mut last = SimTime::ZERO;
    for (i, f) in flows.iter().enumerate() {
        debug_assert!(f.at >= last, "flows must be sorted by arrival");
        run_until_checked(&mut rig.sim, f.at);
        rig.start_flow_now(i, f.bytes, f.protocol);
        last = f.at;
    }
    run_until_checked(&mut rig.sim, last + opts.grace);
    rig.outcome()
}

/// Result of a sequential single-path run (see [`run_path_outcome`]).
#[derive(Debug, Clone)]
pub struct PathRunOutcome {
    /// Flows that delivered every byte.
    pub completed: Vec<FlowRecord>,
    /// Flows that gave up (max retransmissions / SYN timeout).
    pub aborted: Vec<FlowRecord>,
    /// Flows still live when the run ended.
    pub censored: usize,
}

/// Run `flows` sequentially-scheduled on one two-host path (PlanetLab /
/// home-network / chaos experiments), separating completed, aborted, and
/// censored flows.
pub fn run_path_outcome(
    spec: &PathSpec,
    flows: &[FlowPlan],
    seed: u64,
    grace: SimDuration,
) -> PathRunOutcome {
    let mut sim = TransportSim::new(seed);
    let net = build_path(&mut sim, spec, |_| Box::new(Host::new()));
    sim.with_node_mut::<Host, _>(net.sender, |h, _| h.wire(net.sender, net.forward));
    sim.with_node_mut::<Host, _>(net.receiver, |h, _| h.wire(net.receiver, net.reverse));
    let cache = path_cache();
    let mut last = SimTime::ZERO;
    for (i, f) in flows.iter().enumerate() {
        run_until_checked(&mut sim, f.at);
        let strategy = f.protocol.make(&cache, (net.sender, net.receiver));
        let flow = FlowId(i as u64 + 1);
        sim.with_node_mut::<Host, _>(net.sender, |h, core| {
            h.start_flow(core, flow, net.receiver, f.bytes, strategy)
        });
        last = f.at;
    }
    run_until_checked(&mut sim, last + grace);
    crate::harness::meter_add(
        sim.now().saturating_since(SimTime::ZERO).as_nanos(),
        sim.events_processed(),
    );
    let host = sim.node_as::<Host>(net.sender).unwrap();
    let (completed, aborted): (Vec<FlowRecord>, Vec<FlowRecord>) = host
        .completed()
        .iter()
        .cloned()
        .partition(|r| r.outcome.is_completed());
    let censored = flows.len() - completed.len() - aborted.len();
    debug_check_hygiene(&mut sim, censored);
    PathRunOutcome {
        completed,
        aborted,
        censored,
    }
}

/// Run `flows` sequentially-scheduled on one two-host path. Returns
/// completed records (a flow that can't finish within `grace` after its
/// start — or that aborts — counts toward the censored/failed tally).
pub fn run_path(
    spec: &PathSpec,
    flows: &[FlowPlan],
    seed: u64,
    grace: SimDuration,
) -> (Vec<FlowRecord>, usize) {
    let out = run_path_outcome(spec, flows, seed, grace);
    (out.completed, out.censored + out.aborted.len())
}

/// Helper: one flow, one path, default grace.
pub fn run_single_path_flow(
    spec: &PathSpec,
    protocol: Protocol,
    bytes: u64,
    seed: u64,
) -> Option<FlowRecord> {
    let (records, _) = run_path(
        spec,
        &[FlowPlan {
            at: SimTime::ZERO,
            bytes,
            protocol,
        }],
        seed,
        SimDuration::from_secs(120),
    );
    records.into_iter().next()
}

/// Convert a workload [`workload::Schedule`] into same-protocol flow plans.
pub fn plans_from_schedule(schedule: &workload::Schedule, protocol: Protocol) -> Vec<FlowPlan> {
    schedule
        .flows
        .iter()
        .map(|&(at, bytes)| FlowPlan {
            at,
            bytes,
            protocol,
        })
        .collect()
}

/// Assign protocols to a schedule alternately (for the Fig. 14 mixed runs):
/// even-indexed flows get `a`, odd-indexed get `b`.
pub fn plans_alternating(schedule: &workload::Schedule, a: Protocol, b: Protocol) -> Vec<FlowPlan> {
    schedule
        .flows
        .iter()
        .enumerate()
        .map(|(i, &(at, bytes))| FlowPlan {
            at,
            bytes,
            protocol: if i % 2 == 0 { a } else { b },
        })
        .collect()
}

/// Id of the left (sender-side) host of pair `i` in a rig built with
/// `opts.host_pairs` pairs — exposed for tests.
pub fn pair_sender(net: &netsim::topology::Dumbbell, i: usize) -> NodeId {
    net.left_hosts[i % net.left_hosts.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::Schedule;

    #[test]
    fn run_dumbbell_completes_light_load() {
        let spec = DumbbellSpec::emulab(1);
        let horizon = SimTime::ZERO + SimDuration::from_secs(30);
        let schedule = Schedule::fixed_size(
            spec.bottleneck_rate,
            100_000,
            0.2,
            horizon,
            netsim::rng::SimRng::new(5),
        );
        let plans = plans_from_schedule(&schedule, Protocol::Halfback);
        let out = run_dumbbell(&spec, &plans, &RunOptions::default());
        assert!(
            out.records.len() >= plans.len() * 9 / 10,
            "most flows complete"
        );
        assert_eq!(out.censored, plans.len() - out.records.len());
        assert!(out.bottleneck_tx_bytes > 0);
    }

    #[test]
    fn mixed_protocols_are_attributed() {
        let spec = DumbbellSpec::emulab(1);
        let horizon = SimTime::ZERO + SimDuration::from_secs(20);
        let schedule = Schedule::fixed_size(
            spec.bottleneck_rate,
            100_000,
            0.2,
            horizon,
            netsim::rng::SimRng::new(6),
        );
        let plans = plans_alternating(&schedule, Protocol::Tcp, Protocol::Halfback);
        let out = run_dumbbell(&spec, &plans, &RunOptions::default());
        let tcp = out.records_for(Protocol::Tcp);
        let hb = out.records_for(Protocol::Halfback);
        assert!(!tcp.is_empty() && !hb.is_empty());
        assert_eq!(tcp.len() + hb.len(), out.records.len());
    }

    #[test]
    fn run_path_sequential_flows() {
        let spec = PathSpec::clean(netsim::Rate::from_mbps(50), SimDuration::from_millis(40));
        let flows: Vec<FlowPlan> = (0..3)
            .map(|i| FlowPlan {
                at: SimTime::ZERO + SimDuration::from_secs(i),
                bytes: 100_000,
                protocol: Protocol::Tcp,
            })
            .collect();
        let (records, censored) = run_path(&spec, &flows, 3, SimDuration::from_secs(60));
        assert_eq!(records.len(), 3);
        assert_eq!(censored, 0);
    }

    #[test]
    fn identical_seed_identical_outcome() {
        let spec = DumbbellSpec::emulab(1);
        let horizon = SimTime::ZERO + SimDuration::from_secs(10);
        let schedule = Schedule::fixed_size(
            spec.bottleneck_rate,
            100_000,
            0.5,
            horizon,
            netsim::rng::SimRng::new(8),
        );
        let plans = plans_from_schedule(&schedule, Protocol::JumpStart);
        let a = run_dumbbell(&spec, &plans, &RunOptions::default());
        let b = run_dumbbell(&spec, &plans, &RunOptions::default());
        assert_eq!(a.records.len(), b.records.len());
        let fa: Vec<u64> = a.records.iter().map(|r| r.fct.as_nanos()).collect();
        let fb: Vec<u64> = b.records.iter().map(|r| r.fct.as_nanos()).collect();
        assert_eq!(fa, fb);
    }
}

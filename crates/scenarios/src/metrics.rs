//! Metrics over flow records: FCT statistics, retransmission counts, the
//! feasible-capacity knee detector used for Figs. 1, 12 and 17, and the
//! [`MetricsRegistry`] harness jobs aggregate in submission order.

use netsim::stats::{Ecdf, LogHistogram, TimeBinned};
use std::collections::BTreeMap;
use transport::sender::FlowRecord;

/// A named bag of counters, histograms, sketches, and timelines.
///
/// Each harness job fills a registry of its own; the parent merges the
/// per-job registries *in submission order* (the harness already returns
/// results that way), so the aggregate is independent of `--jobs N` and of
/// worker scheduling. `BTreeMap` keys give a deterministic render order.
///
/// Two histogram flavors coexist: exact [`Ecdf`]s (every sample retained;
/// budget-capped) for the small per-figure distributions, and
/// [`LogHistogram`] sketches — O(1) memory, exact integer-count merges —
/// which are the default aggregation for flow-scaled scenarios like
/// `planetlab100k`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Ecdf>,
    sketches: BTreeMap<String, LogHistogram>,
    timelines: BTreeMap<String, TimeBinned>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to counter `name` (created at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Record a sample into histogram `name`.
    pub fn observe(&mut self, name: &str, sample: f64) {
        self.hists.entry(name.to_string()).or_default().add(sample);
    }

    /// Record a sample into the quantile sketch `name` — the bounded-memory
    /// path for flow-scaled scenarios.
    pub fn observe_sketch(&mut self, name: &str, sample: f64) {
        self.sketches
            .entry(name.to_string())
            .or_default()
            .add(sample);
    }

    /// Merge a pre-built sketch into sketch `name` (exact: integer bucket
    /// counts).
    pub fn merge_sketch(&mut self, name: &str, sketch: &LogHistogram) {
        self.sketches
            .entry(name.to_string())
            .or_default()
            .merge(sketch);
    }

    /// Sketch `name`, if any samples were recorded.
    pub fn sketch(&self, name: &str) -> Option<&LogHistogram> {
        self.sketches.get(name)
    }

    /// Total estimated footprint of all sketches — the number the run
    /// manifest reports as `sketch_mem_bytes`. Deterministic (a function
    /// of bucket counts, not of allocator behavior).
    pub fn sketch_memory_bytes(&self) -> usize {
        self.sketches.values().map(LogHistogram::memory_bytes).sum()
    }

    /// Record `value` at `t_ns` into timeline `name` (bins of `bin_ns`; the
    /// bin width of an existing timeline wins).
    pub fn timeline(&mut self, name: &str, bin_ns: u64, t_ns: u64, value: f64) {
        self.timelines
            .entry(name.to_string())
            .or_insert_with(|| TimeBinned::new(bin_ns))
            .add(t_ns, value);
    }

    /// Current value of counter `name` (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram `name`, if any samples were recorded.
    pub fn hist(&self, name: &str) -> Option<&Ecdf> {
        self.hists.get(name)
    }

    /// Merge `other` into `self` (counters add, histogram samples append,
    /// timeline bins add element-wise).
    pub fn merge(&mut self, other: MetricsRegistry) {
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, h) in other.hists {
            let mine = self.hists.entry(k).or_default();
            for s in h.samples() {
                mine.add(s);
            }
        }
        for (k, s) in other.sketches {
            self.sketches.entry(k).or_default().merge(&s);
        }
        for (k, t) in other.timelines {
            match self.timelines.get_mut(&k) {
                Some(mine) => mine.merge(&t),
                None => {
                    self.timelines.insert(k, t);
                }
            }
        }
    }

    /// Render every metric as stable `name = value` lines (counters first,
    /// then histogram summaries), for figure/chaos summary blocks.
    pub fn render_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (k, v) in &self.counters {
            out.push(format!("{k} = {v}"));
        }
        for (k, h) in &self.hists {
            let mut h = h.clone();
            match (h.median(), h.mean()) {
                (Some(med), Some(mean)) => out.push(format!(
                    "{k}: n={} mean={mean:.2} p50={med:.2} p99={:.2}",
                    h.len(),
                    h.percentile(99.0).unwrap_or(f64::NAN)
                )),
                _ => out.push(format!("{k}: n=0")),
            }
        }
        for (k, s) in &self.sketches {
            match (s.quantile(50.0), s.mean()) {
                (Some(med), Some(mean)) => out.push(format!(
                    "{k}: n={} mean={mean:.2} p50={med:.2} p99={:.2} p99.9={:.2} (sketch, {} buckets)",
                    s.count(),
                    s.quantile(99.0).unwrap_or(f64::NAN),
                    s.quantile(99.9).unwrap_or(f64::NAN),
                    s.buckets_len(),
                )),
                _ => out.push(format!("{k}: n=0 (sketch)")),
            }
        }
        out
    }

    /// Is anything recorded?
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.hists.is_empty()
            && self.sketches.is_empty()
            && self.timelines.is_empty()
    }
}

/// The number of censored (started-but-unfinished) flows, computed as
/// `started - completed` with the subtraction *checked*: more completions
/// than starts is a counting bug (double-collected records, wrong filter),
/// and the old `saturating_sub` silently reported it as "0 censored".
/// Debug builds assert; release builds surface the discrepancy on stderr
/// and report zero so a long figure run still renders.
pub fn censored_count(started: usize, completed: usize, context: &str) -> usize {
    match started.checked_sub(completed) {
        Some(n) => n,
        None => {
            debug_assert!(
                false,
                "{context}: {completed} completed flows but only {started} started"
            );
            eprintln!(
                "warning: {context}: collected {completed} completion records for \
                 {started} started flows — flow accounting is broken; reporting 0 censored"
            );
            0
        }
    }
}

/// Summary statistics of a set of completed flows.
#[derive(Debug, Clone)]
pub struct FctStats {
    /// Completed flows.
    pub completed: usize,
    /// Flows that were started but never finished within the horizon
    /// (censored — a symptom of collapse).
    pub censored: usize,
    /// Mean FCT in milliseconds.
    pub mean_ms: f64,
    /// Median FCT in milliseconds.
    pub median_ms: f64,
    /// 99th-percentile FCT in milliseconds.
    pub p99_ms: f64,
    /// Mean normal (reactive) retransmissions per flow.
    pub mean_normal_retx: f64,
    /// Mean proactive copies per flow.
    pub mean_proactive_retx: f64,
    /// Mean RTO events per flow.
    pub mean_rtos: f64,
}

impl FctStats {
    /// Compute from records plus the number of censored (unfinished) flows.
    pub fn from_records(records: &[FlowRecord], censored: usize) -> FctStats {
        let mut fct = Ecdf::new();
        let mut nr = 0u64;
        let mut pr = 0u64;
        let mut rto = 0u64;
        for r in records {
            fct.add(r.fct.as_millis_f64());
            nr += r.counters.normal_retx;
            pr += r.counters.proactive_retx;
            rto += r.counters.rto_events;
        }
        let n = records.len().max(1) as f64;
        FctStats {
            completed: records.len(),
            censored,
            mean_ms: fct.mean().unwrap_or(f64::NAN),
            median_ms: fct.median().unwrap_or(f64::NAN),
            p99_ms: fct.percentile(99.0).unwrap_or(f64::NAN),
            mean_normal_retx: nr as f64 / n,
            mean_proactive_retx: pr as f64 / n,
            mean_rtos: rto as f64 / n,
        }
    }

    /// Fraction of started flows that completed.
    pub fn completion_rate(&self) -> f64 {
        let total = self.completed + self.censored;
        if total == 0 {
            return 1.0;
        }
        self.completed as f64 / total as f64
    }
}

/// Build an FCT CDF (milliseconds) from records.
pub fn fct_ecdf(records: &[FlowRecord]) -> Ecdf {
    Ecdf::from_samples(records.iter().map(|r| r.fct.as_millis_f64()).collect())
}

/// Build a CDF of FCT normalized by each flow's own minimum RTT (the
/// Fig. 7 "number of RTTs" view).
pub fn rtt_count_ecdf(records: &[FlowRecord]) -> Ecdf {
    Ecdf::from_samples(
        records
            .iter()
            .filter_map(|r| {
                let rtt = r.min_rtt?.as_millis_f64();
                (rtt > 0.0).then(|| r.fct.as_millis_f64() / rtt)
            })
            .collect(),
    )
}

/// Build a CDF of normal retransmission counts (Fig. 5).
pub fn retx_ecdf(records: &[FlowRecord]) -> Ecdf {
    Ecdf::from_samples(
        records
            .iter()
            .map(|r| r.counters.normal_retx as f64)
            .collect(),
    )
}

/// One point of a utilization sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Offered utilization (0–1).
    pub utilization: f64,
    /// Utilization the bottleneck actually carried, including every
    /// retransmission and proactive copy (0–1; NaN when unknown). The gap
    /// between offered and achieved is each scheme's overhead.
    pub achieved_utilization: f64,
    /// FCT and retransmission statistics at that load.
    pub stats: FctStats,
}

/// Feasible capacity (§4: "the maximum achievable network utilization
/// before the throughput collapses").
///
/// Operationalized as the highest utilization at which *all* hold:
/// * mean FCT is below `max(collapse_factor x low-load mean, floor_ms)` —
///   collapse means both a relative blow-up *and* seconds-scale absolute
///   latency (the region where the paper's Fig. 12 curves shoot up), and
/// * at least `min_completion` of started flows completed within the
///   horizon.
pub fn feasible_capacity(
    points: &[SweepPoint],
    collapse_factor: f64,
    floor_ms: f64,
    min_completion: f64,
) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let base = points
        .iter()
        .map(|p| p.stats.mean_ms)
        .find(|m| m.is_finite())
        .unwrap_or(f64::NAN);
    let threshold = (base * collapse_factor).max(floor_ms);
    let mut feasible = 0.0;
    for p in points {
        let ok = p.stats.mean_ms.is_finite()
            && p.stats.mean_ms <= threshold
            && p.stats.completion_rate() >= min_completion;
        if ok {
            feasible = p.utilization;
        } else {
            break;
        }
    }
    feasible
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{SimDuration, SimTime};
    use transport::sender::Counters;
    use transport::FlowRecord;

    fn rec(fct_ms: u64, normal_retx: u64, min_rtt_ms: u64) -> FlowRecord {
        FlowRecord {
            flow: netsim::FlowId(0),
            protocol: "test",
            bytes: 100_000,
            start: SimTime::ZERO,
            established_at: SimTime::ZERO,
            done_at: SimTime::ZERO + SimDuration::from_millis(fct_ms),
            fct: SimDuration::from_millis(fct_ms),
            counters: Counters {
                normal_retx,
                ..Default::default()
            },
            min_rtt: Some(SimDuration::from_millis(min_rtt_ms)),
            outcome: transport::FlowOutcome::Completed,
        }
    }

    #[test]
    fn registry_sketches_merge_exactly_and_render() {
        // Samples split across three "jobs" must render identically to the
        // all-in-one registry, whatever the merge grouping — the property
        // the --jobs/--shards byte-identity contract leans on.
        let samples: Vec<f64> = (0..3000)
            .map(|i| 0.5 + ((i * 7919) % 7000) as f64)
            .collect();
        let mut whole = MetricsRegistry::new();
        for &x in &samples {
            whole.observe_sketch("fct_ms", x);
        }
        let part = |range: std::ops::Range<usize>| {
            let mut r = MetricsRegistry::new();
            for &x in &samples[range] {
                r.observe_sketch("fct_ms", x);
            }
            r
        };
        let mut merged = part(0..1000);
        merged.merge(part(1000..2000));
        merged.merge(part(2000..3000));
        assert_eq!(whole.render_lines(), merged.render_lines());
        assert!(whole.sketch("fct_ms").is_some());
        assert!(whole.sketch_memory_bytes() > 0);
        assert!(
            whole.sketch_memory_bytes() < 32 * 1024,
            "sketch memory must stay bucket-bounded"
        );
    }

    #[test]
    fn stats_basics() {
        let rs = vec![rec(100, 0, 50), rec(200, 2, 50), rec(300, 4, 50)];
        let s = FctStats::from_records(&rs, 1);
        assert_eq!(s.completed, 3);
        assert_eq!(s.censored, 1);
        assert!((s.mean_ms - 200.0).abs() < 1e-9);
        assert!((s.median_ms - 200.0).abs() < 1e-9);
        assert!((s.mean_normal_retx - 2.0).abs() < 1e-9);
        assert!((s.completion_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn rtt_normalization() {
        let rs = vec![rec(500, 0, 100)];
        let mut e = rtt_count_ecdf(&rs);
        assert!((e.median().unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn feasible_capacity_finds_knee() {
        let mk = |u: f64, mean: f64, censored: usize| SweepPoint {
            utilization: u,
            achieved_utilization: u,
            stats: FctStats {
                completed: 100,
                censored,
                mean_ms: mean,
                median_ms: mean,
                p99_ms: mean,
                mean_normal_retx: 0.0,
                mean_proactive_retx: 0.0,
                mean_rtos: 0.0,
            },
        };
        // Stable until 0.5, collapses after.
        let pts = vec![
            mk(0.05, 200.0, 0),
            mk(0.25, 220.0, 0),
            mk(0.50, 300.0, 1),
            mk(0.55, 2500.0, 40),
            mk(0.60, 4000.0, 80),
        ];
        let fc = feasible_capacity(&pts, 4.0, 800.0, 0.9);
        assert!((fc - 0.50).abs() < 1e-9, "feasible {fc}");
    }

    #[test]
    fn feasible_capacity_requires_completion() {
        let mk = |u: f64, mean: f64, censored: usize| SweepPoint {
            utilization: u,
            achieved_utilization: u,
            stats: FctStats {
                completed: 50,
                censored,
                mean_ms: mean,
                median_ms: mean,
                p99_ms: mean,
                mean_normal_retx: 0.0,
                mean_proactive_retx: 0.0,
                mean_rtos: 0.0,
            },
        };
        // FCT fine, but half the flows never finish: collapse.
        let pts = vec![mk(0.05, 200.0, 0), mk(0.10, 210.0, 50)];
        assert!((feasible_capacity(&pts, 4.0, 800.0, 0.9) - 0.05).abs() < 1e-9);
    }
}

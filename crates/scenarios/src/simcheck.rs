//! `repro simcheck`: a deterministic invariant fuzzer with case shrinking.
//!
//! Each case is a seeded random scenario — a 1–3 hop chain with random
//! rates, delays, buffer sizes (sometimes below one MTU, exercising the
//! oversized-packet admission path), loss models, fault-injection events
//! and a mix of flows across every evaluated scheme — run end-to-end and
//! checked against a battery of oracles:
//!
//! * **conservation** — per-link packet books balance: everything offered is
//!   either dropped (down-window, queue) or serialized, and everything
//!   serialized (plus duplicates) is lost on the wire, blackholed, dropped
//!   as corrupt, or delivered. Queues dequeue exactly what they enqueued.
//! * **transport** — receiver-side byte accounting never exceeds the flow
//!   size ("ghost bytes"), the sender's cumulative ACK never moves
//!   backwards or past the flow end (checked live by the hosts with
//!   [`Host::check_invariants`]), and no packet goes stray.
//! * **terminal** — every flow reaches a terminal state (completed or
//!   aborted) before a generous horizon.
//! * **drain** — once all flows are terminal, the simulation drains clean:
//!   no live timers, busy links, or queued packets.
//! * **delivery** — a flow reported complete by the sender was actually
//!   delivered in full by the receiver, and the receiver never got more
//!   payload than the sender transmitted.
//! * **fct-bound** — no completion time beats the store-and-forward lower
//!   bound (two round trips plus serialization at the most optimistic
//!   bottleneck rate the case's fault steps allow).
//! * **rto-sanity** — RTO counts are bounded, and are exactly zero for a
//!   pristine (loss-free, fault-free, well-buffered) single flow.
//! * **differential** — on pristine RTT-dominated short-flow cases,
//!   Halfback's FCT does not lose to TCP's by more than a small tolerance
//!   (the paper's headline claim, checked as an invariant).
//!
//! On a violation the case is *shrunk*: flows, then fault events, then hops
//! are greedily dropped (highest index first, repeated to a fixed point)
//! while the violation still reproduces, and a one-line `repro simcheck
//! --seed … --case …` command for the minimal case is emitted together
//! with a merged flight-recorder trace. Generation, execution, shrinking
//! and reporting are all pure functions of `(seed, case id)`, so a battery
//! renders byte-identically for any `--jobs N`.

use crate::harness::{self, Job};
use crate::protocols::Protocol;
use crate::runner::run_until_checked;
use crate::trace::merge_streams_jsonl;
use baselines::path_cache;
use netsim::engine::TraceEvent;
use netsim::link::LinkSpec;
use netsim::loss::LossModel;
use netsim::rng::SimRng;
use netsim::router::Router;
use netsim::{FaultSpec, FlowId, LinkId, NodeId, Rate, SimDuration, SimTime};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;
use transport::trace::FlowEventRecord;
use transport::wire::flow_wire_bytes;
use transport::{FlowOutcome, Host, TransportSim};

/// Default battery size (the CI smoke job runs exactly this many cases).
pub const DEFAULT_CASES: u64 = 200;

/// Per-case watchdog caps. A failing case re-runs while shrinking (a few
/// dozen trials at ~500 virtual seconds each), so the virtual-time cap is
/// sized for a full shrink, not a single run; the event cap is what
/// actually catches livelocked simulations.
const CASE_VIRTUAL_CAP_NS: u64 = 40_000 * 1_000_000_000;
const CASE_EVENT_CAP: u64 = 200_000_000;

/// Horizon after the last flow start by which every flow must be terminal.
const HORIZON: SimDuration = SimDuration::from_secs(500);

/// Reverse (ACK-path) links get at least this much buffer so pure-ACK
/// congestion never confounds a forward-path oracle.
const REVERSE_BUFFER_FLOOR: u64 = 96_000;

/// Forward buffers at least this large make a case eligible for the
/// pristine oracles (Halfback's full first-RTT blast fits without loss).
const PRISTINE_BUFFER_BYTES: u64 = 150_000;

/// Rate palette (Mbps) for hops and rate-step faults.
const RATES_MBPS: [u64; 6] = [1, 2, 5, 10, 20, 50];
/// One-way delay palette (ms) for hops and delay-step faults.
const DELAYS_MS: [u64; 6] = [1, 5, 10, 20, 30, 50];
/// Flow-size palette (bytes), weighted toward the paper's short flows.
const FLOW_BYTES: [u64; 8] = [
    1_000, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// One hop of the chain: a forward data link and a clean reverse ACK link.
#[derive(Debug, Clone)]
pub struct HopSpec {
    /// Serialization rate, both directions.
    pub rate_mbps: u64,
    /// One-way propagation delay, both directions.
    pub delay_ms: u64,
    /// Forward drop-tail buffer. Sometimes below one MTU, exercising the
    /// oversized-packet admission path in `DropTail`.
    pub buffer_bytes: u64,
    /// Random wire loss on the forward link.
    pub loss: LossModel,
}

/// A fault-injection event targeting one forward hop. When the shrinker
/// removes hops, events on removed hops remap onto the last remaining one,
/// so shrinking hops never silently discards the fault under test.
#[derive(Debug, Clone)]
pub struct FaultEvent {
    /// Forward hop index the fault applies to.
    pub hop: usize,
    /// What the fault does.
    pub kind: FaultKind,
}

/// The fault vocabulary, mirroring [`FaultSpec`]'s builders. Reordering,
/// duplication and corruption are kept off the ACK path (faults install on
/// forward links only) so the cumulative-ACK monotonicity oracle stays
/// sound.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)] // field names (start_ms, prob, …) are self-describing
pub enum FaultKind {
    /// Link refuses packets during a window.
    Down { start_ms: u64, dur_ms: u64 },
    /// Link swallows packets post-serialization during a window.
    Blackhole { start_ms: u64, dur_ms: u64 },
    /// Extra random per-packet delay (never negative).
    Reorder { prob: f64, max_extra_us: u64 },
    /// Random duplicate deliveries.
    Duplicate { prob: f64 },
    /// Random corruption (dropped at the next node).
    Corrupt { prob: f64 },
    /// Rate change at a point in time.
    RateStep { at_ms: u64, mbps: u64 },
    /// Delay change at a point in time.
    DelayStep { at_ms: u64, ms: u64 },
}

/// One flow of the case's workload.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Start time.
    pub at_ms: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Transmission scheme.
    pub protocol: Protocol,
}

/// A fully generated case: pure function of `(seed, id)`.
#[derive(Debug, Clone)]
pub struct CaseSpec {
    /// Battery seed.
    pub seed: u64,
    /// Case index within the battery.
    pub id: u64,
    /// Engine seed for the simulation itself.
    pub engine_seed: u64,
    /// The chain, sender side first.
    pub hops: Vec<HopSpec>,
    /// Fault events (possibly none).
    pub faults: Vec<FaultEvent>,
    /// Workload, sorted by start time.
    pub flows: Vec<FlowSpec>,
    /// Test hook: deliberately report a conservation violation whenever at
    /// least one flow and one fault are selected, so the shrinker itself
    /// can be exercised end to end (`tests` only; never set by the CLI
    /// battery).
    pub break_conservation: bool,
}

/// Which parts of a case are active: flow/fault indices into the spec and
/// a hop-count prefix. Shrinking only ever edits the selection — the spec
/// is immutable, so the emitted repro command stays a pure `(seed, id,
/// selection)` triple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// Indices into [`CaseSpec::flows`].
    pub flows: Vec<usize>,
    /// Indices into [`CaseSpec::faults`].
    pub faults: Vec<usize>,
    /// Number of leading hops kept (≥ 1).
    pub hops: usize,
}

impl Selection {
    /// Everything in the spec.
    pub fn full(spec: &CaseSpec) -> Selection {
        Selection {
            flows: (0..spec.flows.len()).collect(),
            faults: (0..spec.faults.len()).collect(),
            hops: spec.hops.len(),
        }
    }
}

/// One oracle violation. `kind` is the stable oracle name the shrinker
/// reproduces against; `detail` is the human-readable diagnosis.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Oracle that fired (`conservation`, `transport`, `terminal`, `drain`,
    /// `delivery`, `fct-bound`, `rto-sanity`, `differential`, or the
    /// harness-level `watchdog` / `panic`).
    pub kind: &'static str,
    /// What exactly went wrong.
    pub detail: String,
}

/// Everything one case execution produces.
#[derive(Debug, Default)]
pub struct CaseReport {
    /// Oracle violations in deterministic check order (empty = case ok).
    pub violations: Vec<Violation>,
    /// Flows that completed.
    pub completed: usize,
    /// Flows that gave up.
    pub aborted: usize,
    /// Merged flight-recorder trace (only when requested).
    pub trace: Option<String>,
}

/// Generate case `id` of the battery seeded with `seed`. Deterministic and
/// independent of every other case (`fork_indexed` keyed by id).
pub fn generate_case(seed: u64, id: u64) -> CaseSpec {
    let mut rng = SimRng::new(seed).fork_indexed("simcheck-case", id);

    let n_hops = [1usize, 1, 1, 2, 2, 3][rng.index(6)];
    let hops: Vec<HopSpec> = (0..n_hops)
        .map(|_| {
            let rate_mbps = RATES_MBPS[rng.index(RATES_MBPS.len())];
            let delay_ms = DELAYS_MS[rng.index(DELAYS_MS.len())];
            // Bandwidth-delay product of this hop's RTT share, in bytes.
            let bdp = (rate_mbps * 125_000 * 2 * delay_ms) / 1000;
            let buffer_bytes = match rng.index(10) {
                // Sub-MTU buffer: every data packet takes the
                // oversized-admission path in DropTail.
                0 => 600 + rng.index(900) as u64,
                1 | 2 => (bdp / 2).max(3_000),
                3..=6 => bdp.max(12_000),
                _ => (bdp * 2).max(24_000),
            };
            let loss = match rng.index(10) {
                7 => LossModel::Bernoulli {
                    p: rng.uniform_range(0.001, 0.02),
                },
                8 => LossModel::wifi_bursty(),
                9 => LossModel::Bernoulli { p: 0.05 },
                _ => LossModel::None,
            };
            HopSpec {
                rate_mbps,
                delay_ms,
                buffer_bytes,
                loss,
            }
        })
        .collect();

    let n_faults = rng.index(4);
    let faults: Vec<FaultEvent> = (0..n_faults)
        .map(|_| {
            let hop = rng.index(n_hops);
            let kind = match rng.index(7) {
                0 => FaultKind::Down {
                    start_ms: 100 + rng.index(2900) as u64,
                    dur_ms: 50 + rng.index(450) as u64,
                },
                1 => FaultKind::Blackhole {
                    start_ms: 100 + rng.index(2900) as u64,
                    dur_ms: 50 + rng.index(450) as u64,
                },
                2 => FaultKind::Reorder {
                    prob: rng.uniform_range(0.01, 0.2),
                    max_extra_us: 100 + rng.index(4900) as u64,
                },
                3 => FaultKind::Duplicate {
                    prob: rng.uniform_range(0.01, 0.1),
                },
                4 => FaultKind::Corrupt {
                    prob: rng.uniform_range(0.005, 0.05),
                },
                5 => FaultKind::RateStep {
                    at_ms: 200 + rng.index(2800) as u64,
                    mbps: RATES_MBPS[rng.index(RATES_MBPS.len())],
                },
                _ => FaultKind::DelayStep {
                    at_ms: 200 + rng.index(2800) as u64,
                    ms: DELAYS_MS[rng.index(DELAYS_MS.len())],
                },
            };
            FaultEvent { hop, kind }
        })
        .collect();

    let n_flows = 1 + rng.index(6);
    let mut flows: Vec<FlowSpec> = (0..n_flows)
        .map(|_| FlowSpec {
            at_ms: rng.index(2000) as u64,
            bytes: FLOW_BYTES[rng.index(FLOW_BYTES.len())],
            protocol: Protocol::EVALUATED[rng.index(Protocol::EVALUATED.len())],
        })
        .collect();
    // Stable sort: ties keep draw order, so generation stays deterministic.
    flows.sort_by_key(|f| f.at_ms);

    CaseSpec {
        seed,
        id,
        engine_seed: rng.next_u64(),
        hops,
        faults,
        flows,
        break_conservation: false,
    }
}

fn apply_fault(fs: FaultSpec, kind: &FaultKind) -> FaultSpec {
    let at = |ms: u64| SimTime::ZERO + SimDuration::from_millis(ms);
    match *kind {
        FaultKind::Down { start_ms, dur_ms } => fs.down_window(at(start_ms), at(start_ms + dur_ms)),
        FaultKind::Blackhole { start_ms, dur_ms } => {
            fs.blackhole_window(at(start_ms), at(start_ms + dur_ms))
        }
        FaultKind::Reorder { prob, max_extra_us } => {
            fs.with_reorder(prob, SimDuration::from_micros(max_extra_us))
        }
        FaultKind::Duplicate { prob } => fs.with_duplication(prob),
        FaultKind::Corrupt { prob } => fs.with_corruption(prob),
        FaultKind::RateStep { at_ms, mbps } => fs.rate_step(at(at_ms), Rate::from_mbps(mbps)),
        FaultKind::DelayStep { at_ms, ms } => {
            fs.delay_step(at(at_ms), SimDuration::from_millis(ms))
        }
    }
}

/// A built chain topology.
struct Chain {
    sender: NodeId,
    receiver: NodeId,
    routers: Vec<NodeId>,
    fwd: Vec<LinkId>,
}

/// Build `sender → R1 → … → receiver` over `hops`, with invariant checking
/// enabled on both hosts and flight recorders when `record` is set.
fn build_chain(sim: &mut TransportSim, hops: &[HopSpec], record: bool) -> Chain {
    let make_host = || {
        let mut h = Host::new();
        h.check_invariants = true;
        if record {
            h.enable_recorder(transport::FlightRecorder::DEFAULT_CAP);
        }
        Box::new(h)
    };
    let sender = sim.add_node(make_host());
    let routers: Vec<NodeId> = (1..hops.len())
        .map(|_| sim.add_node(Box::<Router>::default()))
        .collect();
    let receiver = sim.add_node(make_host());
    let mut chain = vec![sender];
    chain.extend(routers.iter().copied());
    chain.push(receiver);

    let (mut fwd, mut rev) = (Vec::new(), Vec::new());
    for (i, h) in hops.iter().enumerate() {
        let rate = Rate::from_mbps(h.rate_mbps);
        let delay = SimDuration::from_millis(h.delay_ms);
        fwd.push(
            sim.add_link(
                LinkSpec::drop_tail(chain[i], chain[i + 1], rate, delay, h.buffer_bytes)
                    .with_loss(h.loss.clone()),
            ),
        );
        rev.push(sim.add_link(LinkSpec::drop_tail(
            chain[i + 1],
            chain[i],
            rate,
            delay,
            h.buffer_bytes.max(REVERSE_BUFFER_FLOOR),
        )));
    }
    sim.node_as_mut::<Host>(sender)
        .unwrap()
        .wire(sender, fwd[0]);
    sim.node_as_mut::<Host>(receiver)
        .unwrap()
        .wire(receiver, rev[hops.len() - 1]);
    for (j, &r) in routers.iter().enumerate() {
        let router = sim.node_as_mut::<Router>(r).unwrap();
        router.add_route(receiver, fwd[j + 1]);
        router.add_route(sender, rev[j]);
    }
    Chain {
        sender,
        receiver,
        routers,
        fwd,
    }
}

/// Store-and-forward FCT floor in nanoseconds: two round trips (handshake,
/// then last byte out and final ACK back) plus serialization at the most
/// optimistic bottleneck rate. Fault steps can *raise* a hop's rate or
/// *lower* its delay mid-run, so the floor uses each hop's best possible
/// values under the selected faults.
fn fct_floor_ns(hops: &[HopSpec], faults: &[&FaultEvent], bytes: u64) -> f64 {
    let mut d_fwd_ns = 0.0;
    let mut d_rev_ns = 0.0;
    let mut bottleneck_mbps = f64::INFINITY;
    for (i, h) in hops.iter().enumerate() {
        let mut min_delay_ms = h.delay_ms as f64;
        let mut max_mbps = h.rate_mbps as f64;
        for f in faults {
            if f.hop.min(hops.len() - 1) != i {
                continue;
            }
            match f.kind {
                FaultKind::DelayStep { ms, .. } => min_delay_ms = min_delay_ms.min(ms as f64),
                FaultKind::RateStep { mbps, .. } => max_mbps = max_mbps.max(mbps as f64),
                _ => {}
            }
        }
        d_fwd_ns += min_delay_ms * 1e6;
        // Reverse links never have faults installed, so they keep base delay.
        d_rev_ns += h.delay_ms as f64 * 1e6;
        bottleneck_mbps = bottleneck_mbps.min(max_mbps);
    }
    let ser_ns = flow_wire_bytes(bytes) as f64 * 8_000.0 / bottleneck_mbps;
    2.0 * (d_fwd_ns + d_rev_ns) + ser_ns
}

/// Run a single pristine flow of `protocol` over `hops` and return its FCT
/// in nanoseconds (None if it did not complete — itself a bug on a clean
/// path, reported by the caller).
fn pristine_fct_ns(
    engine_seed: u64,
    hops: &[HopSpec],
    protocol: Protocol,
    bytes: u64,
) -> Option<u64> {
    let mut sim = TransportSim::new(engine_seed);
    let net = build_chain(&mut sim, hops, false);
    let cache = path_cache();
    let strategy = protocol.make(&cache, (net.sender, net.receiver));
    sim.with_node_mut::<Host, _>(net.sender, |h, core| {
        h.start_flow(core, FlowId(1), net.receiver, bytes, strategy)
    });
    run_until_checked(&mut sim, SimTime::ZERO + SimDuration::from_secs(240));
    sim.run_to_completion(20_000_000);
    harness::meter_add(
        sim.now().saturating_since(SimTime::ZERO).as_nanos(),
        sim.events_processed(),
    );
    let host = sim.node_as::<Host>(net.sender).unwrap();
    host.completed()
        .iter()
        .find(|r| matches!(r.outcome, FlowOutcome::Completed))
        .map(|r| r.fct.as_nanos())
}

/// Execute `spec` restricted to `sel` and run the oracle battery.
pub fn run_case(spec: &CaseSpec, sel: &Selection, record_trace: bool) -> CaseReport {
    let mut report = CaseReport::default();
    let hops = &spec.hops[..sel.hops.clamp(1, spec.hops.len())];
    let kept_faults: Vec<&FaultEvent> = sel.faults.iter().map(|&i| &spec.faults[i]).collect();

    let mut sim = TransportSim::new(spec.engine_seed);
    let net = build_chain(&mut sim, hops, record_trace);

    // Install selected faults, remapped onto the surviving hops and merged
    // per forward link.
    for (i, &link) in net.fwd.iter().enumerate() {
        let mut fs = FaultSpec::none();
        for f in &kept_faults {
            if f.hop.min(hops.len() - 1) == i {
                fs = apply_fault(fs, &f.kind);
            }
        }
        if !fs.is_noop() {
            sim.set_link_faults(link, fs);
        }
    }

    let wire: Rc<RefCell<Vec<(u64, TraceEvent)>>> = Rc::new(RefCell::new(Vec::new()));
    if record_trace {
        let w2 = wire.clone();
        sim.set_tracer(Box::new(move |at, ev| {
            w2.borrow_mut().push((at.as_nanos(), *ev));
        }));
    }

    // Start the selected flows in schedule order. Flow ids are
    // 1 + original index, so a shrunk case keeps its flow identities.
    let cache = path_cache();
    let mut last = SimTime::ZERO;
    for &fi in &sel.flows {
        let f = &spec.flows[fi];
        let at = SimTime::ZERO + SimDuration::from_millis(f.at_ms);
        run_until_checked(&mut sim, at);
        let strategy = f.protocol.make(&cache, (net.sender, net.receiver));
        sim.with_node_mut::<Host, _>(net.sender, |h, core| {
            h.start_flow(core, FlowId(fi as u64 + 1), net.receiver, f.bytes, strategy)
        });
        last = at;
    }
    run_until_checked(&mut sim, last + HORIZON);

    // Oracle: all flows terminal by the horizon.
    let unfinished = sim.node_as::<Host>(net.sender).unwrap().active_senders();
    if unfinished > 0 {
        report.violations.push(Violation {
            kind: "terminal",
            detail: format!(
                "{unfinished} flow(s) still not terminal {}s after the last start",
                HORIZON.as_secs_f64()
            ),
        });
    }
    sim.run_to_completion(50_000_000);
    harness::meter_add(
        sim.now().saturating_since(SimTime::ZERO).as_nanos(),
        sim.events_processed(),
    );

    // Oracle: clean drain (only meaningful once everything is terminal —
    // an unfinished flow legitimately still owns timers).
    if unfinished == 0 {
        let hygiene = sim.hygiene_report();
        if !hygiene.is_clean() {
            report.violations.push(Violation {
                kind: "drain",
                detail: format!("simulation did not drain: {hygiene}"),
            });
        }
    }

    // Oracle: per-link conservation, offer side and wire side.
    for l in 0..sim.link_count() {
        let link = LinkId(l as u32);
        let s = sim.link_stats(link);
        let q = sim.queue_stats(link);
        if s.offered != s.down_dropped + q.dropped + s.tx_packets {
            report.violations.push(Violation {
                kind: "conservation",
                detail: format!(
                    "link {l}: offered {} != down-dropped {} + queue-dropped {} + tx {}",
                    s.offered, s.down_dropped, q.dropped, s.tx_packets
                ),
            });
        }
        if q.enqueued != q.dequeued {
            report.violations.push(Violation {
                kind: "conservation",
                detail: format!(
                    "link {l}: queue enqueued {} != dequeued {} after drain",
                    q.enqueued, q.dequeued
                ),
            });
        }
        if s.tx_packets + s.duplicated
            != s.wire_lost + s.blackholed + s.corrupt_dropped + s.delivered
        {
            report.violations.push(Violation {
                kind: "conservation",
                detail: format!(
                    "link {l}: tx {} + dup {} != wire-lost {} + blackholed {} + corrupt {} + delivered {}",
                    s.tx_packets, s.duplicated, s.wire_lost, s.blackholed, s.corrupt_dropped,
                    s.delivered
                ),
            });
        }
    }

    // Oracle: live transport invariants (ghost bytes, ACK monotonicity)
    // plus routing/stray hygiene.
    for (name, node) in [("sender", net.sender), ("receiver", net.receiver)] {
        let host = sim.node_as::<Host>(node).unwrap();
        for b in host.invariant_breaches() {
            report.violations.push(Violation {
                kind: "transport",
                detail: format!("{name}: {b}"),
            });
        }
        if host.stray_packets > 0 {
            report.violations.push(Violation {
                kind: "transport",
                detail: format!("{name}: {} stray packet(s)", host.stray_packets),
            });
        }
    }
    for &r in &net.routers {
        let router = sim.node_as::<Router>(r).unwrap();
        if router.unroutable() > 0 {
            report.violations.push(Violation {
                kind: "transport",
                detail: format!(
                    "router {}: {} unroutable packet(s)",
                    r.0,
                    router.unroutable()
                ),
            });
        }
    }

    // Pristine cases: no kept faults, no random loss, buffers comfortably
    // above the first-RTT blast. These admit much sharper oracles.
    let pristine = kept_faults.is_empty()
        && hops
            .iter()
            .all(|h| matches!(h.loss, LossModel::None) && h.buffer_bytes >= PRISTINE_BUFFER_BYTES);

    // Per-flow oracles over the sender's completion records.
    let records: Vec<transport::FlowRecord> = sim
        .node_as::<Host>(net.sender)
        .unwrap()
        .completed()
        .to_vec();
    let receiver_host = sim.node_as::<Host>(net.receiver).unwrap();
    for rec in &records {
        let flow = rec.flow;
        if rec.counters.rto_events > 64 {
            report.violations.push(Violation {
                kind: "rto-sanity",
                detail: format!("flow {flow}: {} RTO events", rec.counters.rto_events),
            });
        }
        match rec.outcome {
            FlowOutcome::Completed => {
                report.completed += 1;
                match receiver_host.receiver(flow) {
                    Some(rc) => {
                        if rc.complete_at.is_none() || rc.delivered_bytes != rec.bytes {
                            report.violations.push(Violation {
                                kind: "delivery",
                                detail: format!(
                                    "flow {flow}: sender reports completion but receiver has \
                                     {}/{} bytes (complete: {})",
                                    rc.delivered_bytes,
                                    rec.bytes,
                                    rc.complete_at.is_some()
                                ),
                            });
                        }
                    }
                    None => report.violations.push(Violation {
                        kind: "delivery",
                        detail: format!("flow {flow}: completed with no receiver-side state"),
                    }),
                }
                let floor = fct_floor_ns(hops, &kept_faults, rec.bytes);
                if (rec.fct.as_nanos() as f64) < floor * 0.99 {
                    report.violations.push(Violation {
                        kind: "fct-bound",
                        detail: format!(
                            "flow {flow}: FCT {:.3}ms beats the store-and-forward floor {:.3}ms",
                            rec.fct.as_nanos() as f64 / 1e6,
                            floor / 1e6
                        ),
                    });
                }
                if pristine && sel.flows.len() == 1 && rec.counters.rto_events > 0 {
                    report.violations.push(Violation {
                        kind: "rto-sanity",
                        detail: format!(
                            "flow {flow}: {} RTO event(s) on a pristine single-flow case",
                            rec.counters.rto_events
                        ),
                    });
                }
            }
            FlowOutcome::Aborted(_) => {
                report.aborted += 1;
                if pristine {
                    report.violations.push(Violation {
                        kind: "delivery",
                        detail: format!("flow {flow}: aborted on a pristine case"),
                    });
                }
            }
        }
    }

    // Differential oracle: on pristine, RTT-dominated short-flow cases,
    // Halfback must not lose to TCP beyond a small tolerance — the paper's
    // claim, demoted to an invariant. Serialization-dominated or large
    // flows are excluded: there the proactive tail legitimately costs
    // extra serialization.
    if pristine && sel.flows.len() == 1 {
        let bytes = spec.flows[sel.flows[0]].bytes.min(100_000);
        let rtt_ns = 2.0 * hops.iter().map(|h| h.delay_ms as f64 * 1e6).sum::<f64>();
        let bottleneck = hops.iter().map(|h| h.rate_mbps).min().unwrap() as f64;
        let ser_ns = flow_wire_bytes(bytes) as f64 * 8_000.0 / bottleneck;
        if ser_ns <= rtt_ns {
            let hb = pristine_fct_ns(spec.engine_seed, hops, Protocol::Halfback, bytes);
            let tcp = pristine_fct_ns(spec.engine_seed, hops, Protocol::Tcp, bytes);
            match (hb, tcp) {
                (Some(hb), Some(tcp)) => {
                    if hb as f64 > tcp as f64 * 1.10 + 10e6 {
                        report.violations.push(Violation {
                            kind: "differential",
                            detail: format!(
                                "Halfback FCT {:.3}ms > TCP {:.3}ms on a clean \
                                 RTT-dominated path ({bytes} bytes)",
                                hb as f64 / 1e6,
                                tcp as f64 / 1e6
                            ),
                        });
                    }
                }
                _ => report.violations.push(Violation {
                    kind: "differential",
                    detail: format!(
                        "a clean-path reference flow failed to complete \
                         (halfback: {}, tcp: {})",
                        hb.is_some(),
                        tcp.is_some()
                    ),
                }),
            }
        }
    }

    // Test hook: a deliberately broken "conservation" verdict that needs at
    // least one flow and one fault to reproduce, so the shrinker has a
    // known fixed point to converge to.
    if spec.break_conservation && !sel.flows.is_empty() && !sel.faults.is_empty() {
        report.violations.push(Violation {
            kind: "conservation",
            detail: "deliberate conservation break (test hook)".to_string(),
        });
    }

    if record_trace {
        let recorded = |node: NodeId| -> Vec<FlowEventRecord> {
            sim.node_as::<Host>(node)
                .and_then(|h| h.recorder())
                .map(|r| r.events().copied().collect())
                .unwrap_or_default()
        };
        let snd = recorded(net.sender);
        let rcv = recorded(net.receiver);
        let (jsonl, _) = merge_streams_jsonl(&wire.borrow(), &snd, &rcv);
        report.trace = Some(jsonl);
    }
    report
}

/// Greedily shrink `sel` while a violation of `kind` still reproduces:
/// flows (highest index first), then fault events, then hops, repeated to
/// a fixed point. Every trial is a full deterministic re-run, so the
/// result is a pure function of `(spec, sel, kind)`.
pub fn shrink_case(spec: &CaseSpec, sel: Selection, kind: &'static str) -> Selection {
    let reproduces = |s: &Selection| {
        run_case(spec, s, false)
            .violations
            .iter()
            .any(|v| v.kind == kind)
    };
    let mut sel = sel;
    loop {
        let mut changed = false;
        let mut i = sel.flows.len();
        while i > 0 {
            i -= 1;
            let mut cand = sel.clone();
            cand.flows.remove(i);
            if reproduces(&cand) {
                sel = cand;
                changed = true;
            }
        }
        let mut i = sel.faults.len();
        while i > 0 {
            i -= 1;
            let mut cand = sel.clone();
            cand.faults.remove(i);
            if reproduces(&cand) {
                sel = cand;
                changed = true;
            }
        }
        while sel.hops > 1 {
            let cand = Selection {
                hops: sel.hops - 1,
                ..sel.clone()
            };
            if !reproduces(&cand) {
                break;
            }
            sel = cand;
            changed = true;
        }
        if !changed {
            return sel;
        }
    }
}

fn fmt_indices(xs: &[usize]) -> String {
    if xs.is_empty() {
        return "none".to_string();
    }
    xs.iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// The one-line reproduction command for a (possibly shrunk) case. Keep
/// flags are omitted when the selection is the full spec.
pub fn repro_command(spec: &CaseSpec, sel: &Selection) -> String {
    let mut cmd = format!("repro simcheck --seed {} --case {}", spec.seed, spec.id);
    if sel.flows.len() != spec.flows.len() {
        let _ = write!(cmd, " --keep-flows {}", fmt_indices(&sel.flows));
    }
    if sel.faults.len() != spec.faults.len() {
        let _ = write!(cmd, " --keep-faults {}", fmt_indices(&sel.faults));
    }
    if sel.hops != spec.hops.len() {
        let _ = write!(cmd, " --keep-hops {}", sel.hops);
    }
    cmd
}

/// Outcome of one battery case, in a render-ready form.
#[derive(Debug)]
pub struct CaseSummary {
    /// Case index.
    pub id: u64,
    /// First violation's oracle kind (None = case passed).
    pub kind: Option<&'static str>,
    /// First violation's detail (empty when passed).
    pub detail: String,
    /// Reproduction command for the shrunk case.
    pub command: Option<String>,
    /// Flight-recorder trace of the shrunk failing case.
    pub trace: Option<String>,
    /// Flows completed / aborted on the full case.
    pub completed: usize,
    /// See `completed`.
    pub aborted: usize,
}

impl CaseSummary {
    /// Did every oracle pass?
    pub fn ok(&self) -> bool {
        self.kind.is_none()
    }
}

/// A full battery run.
#[derive(Debug)]
pub struct Battery {
    /// Battery seed.
    pub seed: u64,
    /// Per-case outcomes, in case order.
    pub cases: Vec<CaseSummary>,
}

impl Battery {
    /// Cases that failed an oracle (including watchdog trips and panics).
    pub fn failures(&self) -> usize {
        self.cases.iter().filter(|c| !c.ok()).count()
    }

    /// Watchdog trips alone (livelocked cases killed by the caps).
    pub fn watchdog_trips(&self) -> usize {
        self.cases
            .iter()
            .filter(|c| c.kind == Some("watchdog"))
            .count()
    }

    /// Deterministic text summary. The final `invariant violations:` /
    /// `watchdog trips:` lines are the CI smoke contract
    /// (`ci/check_simcheck.sh` greps them), mirroring the chaos sweep.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let n = self.cases.len();
        let ok = self.cases.iter().filter(|c| c.ok()).count();
        let completed: usize = self.cases.iter().map(|c| c.completed).sum();
        let aborted: usize = self.cases.iter().map(|c| c.aborted).sum();
        let _ = writeln!(
            out,
            "== simcheck — seed {}, {} randomized cases",
            self.seed, n
        );
        let _ = writeln!(
            out,
            "   * {ok}/{n} cases ok; flows: {completed} completed, {aborted} gave up"
        );
        for c in self.cases.iter().filter(|c| !c.ok()) {
            let _ = writeln!(
                out,
                "case {}: FAILED [{}] {}",
                c.id,
                c.kind.unwrap_or("unknown"),
                c.detail
            );
            if let Some(cmd) = &c.command {
                let _ = writeln!(out, "   repro: {cmd}");
            }
        }
        let trips = self.watchdog_trips();
        let _ = writeln!(out, "invariant violations: {}", self.failures() - trips);
        let _ = writeln!(out, "watchdog trips: {trips}");
        out
    }
}

fn battery_jobs(
    seed: u64,
    n_cases: u64,
    break_conservation: bool,
) -> Vec<Job<'static, CaseSummary>> {
    (0..n_cases)
        .map(|id| {
            Job::new(format!("case{id:04}"), move || {
                let mut spec = generate_case(seed, id);
                spec.break_conservation = break_conservation;
                let sel = Selection::full(&spec);
                let report = run_case(&spec, &sel, false);
                match report.violations.first() {
                    None => CaseSummary {
                        id,
                        kind: None,
                        detail: String::new(),
                        command: None,
                        trace: None,
                        completed: report.completed,
                        aborted: report.aborted,
                    },
                    Some(v0) => {
                        let kind = v0.kind;
                        let first_detail = v0.detail.clone();
                        let shrunk = shrink_case(&spec, sel, kind);
                        let traced = run_case(&spec, &shrunk, true);
                        let detail = traced
                            .violations
                            .iter()
                            .find(|v| v.kind == kind)
                            .map(|v| v.detail.clone())
                            .unwrap_or(first_detail);
                        CaseSummary {
                            id,
                            kind: Some(kind),
                            detail,
                            command: Some(repro_command(&spec, &shrunk)),
                            trace: traced.trace,
                            completed: report.completed,
                            aborted: report.aborted,
                        }
                    }
                }
            })
        })
        .collect()
}

fn collect_battery(seed: u64, results: Vec<Result<CaseSummary, harness::JobPanic>>) -> Battery {
    let cases = results
        .into_iter()
        .enumerate()
        .map(|(id, r)| match r {
            Ok(c) => c,
            Err(p) => {
                let id = id as u64;
                let kind = if p.message.contains("watchdog") {
                    "watchdog"
                } else {
                    "panic"
                };
                CaseSummary {
                    id,
                    kind: Some(kind),
                    detail: p.message,
                    command: Some(format!("repro simcheck --seed {seed} --case {id}")),
                    trace: None,
                    completed: 0,
                    aborted: 0,
                }
            }
        })
        .collect();
    Battery { seed, cases }
}

/// Run `n_cases` cases on the configured worker pool. The returned battery
/// (and its rendered text) is byte-identical for any worker count.
pub fn run_battery(seed: u64, n_cases: u64) -> Battery {
    run_battery_inner(seed, n_cases, false, None)
}

/// [`run_battery`] with an explicit worker count (determinism tests).
pub fn run_battery_on(seed: u64, n_cases: u64, n_workers: usize) -> Battery {
    run_battery_inner(seed, n_cases, false, Some(n_workers))
}

/// Test hook: run a battery whose every case carries the deliberate
/// conservation break, end to end through shrinking and reporting.
pub fn run_breaking_battery(seed: u64, n_cases: u64) -> Battery {
    run_battery_inner(seed, n_cases, true, None)
}

fn run_battery_inner(
    seed: u64,
    n_cases: u64,
    break_conservation: bool,
    n_workers: Option<usize>,
) -> Battery {
    let (prev_ns, prev_ev) = harness::job_caps();
    harness::set_job_caps(CASE_VIRTUAL_CAP_NS, CASE_EVENT_CAP);
    let jobs = battery_jobs(seed, n_cases, break_conservation);
    let results = match n_workers {
        Some(n) => harness::run_jobs_on(jobs, n),
        None => harness::run_jobs(jobs),
    };
    harness::set_job_caps(prev_ns, prev_ev);
    collect_battery(seed, results)
}

/// Outcome of a single-case run (`repro simcheck --case N`).
#[derive(Debug)]
pub struct SingleOutcome {
    /// The verdict line (`case N: ok …` / `case N: FAILED [kind] …`).
    pub line: String,
    /// Merged flight-recorder trace of the run.
    pub trace: Option<String>,
    /// True when any oracle fired.
    pub failed: bool,
}

/// Run one case under a selection (the `--keep-*` flags of an emitted
/// repro command) with the flight recorder on, and render the verdict.
/// Re-running a shrunk command reproduces the battery's verdict exactly:
/// both are the same pure `(spec, selection)` run.
pub fn run_single(spec: &CaseSpec, sel: &Selection) -> SingleOutcome {
    let report = run_case(spec, sel, true);
    match report.violations.first() {
        None => SingleOutcome {
            line: format!(
                "case {}: ok ({} completed, {} gave up)",
                spec.id, report.completed, report.aborted
            ),
            trace: report.trace,
            failed: false,
        },
        Some(v) => SingleOutcome {
            line: format!("case {}: FAILED [{}] {}", spec.id, v.kind, v.detail),
            trace: report.trace,
            failed: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Find a case id whose generated spec has at least one fault and two
    /// flows and two hops — a meaty target for the shrinker test.
    fn meaty_case(seed: u64) -> CaseSpec {
        (0..500)
            .map(|id| generate_case(seed, id))
            .find(|s| s.faults.len() >= 2 && s.flows.len() >= 3 && s.hops.len() >= 2)
            .expect("500 cases must contain a meaty one")
    }

    #[test]
    fn generation_is_deterministic_and_varied() {
        let a = generate_case(7, 3);
        let b = generate_case(7, 3);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // Different ids diverge.
        let c = generate_case(7, 4);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
        // The generator covers multi-hop, faulted, and sub-MTU shapes.
        let specs: Vec<CaseSpec> = (0..64).map(|id| generate_case(7, id)).collect();
        assert!(specs.iter().any(|s| s.hops.len() > 1));
        assert!(specs.iter().any(|s| !s.faults.is_empty()));
        assert!(specs
            .iter()
            .any(|s| s.hops.iter().any(|h| h.buffer_bytes < 1500)));
        assert!(specs.iter().any(|s| s.flows.len() > 1));
    }

    #[test]
    fn oracles_pass_on_a_small_sample() {
        for id in 0..6 {
            let spec = generate_case(42, id);
            let sel = Selection::full(&spec);
            let report = run_case(&spec, &sel, false);
            assert!(
                report.violations.is_empty(),
                "case {id} violated: {:?}",
                report.violations
            );
            assert!(report.completed + report.aborted >= 1);
        }
    }

    #[test]
    fn run_case_is_deterministic() {
        let spec = generate_case(11, 2);
        let sel = Selection::full(&spec);
        let a = run_case(&spec, &sel, true);
        let b = run_case(&spec, &sel, true);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.violations.len(), b.violations.len());
    }

    /// Satellite: the shrinker must reduce a known violation to a minimal
    /// deterministic selection. The deliberate conservation break needs one
    /// flow and one fault, so the fixed point is exactly (1 flow, 1 fault,
    /// 1 hop).
    #[test]
    fn shrinker_minimizes_a_seeded_violation() {
        let mut spec = meaty_case(1234);
        spec.break_conservation = true;
        let sel = Selection::full(&spec);
        let report = run_case(&spec, &sel, false);
        let v = report
            .violations
            .iter()
            .find(|v| v.kind == "conservation")
            .expect("the break hook must fire on the full case");
        assert!(v.detail.contains("deliberate"));

        let shrunk = shrink_case(&spec, sel.clone(), "conservation");
        assert!(shrunk.flows.len() <= 1, "flows not minimized: {shrunk:?}");
        assert!(shrunk.faults.len() <= 1, "faults not minimized: {shrunk:?}");
        assert!(shrunk.hops <= 2, "hops not minimized: {shrunk:?}");
        // Shrinking is deterministic: a second pass lands on the same point.
        assert_eq!(shrunk, shrink_case(&spec, sel, "conservation"));
        // The shrunk case still reproduces the verdict, and its emitted
        // command names the kept pieces.
        let re = run_case(&spec, &shrunk, false);
        assert!(re.violations.iter().any(|v| v.kind == "conservation"));
        let cmd = repro_command(&spec, &shrunk);
        assert!(cmd.contains("--keep-flows"), "unexpected command: {cmd}");
        assert!(cmd.contains("--keep-faults"), "unexpected command: {cmd}");
    }

    /// Re-running the shrunk selection (what the printed `--keep-*` flags
    /// encode) reproduces the same oracle verdict via `run_single`.
    #[test]
    fn shrunk_command_reproduces_the_verdict() {
        let mut spec = meaty_case(99);
        spec.break_conservation = true;
        let shrunk = shrink_case(&spec, Selection::full(&spec), "conservation");
        let out = run_single(&spec, &shrunk);
        assert!(out.failed);
        assert!(out.line.contains("FAILED [conservation]"), "{}", out.line);
        assert!(out.trace.is_some());
        let again = run_single(&spec, &shrunk);
        assert_eq!(out.line, again.line);
        assert_eq!(out.trace, again.trace);
    }

    #[test]
    fn repro_command_round_trips() {
        let spec = generate_case(5, 0);
        let full = Selection::full(&spec);
        assert_eq!(
            repro_command(&spec, &full),
            "repro simcheck --seed 5 --case 0"
        );
        let sel = Selection {
            flows: vec![],
            faults: full.faults.clone(),
            hops: 1,
        };
        let cmd = repro_command(&spec, &sel);
        assert!(cmd.contains("--keep-flows none"), "{cmd}");
        if spec.hops.len() > 1 {
            assert!(cmd.contains("--keep-hops 1"), "{cmd}");
        }
    }

    #[test]
    fn fct_floor_uses_best_case_fault_steps() {
        let hops = vec![HopSpec {
            rate_mbps: 1,
            delay_ms: 50,
            buffer_bytes: 200_000,
            loss: LossModel::None,
        }];
        let base = fct_floor_ns(&hops, &[], 10_000);
        // A rate step up to 50 Mbps makes the best case much faster…
        let step = FaultEvent {
            hop: 0,
            kind: FaultKind::RateStep {
                at_ms: 10,
                mbps: 50,
            },
        };
        let with_step = fct_floor_ns(&hops, &[&step], 10_000);
        assert!(with_step < base);
        // …and a delay step down shrinks the floor further.
        let dstep = FaultEvent {
            hop: 0,
            kind: FaultKind::DelayStep { at_ms: 10, ms: 1 },
        };
        let both = fct_floor_ns(&hops, &[&step, &dstep], 10_000);
        assert!(both < with_step);
    }
}

//! Open-loop "internet weather" service mode (`repro weather`).
//!
//! Every figure runner in this crate is *closed-loop at the harness level*:
//! it materializes the full arrival schedule up front, runs the simulation
//! to quiescence, and keeps a [`FlowRecord`] per flow. That shape cannot
//! answer the paper's service question — does a scheme stay well-behaved
//! when short flows arrive forever? — because memory grows with total flow
//! count and the run has no notion of "still going".
//!
//! This module is the open-loop counterpart. A streaming arrival process
//! ([`workload::DiurnalPoisson`] — Poisson with a sinusoidal daily rate
//! envelope) injects flows lazily, one `run_until` at a time; hosts run
//! with record retention off and publish completions to a bounded bus the
//! driver drains every virtual window; receiver endpoints are reaped once
//! their flows are safely beyond the sender's worst-case give-up time. The
//! result: a 15 Mbps-class dumbbell sustains millions of flows per
//! simulated hour for a simulated day in O(windows + active flows) memory,
//! with steady-state FCT/abort/retransmit stats reported per window
//! through a [`WindowedSketch`].
//!
//! The second half of the mode is *checkpoint/restore*: at window
//! boundaries the driver serializes the full dynamic state — engine
//! (clock, events, in-flight packets, RNG, timer slots, link queues),
//! every host (senders, receivers, timer routes, per-scheme strategy
//! state), the shared TCP-Cache path cache, the arrival process, and its
//! own accounting — into a versioned snapshot, written atomically. A
//! killed run resumes from the latest checkpoint and produces **byte
//! identical** output files to an uninterrupted run: structure is rebuilt
//! from configuration (validated against a fingerprint in the snapshot;
//! drift is refused), dynamic state is overlaid, and `windows.csv` is
//! truncated to the byte offset recorded in the checkpoint before
//! appending continues.

use crate::protocols::Protocol;
use crate::runner::run_until_checked;
use baselines::{load_path_cache, path_cache, save_path_cache, PathCache};
use netsim::snap::{SnapError, SnapReader, SnapWriter};
use netsim::stats::{LogHistogram, WindowedSketch};
use netsim::topology::{build_dumbbell, Dumbbell, DumbbellSpec};
use netsim::{FlowId, SimDuration, SimTime};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;
use transport::{completion_bus, CompletionBus, Host, TransportSim};
use workload::{interarrival_for_utilization, DiurnalPoisson};

/// Checkpoint file magic: "HBWR" (HalfBack WeatheR).
const WEATHER_MAGIC: u32 = 0x4842_5752;
/// Bump on ANY layout change to the weather checkpoint (the engine and
/// host codecs carry their own versions/magics underneath this one).
const WEATHER_VERSION: u32 = 1;
/// Section magic guarding the driver-state section.
const SEC_DRIVER: u32 = 0x4842_0104;

/// Receivers are reaped once their completion instant trails virtual now
/// by this much. It comfortably exceeds the sender's worst-case give-up
/// horizon (~63 s of SYN/RTO exponential backoff), so a straggling
/// retransmit can never find its receiver missing.
const REAP_GRACE: SimDuration = SimDuration::from_secs(180);

/// Drain time after the last window: stragglers get this long to finish
/// before being counted as censored.
const FINAL_GRACE: SimDuration = SimDuration::from_secs(60);

/// The short-flow size mix, as (payload bytes, weight per 1000). Skewed
/// toward request/response-sized flows so a 15 Mbps bottleneck carries
/// hundreds of arrivals per second — the "internet weather" regime the
/// paper targets, where most flows fit in a handful of segments.
const FLOW_MIX: [(u64, usize); 4] = [(600, 600), (2_000, 300), (6_000, 90), (40_000, 10)];

/// Mean payload of [`FLOW_MIX`], in bytes.
pub fn mean_flow_bytes() -> f64 {
    let total: u64 = FLOW_MIX.iter().map(|&(b, w)| b * w as u64).sum();
    total as f64 / 1000.0
}

/// Configuration of one weather run. Everything here is part of the
/// checkpoint fingerprint: resuming under a different configuration is
/// refused (the rebuilt structure would not match the saved state).
#[derive(Debug, Clone)]
pub struct WeatherConfig {
    /// Scheme every injected flow uses (all eight of §4 are valid).
    pub protocol: Protocol,
    /// Mean offered *payload* utilization of the bottleneck, in (0, 1.5].
    pub utilization: f64,
    /// Total simulated duration.
    pub duration: SimDuration,
    /// Stats window width (the paper-style steady-state reporting grain).
    pub window: SimDuration,
    /// Samples before this mark are trimmed from the aggregate sketch.
    pub warmup: SimDuration,
    /// Checkpoint every this many windows.
    pub checkpoint_every: u64,
    /// Diurnal swing of the arrival rate, in `[0, 1)` (0 = flat Poisson).
    pub amplitude: f64,
    /// Length of one diurnal cycle.
    pub period: SimDuration,
    /// Dumbbell host pairs arrivals round-robin across.
    pub host_pairs: usize,
    /// Root seed (engine and arrival streams fork from it).
    pub seed: u64,
}

impl Default for WeatherConfig {
    fn default() -> Self {
        WeatherConfig {
            protocol: Protocol::Halfback,
            utilization: 0.4,
            duration: SimDuration::from_secs(24 * 3600),
            window: SimDuration::from_secs(60),
            warmup: SimDuration::from_secs(120),
            checkpoint_every: 10,
            amplitude: 0.3,
            period: SimDuration::from_secs(24 * 3600),
            host_pairs: 8,
            seed: 4801,
        }
    }
}

impl WeatherConfig {
    /// Number of stats windows the run spans (the last may be partial).
    pub fn total_windows(&self) -> u64 {
        let d = self.duration.as_nanos();
        let w = self.window.as_nanos();
        d.div_ceil(w)
    }

    fn save(&self, w: &mut SnapWriter) {
        w.str(self.protocol.name());
        w.f64(self.utilization);
        w.u64(self.duration.as_nanos());
        w.u64(self.window.as_nanos());
        w.u64(self.warmup.as_nanos());
        w.u64(self.checkpoint_every);
        w.f64(self.amplitude);
        w.u64(self.period.as_nanos());
        w.usize(self.host_pairs);
        w.u64(self.seed);
    }

    /// Validate that `self` matches the configuration a checkpoint was
    /// taken under. Resuming under a drifted configuration would overlay
    /// saved dynamic state onto a different structure, so it is refused.
    fn check(&self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        fn drift<T: std::fmt::Debug>(what: &str, saved: T, now: T) -> Result<(), SnapError> {
            Err(SnapError::Unsupported(format!(
                "checkpoint was taken with {what} = {saved:?}, this run has {now:?} \
                 (config drift?)"
            )))
        }
        let name = r.str()?;
        if name != self.protocol.name() {
            return drift("scheme", name, self.protocol.name().to_string());
        }
        let ut = r.f64()?;
        if ut != self.utilization {
            return drift("utilization", ut, self.utilization);
        }
        let dur = r.u64()?;
        if dur != self.duration.as_nanos() {
            return drift("duration_ns", dur, self.duration.as_nanos());
        }
        let win = r.u64()?;
        if win != self.window.as_nanos() {
            return drift("window_ns", win, self.window.as_nanos());
        }
        let wu = r.u64()?;
        if wu != self.warmup.as_nanos() {
            return drift("warmup_ns", wu, self.warmup.as_nanos());
        }
        let ck = r.u64()?;
        if ck != self.checkpoint_every {
            return drift("checkpoint_every", ck, self.checkpoint_every);
        }
        let amp = r.f64()?;
        if amp != self.amplitude {
            return drift("amplitude", amp, self.amplitude);
        }
        let per = r.u64()?;
        if per != self.period.as_nanos() {
            return drift("period_ns", per, self.period.as_nanos());
        }
        let hp = r.usize()?;
        if hp != self.host_pairs {
            return drift("host_pairs", hp, self.host_pairs);
        }
        let seed = r.u64()?;
        if seed != self.seed {
            return drift("seed", seed, self.seed);
        }
        Ok(())
    }
}

/// Accumulators for the window currently being filled. Reset at every
/// window close (after its CSV row is written), so at checkpoint instants
/// — which are always window boundaries — this is freshly empty; it is
/// serialized anyway so the codec stays valid if that invariant shifts.
struct CurWindow {
    fct: LogHistogram,
    started: u64,
    completed: u64,
    aborted: u64,
    retx: u64,
    reaped: u64,
}

impl CurWindow {
    fn new() -> Self {
        CurWindow {
            fct: LogHistogram::new(),
            started: 0,
            completed: 0,
            aborted: 0,
            retx: 0,
            reaped: 0,
        }
    }

    fn save(&self, w: &mut SnapWriter) {
        self.fct.save(w);
        w.u64(self.started);
        w.u64(self.completed);
        w.u64(self.aborted);
        w.u64(self.retx);
        w.u64(self.reaped);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(CurWindow {
            fct: LogHistogram::load(r)?,
            started: r.u64()?,
            completed: r.u64()?,
            aborted: r.u64()?,
            retx: r.u64()?,
            reaped: r.u64()?,
        })
    }
}

/// The driver's own dynamic state — everything the loop mutates that is
/// not inside the engine, the hosts, or the path cache.
struct WeatherState {
    arrivals: DiurnalPoisson,
    size_rng: netsim::rng::SimRng,
    next_flow: u64,
    started: u64,
    completed: u64,
    aborted: u64,
    retx_total: u64,
    reaped_total: u64,
    window_idx: u64,
    checkpoints: u64,
    /// Length of `windows.csv` at the last checkpoint (resume truncates to
    /// this before appending).
    csv_bytes: u64,
    fct: WindowedSketch,
    cur: CurWindow,
}

impl WeatherState {
    fn fresh(cfg: &WeatherConfig) -> Self {
        let root = netsim::rng::SimRng::new(cfg.seed).fork("weather");
        let spec = DumbbellSpec::emulab(1);
        let mean =
            interarrival_for_utilization(spec.bottleneck_rate, mean_flow_bytes(), cfg.utilization);
        WeatherState {
            arrivals: DiurnalPoisson::new(
                mean,
                cfg.amplitude,
                cfg.period,
                SimTime::ZERO,
                root.fork("arrivals"),
            ),
            size_rng: root.fork("sizes"),
            next_flow: 1,
            started: 0,
            completed: 0,
            aborted: 0,
            retx_total: 0,
            reaped_total: 0,
            window_idx: 0,
            checkpoints: 0,
            csv_bytes: 0,
            fct: WindowedSketch::new(cfg.window.as_nanos(), cfg.warmup.as_nanos()),
            cur: CurWindow::new(),
        }
    }

    fn save(&self, w: &mut SnapWriter) {
        w.magic(SEC_DRIVER);
        self.arrivals.save(w);
        let (seed, state) = self.size_rng.state_parts();
        w.u64(seed);
        for word in state {
            w.u64(word);
        }
        w.u64(self.next_flow);
        w.u64(self.started);
        w.u64(self.completed);
        w.u64(self.aborted);
        w.u64(self.retx_total);
        w.u64(self.reaped_total);
        w.u64(self.window_idx);
        w.u64(self.checkpoints);
        w.u64(self.csv_bytes);
        self.fct.save(w);
        self.cur.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.expect_magic(SEC_DRIVER)?;
        let arrivals = DiurnalPoisson::load(r)?;
        let seed = r.u64()?;
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.u64()?;
        }
        Ok(WeatherState {
            arrivals,
            size_rng: netsim::rng::SimRng::from_parts(seed, state),
            next_flow: r.u64()?,
            started: r.u64()?,
            completed: r.u64()?,
            aborted: r.u64()?,
            retx_total: r.u64()?,
            reaped_total: r.u64()?,
            window_idx: r.u64()?,
            checkpoints: r.u64()?,
            csv_bytes: r.u64()?,
            fct: WindowedSketch::load(r)?,
            cur: CurWindow::load(r)?,
        })
    }

    /// Draw a payload size from the weather mix.
    fn sample_bytes(&mut self) -> u64 {
        let roll = self.size_rng.index(1000);
        let mut acc = 0;
        for &(bytes, weight) in &FLOW_MIX {
            acc += weight;
            if roll < acc {
                return bytes;
            }
        }
        FLOW_MIX[FLOW_MIX.len() - 1].0
    }

    /// Move every record published since the last drain into the counters
    /// and sketches. Must run before each checkpoint so the bus (which is
    /// not serialized) is empty at save time.
    fn drain_bus(&mut self, bus: &CompletionBus) {
        let mut q = bus.borrow_mut();
        while let Some(rec) = q.pop_front() {
            if rec.outcome.is_completed() {
                self.completed += 1;
                self.cur.completed += 1;
                let ms = rec.fct.as_millis_f64();
                self.cur.fct.add(ms);
                self.fct.add(rec.done_at.as_nanos(), ms);
                self.retx_total += rec.counters.normal_retx;
                self.cur.retx += rec.counters.normal_retx;
            } else {
                self.aborted += 1;
                self.cur.aborted += 1;
            }
        }
    }
}

/// Final report of a weather run.
#[derive(Debug, Clone)]
pub struct WeatherOutcome {
    /// Flows injected.
    pub started: u64,
    /// Flows that delivered every byte.
    pub completed: u64,
    /// Flows that gave up (max retransmits / SYN timeout).
    pub aborted: u64,
    /// Flows still live at the end of the final grace period.
    pub censored: u64,
    /// Receiver endpoints reaped over the run.
    pub reaped: u64,
    /// Windows emitted to `windows.csv`.
    pub windows: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Injection rate over the simulated span.
    pub flows_per_hour: f64,
    /// Aggregate post-warm-up FCT stats (ms): mean, p50, p99.
    pub fct_ms: (f64, f64, f64),
    /// Footprint of the windowed sketch.
    pub sketch_mem_bytes: usize,
    /// True when the run stopped at `stop_after_checkpoints` instead of
    /// finishing (output files are in a resumable, not final, state).
    pub stopped_early: bool,
}

/// How a weather run starts and when it stops — the knobs the kill/resume
/// battery drives.
#[derive(Debug, Clone, Default)]
pub struct WeatherRunOptions {
    /// Resume from `weather.ckpt` in the output directory instead of
    /// starting fresh (refused if the checkpoint's configuration drifted).
    pub resume: bool,
    /// Exit right after writing the Nth checkpoint of *this invocation* —
    /// a deterministic stand-in for `kill -9` in the restore battery.
    pub stop_after_checkpoints: Option<u64>,
}

fn io_err(e: SnapError) -> std::io::Error {
    std::io::Error::other(e.to_string())
}

/// Build the inert service rig: a dumbbell of wired hosts with record
/// retention off and a shared completion bus on the sender side. Nothing
/// is scheduled — the driver (or a checkpoint restore) supplies all
/// dynamics, which is exactly what the engine's restore path requires.
fn build_rig(cfg: &WeatherConfig) -> (TransportSim, Dumbbell, CompletionBus, PathCache) {
    let mut spec = DumbbellSpec::emulab(1);
    spec.n_left = cfg.host_pairs;
    spec.n_right = cfg.host_pairs;
    let mut sim = TransportSim::new(cfg.seed);
    let net = build_dumbbell(&mut sim, &spec, |_, _| Box::new(Host::new()));
    let bus = completion_bus();
    for i in 0..cfg.host_pairs {
        let (h, e) = (net.left_hosts[i], net.left_egress[i]);
        let b = bus.clone();
        sim.with_node_mut::<Host, _>(h, |host, _| {
            host.wire(h, e);
            host.set_retain_records(false);
            host.set_bus(b);
        });
        let (h, e) = (net.right_hosts[i], net.right_egress[i]);
        sim.with_node_mut::<Host, _>(h, |host, _| host.wire(h, e));
    }
    (sim, net, bus, path_cache())
}

/// Serialize the complete run state and atomically replace `path`.
fn write_checkpoint(
    path: &Path,
    cfg: &WeatherConfig,
    st: &WeatherState,
    sim: &mut TransportSim,
    net: &Dumbbell,
    cache: &PathCache,
) -> std::io::Result<()> {
    let mut w = SnapWriter::new();
    w.magic(WEATHER_MAGIC);
    w.u32(WEATHER_VERSION);
    cfg.save(&mut w);
    st.save(&mut w);
    sim.save_snapshot(&mut w).map_err(io_err)?;
    for &h in net.left_hosts.iter().chain(&net.right_hosts) {
        sim.node_as::<Host>(h)
            .expect("weather rig hosts are Hosts")
            .save(&mut w);
    }
    save_path_cache(cache, &mut w);
    let tmp = path.with_extension("ckpt.tmp");
    std::fs::write(&tmp, w.into_bytes())?;
    std::fs::rename(&tmp, path)
}

/// Rebuild the rig from `cfg` and overlay the dynamic state from the
/// checkpoint at `path`.
fn read_checkpoint(
    path: &Path,
    cfg: &WeatherConfig,
) -> std::io::Result<(
    WeatherState,
    TransportSim,
    Dumbbell,
    CompletionBus,
    PathCache,
)> {
    let data = std::fs::read(path)?;
    let mut r = SnapReader::new(&data);
    r.expect_magic(WEATHER_MAGIC).map_err(io_err)?;
    let v = r.u32().map_err(io_err)?;
    if v != WEATHER_VERSION {
        return Err(std::io::Error::other(format!(
            "weather checkpoint version {v}, this build reads {WEATHER_VERSION}"
        )));
    }
    cfg.check(&mut r).map_err(io_err)?;
    let st = WeatherState::load(&mut r).map_err(io_err)?;
    let (mut sim, net, bus, cache) = build_rig(cfg);
    sim.restore_snapshot(&mut r).map_err(io_err)?;
    // Same order as the save loop in `write_checkpoint`: every left host,
    // then every right host.
    for (i, &h) in net.left_hosts.iter().chain(&net.right_hosts).enumerate() {
        let pair = i % cfg.host_pairs;
        let key = (net.left_hosts[pair], net.right_hosts[pair]);
        let protocol = cfg.protocol;
        let cache_ref = cache.clone();
        sim.node_as_mut::<Host>(h)
            .expect("weather rig hosts are Hosts")
            .load(&mut r, &mut |_flow| protocol.make(&cache_ref, key))
            .map_err(io_err)?;
    }
    load_path_cache(&cache, &mut r).map_err(io_err)?;
    Ok((st, sim, net, bus, cache))
}

/// One window's CSV row. Kept in one place so the emit path and the
/// resume-truncation contract stay in sync.
fn csv_row(st: &CurWindow, idx: u64, t_end: SimTime, active: usize, live_recv: usize) -> String {
    let mean = st.fct.mean().unwrap_or(0.0);
    let p50 = st.fct.quantile(0.5).unwrap_or(0.0);
    let p99 = st.fct.quantile(0.99).unwrap_or(0.0);
    let retx_mean = if st.completed > 0 {
        st.retx as f64 / st.completed as f64
    } else {
        0.0
    };
    format!(
        "{},{:.1},{},{},{},{:.3},{:.3},{:.3},{:.4},{},{},{}\n",
        idx,
        t_end.as_secs_f64(),
        st.started,
        st.completed,
        st.aborted,
        mean,
        p50,
        p99,
        retx_mean,
        active,
        live_recv,
        st.reaped,
    )
}

/// Header of `windows.csv` (schema `halfback-weather-v1`).
pub const WINDOWS_CSV_HEADER: &str = "window,t_end_s,started,completed,aborted,\
fct_ms_mean,fct_ms_p50,fct_ms_p99,retx_mean,active_flows,live_receivers,reaped\n";

/// Run the open-loop weather service mode, writing `windows.csv`,
/// `weather.ckpt`, and (on completion) `weather.json` under `out_dir`.
///
/// Determinism contract: for a fixed configuration the byte content of
/// `windows.csv` and `weather.json` is identical whether the run executed
/// uninterrupted or was killed at any checkpoint and resumed — the
/// restore battery in CI enforces exactly that.
pub fn run_weather(
    cfg: &WeatherConfig,
    out_dir: &Path,
    opts: &WeatherRunOptions,
) -> std::io::Result<WeatherOutcome> {
    assert!(cfg.host_pairs > 0, "weather needs at least one host pair");
    assert!(
        cfg.checkpoint_every > 0,
        "checkpoint cadence must be positive"
    );
    std::fs::create_dir_all(out_dir)?;
    let ckpt_path = out_dir.join("weather.ckpt");
    let csv_path = out_dir.join("windows.csv");

    let (mut st, mut sim, net, bus, cache);
    let mut csv: std::fs::File;
    if opts.resume {
        (st, sim, net, bus, cache) = read_checkpoint(&ckpt_path, cfg)?;
        // Rows written after the checkpoint was taken (the "crash window")
        // are discarded and will be regenerated identically.
        csv = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&csv_path)?;
        csv.set_len(st.csv_bytes)?;
        csv.seek(SeekFrom::End(0))?;
    } else {
        st = WeatherState::fresh(cfg);
        (sim, net, bus, cache) = build_rig(cfg);
        csv = std::fs::File::create(&csv_path)?;
        csv.write_all(WINDOWS_CSV_HEADER.as_bytes())?;
        st.csv_bytes = WINDOWS_CSV_HEADER.len() as u64;
    }

    let end = SimTime::ZERO + cfg.duration;
    let total_windows = cfg.total_windows();
    let mut checkpoints_this_run = 0u64;

    while st.window_idx < total_windows {
        let wend = std::cmp::min(
            SimTime::ZERO + SimDuration::from_nanos(cfg.window.as_nanos() * (st.window_idx + 1)),
            end,
        );
        // Inject every arrival in this window, advancing the engine to each
        // arrival instant first. No schedule is materialized: the process
        // holds exactly one pending arrival at a time.
        while st.arrivals.peek() <= wend {
            let t = st.arrivals.pop();
            run_until_checked(&mut sim, t);
            let pair = (st.started as usize) % cfg.host_pairs;
            let (src, dst) = (net.left_hosts[pair], net.right_hosts[pair]);
            let bytes = st.sample_bytes();
            let flow = FlowId(st.next_flow);
            st.next_flow += 1;
            st.started += 1;
            st.cur.started += 1;
            let strategy = cfg.protocol.make(&cache, (src, dst));
            sim.with_node_mut::<Host, _>(src, |h, core| {
                h.start_flow(core, flow, dst, bytes, strategy)
            });
        }
        run_until_checked(&mut sim, wend);
        st.drain_bus(&bus);

        // Reap receivers whose flows are long past any possible retransmit.
        if wend.as_nanos() > REAP_GRACE.as_nanos() {
            let before =
                SimTime::ZERO + SimDuration::from_nanos(wend.as_nanos() - REAP_GRACE.as_nanos());
            for &h in net.left_hosts.iter().chain(&net.right_hosts) {
                let n = sim
                    .with_node_mut::<Host, _>(h, |host, _| host.reap_receivers(before))
                    .unwrap_or(0);
                st.cur.reaped += n as u64;
                st.reaped_total += n as u64;
            }
        }

        let active: usize = net
            .left_hosts
            .iter()
            .map(|&h| sim.node_as::<Host>(h).map_or(0, Host::active_senders))
            .sum();
        let live_recv: usize = net
            .right_hosts
            .iter()
            .map(|&h| {
                sim.node_as::<Host>(h)
                    .map_or(0, |host| host.receivers().count())
            })
            .sum();
        let row = csv_row(&st.cur, st.window_idx, wend, active, live_recv);
        csv.write_all(row.as_bytes())?;
        st.csv_bytes += row.len() as u64;
        st.cur = CurWindow::new();
        st.window_idx += 1;

        if st.window_idx % cfg.checkpoint_every == 0 && st.window_idx < total_windows {
            csv.flush()?;
            st.checkpoints += 1;
            write_checkpoint(&ckpt_path, cfg, &st, &mut sim, &net, &cache)?;
            checkpoints_this_run += 1;
            if opts.stop_after_checkpoints == Some(checkpoints_this_run) {
                return Ok(WeatherOutcome {
                    started: st.started,
                    completed: st.completed,
                    aborted: st.aborted,
                    censored: 0,
                    reaped: st.reaped_total,
                    windows: st.window_idx,
                    checkpoints: st.checkpoints,
                    flows_per_hour: 0.0,
                    fct_ms: (0.0, 0.0, 0.0),
                    sketch_mem_bytes: st.fct.memory_bytes(),
                    stopped_early: true,
                });
            }
        }
    }

    // Drain stragglers, then account them (they land in post-duration
    // sketch windows, which the aggregate includes).
    run_until_checked(&mut sim, end + FINAL_GRACE);
    st.drain_bus(&bus);
    csv.flush()?;

    let censored = st.started - st.completed - st.aborted;
    let agg = st.fct.aggregate();
    let hours = cfg.duration.as_secs_f64() / 3600.0;
    let outcome = WeatherOutcome {
        started: st.started,
        completed: st.completed,
        aborted: st.aborted,
        censored,
        reaped: st.reaped_total,
        windows: st.window_idx,
        checkpoints: st.checkpoints,
        flows_per_hour: st.started as f64 / hours,
        fct_ms: (
            agg.mean().unwrap_or(0.0),
            agg.quantile(0.5).unwrap_or(0.0),
            agg.quantile(0.99).unwrap_or(0.0),
        ),
        sketch_mem_bytes: st.fct.memory_bytes(),
        stopped_early: false,
    };
    std::fs::write(out_dir.join("weather.json"), summary_json(cfg, &outcome))?;
    Ok(outcome)
}

/// Render the run summary (schema `halfback-weather-v1`). Every field is a
/// pure function of the virtual run except the `"machine"` object, which
/// sits on its own line so determinism checkers can strip it with
/// `grep -v '"machine"'`.
pub fn summary_json(cfg: &WeatherConfig, out: &WeatherOutcome) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"halfback-weather-v1\",\n");
    s.push_str(&format!("  \"scheme\": \"{}\",\n", cfg.protocol.name()));
    s.push_str(&format!("  \"utilization\": {},\n", cfg.utilization));
    s.push_str(&format!("  \"amplitude\": {},\n", cfg.amplitude));
    s.push_str(&format!(
        "  \"sim_hours\": {:.4},\n",
        cfg.duration.as_secs_f64() / 3600.0
    ));
    s.push_str(&format!("  \"windows\": {},\n", out.windows));
    s.push_str(&format!("  \"checkpoints\": {},\n", out.checkpoints));
    s.push_str(&format!("  \"flows_started\": {},\n", out.started));
    s.push_str(&format!("  \"flows_completed\": {},\n", out.completed));
    s.push_str(&format!("  \"flows_aborted\": {},\n", out.aborted));
    s.push_str(&format!("  \"flows_censored\": {},\n", out.censored));
    s.push_str(&format!("  \"receivers_reaped\": {},\n", out.reaped));
    s.push_str(&format!(
        "  \"flows_per_hour\": {:.1},\n",
        out.flows_per_hour
    ));
    s.push_str(&format!("  \"fct_ms_mean\": {:.3},\n", out.fct_ms.0));
    s.push_str(&format!("  \"fct_ms_p50\": {:.3},\n", out.fct_ms.1));
    s.push_str(&format!("  \"fct_ms_p99\": {:.3},\n", out.fct_ms.2));
    s.push_str(&format!(
        "  \"sketch_mem_bytes\": {},\n",
        out.sketch_mem_bytes
    ));
    // Machine-varying; single line, strippable.
    s.push_str(&format!(
        "  \"machine\": {{ \"rss_mb\": {} }}\n",
        rss_mb().unwrap_or(0.0) as u64
    ));
    s.push_str("}\n");
    s
}

/// Resident set size in MB (Linux; `None` elsewhere).
pub fn rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS"))?;
    Some(line.split_whitespace().nth(1)?.parse::<f64>().ok()? / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tiny_cfg() -> WeatherConfig {
        WeatherConfig {
            protocol: Protocol::Halfback,
            utilization: 0.3,
            duration: SimDuration::from_secs(60),
            window: SimDuration::from_secs(10),
            warmup: SimDuration::from_secs(10),
            checkpoint_every: 2,
            amplitude: 0.3,
            period: SimDuration::from_secs(120),
            host_pairs: 2,
            seed: 7,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("halfback-weather-{}-{}", std::process::id(), tag));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn weather_injects_and_completes_flows() {
        let dir = tmp_dir("basic");
        let out = run_weather(&tiny_cfg(), &dir, &WeatherRunOptions::default()).unwrap();
        assert!(
            out.started > 50,
            "expected a stream of arrivals, got {}",
            out.started
        );
        assert!(
            out.completed as f64 >= out.started as f64 * 0.8,
            "most flows complete at 30% load: {} of {}",
            out.completed,
            out.started
        );
        assert_eq!(out.windows, 6);
        assert!(out.checkpoints >= 1);
        let csv = std::fs::read_to_string(dir.join("windows.csv")).unwrap();
        assert_eq!(csv.lines().count(), 7, "header + 6 windows");
        assert!(csv.starts_with("window,"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mix_mean_matches_declared_weights() {
        let m = mean_flow_bytes();
        assert!(
            (1_800.0..2_100.0).contains(&m),
            "weather mix mean drifted to {m}"
        );
    }

    #[test]
    fn config_drift_is_refused_on_resume() {
        let dir = tmp_dir("drift");
        let cfg = tiny_cfg();
        let out = run_weather(
            &cfg,
            &dir,
            &WeatherRunOptions {
                resume: false,
                stop_after_checkpoints: Some(1),
            },
        )
        .unwrap();
        assert!(out.stopped_early);
        let mut drifted = cfg.clone();
        drifted.utilization = 0.5;
        let err = run_weather(
            &drifted,
            &dir,
            &WeatherRunOptions {
                resume: true,
                stop_after_checkpoints: None,
            },
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("config drift"),
            "unexpected error: {err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

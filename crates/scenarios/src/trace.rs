//! `repro trace`: replay one (scenario, seed, flow) with the flight
//! recorder on and export the merged trace.
//!
//! Three deterministic event streams are captured — the netsim wire tracer
//! (`net`), the sender host's flight recorder (`snd`), and the receiver
//! host's (`rcv`) — and merged into one JSONL file ordered by
//! `(t_ns, stream)` with within-stream emission order preserved. Because
//! every stream is a pure function of `(scenario, seed)`, the merged bytes
//! are identical across runs and across any `--jobs N`
//! (`tests/harness_determinism.rs` asserts this).
//!
//! A tcptrace-style time–sequence CSV (`series,x,y` with x in ms and y in
//! segment numbers) and the Halfback ROPR/ACK meet point round out the
//! export: the paper's "Halfback" name is the claim that on a loss-free
//! path the proactive stream stops about halfway back, i.e.
//! `cursor / batch_segs ≈ 0.5`.

use crate::protocols::Protocol;
use crate::runner::run_until_checked;
use baselines::path_cache;
use netsim::engine::TraceEvent;
use netsim::topology::{build_path, PathSpec};
use netsim::{FaultSpec, FlowId, Rate, SimDuration, SimTime};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;
use transport::trace::{FlowEvent, FlowEventRecord};
use transport::wire::SendClass;
use transport::{Host, TransportSim};

/// What to trace: a named path configuration, a scheme, a seed, and which
/// flow of a spaced sequence to start (all flows are recorded; the meet
/// point is computed for `flow`).
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Path configuration: `fig5`–`fig8` (the clean 15 Mbps / 120 ms-RTT
    /// PlanetLab-substitute bottleneck) or `chaos` (10 Mbps / 80 ms RTT
    /// with a flapping link).
    pub figure: String,
    /// Transmission scheme.
    pub protocol: Protocol,
    /// Engine seed.
    pub seed: u64,
    /// Flow to analyse. Flows `1..=flow` start 500 ms apart.
    pub flow: u64,
    /// Payload bytes per flow.
    pub bytes: u64,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            figure: "fig6".to_string(),
            protocol: Protocol::Halfback,
            seed: 42,
            flow: 1,
            bytes: 100_000,
        }
    }
}

/// Where Halfback's descending ROPR cursor met the advancing cumulative
/// ACK, as a fraction of the paced batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeetPoint {
    /// Cursor position at the meet.
    pub cursor: u32,
    /// Cumulative ACK at the meet.
    pub cum_ack: u32,
    /// Segments in the paced batch.
    pub batch_segs: u32,
    /// `cursor / batch_segs` (the paper's ≈ 0.5 on a loss-free path).
    pub fraction: f64,
}

/// Extract the meet point of `flow` from recorded events (`None` when ROPR
/// never met the ACK stream — non-Halfback schemes, or an RTO ended ROPR).
pub fn meet_point(events: &[FlowEventRecord], flow: FlowId) -> Option<MeetPoint> {
    events.iter().find_map(|r| match r.event {
        FlowEvent::RoprMeet {
            cursor,
            cum_ack,
            batch_segs,
        } if r.flow == flow => Some(MeetPoint {
            cursor,
            cum_ack,
            batch_segs,
            fraction: cursor as f64 / batch_segs.max(1) as f64,
        }),
        _ => None,
    })
}

/// Everything `repro trace` exports.
#[derive(Debug)]
pub struct TraceOutput {
    /// Merged JSONL trace (one event per line, `meet_point` summary last).
    pub jsonl: String,
    /// Time–sequence CSV (`series,x,y`; x = ms, y = segment).
    pub timeseq_csv: String,
    /// The traced flow's meet point, if ROPR met the ACK stream.
    pub meet: Option<MeetPoint>,
    /// Total events across the three streams.
    pub events: usize,
}

/// Why a trace could not run: a bad spec (unknown figure, zero bytes) or a
/// node missing its flight recorder. Returned instead of panicking so
/// `repro trace` can exit nonzero with a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError(String);

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TraceError {}

impl TraceError {
    fn new(msg: impl Into<String>) -> Self {
        TraceError(msg.into())
    }
}

/// The path configuration a figure name maps to.
pub fn path_for(figure: &str) -> Result<PathSpec, TraceError> {
    match figure {
        // The §4.2 global-Internet evaluation's representative bottleneck:
        // clean 15 Mbps, 60 ms one-way (120 ms RTT).
        "fig5" | "fig6" | "fig7" | "fig8" => Ok(PathSpec::clean(
            Rate::from_mbps(15),
            SimDuration::from_millis(60),
        )),
        // A chaos-style flapping link: 100 ms outages every 700 ms.
        "chaos" => {
            let mut faults = FaultSpec::none();
            let mut at = 300u64;
            while at < 4_000 {
                faults = faults.down_window(
                    SimTime::ZERO + SimDuration::from_millis(at),
                    SimTime::ZERO + SimDuration::from_millis(at + 100),
                );
                at += 700;
            }
            Ok(
                PathSpec::clean(Rate::from_mbps(10), SimDuration::from_millis(40))
                    .with_faults(faults),
            )
        }
        other => Err(TraceError::new(format!(
            "unknown trace figure {other:?}: expected fig5..fig8 or chaos"
        ))),
    }
}

fn class_str(c: SendClass) -> &'static str {
    match c {
        SendClass::New => "new",
        SendClass::FastRetx => "fast_retx",
        SendClass::RtoRetx => "rto_retx",
        SendClass::ProbeRetx => "probe_retx",
        SendClass::Proactive => "proactive",
    }
}

fn wire_line(t_ns: u64, ev: &TraceEvent) -> String {
    let (name, id_key, id, packet, size) = match *ev {
        TraceEvent::TxStart { link, packet, size } => ("tx_start", "link", link.0, packet.0, size),
        TraceEvent::QueueDrop { link, packet, size } => {
            ("queue_drop", "link", link.0, packet.0, size)
        }
        TraceEvent::WireDrop { link, packet, size } => {
            ("wire_drop", "link", link.0, packet.0, size)
        }
        TraceEvent::Deliver { node, packet, size } => ("deliver", "node", node.0, packet.0, size),
        TraceEvent::FaultDrop { link, packet, size } => {
            ("fault_drop", "link", link.0, packet.0, size)
        }
        TraceEvent::Blackhole { link, packet, size } => {
            ("blackhole", "link", link.0, packet.0, size)
        }
        TraceEvent::Duplicate { link, packet, size } => {
            ("duplicate", "link", link.0, packet.0, size)
        }
        TraceEvent::CorruptDrop { node, packet, size } => {
            ("corrupt_drop", "node", node.0, packet.0, size)
        }
    };
    format!(
        "{{\"t_ns\":{t_ns},\"src\":\"net\",\"event\":\"{name}\",\"{id_key}\":{id},\"packet\":{packet},\"size\":{size}}}"
    )
}

fn flow_line(src: &str, rec: &FlowEventRecord) -> String {
    let t_ns = rec.at.as_nanos();
    let flow = rec.flow.0;
    let head = format!("{{\"t_ns\":{t_ns},\"src\":\"{src}\",\"flow\":{flow}");
    match rec.event {
        FlowEvent::SynSent { attempt } => {
            format!("{head},\"event\":\"syn_sent\",\"attempt\":{attempt}}}")
        }
        FlowEvent::Established { window } => {
            format!("{head},\"event\":\"established\",\"window\":{window}}}")
        }
        FlowEvent::SegmentSent {
            seg,
            class,
            wire_bytes,
        } => format!(
            "{head},\"event\":\"segment_sent\",\"seg\":{seg},\"class\":\"{}\",\"wire_bytes\":{wire_bytes}}}",
            class_str(class)
        ),
        FlowEvent::AckReceived {
            cum,
            newly_acked_bytes,
        } => format!(
            "{head},\"event\":\"ack_received\",\"cum\":{cum},\"newly_acked_bytes\":{newly_acked_bytes}}}"
        ),
        FlowEvent::CwndUpdate { cwnd, ssthresh } => {
            format!("{head},\"event\":\"cwnd_update\",\"cwnd\":{cwnd},\"ssthresh\":{ssthresh}}}")
        }
        FlowEvent::RtoFired { backoff_level } => {
            format!("{head},\"event\":\"rto_fired\",\"backoff_level\":{backoff_level}}}")
        }
        FlowEvent::PacingStarted { interval_ns } => {
            format!("{head},\"event\":\"pacing_started\",\"interval_ns\":{interval_ns}}}")
        }
        FlowEvent::PacingStopped => format!("{head},\"event\":\"pacing_stopped\"}}"),
        FlowEvent::RoprMeet {
            cursor,
            cum_ack,
            batch_segs,
        } => format!(
            "{head},\"event\":\"ropr_meet\",\"cursor\":{cursor},\"cum_ack\":{cum_ack},\"batch_segs\":{batch_segs}}}"
        ),
        FlowEvent::Delivered {
            seg,
            cum,
            delivered_bytes,
        } => format!(
            "{head},\"event\":\"delivered\",\"seg\":{seg},\"cum\":{cum},\"delivered_bytes\":{delivered_bytes}}}"
        ),
        FlowEvent::Completed { fct_ns } => {
            format!("{head},\"event\":\"completed\",\"fct_ns\":{fct_ns}}}")
        }
        FlowEvent::Aborted { reason } => {
            format!("{head},\"event\":\"aborted\",\"reason\":\"{reason}\"}}")
        }
    }
}

/// Merge the three recorded streams into deterministic JSONL: ordered by
/// `(t_ns, stream rank net < snd < rcv)`, with each stream's emission order
/// preserved inside a tie. Shared with `simcheck`'s failure-trace export.
/// Returns the merged text and the event count.
pub(crate) fn merge_streams_jsonl(
    wire: &[(u64, TraceEvent)],
    snd: &[FlowEventRecord],
    rcv: &[FlowEventRecord],
) -> (String, usize) {
    let mut lines: Vec<(u64, u8, String)> = Vec::with_capacity(wire.len() + snd.len() + rcv.len());
    for (t_ns, ev) in wire {
        lines.push((*t_ns, 0, wire_line(*t_ns, ev)));
    }
    for rec in snd {
        lines.push((rec.at.as_nanos(), 1, flow_line("snd", rec)));
    }
    for rec in rcv {
        lines.push((rec.at.as_nanos(), 2, flow_line("rcv", rec)));
    }
    let events = lines.len();
    lines.sort_by_key(|l| (l.0, l.1));
    let mut jsonl = String::new();
    for (_, _, l) in &lines {
        jsonl.push_str(l);
        jsonl.push('\n');
    }
    (jsonl, events)
}

/// Run the spec and export the merged trace.
pub fn run_trace(spec: &TraceSpec) -> Result<TraceOutput, TraceError> {
    if spec.flow < 1 {
        return Err(TraceError::new("flows are numbered from 1"));
    }
    if spec.bytes == 0 {
        return Err(TraceError::new("--bytes must be positive"));
    }
    let path = path_for(&spec.figure)?;
    let mut sim = TransportSim::new(spec.seed);
    let net = build_path(&mut sim, &path, |_| Box::new(Host::new()));
    sim.with_node_mut::<Host, _>(net.sender, |h, _| {
        h.wire(net.sender, net.forward);
        h.enable_recorder(transport::FlightRecorder::DEFAULT_CAP);
    });
    sim.with_node_mut::<Host, _>(net.receiver, |h, _| {
        h.wire(net.receiver, net.reverse);
        h.enable_recorder(transport::FlightRecorder::DEFAULT_CAP);
    });

    let wire: Rc<RefCell<Vec<(u64, TraceEvent)>>> = Rc::new(RefCell::new(Vec::new()));
    let w2 = wire.clone();
    sim.set_tracer(Box::new(move |at, ev| {
        w2.borrow_mut().push((at.as_nanos(), *ev));
    }));

    let cache = path_cache();
    let mut last = SimTime::ZERO;
    for i in 1..=spec.flow {
        let at = SimTime::ZERO + SimDuration::from_millis((i - 1) * 500);
        run_until_checked(&mut sim, at);
        let strategy = spec.protocol.make(&cache, (net.sender, net.receiver));
        sim.with_node_mut::<Host, _>(net.sender, |h, core| {
            h.start_flow(core, FlowId(i), net.receiver, spec.bytes, strategy)
        });
        last = at;
    }
    run_until_checked(&mut sim, last + SimDuration::from_secs(240));
    sim.run_to_completion(10_000_000);
    crate::harness::meter_add(
        sim.now().saturating_since(SimTime::ZERO).as_nanos(),
        sim.events_processed(),
    );

    let recorded = |node| -> Result<Vec<FlowEventRecord>, TraceError> {
        Ok(sim
            .node_as::<Host>(node)
            .ok_or_else(|| TraceError::new("traced node is not a transport Host"))?
            .recorder()
            .ok_or_else(|| TraceError::new("flight recorder was not enabled on a traced node"))?
            .events()
            .copied()
            .collect())
    };
    let snd = recorded(net.sender)?;
    let rcv = recorded(net.receiver)?;
    let wire = wire.borrow();

    let (mut jsonl, events) = merge_streams_jsonl(&wire, &snd, &rcv);
    let traced = FlowId(spec.flow);
    let meet = meet_point(&snd, traced);
    match meet {
        Some(m) => {
            let _ = writeln!(
                jsonl,
                "{{\"src\":\"run\",\"event\":\"meet_point\",\"flow\":{},\"cursor\":{},\"cum_ack\":{},\"batch_segs\":{},\"fraction\":{:.4}}}",
                traced.0, m.cursor, m.cum_ack, m.batch_segs, m.fraction
            );
        }
        None => {
            let _ = writeln!(
                jsonl,
                "{{\"src\":\"run\",\"event\":\"meet_point\",\"flow\":{},\"found\":false}}",
                traced.0
            );
        }
    }

    // Time–sequence view of the traced flow, tcptrace-style: transmissions
    // by class, the ACK line, and receiver-side arrivals.
    let mut csv = String::from("series,x,y\n");
    let ms = |t: SimTime| t.as_nanos() as f64 / 1e6;
    for rec in &snd {
        if rec.flow != traced {
            continue;
        }
        match rec.event {
            FlowEvent::SegmentSent { seg, class, .. } => {
                let series = match class {
                    SendClass::New => "data",
                    SendClass::Proactive => "proactive",
                    _ => "retx",
                };
                let _ = writeln!(csv, "{series},{:.6},{seg}", ms(rec.at));
            }
            FlowEvent::AckReceived { cum, .. } => {
                let _ = writeln!(csv, "ack,{:.6},{cum}", ms(rec.at));
            }
            _ => {}
        }
    }
    for rec in &rcv {
        if rec.flow != traced {
            continue;
        }
        if let FlowEvent::Delivered { seg, .. } = rec.event {
            let _ = writeln!(csv, "delivered,{:.6},{seg}", ms(rec.at));
        }
    }

    Ok(TraceOutput {
        jsonl,
        timeseq_csv: csv,
        meet,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_ns: u64, flow: u64, event: FlowEvent) -> FlowEventRecord {
        FlowEventRecord {
            at: SimTime::ZERO + SimDuration::from_nanos(t_ns),
            flow: FlowId(flow),
            event,
        }
    }

    #[test]
    fn meet_point_on_synthetic_schedule() {
        // A 100-segment batch where ROPR walked from 100 down to 52 while
        // the ACK stream climbed to 52: fraction 0.52.
        let events = vec![
            rec(1, 1, FlowEvent::Established { window: 141_000 }),
            rec(
                2,
                1,
                FlowEvent::SegmentSent {
                    seg: 99,
                    class: SendClass::Proactive,
                    wire_bytes: 1500,
                },
            ),
            rec(
                3,
                1,
                FlowEvent::RoprMeet {
                    cursor: 52,
                    cum_ack: 52,
                    batch_segs: 100,
                },
            ),
        ];
        let m = meet_point(&events, FlowId(1)).unwrap();
        assert_eq!((m.cursor, m.cum_ack, m.batch_segs), (52, 52, 100));
        assert!((m.fraction - 0.52).abs() < 1e-12);
    }

    #[test]
    fn meet_point_filters_by_flow_and_requires_a_meet() {
        let events = vec![
            rec(
                1,
                2,
                FlowEvent::RoprMeet {
                    cursor: 10,
                    cum_ack: 10,
                    batch_segs: 20,
                },
            ),
            rec(2, 1, FlowEvent::Completed { fct_ns: 1000 }),
        ];
        assert!(meet_point(&events, FlowId(1)).is_none());
        let m = meet_point(&events, FlowId(2)).unwrap();
        assert!((m.fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn meet_point_guards_division_by_zero() {
        let events = vec![rec(
            1,
            1,
            FlowEvent::RoprMeet {
                cursor: 0,
                cum_ack: 0,
                batch_segs: 0,
            },
        )];
        assert_eq!(meet_point(&events, FlowId(1)).unwrap().fraction, 0.0);
    }

    /// Bad specs are reported as errors, not panics, so `repro trace`
    /// exits nonzero with a message instead of crashing the harness.
    #[test]
    fn bad_specs_return_errors() {
        assert!(path_for("fig99").is_err());
        let err = run_trace(&TraceSpec {
            figure: "nope".into(),
            ..Default::default()
        })
        .unwrap_err();
        assert!(err.to_string().contains("unknown trace figure"));
        assert!(run_trace(&TraceSpec {
            bytes: 0,
            ..Default::default()
        })
        .is_err());
        assert!(run_trace(&TraceSpec {
            flow: 0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn halfback_meets_near_half_on_clean_bottleneck() {
        let out = run_trace(&TraceSpec::default()).unwrap();
        let m = out.meet.expect("Halfback must meet on a clean path");
        assert!(
            (0.4..=0.6).contains(&m.fraction),
            "meet fraction {:.3} outside the paper's ≈ 50% band",
            m.fraction
        );
        assert!(out.jsonl.lines().count() > 100, "trace suspiciously small");
        assert!(out.timeseq_csv.starts_with("series,x,y\n"));
        // Every line parses as a flat JSON object.
        for l in out.jsonl.lines() {
            assert!(l.starts_with('{') && l.ends_with('}'), "bad JSONL: {l}");
        }
    }

    #[test]
    fn same_seed_same_bytes() {
        let a = run_trace(&TraceSpec::default()).unwrap();
        let b = run_trace(&TraceSpec::default()).unwrap();
        assert_eq!(a.jsonl, b.jsonl);
        assert_eq!(a.timeseq_csv, b.timeseq_csv);
    }

    #[test]
    fn tcp_trace_has_no_meet_point() {
        let out = run_trace(&TraceSpec {
            protocol: Protocol::Tcp,
            ..Default::default()
        })
        .unwrap();
        assert!(out.meet.is_none());
        assert!(out.jsonl.contains("\"found\":false"));
    }
}

//! # scenarios — the experiment harness of the Halfback reproduction
//!
//! One module per figure/table of the paper (see `figures`), built on:
//!
//! * [`protocols`] — the scheme registry (all eight schemes + ablations)
//! * [`runner`] — schedule execution on dumbbells and two-host paths
//! * [`harness`] — the parallel job pool the figure modules fan out on
//! * [`metrics`] — FCT statistics and the feasible-capacity knee detector
//! * [`report`] — text tables and CSV output
//!
//! The `repro` binary regenerates any figure:
//! `cargo run --release -p scenarios --bin repro -- fig12 --jobs 4`.

#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod manifest;
pub mod metrics;
pub mod protocols;
pub mod report;
pub mod runner;
pub mod simcheck;
pub mod telemetry;
pub mod trace;
pub mod weather;

pub use protocols::Protocol;
pub use report::Figure;

/// Experiment scale: `Full` reproduces the paper's parameters; `Quick`
/// shrinks horizons and populations so tests and Criterion benches finish
/// fast while preserving the qualitative shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale parameters (the `repro` binary default).
    Full,
    /// Reduced parameters for tests and benches.
    Quick,
}

impl Scale {
    /// Pick `full` or `quick` depending on scale.
    pub fn pick<T>(self, full: T, quick: T) -> T {
        match self {
            Scale::Full => full,
            Scale::Quick => quick,
        }
    }
}

//! The per-run `manifest.json`: a machine-readable record of what a
//! `repro` invocation ran and what it cost, written next to the figures
//! when `--out` is given — schema `halfback-manifest-v1`.
//!
//! The manifest is the diffable perf trajectory: seeds and scheme set pin
//! *what* was simulated, per-experiment event totals and virtual time pin
//! *how much*, and wall time + machine shape record *how fast*. Fields
//! fall into two classes:
//!
//! * **Deterministic** — everything except the exceptions below: a pure
//!   function of `(experiments, scale)`, byte-identical run-to-run and
//!   across `--jobs`/`--shards`. Safe to diff or golden.
//! * **Machine-varying** — wall-clock seconds (keys prefixed `wall_`) and
//!   the single `"machine"` line (jobs/shards settings, RSS). Checkers
//!   strip these with `grep -vE '"wall_|"machine"'` — each such field is
//!   emitted on its own line, nothing deterministic shares a line with
//!   one (`ci/check_shards.sh` relies on this).

use std::fmt::Write as _;

/// Schema tag stamped into the manifest.
pub const MANIFEST_SCHEMA: &str = "halfback-manifest-v1";

/// Per-experiment entry.
#[derive(Debug, Clone)]
pub struct ExperimentEntry {
    /// Experiment id (`fig6`, `planetlab100k`, ...).
    pub id: String,
    /// Figure ids the experiment produced.
    pub figures: Vec<String>,
    /// Harness jobs the experiment fanned out.
    pub jobs_run: usize,
    /// Total discrete events processed.
    pub events: u64,
    /// Total simulated virtual time, nanoseconds.
    pub virtual_ns: u64,
    /// Sketch memory high-water mark (bytes; 0 when the experiment does
    /// not aggregate through sketches). Deterministic.
    pub sketch_mem_bytes: u64,
    /// Wall-clock seconds (machine-varying).
    pub wall_s: f64,
}

/// The whole manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// `full` or `quick`.
    pub scale: String,
    /// Scheme registry active for this build, in registry order.
    pub schemes: Vec<String>,
    /// One entry per experiment run, in invocation order.
    pub experiments: Vec<ExperimentEntry>,
    /// `--jobs` effective value (machine-varying).
    pub jobs: usize,
    /// `--shards` effective value (machine-varying).
    pub shards: usize,
    /// Resident set size at the end of the run, MB (machine-varying; 0 if
    /// unavailable).
    pub rss_mb: u64,
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_list(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", quoted.join(","))
}

impl Manifest {
    /// Render as pretty-printed JSON with the machine-varying fields each
    /// on their own, syntactically strippable line.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_str(MANIFEST_SCHEMA));
        let _ = writeln!(out, "  \"scale\": {},", json_str(&self.scale));
        let _ = writeln!(out, "  \"schemes\": {},", json_str_list(&self.schemes));
        out.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"id\": {},", json_str(&e.id));
            let _ = writeln!(out, "      \"figures\": {},", json_str_list(&e.figures));
            let _ = writeln!(out, "      \"jobs_run\": {},", e.jobs_run);
            let _ = writeln!(out, "      \"events\": {},", e.events);
            let _ = writeln!(out, "      \"virtual_ns\": {},", e.virtual_ns);
            let _ = writeln!(out, "      \"sketch_mem_bytes\": {},", e.sketch_mem_bytes);
            let _ = writeln!(out, "      \"wall_s\": {:.3}", e.wall_s);
            out.push_str(if i + 1 < self.experiments.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ],\n");
        let _ = writeln!(
            out,
            "  \"machine\": {{\"jobs\": {}, \"shards\": {}, \"rss_mb\": {}}}",
            self.jobs, self.shards, self.rss_mb
        );
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            scale: "quick".into(),
            schemes: vec!["Halfback".into(), "TcpReno".into()],
            experiments: vec![
                ExperimentEntry {
                    id: "fig6".into(),
                    figures: vec!["fig6".into()],
                    jobs_run: 8,
                    events: 123_456,
                    virtual_ns: 9_000_000_000,
                    sketch_mem_bytes: 0,
                    wall_s: 1.25,
                },
                ExperimentEntry {
                    id: "planetlab100k".into(),
                    figures: vec!["planetlab100k".into()],
                    jobs_run: 1,
                    events: 777,
                    virtual_ns: 180_000_000_000,
                    sketch_mem_bytes: 14_000,
                    wall_s: 300.0,
                },
            ],
            jobs: 4,
            shards: 4,
            rss_mb: 29,
        }
    }

    #[test]
    fn machine_varying_fields_are_line_strippable() {
        let json = sample().render_json();
        let deterministic: Vec<&str> = json
            .lines()
            .filter(|l| !l.contains("\"wall_") && !l.contains("\"machine\""))
            .collect();
        let det = deterministic.join("\n");
        // Nothing machine-varying survives the strip...
        assert!(!det.contains("wall_s"));
        assert!(!det.contains("rss_mb"));
        assert!(!det.contains("\"jobs\":"));
        // ...and everything deterministic does.
        assert!(det.contains("\"schema\": \"halfback-manifest-v1\""));
        assert!(det.contains("\"events\": 123456"));
        assert!(det.contains("\"sketch_mem_bytes\": 14000"));
        assert!(det.contains("\"schemes\": [\"Halfback\",\"TcpReno\"]"));
    }

    #[test]
    fn render_is_deterministic_given_fields() {
        assert_eq!(sample().render_json(), sample().render_json());
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}

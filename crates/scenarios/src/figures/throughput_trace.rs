//! Fig. 15: throughput of an ongoing background TCP flow when a short flow
//! starts (§4.3.4), sampled in 60 ms bins at the receivers.
//!
//! Four panels: (a) an analytic optimal reference, (b) a Halfback short
//! flow, (c) one TCP short flow, (d) two TCP short flows of half size.

use crate::report::Figure;
use crate::runner::{DumbbellRig, RunOptions};
use crate::{Protocol, Scale};
use netsim::topology::DumbbellSpec;
use netsim::{FlowId, SimDuration, SimTime};
use transport::Host;

/// Sampling bin (paper: every 60 ms).
pub const BIN_NS: u64 = 60_000_000;
/// When the short flow starts (background is at full rate well before).
const SHORT_AT_S: u64 = 3;

/// One panel's series: (label, points) with time in ms relative to the
/// short-flow start.
pub type Panel = Vec<(String, Vec<(f64, f64)>)>;

/// Simulate one panel: a long-running background TCP flow plus `shorts`
/// (bytes, protocol) all starting at t = 3 s on distinct host pairs.
pub fn panel(shorts: &[(u64, Protocol)], scale: Scale) -> Panel {
    panel_with_notes(shorts, scale).0
}

/// [`panel`] plus per-short-flow transmission notes (packets sent, normal
/// and proactive retransmissions) from the metrics the senders accumulate.
pub fn panel_with_notes(shorts: &[(u64, Protocol)], scale: Scale) -> (Panel, Vec<String>) {
    let spec = DumbbellSpec::emulab(1);
    let opts = RunOptions {
        host_pairs: 1 + shorts.len(),
        grace: SimDuration::ZERO,
        seed: 73,
        trace_bin_ns: Some(BIN_NS),
        min_rto: None,
    };
    let mut rig = DumbbellRig::new(&spec, &opts);
    let horizon = scale.pick(7u64, 7u64); // 3 s lead-in + 4 s observed
    let bg_flow = rig.start_flow_now(0, 2_000_000_000, Protocol::Tcp);
    rig.sim
        .run_until(SimTime::ZERO + SimDuration::from_secs(SHORT_AT_S));
    let mut short_flows: Vec<(FlowId, String)> = Vec::new();
    for (i, &(bytes, p)) in shorts.iter().enumerate() {
        let f = rig.start_flow_now(1 + i, bytes, p);
        let label = if shorts.len() > 1 {
            format!("{} short flow{}", p.name(), i + 1)
        } else {
            format!("{} short flow", p.name())
        };
        short_flows.push((f, label));
    }
    rig.sim
        .run_until(SimTime::ZERO + SimDuration::from_secs(horizon));
    crate::harness::meter_add(
        rig.sim.now().saturating_since(SimTime::ZERO).as_nanos(),
        rig.sim.events_processed(),
    );

    let mut out: Panel = Vec::new();
    let offset_ms = (SHORT_AT_S * 1000) as f64;
    let window = |pts: Vec<(f64, f64)>| -> Vec<(f64, f64)> {
        pts.into_iter()
            .map(|(t_s, mbps)| (t_s * 1000.0 - offset_ms, mbps))
            .filter(|&(t, _)| (-600.0..=3000.0).contains(&t))
            .collect()
    };
    // Receiver hosts hold the delivery timelines.
    for (flow, label) in
        std::iter::once((bg_flow, "Background Flow".to_string())).chain(short_flows.iter().cloned())
    {
        for &h in &rig.net.right_hosts {
            let host = rig.sim.node_as::<Host>(h).unwrap();
            if let Some(tb) = host.timelines.as_ref().and_then(|tl| tl.get(flow)) {
                out.push((label.clone(), window(tb.as_mbps())));
                break;
            }
        }
    }
    // Transmission accounting for the short flows (from their sender-side
    // FlowRecords — completed short flows only; the background is censored
    // by design).
    let mut notes = Vec::new();
    for &h in &rig.net.left_hosts {
        for r in rig.sim.node_as::<Host>(h).unwrap().completed() {
            if let Some((_, label)) = short_flows.iter().find(|(f, _)| *f == r.flow) {
                notes.push(format!(
                    "{label}: {} data packets, {} normal retx, {} proactive retx, {} RTO fires",
                    r.counters.data_packets_sent,
                    r.counters.normal_retx,
                    r.counters.proactive_retx,
                    r.counters.rto_events
                ));
            }
        }
    }
    (out, notes)
}

/// The analytic optimal panel (a): the short flow is served at line rate
/// immediately; the background keeps the residual capacity and resumes
/// instantly.
pub fn optimal_panel() -> Panel {
    let cap = 15.0; // Mbps
    let short_bits = 100_000.0 * 8.0 / 1e6; // Mbit
    let short_ms = short_bits / cap * 1000.0; // ~53 ms
    let bin_ms = BIN_NS as f64 / 1e6;
    let mut bg = Vec::new();
    let mut short = Vec::new();
    let mut t = -600.0;
    while t <= 3000.0 {
        let in_burst = t >= 0.0 && t < bin_ms;
        let short_mbps = if in_burst {
            short_bits / (bin_ms / 1000.0)
        } else {
            0.0
        };
        bg.push((t, (cap - short_mbps).max(0.0)));
        short.push((t, short_mbps));
        t += bin_ms;
        let _ = short_ms;
    }
    vec![
        ("Background Flow".to_string(), bg),
        ("Optimal short flow".to_string(), short),
    ]
}

/// Render Fig. 15(a–d).
pub fn figures(scale: Scale) -> Vec<Figure> {
    // Panels (b)–(d) each simulate an independent dumbbell: one harness
    // job apiece. Panel (a) is analytic and stays inline.
    type PanelSpec = (&'static str, &'static str, Vec<(u64, Protocol)>);
    let sim_specs: Vec<PanelSpec> = vec![
        (
            "fig15b",
            "Halfback short flow",
            vec![(100_000, Protocol::Halfback)],
        ),
        (
            "fig15c",
            "One TCP short flow",
            vec![(100_000, Protocol::Tcp)],
        ),
        (
            "fig15d",
            "Two TCP short flows with half flow size",
            vec![(50_000, Protocol::Tcp), (50_000, Protocol::Tcp)],
        ),
    ];
    let sim_panels = crate::harness::parallel_map(
        sim_specs,
        |&(id, _, _)| format!("fig15/{id}"),
        |(id, title, shorts)| {
            let (panel, notes) = panel_with_notes(&shorts, scale);
            (id, title, panel, notes)
        },
    );
    let mut panels: Vec<(&str, &str, Panel, Vec<String>)> =
        vec![("fig15a", "Optimal situation", optimal_panel(), Vec::new())];
    panels.extend(sim_panels);
    panels
        .into_iter()
        .map(|(id, title, panel, notes)| {
            let mut fig = Figure::new(
                id,
                &format!("Throughput of flows: {title}"),
                "time since short-flow start (ms)",
                "throughput (Mbit/s)",
            );
            for (label, pts) in &panel {
                // Recovery metric: first time after the dip when the
                // background is back above 90% of the bottleneck.
                if label.starts_with("Background") {
                    let recover = pts
                        .iter()
                        .filter(|&&(t, _)| t > 100.0)
                        .find(|&&(_, m)| m >= 13.5)
                        .map(|&(t, _)| t);
                    match recover {
                        Some(t) => fig.note(format!(
                            "background back to >90% capacity {t:.0} ms after short-flow start"
                        )),
                        None => fig.note(
                            "background did not regain 90% capacity in the 3 s window".to_string(),
                        ),
                    }
                }
                fig.push_series(label.clone(), pts.clone());
            }
            for n in notes {
                fig.note(n);
            }
            fig
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_panel_conserves_capacity() {
        let panel = optimal_panel();
        assert_eq!(panel.len(), 2);
        let bg = &panel[0].1;
        let short = &panel[1].1;
        // Background + short never exceed the 15 Mbps bottleneck, and the
        // short flow moves exactly 100 KB.
        let mut short_bits = 0.0;
        for ((_, b), (_, s)) in bg.iter().zip(short.iter()) {
            assert!(b + s <= 15.0 + 1e-9);
            short_bits += s * (BIN_NS as f64 / 1e9);
        }
        let short_bytes = short_bits * 1e6 / 8.0;
        assert!(
            (short_bytes - 100_000.0).abs() < 1.0,
            "short moved {short_bytes} bytes"
        );
    }

    #[test]
    fn simulated_panel_has_background_at_capacity_before_short() {
        let p = panel(&[(100_000, crate::Protocol::Tcp)], crate::Scale::Quick);
        let bg = &p
            .iter()
            .find(|(l, _)| l.starts_with("Background"))
            .unwrap()
            .1;
        let before: Vec<f64> = bg
            .iter()
            .filter(|&&(t, _)| t < -100.0)
            .map(|&(_, m)| m)
            .collect();
        assert!(!before.is_empty());
        let mean = before.iter().sum::<f64>() / before.len() as f64;
        assert!(
            mean > 13.0,
            "background not at capacity before the short flow: {mean}"
        );
    }
}

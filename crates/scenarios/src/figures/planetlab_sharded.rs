//! The scaled PlanetLab scenario: the §4.2 global-Internet evaluation
//! grown past 100 K concurrent flows and run on the sharded engine.
//!
//! Eight *sites* (one partition each — the partition count is part of the
//! scenario, never of the machine) hold a router plus `H` hosts behind
//! access links; every ordered site pair is connected by a WAN leg whose
//! propagation delay doubles as the conservative-barrier lookahead (see
//! `netsim::shard`). Every host opens `F` Halfback flows of 100 KB at
//! `t = 0` to hosts in other sites — at full scale that is
//! 8 × 2048 × 7 = 114,688 concurrent short flows, the incast-heavy
//! "internet weather" regime the ROADMAP points at.
//!
//! `--shards N` maps the eight partitions onto N worker threads; the
//! figure output is byte-identical for every N (pinned by
//! `harness_determinism.rs` and `ci/check_shards.sh`).
//!
//! ## Addressing
//!
//! Hosts are wired with **global** ids (`site * 1e6`-strided), which is
//! what flows, packets, and route tables speak; engine-local ids stay a
//! per-partition detail. Cross-site packets leave through a zero-delay
//! egress link into a portal, cross by value, and are injected on the
//! destination router with the pair's ingress stub link as the
//! conservation anchor.

use crate::metrics::MetricsRegistry;
use crate::report::Figure;
use crate::{Protocol, Scale};
use baselines::path_cache;
use netsim::link::LinkSpec;
use netsim::router::Router;
use netsim::shard::{run_sharded_with, Heartbeat, ShardHandle, ShardHooks, WindowTelemetry};
use netsim::stats::WindowedSketch;
use netsim::{FlowId, LinkId, NodeId, Rate, SimDuration, SimTime};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use transport::{Header, Host, TransportSim};

/// Number of sites (= partitions). Fixed: changing it changes the
/// scenario, not the execution.
pub const SITES: usize = 8;

/// Flow size, as in §4.2 (100 KB).
pub const FLOW_BYTES: u64 = 100_000;

/// Hosts per site.
pub fn hosts_per_site(scale: Scale) -> usize {
    scale.pick(2048, 32)
}

/// Flows opened by each host at `t = 0`.
pub fn flows_per_host(scale: Scale) -> usize {
    scale.pick(7, 2)
}

/// Virtual-time cap: stragglers still live at this point are censored.
const HORIZON: SimDuration = SimDuration::from_secs(180);

/// Global id of host `h` of site `s` — the id space packets and route
/// tables use. Strided so it can never collide with any partition-local
/// id (those stay below ~5 K even at full scale).
fn global_id(site: usize, host: usize) -> NodeId {
    NodeId((site as u32 + 1) * 1_000_000 + host as u32)
}

/// One-way WAN propagation delay for the ordered site pair `(src, dst)`:
/// 20–79 ms, deterministic in the pair. The minimum over all pairs is the
/// sharded engine's lookahead window.
fn wan_delay(src: usize, dst: usize) -> SimDuration {
    SimDuration::from_millis(20 + ((src * 7 + dst * 13) % 60) as u64)
}

/// Ingress stub link id for packets arriving at site `dst` from site
/// `src`. Link layout per partition: `2H` access links first, then an
/// (ingress, egress) pair per remote site in ascending order.
fn ingress_link_id(dst: usize, src: usize, hosts: usize) -> LinkId {
    let pos = if src < dst { src } else { src - 1 };
    LinkId((2 * hosts + 2 * pos) as u32)
}

/// Build one site: router (local id 0), `H` hosts with up/down access
/// links, and a portal + egress/ingress link pair per remote site. All
/// `F` flows per host start at `t = 0` before the engine runs.
fn build_site(s: usize, handle: &mut ShardHandle<Header>, scale: Scale) -> TransportSim {
    let hosts = hosts_per_site(scale);
    let flows = flows_per_host(scale);
    let access_rate = Rate::from_mbps(200);
    let wan_rate = Rate::from_gbps(40);

    let mut sim = TransportSim::new(9_000 + s as u64);
    let router = sim.add_node(Box::new(Router::new()));
    debug_assert_eq!(router, NodeId(0));

    let mut host_nodes = Vec::with_capacity(hosts);
    for h in 0..hosts {
        let node = sim.add_node(Box::new(Host::new()));
        let up = sim.add_link(LinkSpec::drop_tail(
            node,
            router,
            access_rate,
            SimDuration::from_micros(10),
            10_000_000,
        ));
        let down = sim.add_link(LinkSpec::drop_tail(
            router,
            node,
            access_rate,
            SimDuration::from_micros(10),
            10_000_000,
        ));
        sim.with_node_mut::<Host, _>(node, |host, _| host.wire(global_id(s, h), up));
        sim.node_as_mut::<Router>(router)
            .unwrap()
            .add_route(global_id(s, h), down);
        host_nodes.push(node);
    }

    // Portals: the egress link serializes at WAN rate with zero local
    // delay; the portal adds the pair's propagation delay at handoff, so
    // the delay is all lookahead.
    let mut egress_of = [None; SITES];
    for t in (0..SITES).filter(|&t| t != s) {
        let ingress = sim.add_link(LinkSpec::drop_tail(
            router,
            router,
            wan_rate,
            SimDuration::ZERO,
            64_000_000,
        ));
        debug_assert_eq!(ingress, ingress_link_id(s, t, hosts));
        let portal = handle.add_portal(
            &mut sim,
            t,
            NodeId(0), // the remote router is always local id 0
            ingress_link_id(t, s, hosts),
            wan_delay(s, t),
        );
        let egress = sim.add_link(LinkSpec::drop_tail(
            router,
            portal,
            wan_rate,
            SimDuration::ZERO,
            64_000_000,
        ));
        egress_of[t] = Some(egress);
    }
    for t in (0..SITES).filter(|&t| t != s) {
        let egress = egress_of[t].unwrap();
        let r = sim.node_as_mut::<Router>(router).unwrap();
        for j in 0..hosts {
            r.add_route(global_id(t, j), egress);
        }
    }

    // Flow fan-out: host (s, h) opens flow f to a deterministic host in a
    // deterministic *other* site. Flow ids are globally unique.
    let cache = path_cache();
    for (h, &node) in host_nodes.iter().enumerate() {
        for f in 0..flows {
            let t = (s + 1 + (h + f) % (SITES - 1)) % SITES;
            let j = (h * 31 + f * 17 + s) % hosts;
            let flow = FlowId(((s * hosts + h) * flows + f + 1) as u64);
            let (src_g, dst_g) = (global_id(s, h), global_id(t, j));
            let strategy = Protocol::Halfback.make(&cache, (src_g, dst_g));
            sim.with_node_mut::<Host, _>(node, |host, core| {
                host.start_flow(core, flow, dst_g, FLOW_BYTES, strategy)
            });
        }
    }
    sim
}

/// FCT sketch window width: 10 s of virtual time, so the 180 s horizon
/// yields at most 18 per-window snapshots.
const FCT_WINDOW_NS: u64 = 10_000_000_000;

/// Warm-up trim for the FCT sketch. Zero here — every flow starts at
/// `t = 0`, so there is no ramp-up to discard — but the plumbing is the
/// same one open-loop scenarios will set to a real value.
const FCT_WARMUP_NS: u64 = 0;

/// Per-partition tally extracted after the run. Flow completion times are
/// aggregated into a windowed log-histogram sketch at extraction — no
/// per-flow record is ever retained, which is what drops the scenario's
/// memory ceiling from O(flows) to O(buckets).
struct SiteTally {
    fct: WindowedSketch,
    completed: usize,
    aborted: usize,
    unroutable: u64,
    events: u64,
    now_ns: u64,
}

fn finish_site(_s: usize, sim: &mut TransportSim, scale: Scale) -> SiteTally {
    let hosts = hosts_per_site(scale);
    let mut fct = WindowedSketch::new(FCT_WINDOW_NS, FCT_WARMUP_NS);
    let mut completed = 0usize;
    let mut aborted = 0usize;
    for h in 0..hosts {
        let host = sim.node_as::<Host>(NodeId(1 + h as u32)).unwrap();
        for r in host.completed() {
            if r.outcome.is_completed() {
                fct.add(r.done_at.as_nanos(), r.fct.as_millis_f64());
                completed += 1;
            } else {
                aborted += 1;
            }
        }
    }
    SiteTally {
        fct,
        completed,
        aborted,
        unroutable: sim.node_as::<Router>(NodeId(0)).unwrap().unroutable(),
        events: sim.events_processed(),
        now_ns: sim.now().as_nanos(),
    }
}

/// Count of flows a partition has finished (completed or aborted) — the
/// heartbeat's "flows done" probe, run after each window.
fn flows_done(sim: &TransportSim, scale: Scale) -> u64 {
    let hosts = hosts_per_site(scale);
    let mut done = 0u64;
    for h in 0..hosts {
        let host = sim.node_as::<Host>(NodeId(1 + h as u32)).unwrap();
        done += host.completed().len() as u64;
    }
    done
}

/// Merged outcome of one sharded run.
pub struct ShardedOutcome {
    /// Flow completion times (ms) in 10 s virtual-time windows, merged
    /// across sites in rank order — exact integer-bucket merges, so the
    /// aggregate is byte-identical for any `--shards N`.
    pub fct: WindowedSketch,
    /// Flows that completed.
    pub completed: usize,
    /// Flows that gave up.
    pub aborted: usize,
    /// Flows still live at the horizon.
    pub censored: usize,
    /// Flows started.
    pub started: usize,
    /// Conservative windows executed.
    pub rounds: u64,
    /// Cross-site packets injected at barriers.
    pub cross_messages: u64,
    /// Discrete events processed, summed over sites.
    pub events: u64,
    /// Virtual time reached (max over sites), nanoseconds.
    pub virtual_ns: u64,
}

/// Run the scenario on `threads` shard workers. Output is independent of
/// `threads` — that is the whole point.
pub fn run(scale: Scale, threads: usize) -> ShardedOutcome {
    run_with(scale, threads, false).0
}

/// [`run`] with observers: when `telemetry` is set the per-window shard
/// runtime records come back alongside the outcome; a stderr heartbeat
/// fires every few seconds while `harness::progress_on()` (never touching
/// `out/` — byte-identity across `--jobs`/`--shards` is preserved).
pub fn run_with(
    scale: Scale,
    threads: usize,
    telemetry: bool,
) -> (ShardedOutcome, Option<Vec<WindowTelemetry>>) {
    let started = SITES * hosts_per_site(scale) * flows_per_host(scale);
    let last_beat: Mutex<Instant> = Mutex::new(Instant::now());
    let heartbeat = move |b: &Heartbeat| {
        if !crate::harness::progress_on() {
            return;
        }
        let mut last = last_beat.lock().unwrap();
        if last.elapsed() < Duration::from_secs(2) {
            return;
        }
        *last = Instant::now();
        eprintln!(
            ":: planetlab100k: window {}, virtual {:.1}s, {}/{} flows done across {} sites",
            b.round,
            b.now_ns as f64 / 1e9,
            b.done,
            started,
            b.parts,
        );
    };
    let progress = move |_rank: usize, sim: &mut TransportSim| flows_done(sim, scale);
    let hooks = ShardHooks {
        telemetry,
        progress: Some(&progress),
        heartbeat: Some(&heartbeat),
    };
    let run = run_sharded_with(
        SITES,
        threads,
        Some(SimTime::ZERO + HORIZON),
        hooks,
        |s, handle: &mut ShardHandle<Header>| build_site(s, handle, scale),
        |s, sim: &mut TransportSim| finish_site(s, sim, scale),
    );
    let mut fct = WindowedSketch::new(FCT_WINDOW_NS, FCT_WARMUP_NS);
    let mut completed = 0;
    let mut aborted = 0;
    let (mut events, mut now_ns) = (0u64, 0u64);
    // Merge in rank order: bucket counts make the merge exact, and the
    // fixed order makes the float mean deterministic too.
    for tally in run.results {
        assert_eq!(tally.unroutable, 0, "site router dropped routable traffic");
        fct.merge(&tally.fct);
        completed += tally.completed;
        aborted += tally.aborted;
        events += tally.events;
        now_ns = now_ns.max(tally.now_ns);
    }
    crate::harness::meter_add(now_ns, events);
    (
        ShardedOutcome {
            censored: started - completed - aborted,
            completed,
            aborted,
            started,
            fct,
            rounds: run.rounds,
            cross_messages: run.cross_messages,
            events,
            virtual_ns: now_ns,
        },
        run.telemetry,
    )
}

/// Render the `planetlab100k` figure: Halfback's FCT distribution at
/// 100 K+ concurrent flows, plus run-shape notes. Everything here is a
/// function of the scenario alone — shard-thread count never leaks in
/// (the telemetry JSONL quarantines its wall-clock fields separately).
pub fn figures(scale: Scale) -> Vec<Figure> {
    let tele_path = crate::harness::telemetry_path();
    let run_started = Instant::now();
    let (out, tele) = run_with(scale, crate::harness::shards(), tele_path.is_some());
    // This scenario parallelizes inside one simulation rather than through
    // the job pool, so it files its own metrics entry for the per-job
    // report and the run manifest.
    crate::harness::push_metrics(crate::harness::JobMetrics {
        key: "planetlab100k".into(),
        wall: run_started.elapsed(),
        virtual_ns: out.virtual_ns,
        events: out.events,
        ok: true,
    });
    if let (Some(path), Some(records)) = (&tele_path, &tele) {
        if let Err(e) = crate::telemetry::write_jsonl(path, "planetlab100k", SITES, records) {
            eprintln!("warning: telemetry write to {} failed: {e}", path.display());
        }
    }

    // The registry is the aggregation surface: counters plus the FCT
    // quantile sketch, merged exactly — no per-flow state anywhere.
    let agg = out.fct.aggregate();
    let mut reg = MetricsRegistry::new();
    reg.inc("flows_started", out.started as u64);
    reg.inc("flows_completed", out.completed as u64);
    reg.inc("flows_aborted", out.aborted as u64);
    reg.inc("flows_censored", out.censored as u64);
    reg.merge_sketch("fct_ms", &agg);
    crate::harness::note_sketch_mem(reg.sketch_memory_bytes() + out.fct.memory_bytes());

    let mut fig = Figure::new(
        "planetlab100k",
        "Scaled PlanetLab: Halfback FCT at 100K+ concurrent short flows (CDF)",
        "latency (ms)",
        "percent of flows",
    );
    fig.push_series("Halfback", agg.cdf_series());
    fig.note(format!(
        "{} flows started: {} sites x {} hosts x {} flows/host, {} B each, all at t=0",
        out.started,
        SITES,
        hosts_per_site(scale),
        flows_per_host(scale),
        FLOW_BYTES,
    ));
    fig.note(format!(
        "completed {}, aborted {}, censored {} (horizon {}s)",
        out.completed,
        out.aborted,
        out.censored,
        HORIZON.as_secs_f64(),
    ));
    for line in reg.render_lines() {
        fig.note(line);
    }
    let per_window: Vec<String> = out
        .fct
        .windows()
        .iter()
        .map(|w| w.count().to_string())
        .collect();
    fig.note(format!(
        "completions per {}s window: {}",
        FCT_WINDOW_NS / 1_000_000_000,
        per_window.join("/"),
    ));
    fig.note(format!(
        "sharded engine: {} partitions, {} conservative windows, {} cross-site packet crossings",
        SITES, out.rounds, out.cross_messages,
    ));
    vec![fig]
}

//! Fig. 17: the §5 design-space ablation — startup phase × proactive
//! retransmission (bandwidth, direction, rate) — on the same all-short-flow
//! utilization sweep as Fig. 12.

use crate::figures::feasible::{self, FeasibleData};
use crate::metrics::feasible_capacity;
use crate::report::Figure;
use crate::{Protocol, Scale};

/// Run the sweep over the ablation protocol set, one harness job per
/// (protocol, utilization) cell.
pub fn run(scale: Scale) -> FeasibleData {
    FeasibleData {
        sweeps: feasible::sweep_many(&Protocol::ABLATION, scale, 42),
    }
}

/// Render Fig. 17.
pub fn figures(scale: Scale) -> Vec<Figure> {
    let data = run(scale);
    let mut fig = Figure::new(
        "fig17",
        "FCT and feasible capacity for startup/recovery design choices",
        "utilization (%)",
        "mean FCT (ms)",
    );
    for (p, points) in &data.sweeps {
        fig.push_series(
            p.name(),
            points
                .iter()
                .map(|pt| (pt.utilization * 100.0, pt.stats.mean_ms))
                .collect(),
        );
        let fc = feasible_capacity(
            points,
            feasible::COLLAPSE_FACTOR,
            feasible::COLLAPSE_FLOOR_MS,
            feasible::MIN_COMPLETION,
        );
        fig.note(format!(
            "{}: feasible capacity {:.0}%",
            p.name(),
            fc * 100.0
        ));
    }
    // The §5 claims, as checkable notes.
    let fc_of = |p: Protocol| {
        data.sweeps
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, pts)| {
                feasible_capacity(
                    pts,
                    feasible::COLLAPSE_FACTOR,
                    feasible::COLLAPSE_FLOOR_MS,
                    feasible::MIN_COMPLETION,
                )
            })
            .unwrap_or(0.0)
    };
    fig.note(format!(
        "direction: Halfback {:.0}% vs Halfback-Forward {:.0}% (paper: 70% vs 35%)",
        fc_of(Protocol::Halfback) * 100.0,
        fc_of(Protocol::HalfbackForward) * 100.0
    ));
    fig.note(format!(
        "rate: Halfback {:.0}% vs Halfback-Burst {:.0}% (paper: burst 'significantly smaller')",
        fc_of(Protocol::Halfback) * 100.0,
        fc_of(Protocol::HalfbackBurst) * 100.0
    ));
    fig.note(format!(
        "bandwidth: TCP {:.0}% (0% extra) vs Halfback {:.0}% (~50%) vs Proactive {:.0}% (100%)",
        fc_of(Protocol::Tcp) * 100.0,
        fc_of(Protocol::Halfback) * 100.0,
        fc_of(Protocol::Proactive) * 100.0
    ));
    vec![fig]
}

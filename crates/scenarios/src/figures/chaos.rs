//! Robustness sweep (`repro chaos`): every scheme against a battery of
//! deterministic fault scenarios on a single path — link flapping,
//! blackhole windows, a permanent blackout, heavy reordering, duplication,
//! corruption, and mid-run bandwidth/delay steps.
//!
//! Each cell runs `n_flows` sequential 150 KB transfers and asserts the
//! substrate invariants from the fault-injection contract *inside the
//! cell*: every flow ends Completed or Aborted, packet conservation holds
//! on both links, and the simulation drains to zero live timers. A cell
//! that violates an invariant (or trips the per-job watchdog) panics; the
//! harness isolates it and the figure reports it as a FAILED row, so one
//! pathological (scenario, scheme) pair cannot hide the rest of the table.
//! The totals line `invariant violations: 0` is what CI greps for.

use crate::report::Figure;
use crate::runner::run_until_checked;
use crate::{Protocol, Scale};
use baselines::path_cache;
use netsim::engine::TraceEvent;
use netsim::loss::LossModel;
use netsim::topology::{build_path, PathSpec};
use netsim::{FaultSpec, FlowId, Rate, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;
use transport::{FlowRecord, Host, TransportSim};

/// Payload of every chaos flow: a "short flow" big enough to straddle
/// fault windows (150 KB ≈ 100 segments, ~120 ms clean FCT at 10 Mbps).
const FLOW_BYTES: u64 = 150_000;
/// Gap between sequential flow arrivals.
const SPACING_MS: u64 = 2_000;
/// Drain time after the last arrival: must cover the slowest give-up
/// (~63 s of exponential RTO backoff before `MaxRetransmits`).
const GRACE: SimDuration = SimDuration::from_secs(240);
/// Watchdog: virtual-time cap per cell (far above the ~290 s a healthy
/// cell needs; a livelocked cell fails alone instead of hanging `repro`).
const CELL_VIRTUAL_CAP_NS: u64 = 1_800 * 1_000_000_000;
/// Watchdog: event-count cap per cell.
const CELL_EVENT_CAP: u64 = 50_000_000;

fn t(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

/// One fault scenario: a name for the table plus the path perturbation.
pub struct Scenario {
    /// Row label.
    pub name: &'static str,
    /// Random loss on the data direction (kitchen-sink only).
    pub loss: f64,
    /// Fault schedule installed on the data-direction link.
    pub faults: FaultSpec,
}

/// The scenario battery. `span_ms` is the arrival span of the flows, so
/// periodic faults cover every arrival at whatever scale runs.
pub fn scenarios(span_ms: u64) -> Vec<Scenario> {
    // 100 ms outages every 700 ms: flows hit the flap at varying phases.
    let mut flap = FaultSpec::none();
    let mut at = 300;
    while at < span_ms + 2_000 {
        flap = flap.down_window(t(at), t(at + 100));
        at += 700;
    }
    // A sparser flap for the kitchen sink (combined with everything else).
    let mut sink = FaultSpec::none();
    let mut at = 900;
    while at < span_ms + 2_000 {
        sink = sink.down_window(t(at), t(at + 100));
        at += 2_900;
    }
    vec![
        Scenario {
            name: "baseline",
            loss: 0.0,
            faults: FaultSpec::none(),
        },
        Scenario {
            name: "flap",
            loss: 0.0,
            faults: flap,
        },
        Scenario {
            name: "blackhole",
            loss: 0.0,
            faults: FaultSpec::none().blackhole_window(t(3_000), t(6_000)),
        },
        // The link goes down at 2 s and never comes back: the first flow
        // completes, every later flow must give up (SYN timeout).
        Scenario {
            name: "blackout",
            loss: 0.0,
            faults: FaultSpec::none().down_window(t(2_000), t(10_000_000)),
        },
        Scenario {
            name: "reorder",
            loss: 0.0,
            faults: FaultSpec::none().with_reorder(0.5, SimDuration::from_millis(30)),
        },
        Scenario {
            name: "duplicate",
            loss: 0.0,
            faults: FaultSpec::none().with_duplication(0.3),
        },
        Scenario {
            name: "corrupt",
            loss: 0.0,
            faults: FaultSpec::none().with_corruption(0.1),
        },
        // 10 -> 1 Mbps between 3 s and 9 s.
        Scenario {
            name: "rate-step",
            loss: 0.0,
            faults: FaultSpec::none()
                .rate_step(t(3_000), Rate::from_mbps(1))
                .rate_step(t(9_000), Rate::from_mbps(10)),
        },
        // One-way delay 20 -> 100 ms between 3 s and 9 s.
        Scenario {
            name: "delay-step",
            loss: 0.0,
            faults: FaultSpec::none()
                .delay_step(t(3_000), SimDuration::from_millis(100))
                .delay_step(t(9_000), SimDuration::from_millis(20)),
        },
        Scenario {
            name: "kitchen-sink",
            loss: 0.02,
            faults: sink
                .with_reorder(0.3, SimDuration::from_millis(20))
                .with_duplication(0.1)
                .with_corruption(0.02)
                .rate_step(t(5_000), Rate::from_mbps(2)),
        },
    ]
}

/// Outcome of one (scenario, protocol) cell.
#[derive(Debug, Clone, Copy)]
pub struct CellStats {
    /// Flows that delivered every byte.
    pub completed: usize,
    /// Flows that gave up (max retransmissions / SYN timeout).
    pub aborted: usize,
    /// Mean FCT over completed flows (NaN when none completed).
    pub mean_fct_ms: f64,
    /// Transmission/link accounting for the metrics registry.
    pub metrics: CellMetrics,
}

/// Per-cell counters surfaced through the chaos [`crate::metrics::MetricsRegistry`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CellMetrics {
    /// Data packets sent across all flows (terminal states included).
    pub data_packets: u64,
    /// Normal (reactive) retransmissions.
    pub normal_retx: u64,
    /// Proactive copies.
    pub proactive_retx: u64,
    /// RTO fires.
    pub rto_fires: u64,
    /// Congestion (queue) drops, both links.
    pub queue_drops: u64,
    /// Non-queue link losses (wire loss + down windows + blackholes), both
    /// links.
    pub link_lost: u64,
}

/// Run one cell and assert the fault-injection invariants. Panics (with
/// the scenario/protocol in the message) on any violation; the caller's
/// harness isolation turns that into a FAILED table row.
pub fn run_cell(sc: &Scenario, protocol: Protocol, n_flows: usize, seed: u64) -> CellStats {
    let mut spec = PathSpec::clean(Rate::from_mbps(10), SimDuration::from_millis(40))
        .with_faults(sc.faults.clone());
    if sc.loss > 0.0 {
        spec.loss = LossModel::Bernoulli { p: sc.loss };
    }
    let mut sim = TransportSim::new(seed);
    let net = build_path(&mut sim, &spec, |_| Box::new(Host::new()));
    sim.with_node_mut::<Host, _>(net.sender, |h, _| h.wire(net.sender, net.forward));
    sim.with_node_mut::<Host, _>(net.receiver, |h, _| h.wire(net.receiver, net.reverse));

    // Per-endpoint delivery / checksum-drop counts for the wire-side
    // conservation equation (the link-side terms come from `LinkStats`).
    let arrived = Rc::new(RefCell::new([[0u64; 2]; 2]));
    let a2 = arrived.clone();
    let (snd, rcv) = (net.sender, net.receiver);
    sim.set_tracer(Box::new(move |_, ev| {
        let (node, slot) = match *ev {
            TraceEvent::Deliver { node, .. } => (node, 0),
            TraceEvent::CorruptDrop { node, .. } => (node, 1),
            _ => return,
        };
        let row = usize::from(node == rcv);
        debug_assert!(node == snd || node == rcv);
        a2.borrow_mut()[row][slot] += 1;
    }));

    let cache = path_cache();
    for i in 0..n_flows {
        run_until_checked(&mut sim, t(i as u64 * SPACING_MS));
        let strategy = protocol.make(&cache, (net.sender, net.receiver));
        sim.with_node_mut::<Host, _>(net.sender, |h, core| {
            h.start_flow(
                core,
                FlowId(i as u64 + 1),
                net.receiver,
                FLOW_BYTES,
                strategy,
            )
        });
    }
    run_until_checked(&mut sim, t((n_flows as u64 - 1) * SPACING_MS) + GRACE);

    let cell = format!("{}/{}", sc.name, protocol.name());
    let records: Vec<FlowRecord> = sim
        .node_as::<Host>(net.sender)
        .unwrap()
        .completed()
        .to_vec();
    let (completed, aborted): (Vec<FlowRecord>, Vec<FlowRecord>) =
        records.into_iter().partition(|r| r.outcome.is_completed());

    // Invariant: every flow reached a terminal state (Completed/Aborted).
    assert_eq!(
        completed.len() + aborted.len(),
        n_flows,
        "{cell}: {} flows neither completed nor aborted at drain",
        n_flows - completed.len() - aborted.len()
    );
    // Invariant: with all flows terminal, the simulation drains clean —
    // no live timers, no busy links, no queued packets.
    sim.run_to_completion(10_000_000);
    crate::harness::meter_add(
        sim.now().saturating_since(SimTime::ZERO).as_nanos(),
        sim.events_processed(),
    );
    sim.assert_drained();

    // Invariant: packet conservation on both links. Offer side: every
    // offered packet was down-dropped, queue-dropped, or serialized.
    // Wire side: every serialized packet plus every duplicate copy was
    // wire-lost, blackholed, checksum-dropped, or delivered.
    let mut metrics = CellMetrics::default();
    let arrived = arrived.borrow();
    for (dir, link, [delivered, corrupt]) in [
        ("fwd", net.forward, arrived[1]),
        ("rev", net.reverse, arrived[0]),
    ] {
        let s = sim.link_stats(link);
        let q = sim.queue_stats(link);
        assert_eq!(
            s.down_dropped + q.dropped + s.tx_packets,
            s.offered,
            "{cell}/{dir}: offer-side conservation violated"
        );
        assert_eq!(
            s.tx_packets + s.duplicated,
            s.wire_lost + s.blackholed + corrupt + delivered,
            "{cell}/{dir}: wire-side conservation violated"
        );
        assert_eq!(q.enqueued, q.dequeued, "{cell}/{dir}: queue not drained");
        metrics.queue_drops += q.dropped;
        metrics.link_lost += s.lost_total();
    }
    for r in completed.iter().chain(aborted.iter()) {
        metrics.data_packets += r.counters.data_packets_sent;
        metrics.normal_retx += r.counters.normal_retx;
        metrics.proactive_retx += r.counters.proactive_retx;
        metrics.rto_fires += r.counters.rto_events;
    }

    let mean_fct_ms = if completed.is_empty() {
        f64::NAN
    } else {
        completed
            .iter()
            .map(|r| r.fct.as_nanos() as f64 / 1e6)
            .sum::<f64>()
            / completed.len() as f64
    };
    CellStats {
        completed: completed.len(),
        aborted: aborted.len(),
        mean_fct_ms,
        metrics,
    }
}

/// Render the chaos survival table.
pub fn figures(scale: Scale) -> Vec<Figure> {
    let n_flows = scale.pick(24, 8);
    let span_ms = (n_flows as u64 - 1) * SPACING_MS;
    let scens = scenarios(span_ms);
    let protos = Protocol::EVALUATED;

    // One harness job per cell, under the watchdog: a livelocked cell
    // panics through the isolation path instead of hanging the sweep.
    let (prev_ns, prev_ev) = crate::harness::job_caps();
    crate::harness::set_job_caps(CELL_VIRTUAL_CAP_NS, CELL_EVENT_CAP);
    let mut jobs = Vec::new();
    for (si, sc) in scens.iter().enumerate() {
        for p in protos {
            jobs.push(crate::harness::Job::new(
                format!("chaos/{}/{}", sc.name, p.name()),
                move || run_cell(sc, p, n_flows, 0xC4A0_5EED + si as u64),
            ));
        }
    }
    let results = crate::harness::run_jobs(jobs);
    crate::harness::set_job_caps(prev_ns, prev_ev);

    let mut fig = Figure::new(
        "chaos",
        "Robustness: survival and FCT degradation under injected faults",
        "fault scenario index",
        "flows completed (%)",
    );
    for (si, sc) in scens.iter().enumerate() {
        fig.note(format!("S{si} = {}", sc.name));
    }
    // Per-protocol baseline FCT (scenario 0) for the degradation column.
    let base: Vec<f64> = (0..protos.len())
        .map(|pi| match &results[pi] {
            Ok(c) => c.mean_fct_ms,
            Err(_) => f64::NAN,
        })
        .collect();
    let mut violations = 0usize;
    let mut watchdog_trips = 0usize;
    for (si, sc) in scens.iter().enumerate() {
        for (pi, p) in protos.iter().enumerate() {
            match &results[si * protos.len() + pi] {
                Ok(c) => {
                    let fct = if c.mean_fct_ms.is_nan() {
                        "-".to_string()
                    } else {
                        format!("{:.1} ms", c.mean_fct_ms)
                    };
                    let degr = if c.mean_fct_ms.is_nan() || base[pi].is_nan() || base[pi] <= 0.0 {
                        "n/a".to_string()
                    } else {
                        format!("{:.2}x baseline", c.mean_fct_ms / base[pi])
                    };
                    fig.note(format!(
                        "{:>12}/{:<9} {:>2}/{} completed, {:>2} aborted, mean FCT {fct} ({degr})",
                        sc.name,
                        p.name(),
                        c.completed,
                        n_flows,
                        c.aborted,
                    ));
                }
                Err(e) => {
                    violations += 1;
                    if e.message.contains("watchdog") {
                        watchdog_trips += 1;
                    }
                    fig.note(format!(
                        "{:>12}/{:<9} FAILED — {}",
                        sc.name,
                        p.name(),
                        e.message
                    ));
                }
            }
        }
    }
    for (pi, p) in protos.iter().enumerate() {
        let pts: Vec<(f64, f64)> = (0..scens.len())
            .map(|si| {
                let y = match &results[si * protos.len() + pi] {
                    Ok(c) => 100.0 * c.completed as f64 / n_flows as f64,
                    Err(_) => 0.0,
                };
                (si as f64, y)
            })
            .collect();
        fig.push_series(p.name(), pts);
    }
    fig.note(format!("invariant violations: {violations}"));
    fig.note(format!("watchdog trips: {watchdog_trips}"));
    // Aggregate the per-cell counters through the metrics registry, in
    // submission order (the order `run_jobs` returns results), so the
    // totals are identical for any --jobs N.
    let mut registry = crate::metrics::MetricsRegistry::new();
    for r in results.iter().flatten() {
        let m = &r.metrics;
        let mut cell = crate::metrics::MetricsRegistry::new();
        cell.inc("chaos.data_packets", m.data_packets);
        cell.inc("chaos.retx.normal", m.normal_retx);
        cell.inc("chaos.retx.proactive", m.proactive_retx);
        cell.inc("chaos.rto.fires", m.rto_fires);
        cell.inc("chaos.link.queue_drops", m.queue_drops);
        cell.inc("chaos.link.lost", m.link_lost);
        if !r.mean_fct_ms.is_nan() {
            cell.observe("chaos.fct_ms", r.mean_fct_ms);
        }
        registry.merge(cell);
    }
    for line in registry.render_lines() {
        fig.note(line);
    }
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_cell_all_complete() {
        let scens = scenarios(14_000);
        let c = run_cell(&scens[0], Protocol::Halfback, 4, 7);
        assert_eq!((c.completed, c.aborted), (4, 0));
        assert!(c.mean_fct_ms > 0.0 && c.mean_fct_ms < 1_000.0);
    }

    #[test]
    fn blackout_forces_aborts_not_hangs() {
        let scens = scenarios(14_000);
        let blackout = scens.iter().find(|s| s.name == "blackout").unwrap();
        let c = run_cell(blackout, Protocol::Tcp, 4, 7);
        // The pre-blackout flow completes; everyone after gives up.
        assert_eq!(c.completed, 1, "only the first flow beats the blackout");
        assert_eq!(c.aborted, 3, "later flows must abort, not hang");
    }

    #[test]
    fn corruption_degrades_but_flows_survive() {
        let scens = scenarios(14_000);
        let corrupt = scens.iter().find(|s| s.name == "corrupt").unwrap();
        let base = run_cell(&scens[0], Protocol::Halfback, 4, 7);
        let c = run_cell(corrupt, Protocol::Halfback, 4, 7);
        assert_eq!(c.completed, 4, "10% corruption must not kill flows");
        assert!(
            c.mean_fct_ms > base.mean_fct_ms,
            "corruption should cost time: {:.1} vs {:.1} ms",
            c.mean_fct_ms,
            base.mean_fct_ms
        );
    }

    #[test]
    fn chaos_figure_reports_zero_violations() {
        let figs = figures(Scale::Quick);
        assert_eq!(figs.len(), 1);
        let f = &figs[0];
        assert_eq!(f.series.len(), Protocol::EVALUATED.len());
        assert!(
            f.summary.iter().any(|l| l == "invariant violations: 0"),
            "summary: {:#?}",
            f.summary
        );
        assert!(f.summary.iter().any(|l| l == "watchdog trips: 0"));
        // Baseline row: every scheme completes every flow.
        for s in &f.series {
            assert_eq!(s.points[0], (0.0, 100.0), "{}: baseline survival", s.label);
        }
    }
}

//! Figs. 5–8: the global-Internet (PlanetLab-substitute) evaluation.
//!
//! §4.2.1: ~2.6 K node pairs, 100 KB flows, FCT includes connection setup.
//! Our substitute runs each scheme over the same synthetic path population
//! (see `workload::paths::planetlab_paths`), one flow per path per scheme.

use crate::metrics::{fct_ecdf, retx_ecdf, rtt_count_ecdf};
use crate::report::Figure;
use crate::runner::{run_path, FlowPlan};
use crate::{Protocol, Scale};
use netsim::{SimDuration, SimTime};
use transport::sender::FlowRecord;
use workload::planetlab_paths;

/// Flow size used throughout §4.2 (100 KB).
pub const FLOW_BYTES: u64 = 100_000;

/// Per-path results across schemes.
pub struct PlanetlabData {
    /// `per_path[i]` holds, for path `i`, each scheme's record (None =
    /// censored: the flow never finished).
    pub per_path: Vec<Vec<(Protocol, Option<FlowRecord>)>>,
}

impl PlanetlabData {
    /// All completed records of one scheme.
    pub fn records(&self, p: Protocol) -> Vec<FlowRecord> {
        self.per_path
            .iter()
            .flat_map(|row| {
                row.iter()
                    .filter(|(q, _)| *q == p)
                    .filter_map(|(_, r)| r.clone())
            })
            .collect()
    }

    /// Indices of paths where loss visibly struck *some* scheme (the
    /// paper's "25% of cases where packet loss does happen"). Halfback can
    /// mask loss without a normal retransmission, so the union over schemes
    /// defines the lossy subset.
    pub fn lossy_paths(&self) -> Vec<usize> {
        self.per_path
            .iter()
            .enumerate()
            .filter(|(_, row)| {
                row.iter().any(|(_, r)| match r {
                    Some(rec) => rec.counters.normal_retx > 0 || rec.counters.rto_events > 0,
                    None => true,
                })
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Completed records of one scheme on a path subset.
    pub fn records_on(&self, p: Protocol, paths: &[usize]) -> Vec<FlowRecord> {
        paths
            .iter()
            .flat_map(|&i| {
                self.per_path[i]
                    .iter()
                    .filter(|(q, _)| *q == p)
                    .filter_map(|(_, r)| r.clone())
            })
            .collect()
    }
}

/// Paths per harness job: each job simulates every scheme over one chunk
/// of the path population (fine enough to saturate the pool, coarse
/// enough to keep progress output readable at 2.6 K paths).
const PATHS_PER_JOB: usize = 64;

/// Run every PlanetLab scheme over the path population, fanned out as one
/// harness job per path chunk.
pub fn run(scale: Scale) -> PlanetlabData {
    let n = scale.pick(2600, 150);
    let paths = planetlab_paths(n, 17);
    let chunks: Vec<(usize, &[netsim::topology::PathSpec])> = paths
        .chunks(PATHS_PER_JOB)
        .enumerate()
        .map(|(c, chunk)| (c * PATHS_PER_JOB, chunk))
        .collect();
    let rows = crate::harness::parallel_map(
        chunks,
        |&(start, chunk)| format!("fig5-8/paths[{start}..{}]", start + chunk.len()),
        |(start, chunk)| {
            chunk
                .iter()
                .enumerate()
                .map(|(j, spec)| {
                    let i = start + j;
                    Protocol::PLANETLAB
                        .into_iter()
                        .map(|p| {
                            let plan = [FlowPlan {
                                at: SimTime::ZERO,
                                bytes: FLOW_BYTES,
                                protocol: p,
                            }];
                            // Same seed per path across schemes: identical
                            // wire-loss draws for the packets each scheme
                            // exposes.
                            let (recs, _) =
                                run_path(spec, &plan, 1000 + i as u64, SimDuration::from_secs(180));
                            (p, recs.into_iter().next())
                        })
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        },
    );
    PlanetlabData {
        per_path: rows.into_iter().flatten().collect(),
    }
}

/// Render Figs. 5, 6, 7 and 8 from one run.
pub fn figures(scale: Scale) -> Vec<Figure> {
    let data = run(scale);
    let mut figs = Vec::new();

    // CCDF companions (the paper's (b) panels) are emitted alongside each
    // CDF figure.
    let mut fig5b = Figure::new(
        "fig5b",
        "Number of normal TCP retransmissions (complementary CDF)",
        "normal retransmissions",
        "percent of trials",
    );
    let mut fig6b = Figure::new(
        "fig6b",
        "Flow completion time of short flows (complementary CDF)",
        "latency (ms)",
        "percent of trials",
    );
    let mut fig7b = Figure::new(
        "fig7b",
        "Number of RTTs used per short flow (complementary CDF)",
        "number of RTTs",
        "percent of trials",
    );

    // Fig. 5: number of normal retransmissions, CDF.
    let mut fig5 = Figure::new(
        "fig5",
        "Number of normal TCP retransmissions of short flows (CDF)",
        "normal retransmissions",
        "percent of trials",
    );
    for p in Protocol::PLANETLAB {
        let recs = data.records(p);
        let mut e = retx_ecdf(&recs);
        fig5b.push_series(p.name(), e.ccdf_series());
        fig5.push_series(p.name(), e.cdf_series());
        let zero = recs.iter().filter(|r| r.counters.normal_retx == 0).count();
        fig5.note(format!(
            "{}: {:.0}% of trials with zero normal retransmissions",
            p.name(),
            100.0 * zero as f64 / recs.len().max(1) as f64
        ));
    }
    // Metrics-registry columns: per-scheme retransmit ratios over the whole
    // population (normal and proactive copies per data packet sent).
    let mut registry = crate::metrics::MetricsRegistry::new();
    for p in Protocol::PLANETLAB {
        for r in data.records(p) {
            let mut one = crate::metrics::MetricsRegistry::new();
            one.inc(
                &format!("{}.data_packets", p.name()),
                r.counters.data_packets_sent,
            );
            one.inc(&format!("{}.retx.normal", p.name()), r.counters.normal_retx);
            one.inc(
                &format!("{}.retx.proactive", p.name()),
                r.counters.proactive_retx,
            );
            one.inc(&format!("{}.rto.fires", p.name()), r.counters.rto_events);
            registry.merge(one);
        }
    }
    for p in Protocol::PLANETLAB {
        let data_pkts = registry.counter(&format!("{}.data_packets", p.name()));
        fig5.note(format!(
            "{}: retx ratio {:.4} normal, {:.4} proactive (of {} data packets)",
            p.name(),
            registry.counter(&format!("{}.retx.normal", p.name())) as f64 / data_pkts.max(1) as f64,
            registry.counter(&format!("{}.retx.proactive", p.name())) as f64
                / data_pkts.max(1) as f64,
            data_pkts
        ));
    }
    figs.push(fig5);

    // Fig. 6: FCT CDF plus the paper's headline means.
    let mut fig6 = Figure::new(
        "fig6",
        "Flow completion time of short flows (CDF)",
        "latency (ms)",
        "percent of trials",
    );
    let mut means = Vec::new();
    for p in Protocol::PLANETLAB {
        let recs = data.records(p);
        let mut e = fct_ecdf(&recs);
        let mean = e.mean().unwrap_or(f64::NAN);
        let p99 = e.percentile(99.0).unwrap_or(f64::NAN);
        fig6b.push_series(p.name(), e.ccdf_series());
        fig6.push_series(p.name(), e.cdf_series());
        fig6.note(format!(
            "{}: mean FCT {:.0} ms, 99th pct {:.0} ms",
            p.name(),
            mean,
            p99
        ));
        means.push((p, mean));
    }
    let mean_of = |p: Protocol| {
        means
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, m)| *m)
            .unwrap_or(f64::NAN)
    };
    let hb = mean_of(Protocol::Halfback);
    fig6.note(format!(
        "Halfback vs JumpStart: {:.1}% lower mean FCT (paper: 13%)",
        100.0 * (1.0 - hb / mean_of(Protocol::JumpStart))
    ));
    fig6.note(format!(
        "Halfback vs TCP: {:.1}% lower (paper: 52%); vs TCP-10: {:.1}% (29%); vs Reactive: {:.1}% (51%); vs Proactive: {:.1}% (61%)",
        100.0 * (1.0 - hb / mean_of(Protocol::Tcp)),
        100.0 * (1.0 - hb / mean_of(Protocol::Tcp10)),
        100.0 * (1.0 - hb / mean_of(Protocol::Reactive)),
        100.0 * (1.0 - hb / mean_of(Protocol::Proactive)),
    ));
    for p in Protocol::PLANETLAB {
        fig6.note(format!(
            "{}: {} RTO fires across the population",
            p.name(),
            registry.counter(&format!("{}.rto.fires", p.name()))
        ));
    }
    figs.push(fig6);

    // Fig. 7: FCT in RTTs.
    let mut fig7 = Figure::new(
        "fig7",
        "Number of RTTs used per short flow (CDF)",
        "number of RTTs",
        "percent of trials",
    );
    for p in Protocol::PLANETLAB {
        let recs = data.records(p);
        let mut e = rtt_count_ecdf(&recs);
        let med = e.median().unwrap_or(f64::NAN);
        fig7b.push_series(p.name(), e.ccdf_series());
        fig7.push_series(p.name(), e.cdf_series());
        fig7.note(format!("{}: median {:.1} RTTs", p.name(), med));
    }
    figs.push(fig7);

    // Fig. 8: FCT CDF on the lossy subset.
    let lossy = data.lossy_paths();
    let mut fig8 = Figure::new(
        "fig8",
        "FCT under cases where packet loss happened (CDF)",
        "latency (ms)",
        "percent of trials",
    );
    fig8.note(format!(
        "lossy subset: {} of {} paths ({:.0}%; paper: ~25%)",
        lossy.len(),
        data.per_path.len(),
        100.0 * lossy.len() as f64 / data.per_path.len().max(1) as f64
    ));
    let mut med = Vec::new();
    for p in Protocol::PLANETLAB {
        let recs = data.records_on(p, &lossy);
        let mut e = fct_ecdf(&recs);
        med.push((p, e.median().unwrap_or(f64::NAN)));
        fig8.push_series(p.name(), e.cdf_series());
    }
    let med_of = |p: Protocol| {
        med.iter()
            .find(|(q, _)| *q == p)
            .map(|(_, m)| *m)
            .unwrap_or(f64::NAN)
    };
    fig8.note(format!(
        "Halfback median under loss: {:.0} ms vs JumpStart {:.0} ms ({:.0}% lower; paper: 21%)",
        med_of(Protocol::Halfback),
        med_of(Protocol::JumpStart),
        100.0 * (1.0 - med_of(Protocol::Halfback) / med_of(Protocol::JumpStart)),
    ));
    figs.push(fig8);
    figs.push(fig5b);
    figs.push(fig6b);
    figs.push(fig7b);

    let _ = scale;
    figs
}

//! Table 1: the design-space taxonomy (startup phase × lost-packet
//! recovery), rendered from the protocol registry's declared properties.

use crate::report::Figure;
use crate::{Protocol, Scale};

/// Render Table 1.
pub fn figures(_scale: Scale) -> Vec<Figure> {
    let mut fig = Figure::new(
        "table1",
        "Startup phase and lost-packet recovery design space",
        "-",
        "-",
    );
    fig.note(format!(
        "{:<20} {:<30} {:<16} {:<16} {:<12}",
        "scheme", "startup", "extra bandwidth", "retx direction", "retx rate"
    ));
    for p in Protocol::EVALUATED
        .into_iter()
        .chain([Protocol::HalfbackForward, Protocol::HalfbackBurst])
    {
        let (startup, bw, dir, rate) = p.table1_row();
        fig.note(format!(
            "{:<20} {:<30} {:<16} {:<16} {:<12}",
            p.name(),
            startup,
            bw,
            dir,
            rate
        ));
    }
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lists_all_evaluated_schemes() {
        let figs = figures(Scale::Quick);
        let text = figs[0].summary.join("\n");
        for p in Protocol::EVALUATED {
            assert!(text.contains(p.name()), "missing {p}");
        }
        assert!(text.contains("reverse order"));
        assert!(text.contains("line rate"));
    }
}

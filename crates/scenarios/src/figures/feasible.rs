//! Figs. 12 and 1: the all-short-flow utilization sweep and the
//! latency-vs-feasible-capacity tradeoff derived from it.
//!
//! §4.3.1: 100 KB flows, identical Poisson arrival schedules per
//! utilization, utilization swept 5–90 % in 5 % steps. Feasible capacity is
//! the knee before FCT/completion collapse.

use crate::metrics::{feasible_capacity, FctStats, SweepPoint};
use crate::report::Figure;
use crate::runner::{plans_from_schedule, run_dumbbell, RunOptions};
use crate::{Protocol, Scale};
use netsim::rng::SimRng;
use netsim::topology::DumbbellSpec;
use netsim::{SimDuration, SimTime};
use workload::Schedule;

/// Collapse detection: mean FCT above this multiple of the low-load mean.
pub const COLLAPSE_FACTOR: f64 = 4.0;
/// Collapse detection: absolute mean-FCT floor in ms (a scheme is not
/// "collapsed" while flows still finish in ~1 RTT-scale times).
pub const COLLAPSE_FLOOR_MS: f64 = 1200.0;
/// Collapse detection: completion rate below this.
pub const MIN_COMPLETION: f64 = 0.9;

/// The utilizations scanned.
pub fn utilizations(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Full => (1..=18).map(|i| i as f64 * 0.05).collect(),
        Scale::Quick => vec![0.05, 0.2, 0.35, 0.5, 0.6, 0.7, 0.8],
    }
}

/// One sweep cell: `protocol` at offered utilization `u`, one full
/// dumbbell simulation. The unit of parallelism for Figs. 1/12/17 and the
/// ratio/variance/sensitivity extensions.
pub fn point(protocol: Protocol, u: f64, scale: Scale, seed: u64) -> SweepPoint {
    let spec = DumbbellSpec::emulab(1);
    let horizon =
        SimTime::ZERO + scale.pick(SimDuration::from_secs(120), SimDuration::from_secs(50));
    // Schedule seed depends on utilization but NOT protocol: §4.3.2
    // "same schedule of flow arrivals for each network utilization".
    let srng = SimRng::new(seed).fork_indexed("sched", (u * 1000.0) as u64);
    let schedule = Schedule::fixed_size(spec.bottleneck_rate, 100_000, u, horizon, srng);
    let plans = plans_from_schedule(&schedule, protocol);
    let opts = RunOptions {
        host_pairs: 12,
        grace: SimDuration::from_secs(30),
        seed: seed ^ 0x5eed,
        trace_bin_ns: None,
        min_rto: None,
    };
    let out = run_dumbbell(&spec, &plans, &opts);
    // Normalize by the arrival horizon (the denominator of the
    // offered load), not the longer drain period.
    let achieved = (out.bottleneck_tx_bytes as f64 * 8.0)
        / (spec.bottleneck_rate.as_bps() as f64
            * horizon.saturating_since(SimTime::ZERO).as_secs_f64());
    SweepPoint {
        utilization: u,
        achieved_utilization: achieved,
        stats: FctStats::from_records(&out.records, out.censored),
    }
}

/// Sweep one protocol across utilizations with per-utilization identical
/// schedules (shared across protocols via the seed discipline). Cells run
/// as parallel harness jobs.
pub fn sweep(protocol: Protocol, scale: Scale, seed: u64) -> Vec<SweepPoint> {
    sweep_many(&[protocol], scale, seed)
        .pop()
        .map(|(_, pts)| pts)
        .unwrap_or_default()
}

/// Sweep several protocols at once: one harness job per (protocol,
/// utilization) cell, results regrouped per protocol in input order.
pub fn sweep_many(
    protocols: &[Protocol],
    scale: Scale,
    seed: u64,
) -> Vec<(Protocol, Vec<SweepPoint>)> {
    let utils = utilizations(scale);
    let cells: Vec<(Protocol, f64)> = protocols
        .iter()
        .flat_map(|&p| utils.iter().map(move |&u| (p, u)))
        .collect();
    let points = crate::harness::parallel_map(
        cells,
        |&(p, u)| format!("fig12/{}/u{:.0}/s{seed}", p.name(), u * 100.0),
        |(p, u)| point(p, u, scale, seed),
    );
    protocols
        .iter()
        .zip(points.chunks(utils.len()))
        .map(|(&p, pts)| (p, pts.to_vec()))
        .collect()
}

/// Data for both figures.
pub struct FeasibleData {
    /// Per-protocol sweep results.
    pub sweeps: Vec<(Protocol, Vec<SweepPoint>)>,
}

/// Run the full sweep for the Fig. 12 protocol set.
pub fn run(scale: Scale) -> FeasibleData {
    FeasibleData {
        sweeps: sweep_many(&Protocol::EVALUATED, scale, 42),
    }
}

/// Render Fig. 12 (FCT vs utilization) and Fig. 1 (tradeoff scatter).
pub fn figures(scale: Scale) -> Vec<Figure> {
    render(&run(scale))
}

/// Render from precomputed data (shared with the ablation module).
pub fn render(data: &FeasibleData) -> Vec<Figure> {
    let mut fig12 = Figure::new(
        "fig12",
        "FCT vs utilization, all-short-flow workload (feasible capacity)",
        "utilization (%)",
        "mean FCT (ms)",
    );
    let mut fig1 = Figure::new(
        "fig1",
        "Tradeoff: common-case latency vs feasible capacity",
        "feasible capacity (% utilization)",
        "low-load FCT (ms)",
    );
    for (p, points) in &data.sweeps {
        fig12.push_series(
            p.name(),
            points
                .iter()
                .map(|pt| (pt.utilization * 100.0, pt.stats.mean_ms))
                .collect(),
        );
        let fc = feasible_capacity(points, COLLAPSE_FACTOR, COLLAPSE_FLOOR_MS, MIN_COMPLETION);
        let low_load = points
            .first()
            .map(|pt| pt.stats.mean_ms)
            .unwrap_or(f64::NAN);
        fig1.push_series(p.name(), vec![(fc * 100.0, low_load)]);
        let overhead_at_half = points
            .iter()
            .find(|pt| (pt.utilization - 0.5).abs() < 0.026)
            .map(|pt| pt.achieved_utilization / pt.utilization.max(1e-9))
            .unwrap_or(f64::NAN);
        fig12.note(format!(
            "{}: feasible capacity {:.0}%, low-load mean FCT {:.0} ms, carried/offered at 50% = {:.2}x",
            p.name(),
            fc * 100.0,
            low_load,
            overhead_at_half
        ));
    }
    // Headline comparisons the paper quotes.
    let fc_of = |p: Protocol| {
        data.sweeps
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, pts)| {
                feasible_capacity(pts, COLLAPSE_FACTOR, COLLAPSE_FLOOR_MS, MIN_COMPLETION)
            })
            .unwrap_or(0.0)
    };
    let hb = fc_of(Protocol::Halfback);
    let js = fc_of(Protocol::JumpStart);
    if js > 0.0 {
        fig1.note(format!(
            "Halfback feasible capacity = {:.2}x JumpStart's (paper: 1.4x)",
            hb / js
        ));
    }
    vec![fig12, fig1]
}

//! Fig. 3: the 10-segment walkthrough, rendered as a packet timeline.
//!
//! Reproduces the paper's example: the sender paces ten segments over one
//! RTT; the first copy of packet 9 (segment index 8) is dropped; ROPR
//! proactively retransmits 10, 9, 8, 7, 6 clocked by ACKs 1–5 and the flow
//! completes without any loss signal ever reaching the sender.

use crate::report::Figure;
use crate::{Protocol, Scale};
use netsim::engine::TraceEvent;
use netsim::loss::LossModel;
use netsim::topology::{build_path, PathSpec};
use netsim::{FlowId, Rate, SimDuration};
use std::cell::RefCell;
use std::rc::Rc;
use transport::{Host, TransportSim};

/// Run the walkthrough and produce (timeline lines, final record).
pub fn run() -> (Vec<String>, transport::FlowRecord) {
    let mut spec = PathSpec::clean(Rate::from_mbps(100), SimDuration::from_millis(60));
    // Forward-link ordinals: 1 = SYN, data segment k = ordinal k+2 once the
    // first paced segment (ordinal 2) is segment 0 — segment 8 ("packet 9")
    // is ordinal 10.
    spec.loss = LossModel::DropList { ordinals: vec![10] };

    let mut sim = TransportSim::new(11);
    let events: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = events.clone();
    let net = build_path(&mut sim, &spec, |_| Box::new(Host::new()));
    sim.set_tracer(Box::new(move |t, ev| {
        if let TraceEvent::WireDrop { packet, .. } = ev {
            sink.borrow_mut().push(format!(
                "{:>9.3} ms  WIRE DROP packet #{}",
                t.as_millis_f64(),
                packet.0
            ));
        }
    }));
    sim.with_node_mut::<Host, _>(net.sender, |h, _| h.wire(net.sender, net.forward));
    sim.with_node_mut::<Host, _>(net.receiver, |h, _| {
        h.wire(net.receiver, net.reverse);
        h.log_arrivals = true;
    });
    let strategy = Protocol::Halfback.make(&baselines::path_cache(), (net.sender, net.receiver));
    sim.with_node_mut::<Host, _>(net.sender, |h, core| {
        h.start_flow(
            core,
            FlowId(1),
            net.receiver,
            10 * transport::MSS as u64,
            strategy,
        )
    });
    sim.run_to_completion(1_000_000);

    let host = sim.node_as::<Host>(net.sender).unwrap();
    let rec = host.completed()[0].clone();
    let mut lines = events.borrow().clone();
    // The receiver-side arrival timeline — the content of the paper's
    // Fig. 3 (which packet arrived when, and whether it was a fresh copy or
    // a ROPR retransmission).
    let recv = sim.node_as::<Host>(net.receiver).unwrap();
    if let Some(log) = recv.receiver(FlowId(1)).and_then(|c| c.arrivals.as_ref()) {
        for &(t, seg, class) in log {
            lines.push(format!(
                "{:>9.3} ms  receiver got packet {:>2} ({})",
                t.as_millis_f64(),
                seg + 1, // the paper numbers packets from 1
                match class {
                    transport::SendClass::New => "first copy",
                    transport::SendClass::Proactive => "ROPR proactive copy",
                    _ => "reactive retransmission",
                }
            ));
        }
        lines.sort_by(|a, b| {
            let t = |s: &str| {
                s.trim_start()
                    .split(' ')
                    .next()
                    .unwrap()
                    .parse::<f64>()
                    .unwrap_or(0.0)
            };
            t(a).total_cmp(&t(b))
        });
    }
    lines.push(format!(
        "flow complete at {:.3} ms: {} data packets sent, {} proactive copies, {} normal retx, {} RTOs",
        rec.done_at.as_millis_f64(),
        rec.counters.data_packets_sent,
        rec.counters.proactive_retx,
        rec.counters.normal_retx,
        rec.counters.rto_events
    ));
    (lines, rec)
}

/// Render Fig. 3 as a textual timeline with the paper's invariants as
/// summary notes.
pub fn figures(_scale: Scale) -> Vec<Figure> {
    let (lines, rec) = run();
    let mut fig = Figure::new(
        "fig3",
        "Halfback transmits a 10-packet flow (packet 9's first copy dropped)",
        "time (ms)",
        "event",
    );
    for line in lines {
        fig.note(line);
    }
    fig.note(format!(
        "invariant: recovered without timeout = {} (paper: ROPR recovers before loss is signalled)",
        rec.counters.rto_events == 0
    ));
    fig.note(format!(
        "invariant: ~half the flow proactively retransmitted = {} copies of 10 segments",
        rec.counters.proactive_retx
    ));
    // The FCT timeline itself, as a single-point series for CSV output.
    fig.push_series("fct_ms", vec![(0.0, rec.fct.as_millis_f64())]);
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walkthrough_matches_paper_fig3() {
        let (lines, rec) = run();
        // Exactly one wire drop happened.
        assert_eq!(lines.iter().filter(|l| l.contains("WIRE DROP")).count(), 1);
        // No timeout; ROPR masked the loss.
        assert_eq!(rec.counters.rto_events, 0);
        // Around half the flow proactively retransmitted (5 of 10; the
        // dropped packet shifts the meeting point by at most one).
        assert!(
            (4..=6).contains(&(rec.counters.proactive_retx as i64)),
            "{}",
            rec.counters.proactive_retx
        );
    }
}

//! Fig. 14: TCP-friendliness scatter (§4.3.3).
//!
//! Half the flows run TCP, half run one non-TCP scheme, at utilizations
//! 5–30 %. For each (scheme, utilization): x = mean FCT of the TCP flows
//! divided by their all-TCP reference; y = mean FCT of the non-TCP flows
//! divided by their all-non-TCP reference. Friendly schemes sit near (1,1).

use crate::metrics::FctStats;
use crate::report::Figure;
use crate::runner::{plans_alternating, plans_from_schedule, run_dumbbell, RunOptions};
use crate::{Protocol, Scale};
use netsim::rng::SimRng;
use netsim::topology::DumbbellSpec;
use netsim::{SimDuration, SimTime};
use workload::Schedule;

/// Utilizations scanned (paper: 5–30 % step 5).
pub fn utilizations(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Full => (1..=6).map(|i| i as f64 * 0.05).collect(),
        Scale::Quick => vec![0.1, 0.3],
    }
}

/// The non-TCP schemes plotted.
pub fn protocols() -> [Protocol; 6] {
    [
        Protocol::JumpStart,
        Protocol::Halfback,
        Protocol::Proactive,
        Protocol::Reactive,
        Protocol::Tcp10,
        Protocol::Pcp,
    ]
}

fn mean_fct(records: &[transport::FlowRecord], censored: usize) -> f64 {
    FctStats::from_records(records, censored).mean_ms
}

/// One (scheme, utilization) point: (x, y) as defined above.
pub fn point(protocol: Protocol, utilization: f64, scale: Scale) -> (f64, f64) {
    let spec = DumbbellSpec::emulab(1);
    let horizon =
        SimTime::ZERO + scale.pick(SimDuration::from_secs(200), SimDuration::from_secs(30));
    let srng = SimRng::new(61).fork_indexed("friendly", (utilization * 1000.0) as u64);
    let schedule = Schedule::fixed_size(spec.bottleneck_rate, 100_000, utilization, horizon, srng);
    let opts = RunOptions {
        host_pairs: 12,
        grace: SimDuration::from_secs(60),
        seed: 67,
        trace_bin_ns: None,
        min_rto: None,
    };
    // Mixed run.
    let mixed = run_dumbbell(
        &spec,
        &plans_alternating(&schedule, Protocol::Tcp, protocol),
        &opts,
    );
    // References under the same schedule.
    let all_tcp = run_dumbbell(&spec, &plans_from_schedule(&schedule, Protocol::Tcp), &opts);
    let all_x = run_dumbbell(&spec, &plans_from_schedule(&schedule, protocol), &opts);

    let tcp_mixed = mixed.records_for(Protocol::Tcp);
    let x_mixed = mixed.records_for(protocol);
    let x_axis = mean_fct(&tcp_mixed, 0) / mean_fct(&all_tcp.records, all_tcp.censored);
    let y_axis = mean_fct(&x_mixed, 0) / mean_fct(&all_x.records, all_x.censored);
    (x_axis, y_axis)
}

/// Render Fig. 14.
pub fn figures(scale: Scale) -> Vec<Figure> {
    let mut fig = Figure::new(
        "fig14",
        "TCP-friendliness: FCT change of TCP (x) and non-TCP (y) flows under co-existence",
        "FCT of TCP vs reference",
        "FCT of non-TCP scheme vs reference",
    );
    // One harness job per (scheme, utilization) point (each point is
    // three dumbbell runs: mixed + two references).
    let utils = utilizations(scale);
    let grid: Vec<(Protocol, f64)> = protocols()
        .into_iter()
        .flat_map(|p| utils.iter().map(move |&u| (p, u)))
        .collect();
    let points = crate::harness::parallel_map(
        grid,
        |&(p, u)| format!("fig14/{}/u{:.0}", p.name(), u * 100.0),
        |(p, u)| point(p, u, scale),
    );
    for (pi, p) in protocols().into_iter().enumerate() {
        let pts: Vec<(f64, f64)> = points[pi * utils.len()..(pi + 1) * utils.len()].to_vec();
        // Distance from the friendly point (1, 1), worst case across loads.
        let worst = pts
            .iter()
            .map(|&(x, y)| ((x - 1.0).abs()).max((y - 1.0).abs()))
            .fold(0.0, f64::max);
        fig.note(format!(
            "{}: max deviation from (1,1) = {:.2}",
            p.name(),
            worst
        ));
        fig.push_series(p.name(), pts);
    }
    fig.note("paper: Halfback/TCP-10/TCP-Cache/Reactive near (1,1); JumpStart and Proactive push TCP right; PCP sits high on y".to_string());
    vec![fig]
}

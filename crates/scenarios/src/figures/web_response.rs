//! Fig. 16: average web-page response time vs utilization (§4.4).
//!
//! A client requests random pages from the synthetic corpus; the server
//! sends each page's objects in order over at most 6 concurrent
//! connections (one flow per object). Response time = all objects
//! delivered. Page arrivals are Poisson, targeted at the desired offered
//! utilization.

use crate::report::Figure;
use crate::runner::{DumbbellRig, RunOptions};
use crate::{Protocol, Scale};
use netsim::rng::SimRng;
use netsim::topology::DumbbellSpec;
use netsim::{FlowId, SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};
use transport::host::completion_bus;
use transport::Host;
use workload::arrivals::flow_offered_wire_bytes;
use workload::{Corpus, PoissonArrivals, MAX_CONCURRENT_CONNECTIONS};

struct PageState {
    started: SimTime,
    pending: VecDeque<u64>,
    in_flight: usize,
    pair: usize,
    /// The HTML document must complete before subresources are discovered
    /// and requested (Chrome behaviour; also staggers the connections).
    html_done: bool,
}

/// Result of one (protocol, utilization) web run.
#[derive(Debug, Clone)]
pub struct WebRun {
    /// Response time per completed page, ms.
    pub response_ms: Vec<f64>,
    /// Pages started but unfinished at the end.
    pub censored: usize,
    /// Object flows completed.
    pub objects: usize,
    /// Object flows that suffered at least one RTO.
    pub rto_objects: usize,
}

impl WebRun {
    /// Mean response time.
    pub fn mean_ms(&self) -> f64 {
        if self.response_ms.is_empty() {
            return f64::NAN;
        }
        self.response_ms.iter().sum::<f64>() / self.response_ms.len() as f64
    }

    /// Completion rate.
    pub fn completion_rate(&self) -> f64 {
        let total = self.response_ms.len() + self.censored;
        if total == 0 {
            1.0
        } else {
            self.response_ms.len() as f64 / total as f64
        }
    }
}

/// Drive the web workload for one scheme at one utilization.
pub fn run_web(protocol: Protocol, utilization: f64, scale: Scale) -> WebRun {
    let spec = DumbbellSpec::emulab(1);
    let opts = RunOptions {
        host_pairs: 8,
        grace: SimDuration::from_secs(40),
        seed: 79,
        trace_bin_ns: None,
        min_rto: None,
    };
    let mut rig = DumbbellRig::new(&spec, &opts);
    let bus = completion_bus();
    for &h in &rig.net.left_hosts.clone() {
        rig.sim
            .with_node_mut::<Host, _>(h, |host, _| host.set_bus(bus.clone()));
    }

    let corpus = Corpus::synthesize(100, 71);
    // Offered bytes per page include per-object handshake+header overhead.
    let mean_page_wire: f64 = corpus
        .pages
        .iter()
        .map(|p| {
            p.objects
                .iter()
                .map(|&b| flow_offered_wire_bytes(b) as f64)
                .sum::<f64>()
        })
        .sum::<f64>()
        / corpus.len() as f64;
    let pages_per_sec = utilization * spec.bottleneck_rate.as_bps() as f64 / (8.0 * mean_page_wire);
    let mean_gap = SimDuration::from_secs_f64(1.0 / pages_per_sec);

    let horizon =
        SimTime::ZERO + scale.pick(SimDuration::from_secs(150), SimDuration::from_secs(30));
    let mut rng = SimRng::new(79).fork_indexed("web", (utilization * 1000.0) as u64);
    let mut arrivals = PoissonArrivals::new(mean_gap, SimTime::ZERO, rng.fork("arrivals"));

    let mut pages: Vec<PageState> = Vec::new();
    let mut flow_page: HashMap<FlowId, usize> = HashMap::new();
    let mut response_ms: Vec<f64> = Vec::new();
    let mut objects = 0usize;
    let mut rto_objects = 0usize;
    let mut next_pair = 0usize;
    let hard_stop = horizon + opts.grace;

    loop {
        let now = rig.sim.now();
        if now >= hard_stop {
            break;
        }
        let next_event = rig.sim.next_event_time().unwrap_or(SimTime::FAR_FUTURE);
        let next_arrival = if arrivals.peek() <= horizon {
            arrivals.peek()
        } else {
            SimTime::FAR_FUTURE
        };
        if next_arrival == SimTime::FAR_FUTURE && next_event == SimTime::FAR_FUTURE {
            break;
        }
        if next_arrival <= next_event {
            // Start a page.
            let at = arrivals.pop();
            rig.sim.run_until(at);
            let page = corpus.pick(&mut rng).clone();
            let pair = next_pair % opts.host_pairs;
            next_pair += 1;
            let idx = pages.len();
            let mut st = PageState {
                started: at,
                pending: page.objects.iter().copied().collect(),
                in_flight: 0,
                pair,
                html_done: false,
            };
            // Fetch the HTML document first; subresources are requested
            // once it arrives.
            if let Some(html_bytes) = st.pending.pop_front() {
                let f = rig.start_flow_now(pair, html_bytes, protocol);
                flow_page.insert(f, idx);
                st.in_flight = 1;
            }
            pages.push(st);
        } else {
            if !rig.sim.step() {
                break;
            }
            // React to completed objects.
            let done: Vec<_> = bus.borrow_mut().drain(..).collect();
            for rec in done {
                objects += 1;
                if rec.counters.rto_events > 0 {
                    rto_objects += 1;
                }
                if let Some(idx) = flow_page.remove(&rec.flow) {
                    let now = rig.sim.now();
                    let pair = pages[idx].pair;
                    pages[idx].in_flight -= 1;
                    if !pages[idx].html_done {
                        // HTML arrived: subresources discovered, open up to
                        // the browser's connection limit.
                        pages[idx].html_done = true;
                        while pages[idx].in_flight < MAX_CONCURRENT_CONNECTIONS {
                            match pages[idx].pending.pop_front() {
                                Some(bytes) => {
                                    let f = rig.start_flow_now(pair, bytes, protocol);
                                    flow_page.insert(f, idx);
                                    pages[idx].in_flight += 1;
                                }
                                None => break,
                            }
                        }
                    } else if let Some(bytes) = pages[idx].pending.pop_front() {
                        let f = rig.start_flow_now(pair, bytes, protocol);
                        flow_page.insert(f, idx);
                        pages[idx].in_flight += 1;
                    }
                    if pages[idx].in_flight == 0 && pages[idx].pending.is_empty() {
                        response_ms.push(now.saturating_since(pages[idx].started).as_millis_f64());
                    }
                }
            }
        }
    }

    crate::harness::meter_add(
        rig.sim.now().saturating_since(SimTime::ZERO).as_nanos(),
        rig.sim.events_processed(),
    );
    let censored = pages.len() - response_ms.len();
    WebRun {
        response_ms,
        censored,
        objects,
        rto_objects,
    }
}

/// Utilizations scanned (paper x-axis: 10–60 %).
pub fn utilizations(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Full => (2..=12).map(|i| i as f64 * 0.05).collect(),
        Scale::Quick => vec![0.1, 0.3, 0.5],
    }
}

/// The Fig. 16 protocol set.
pub fn protocols() -> [Protocol; 4] {
    [
        Protocol::JumpStart,
        Protocol::Halfback,
        Protocol::Tcp,
        Protocol::Tcp10,
    ]
}

/// Render Fig. 16.
pub fn figures(scale: Scale) -> Vec<Figure> {
    let mut fig = Figure::new(
        "fig16",
        "Average web response time vs utilization (synthetic top-100 corpus)",
        "utilization (%)",
        "response time (ms)",
    );
    let utils = utilizations(scale);
    // One harness job per (protocol, utilization) web run.
    let grid: Vec<(Protocol, f64)> = protocols()
        .into_iter()
        .flat_map(|p| utils.iter().map(move |&u| (p, u)))
        .collect();
    let runs = crate::harness::parallel_map(
        grid,
        |&(p, u)| format!("fig16/{}/u{:.0}", p.name(), u * 100.0),
        |(p, u)| run_web(p, u, scale),
    );
    let mut at30: Vec<(Protocol, f64)> = Vec::new();
    for (pi, p) in protocols().into_iter().enumerate() {
        let pts: Vec<(f64, f64, f64)> = utils
            .iter()
            .zip(&runs[pi * utils.len()..(pi + 1) * utils.len()])
            .map(|(&u, r)| (u * 100.0, r.mean_ms(), r.completion_rate()))
            .collect();
        if let Some(&(_, m, _)) = pts.iter().find(|&&(u, _, _)| (u - 30.0).abs() < 1.0) {
            at30.push((p, m));
        }
        let collapse = pts.iter().find(|&&(_, _, c)| c < 0.9).map(|&(u, _, _)| u);
        match collapse {
            Some(u) => fig.note(format!(
                "{}: page completion collapses at {u:.0}% utilization",
                p.name()
            )),
            None => fig.note(format!(
                "{}: no page-completion collapse in scanned range",
                p.name()
            )),
        }
        fig.push_series(p.name(), pts.into_iter().map(|(u, m, _)| (u, m)).collect());
    }
    let get = |p: Protocol| at30.iter().find(|(q, _)| *q == p).map(|(_, m)| *m);
    if let (Some(hb), Some(js)) = (get(Protocol::Halfback), get(Protocol::JumpStart)) {
        fig.note(format!(
            "at 30% utilization: JumpStart {:.0} ms vs Halfback {:.0} ms ({:+.0} ms; paper: +592 ms, 27%)",
            js,
            hb,
            js - hb
        ));
    }
    let _ = scale;
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn web_run_produces_pages_at_light_load() {
        let r = run_web(Protocol::Tcp, 0.1, Scale::Quick);
        assert!(
            r.response_ms.len() >= 3,
            "pages completed: {}",
            r.response_ms.len()
        );
        assert!(
            r.completion_rate() > 0.8,
            "completion {}",
            r.completion_rate()
        );
        // A page is several RTTs at least.
        assert!(r.response_ms.iter().all(|&ms| ms > 120.0));
        let _ = metrics::FctStats::from_records(&[], 0);
    }

    #[test]
    fn halfback_beats_tcp_pages_at_light_load() {
        let hb = run_web(Protocol::Halfback, 0.1, Scale::Quick);
        let tcp = run_web(Protocol::Tcp, 0.1, Scale::Quick);
        assert!(
            hb.mean_ms() < tcp.mean_ms(),
            "Halfback pages {}ms vs TCP {}ms",
            hb.mean_ms(),
            tcp.mean_ms()
        );
    }

    #[test]
    fn web_run_deterministic() {
        let a = run_web(Protocol::Halfback, 0.2, Scale::Quick);
        let b = run_web(Protocol::Halfback, 0.2, Scale::Quick);
        assert_eq!(a.response_ms, b.response_ms);
    }
}

//! Fig. 11: FCT as a function of flow size under the three measured
//! flow-size distributions (Internet / Benson / VL2), truncated at 1 MB,
//! offered at 25 % utilization (§4.2.4).

use crate::report::Figure;
use crate::runner::{plans_from_schedule, run_dumbbell, RunOptions};
use crate::{Protocol, Scale};
use netsim::rng::SimRng;
use netsim::topology::DumbbellSpec;
use netsim::{SimDuration, SimTime};
use transport::sender::FlowRecord;
use workload::{Schedule, TraceKind};

/// Size-bucket width for the FCT-vs-size series.
const BUCKET_BYTES: u64 = 25_000;

/// Bucket records into (bucket-center KB, mean FCT ms) points.
pub fn bucketize(records: &[FlowRecord]) -> Vec<(f64, f64)> {
    use std::collections::BTreeMap;
    let mut buckets: BTreeMap<u64, (f64, u64)> = BTreeMap::new();
    for r in records {
        let b = r.bytes / BUCKET_BYTES;
        let e = buckets.entry(b).or_insert((0.0, 0));
        e.0 += r.fct.as_millis_f64();
        e.1 += 1;
    }
    buckets
        .into_iter()
        .filter(|(_, (_, n))| *n >= 3) // drop nearly-empty buckets
        .map(|(b, (sum, n))| {
            (
                (b as f64 + 0.5) * BUCKET_BYTES as f64 / 1000.0,
                sum / n as f64,
            )
        })
        .collect()
}

/// Run one (trace, protocol) cell, returning completed records.
pub fn cell(trace: TraceKind, protocol: Protocol, scale: Scale) -> Vec<FlowRecord> {
    let spec = DumbbellSpec::emulab(1);
    let horizon =
        SimTime::ZERO + scale.pick(SimDuration::from_secs(400), SimDuration::from_secs(40));
    let schedule = Schedule::variable_size(
        spec.bottleneck_rate,
        trace.mean_truncated(),
        0.25,
        horizon,
        SimRng::new(37).fork(trace.name()),
        move |rng| trace.sample_truncated(rng),
    );
    let plans = plans_from_schedule(&schedule, protocol);
    let opts = RunOptions {
        host_pairs: 12,
        grace: SimDuration::from_secs(60),
        seed: 41,
        trace_bin_ns: None,
        min_rto: None,
    };
    run_dumbbell(&spec, &plans, &opts).records
}

/// Render Fig. 11(a,b,c).
pub fn figures(scale: Scale) -> Vec<Figure> {
    let protos: Vec<Protocol> = match scale {
        Scale::Full => Protocol::EVALUATED.to_vec(),
        Scale::Quick => vec![
            Protocol::Tcp,
            Protocol::Tcp10,
            Protocol::TcpCache,
            Protocol::JumpStart,
            Protocol::Halfback,
        ],
    };
    // One harness job per (trace, protocol) cell.
    let grid: Vec<(TraceKind, Protocol)> = TraceKind::ALL
        .into_iter()
        .flat_map(|t| protos.iter().map(move |&p| (t, p)))
        .collect();
    let cells = crate::harness::parallel_map(
        grid,
        |&(t, p)| format!("fig11/{}/{}", t.name(), p.name()),
        |(t, p)| cell(t, p, scale),
    );
    TraceKind::ALL
        .into_iter()
        .enumerate()
        .map(|(i, trace)| {
            let sub = [b'a', b'b', b'c'][i] as char;
            let mut fig = Figure::new(
                &format!("fig11{sub}"),
                &format!("FCT vs flow size, {} distribution, 25% utilization", trace.name()),
                "flow size (KB)",
                "mean FCT (ms)",
            );
            let mut tiny: Vec<(Protocol, f64)> = Vec::new();
            let mut big: Vec<(Protocol, f64)> = Vec::new();
            for (pi, &p) in protos.iter().enumerate() {
                let recs = &cells[i * protos.len() + pi];
                let series = bucketize(recs);
                if let Some(&(_, y)) = series.first() {
                    tiny.push((p, y));
                }
                let late: Vec<f64> = series
                    .iter()
                    .filter(|&&(x, _)| (75.0..=200.0).contains(&x))
                    .map(|&(_, y)| y)
                    .collect();
                if !late.is_empty() {
                    big.push((p, late.iter().sum::<f64>() / late.len() as f64));
                }
                fig.push_series(p.name(), series);
            }
            let get = |v: &[(Protocol, f64)], p: Protocol| {
                v.iter().find(|(q, _)| *q == p).map(|(_, m)| *m).unwrap_or(f64::NAN)
            };
            fig.note(format!(
                "smallest bucket: TCP-Cache {:.0} ms vs Halfback {:.0} ms (paper: cache wins small flows)",
                get(&tiny, Protocol::TcpCache),
                get(&tiny, Protocol::Halfback)
            ));
            fig.note(format!(
                "75-200 KB: Halfback {:.0} ms vs TCP {:.0} ms vs TCP-10 {:.0} ms (paper: Halfback/JumpStart best past ~75 KB)",
                get(&big, Protocol::Halfback),
                get(&big, Protocol::Tcp),
                get(&big, Protocol::Tcp10)
            ));
            fig
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{FlowId, SimTime};
    use transport::sender::Counters;

    fn rec(bytes: u64, fct_ms: u64) -> FlowRecord {
        FlowRecord {
            flow: FlowId(0),
            protocol: "t",
            bytes,
            start: SimTime::ZERO,
            established_at: SimTime::ZERO,
            done_at: SimTime::ZERO + SimDuration::from_millis(fct_ms),
            fct: SimDuration::from_millis(fct_ms),
            counters: Counters::default(),
            min_rtt: None,
            outcome: transport::FlowOutcome::Completed,
        }
    }

    #[test]
    fn bucketize_means_and_drops_thin_buckets() {
        // Bucket 0 (0-25KB): four records -> kept; bucket 4 (100-125KB):
        // two records -> dropped (needs >= 3).
        let recs = vec![
            rec(10_000, 100),
            rec(12_000, 200),
            rec(20_000, 300),
            rec(24_000, 400),
            rec(110_000, 900),
            rec(120_000, 1100),
        ];
        let pts = bucketize(&recs);
        assert_eq!(pts.len(), 1);
        let (x_kb, mean) = pts[0];
        assert!((x_kb - 12.5).abs() < 1e-9, "bucket center {x_kb}");
        assert!((mean - 250.0).abs() < 1e-9, "bucket mean {mean}");
    }

    #[test]
    fn bucketize_sorted_by_size() {
        let recs: Vec<FlowRecord> = (1..=12).map(|i| rec(i * 30_000, 100 * i)).collect();
        let pts = bucketize(&recs);
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0));
    }
}

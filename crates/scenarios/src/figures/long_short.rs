//! Fig. 13: short aggressive flows vs long TCP flows (§4.3.2).
//!
//! 10 % of offered bytes come from 100 KB short flows (the scheme under
//! test), 90 % from 100 MB long TCP flows; FCTs are normalized by the
//! all-TCP baseline under the *same* arrival schedule.

use crate::metrics::FctStats;
use crate::report::Figure;
use crate::runner::{run_dumbbell, FlowPlan, RunOptions};
use crate::{Protocol, Scale};
use netsim::rng::SimRng;
use netsim::topology::DumbbellSpec;
use netsim::{SimDuration, SimTime};
use workload::interarrival_for_utilization;
use workload::PoissonArrivals;

/// Long-flow size (paper: 100 MB). Quick scale shrinks it so runs finish.
fn long_bytes(scale: Scale) -> u64 {
    scale.pick(100_000_000, 20_000_000)
}

/// Utilizations scanned (paper: 30–85 %).
pub fn utilizations(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Full => (6..=17).map(|i| i as f64 * 0.05).collect(),
        Scale::Quick => vec![0.3, 0.5, 0.7],
    }
}

/// Build the shared schedule: 10 % of bytes in shorts, 90 % in longs.
fn schedule(utilization: f64, scale: Scale, horizon: SimTime) -> Vec<(SimTime, u64)> {
    let spec = DumbbellSpec::emulab(1);
    let lb = long_bytes(scale);
    let short_mean =
        interarrival_for_utilization(spec.bottleneck_rate, 100_000.0, utilization * 0.10);
    let long_mean =
        interarrival_for_utilization(spec.bottleneck_rate, lb as f64, utilization * 0.90);
    let seed = SimRng::new(53).fork_indexed("ls", (utilization * 1000.0) as u64);
    let mut shorts = PoissonArrivals::new(short_mean, SimTime::ZERO, seed.fork("short"));
    let mut longs = PoissonArrivals::new(long_mean, SimTime::ZERO, seed.fork("long"));
    let mut flows: Vec<(SimTime, u64)> = shorts
        .until(horizon)
        .map(|t| (t, 100_000))
        .chain(longs.until(horizon).map(|t| (t, lb)))
        .collect();
    // At least one long flow so the normalization denominator exists.
    if !flows.iter().any(|&(_, b)| b == lb) {
        flows.push((SimTime::ZERO + SimDuration::from_secs(1), lb));
    }
    flows.sort_by_key(|&(t, _)| t);
    flows
}

/// Expose the schedule for diagnostics and tests.
pub fn schedule_for_test(utilization: f64) -> Vec<(SimTime, u64)> {
    let horizon = SimTime::ZERO + SimDuration::from_secs(400);
    schedule(utilization, Scale::Full, horizon)
}

/// (short stats, long stats) for one (protocol, utilization) cell.
pub fn cell(protocol: Protocol, utilization: f64, scale: Scale) -> (FctStats, FctStats) {
    let spec = DumbbellSpec::emulab(1);
    let horizon =
        SimTime::ZERO + scale.pick(SimDuration::from_secs(400), SimDuration::from_secs(120));
    let lb = long_bytes(scale);
    let plans: Vec<FlowPlan> = schedule(utilization, scale, horizon)
        .into_iter()
        .map(|(at, bytes)| FlowPlan {
            at,
            bytes,
            protocol: if bytes == lb { Protocol::Tcp } else { protocol },
        })
        .collect();
    let opts = RunOptions {
        host_pairs: 10,
        grace: scale.pick(SimDuration::from_secs(400), SimDuration::from_secs(200)),
        seed: 57,
        trace_bin_ns: None,
        min_rto: None,
    };
    let out = run_dumbbell(&spec, &plans, &opts);
    let shorts: Vec<_> = out
        .records
        .iter()
        .filter(|r| r.bytes == 100_000)
        .cloned()
        .collect();
    let longs: Vec<_> = out
        .records
        .iter()
        .filter(|r| r.bytes == lb)
        .cloned()
        .collect();
    let short_started = plans.iter().filter(|p| p.bytes == 100_000).count();
    let long_started = plans.len() - short_started;
    (
        FctStats::from_records(
            &shorts,
            crate::metrics::censored_count(short_started, shorts.len(), "long_short/short"),
        ),
        FctStats::from_records(
            &longs,
            crate::metrics::censored_count(long_started, longs.len(), "long_short/long"),
        ),
    )
}

/// The protocol set shown in Fig. 13.
pub fn protocols() -> [Protocol; 6] {
    [
        Protocol::Proactive,
        Protocol::Reactive,
        Protocol::Tcp10,
        Protocol::TcpCache,
        Protocol::JumpStart,
        Protocol::Halfback,
    ]
}

/// Render Fig. 13(a) (short flows) and 13(b) (long flows), normalized by
/// the all-TCP baseline.
pub fn figures(scale: Scale) -> Vec<Figure> {
    let utils = utilizations(scale);
    // One harness job per (protocol, utilization) cell; the all-TCP
    // baseline (shorts also run TCP) rides in the same job list.
    let mut all: Vec<Protocol> = vec![Protocol::Tcp];
    all.extend(protocols());
    let grid: Vec<(Protocol, f64)> = all
        .iter()
        .flat_map(|&p| utils.iter().map(move |&u| (p, u)))
        .collect();
    let cells = crate::harness::parallel_map(
        grid,
        |&(p, u)| format!("fig13/{}/u{:.0}", p.name(), u * 100.0),
        |(p, u)| cell(p, u, scale),
    );
    let baseline: Vec<(f64, FctStats, FctStats)> = utils
        .iter()
        .zip(&cells[..utils.len()])
        .map(|(&u, (s, l))| (u, s.clone(), l.clone()))
        .collect();
    let mut fig_a = Figure::new(
        "fig13a",
        "Short-flow FCT normalized by all-TCP baseline (10% short / 90% long)",
        "utilization (%)",
        "normalized FCT",
    );
    let mut fig_b = Figure::new(
        "fig13b",
        "Long-flow FCT normalized by all-TCP baseline (10% short / 90% long)",
        "utilization (%)",
        "normalized FCT",
    );
    for (pi, p) in protocols().into_iter().enumerate() {
        let row = &cells[(pi + 1) * utils.len()..(pi + 2) * utils.len()];
        let mut pa = Vec::new();
        let mut pb = Vec::new();
        for (i, &u) in utils.iter().enumerate() {
            let (s, l) = &row[i];
            let (bs, bl) = (&baseline[i].1, &baseline[i].2);
            if s.mean_ms.is_finite() && bs.mean_ms.is_finite() {
                pa.push((u * 100.0, s.mean_ms / bs.mean_ms));
            }
            if l.mean_ms.is_finite()
                && bl.mean_ms.is_finite()
                && l.completed > 0
                && bl.completed > 0
            {
                pb.push((u * 100.0, l.mean_ms / bl.mean_ms));
            }
        }
        let mean_a = pa.iter().map(|&(_, y)| y).sum::<f64>() / pa.len().max(1) as f64;
        let mean_b = pb.iter().map(|&(_, y)| y).sum::<f64>() / pb.len().max(1) as f64;
        fig_a.push_series(p.name(), pa);
        fig_b.push_series(p.name(), pb);
        fig_a.note(format!(
            "{}: short-flow FCT {:.0}% of TCP's on average",
            p.name(),
            mean_a * 100.0
        ));
        fig_b.note(format!(
            "{}: long-flow slowdown {:+.0}% on average",
            p.name(),
            (mean_b - 1.0) * 100.0
        ));
    }
    fig_a.note("paper: Halfback ~44% of TCP, JumpStart ~49%, TCP-10 ~71%".to_string());
    fig_b.note("paper: Halfback slows longs ~3%, JumpStart ~10%, Proactive up to 25%".to_string());
    vec![fig_a, fig_b]
}

//! One module per figure/table of the paper.
//!
//! Every module exposes `figures(scale) -> Vec<Figure>`; the registry in
//! [`run_experiment`] maps experiment ids ("fig12", "table1", …) to them.

pub mod ablation;
pub mod aqm;
pub mod bufferbloat;
pub mod chaos;
pub mod feasible;
pub mod flowsize_sweep;
pub mod friendliness;
pub mod home;
pub mod long_short;
pub mod multihop;
pub mod planetlab;
pub mod planetlab_sharded;
pub mod ratio;
pub mod sensitivity;
pub mod table1;
pub mod throughput_trace;
pub mod traffic_cdf;
pub mod variance;
pub mod walkthrough;
pub mod web_response;

use crate::report::Figure;
use crate::Scale;

/// All experiment ids, in paper order.
pub const ALL_EXPERIMENTS: [&str; 14] = [
    "fig1", "fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
    "fig13", "fig14", "fig15",
];

/// The remaining ids (16, 17, table1) — listed separately only because the
/// array above is used in doc examples; `run_experiment` accepts all.
pub const MORE_EXPERIMENTS: [&str; 3] = ["fig16", "fig17", "table1"];

/// Run one experiment by id; `None` for an unknown id.
///
/// "fig1" is derived from the same sweep as "fig12" and returned together
/// with it; "fig5"–"fig8" all come from the PlanetLab run and are returned
/// together when any of them is requested.
pub fn run_experiment(id: &str, scale: Scale) -> Option<Vec<Figure>> {
    match id {
        "fig1" | "fig12" => Some(feasible::figures(scale)),
        "fig2" => Some(traffic_cdf::figures(scale)),
        "fig3" => Some(walkthrough::figures(scale)),
        "fig5" | "fig6" | "fig7" | "fig8" => Some(planetlab::figures(scale)),
        "fig9" => Some(home::figures(scale)),
        "fig10" => Some(bufferbloat::figures(scale)),
        "fig11" => Some(flowsize_sweep::figures(scale)),
        "fig13" => Some(long_short::figures(scale)),
        "fig14" => Some(friendliness::figures(scale)),
        "fig15" => Some(throughput_trace::figures(scale)),
        "fig16" => Some(web_response::figures(scale)),
        "fig17" => Some(ablation::figures(scale)),
        "aqm" => Some(aqm::figures(scale)),
        "chaos" => Some(chaos::figures(scale)),
        "planetlab100k" => Some(planetlab_sharded::figures(scale)),
        "ratio" => Some(ratio::figures(scale)),
        "multihop" => Some(multihop::figures(scale)),
        "sensitivity" => Some(sensitivity::figures(scale)),
        "variance" => Some(variance::figures(scale)),
        "table1" => Some(table1::figures(scale)),
        _ => None,
    }
}

/// Ids accepted by [`run_experiment`], deduplicated (fig1/fig12 and
/// fig5–fig8 share runs).
pub fn distinct_experiment_ids() -> Vec<&'static str> {
    vec![
        "fig2",
        "fig3",
        "fig6",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "table1",
        "aqm",
        "chaos",
        "planetlab100k",
        "ratio",
        "multihop",
        "sensitivity",
        "variance",
    ]
}

//! Fig. 9: Halfback vs TCP on four home access networks (§4.2.2).
//!
//! Clients behind four residential profiles fetch 100 KB flows from 170
//! servers; we compare the per-network FCT CDFs and median reductions.

use crate::metrics::fct_ecdf;
use crate::report::Figure;
use crate::runner::{run_path, FlowPlan};
use crate::{Protocol, Scale};
use netsim::{SimDuration, SimTime};
use transport::sender::FlowRecord;
use workload::HomeNetwork;

/// Per-network results: each scheme's completed flow records.
pub type HomeResults = Vec<(HomeNetwork, Vec<(Protocol, Vec<FlowRecord>)>)>;

/// Run both schemes over every server path of every home network: one
/// harness job per (network, protocol) cell.
pub fn run(scale: Scale) -> HomeResults {
    let n_servers = scale.pick(170, 40);
    let cells: Vec<(HomeNetwork, Protocol)> = HomeNetwork::ALL
        .into_iter()
        .flat_map(|hn| [Protocol::Halfback, Protocol::Tcp].map(|p| (hn, p)))
        .collect();
    let recs = crate::harness::parallel_map(
        cells,
        |&(hn, p)| format!("fig9/{}/{}", hn.name(), p.name()),
        |(hn, p)| {
            let paths = hn.server_paths(n_servers, 23);
            paths
                .iter()
                .enumerate()
                .filter_map(|(i, spec)| {
                    let plan = [FlowPlan {
                        at: SimTime::ZERO,
                        bytes: 100_000,
                        protocol: p,
                    }];
                    let (r, _) =
                        run_path(spec, &plan, 7_000 + i as u64, SimDuration::from_secs(180));
                    r.into_iter().next()
                })
                .collect::<Vec<FlowRecord>>()
        },
    );
    HomeNetwork::ALL
        .into_iter()
        .zip(recs.chunks(2))
        .map(|(hn, pair)| {
            (
                hn,
                [Protocol::Halfback, Protocol::Tcp]
                    .into_iter()
                    .zip(pair.iter().cloned())
                    .collect(),
            )
        })
        .collect()
}

/// Render Fig. 9.
pub fn figures(scale: Scale) -> Vec<Figure> {
    let data = run(scale);
    let mut fig = Figure::new(
        "fig9",
        "FCT on home networks with different providers (CDF)",
        "latency (ms)",
        "fraction of trials (%)",
    );
    for (hn, results) in &data {
        let mut medians = Vec::new();
        for (p, recs) in results {
            let mut e = fct_ecdf(recs);
            medians.push((*p, e.median().unwrap_or(f64::NAN)));
            fig.push_series(format!("{} - {}", p.name(), hn.name()), e.cdf_series());
        }
        let get = |p: Protocol| {
            medians
                .iter()
                .find(|(q, _)| *q == p)
                .map(|(_, m)| *m)
                .unwrap()
        };
        let hb = get(Protocol::Halfback);
        let tcp = get(Protocol::Tcp);
        fig.note(format!(
            "{}: Halfback median {:.0} ms vs TCP {:.0} ms ({:.0}% less)",
            hn.name(),
            hb,
            tcp,
            100.0 * (1.0 - hb / tcp)
        ));
    }
    fig.note("paper: medians 50% (Comcast wired), 68% (ConnectivityU wireless), 50% (ConnectivityU wired), 18% (AT&T wireless) less than TCP".to_string());
    vec![fig]
}

//! Fig. 10: effect of router buffer size (bufferbloat) on short-flow FCT
//! and on the number of normal retransmissions.
//!
//! §4.2.3: one background TCP flow plus short 100 KB flows arriving every
//! 10 s on average, 600 s runs, bottleneck buffer swept from small to
//! 600 KB.

use crate::metrics::FctStats;
use crate::report::Figure;
use crate::runner::{run_dumbbell, FlowPlan, RunOptions};
use crate::{Protocol, Scale};
use netsim::rng::SimRng;
use netsim::topology::DumbbellSpec;
use netsim::{SimDuration, SimTime};
use workload::PoissonArrivals;

/// Background long-flow size: effectively saturates the whole run.
const BACKGROUND_BYTES: u64 = 2_000_000_000;

/// Buffer sizes scanned (bytes).
pub fn buffers(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Full => vec![
            10_000, 25_000, 50_000, 75_000, 115_000, 150_000, 200_000, 300_000, 400_000, 500_000,
            600_000,
        ],
        Scale::Quick => vec![15_000, 115_000, 400_000],
    }
}

/// Mean FCT and retransmission count of short flows for one (protocol,
/// buffer) cell.
pub fn cell(protocol: Protocol, buffer: u64, scale: Scale) -> FctStats {
    let spec = DumbbellSpec::emulab_with_buffer(1, buffer);
    let horizon = scale.pick(SimDuration::from_secs(600), SimDuration::from_secs(80));
    let interval = scale.pick(SimDuration::from_secs(10), SimDuration::from_secs(4));
    // Background TCP flow from t = 0 (it reaches full rate long before the
    // first short flow).
    let mut plans = vec![FlowPlan {
        at: SimTime::ZERO,
        bytes: BACKGROUND_BYTES,
        protocol: Protocol::Tcp,
    }];
    let mut arrivals = PoissonArrivals::new(
        interval,
        SimTime::ZERO + SimDuration::from_secs(3),
        SimRng::new(29).fork("bufferbloat"),
    );
    for t in arrivals.until(SimTime::ZERO + horizon) {
        plans.push(FlowPlan {
            at: t,
            bytes: 100_000,
            protocol,
        });
    }
    let opts = RunOptions {
        host_pairs: 8,
        grace: SimDuration::from_secs(60),
        seed: 31,
        trace_bin_ns: None,
        min_rto: None,
    };
    let out = run_dumbbell(&spec, &plans, &opts);
    // Short flows only; the background flow may legitimately be censored.
    let shorts: Vec<_> = out
        .records
        .iter()
        .filter(|r| r.bytes == 100_000)
        .cloned()
        .collect();
    let short_started = plans.len() - 1;
    let censored = short_started - shorts.len();
    FctStats::from_records(&shorts, censored)
}

/// The Fig. 10 protocol set (all eight schemes).
pub fn protocols() -> [Protocol; 8] {
    Protocol::EVALUATED
}

/// Render Fig. 10(a) (mean FCT vs buffer) and Fig. 10(b) (normal
/// retransmissions vs buffer).
pub fn figures(scale: Scale) -> Vec<Figure> {
    let mut fig_a = Figure::new(
        "fig10a",
        "Mean FCT of short flows vs router buffer size (1 background TCP flow)",
        "router buffer (KB)",
        "mean FCT (ms)",
    );
    let mut fig_b = Figure::new(
        "fig10b",
        "Normal retransmissions of short flows vs router buffer size",
        "router buffer (KB)",
        "mean normal retransmissions",
    );
    let bufs = buffers(scale);
    // One harness job per (protocol, buffer) cell.
    let grid: Vec<(Protocol, u64)> = protocols()
        .into_iter()
        .flat_map(|p| bufs.iter().map(move |&b| (p, b)))
        .collect();
    let stats = crate::harness::parallel_map(
        grid,
        |&(p, b)| format!("fig10/{}/buf{}k", p.name(), b / 1000),
        |(p, b)| cell(p, b, scale),
    );
    let mut small_buf_retx: Vec<(Protocol, f64)> = Vec::new();
    for (pi, p) in protocols().into_iter().enumerate() {
        let cells: Vec<(u64, FctStats)> = bufs
            .iter()
            .zip(&stats[pi * bufs.len()..(pi + 1) * bufs.len()])
            .map(|(&b, s)| (b, s.clone()))
            .collect();
        fig_a.push_series(
            p.name(),
            cells
                .iter()
                .map(|(b, s)| (*b as f64 / 1000.0, s.mean_ms))
                .collect(),
        );
        fig_b.push_series(
            p.name(),
            cells
                .iter()
                .map(|(b, s)| (*b as f64 / 1000.0, s.mean_normal_retx))
                .collect(),
        );
        small_buf_retx.push((
            p,
            cells
                .first()
                .map(|(_, s)| s.mean_normal_retx)
                .unwrap_or(f64::NAN),
        ));
        let spread = {
            let means: Vec<f64> = cells
                .iter()
                .map(|(_, s)| s.mean_ms)
                .filter(|m| m.is_finite())
                .collect();
            let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = means.iter().cloned().fold(0.0, f64::max);
            max - min
        };
        fig_a.note(format!(
            "{}: FCT spread across buffers {:.0} ms",
            p.name(),
            spread
        ));
    }
    let retx_of = |p: Protocol| {
        small_buf_retx
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, r)| *r)
            .unwrap_or(f64::NAN)
    };
    fig_b.note(format!(
        "small buffer: Halfback {:.1} vs JumpStart {:.1} normal retx ({:.0}%; paper: 6 vs ~57, 10.6%)",
        retx_of(Protocol::Halfback),
        retx_of(Protocol::JumpStart),
        100.0 * retx_of(Protocol::Halfback) / retx_of(Protocol::JumpStart),
    ));
    vec![fig_a, fig_b]
}

//! Seed-variance extension: the reproduction is deterministic per seed, so
//! this experiment quantifies how much the headline quantities move across
//! independent seeds — the error bars the single-seed figures omit.

use crate::figures::feasible;
use crate::metrics::feasible_capacity;
use crate::report::Figure;
use crate::{Protocol, Scale};

/// Seeds sampled.
pub fn seeds(scale: Scale) -> Vec<u64> {
    scale.pick(vec![42, 1, 7, 1234, 99991], vec![42, 7])
}

/// Per-seed (feasible capacity, low-load FCT ms) for one scheme; one
/// harness job per (seed, utilization) cell.
pub fn per_seed(protocol: Protocol, scale: Scale) -> Vec<(f64, f64)> {
    let seeds = seeds(scale);
    let utils = feasible::utilizations(scale);
    let cells: Vec<(u64, f64)> = seeds
        .iter()
        .flat_map(|&s| utils.iter().map(move |&u| (s, u)))
        .collect();
    let points = crate::harness::parallel_map(
        cells,
        |&(s, u)| format!("variance/{}/seed{s}/u{:.0}", protocol.name(), u * 100.0),
        |(s, u)| feasible::point(protocol, u, scale, s),
    );
    points
        .chunks(utils.len())
        .map(|pts| {
            let fc = feasible_capacity(
                pts,
                feasible::COLLAPSE_FACTOR,
                feasible::COLLAPSE_FLOOR_MS,
                feasible::MIN_COMPLETION,
            );
            let low = pts.first().map(|p| p.stats.mean_ms).unwrap_or(f64::NAN);
            (fc, low)
        })
        .collect()
}

/// Render the variance figure.
pub fn figures(scale: Scale) -> Vec<Figure> {
    let mut fig = Figure::new(
        "variance",
        "Extension: seed-to-seed variance of feasible capacity and low-load FCT",
        "seed index",
        "feasible capacity (%)",
    );
    for p in [Protocol::Halfback, Protocol::JumpStart, Protocol::Tcp] {
        let rows = per_seed(p, scale);
        fig.push_series(
            p.name(),
            rows.iter()
                .enumerate()
                .map(|(i, &(fc, _))| (i as f64, fc * 100.0))
                .collect(),
        );
        let fcs: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let lows: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let min = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = |v: &[f64]| v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        fig.note(format!(
            "{}: feasible capacity {:.0}-{:.0}%, low-load FCT {:.0}-{:.0} ms across {} seeds",
            p.name(),
            min(&fcs) * 100.0,
            max(&fcs) * 100.0,
            min(&lows),
            max(&lows),
            rows.len()
        ));
    }
    fig.note("the Halfback-vs-JumpStart ordering must hold for every seed".to_string());
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_holds_across_seeds() {
        // At quick scale with two seeds: Halfback's feasible capacity never
        // falls below JumpStart's, for any seed.
        let hb = per_seed(Protocol::Halfback, Scale::Quick);
        let js = per_seed(Protocol::JumpStart, Scale::Quick);
        for (i, (h, j)) in hb.iter().zip(js.iter()).enumerate() {
            assert!(
                h.0 >= j.0,
                "seed index {i}: Halfback {:.2} < JumpStart {:.2}",
                h.0,
                j.0
            );
        }
    }
}

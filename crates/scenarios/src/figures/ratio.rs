//! Extension experiment (paper §5, "Additional bandwidth" future work):
//! "It is also possible to dynamically tune the additional bandwidth used
//! for proactive retransmission ... instead of sending one retransmission
//! for each ACK, we could send two retransmissions for every three ACKs.
//! The trade-off of that scheme is an interesting open question."
//!
//! We answer it within this simulator: sweep the ROPR ratio (1/1, 2/3,
//! 1/2) over the Fig. 12 workload and report the latency/feasible-capacity
//! trade each ratio buys.

use crate::figures::feasible;
use crate::metrics::feasible_capacity;
use crate::report::Figure;
use crate::{Protocol, Scale};

/// The ratios swept, with the paper's 1-per-ACK design first.
pub fn variants() -> [Protocol; 4] {
    [
        Protocol::Halfback,
        Protocol::HalfbackRatio23,
        Protocol::HalfbackRatio12,
        Protocol::HalfbackNoRopr,
    ]
}

/// Render the ratio trade-off figure.
pub fn figures(scale: Scale) -> Vec<Figure> {
    let mut fig = Figure::new(
        "ratio",
        "Extension: ROPR proactive-bandwidth ratio trade-off (paper §5 open question)",
        "utilization (%)",
        "mean FCT (ms)",
    );
    let mut rows = Vec::new();
    for (p, pts) in feasible::sweep_many(&variants(), scale, 42) {
        let fc = feasible_capacity(
            &pts,
            feasible::COLLAPSE_FACTOR,
            feasible::COLLAPSE_FLOOR_MS,
            feasible::MIN_COMPLETION,
        );
        let low = pts.first().map(|pt| pt.stats.mean_ms).unwrap_or(f64::NAN);
        let mid = pts
            .iter()
            .find(|pt| (pt.utilization - 0.5).abs() < 0.026)
            .map(|pt| pt.stats.mean_ms)
            .unwrap_or(f64::NAN);
        fig.push_series(
            p.name(),
            pts.iter()
                .map(|pt| (pt.utilization * 100.0, pt.stats.mean_ms))
                .collect(),
        );
        fig.note(format!(
            "{}: low-load FCT {:.0} ms, FCT@50% {:.0} ms, feasible capacity {:.0}%",
            p.name(),
            low,
            mid,
            fc * 100.0
        ));
        rows.push((p, low, fc));
    }
    fig.note(
        "answer to the open question: less proactive bandwidth buys feasible capacity \
         at the cost of loss-recovery latency; the 1-per-ACK design maximizes the \
         recovery guarantee while 2-per-3 trades a little of it for headroom"
            .to_string(),
    );
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_variants_have_decreasing_overhead() {
        // Direct mechanism check at flow level: proactive copies scale with
        // the configured ratio.
        use crate::runner::run_single_path_flow;
        use netsim::topology::PathSpec;
        use netsim::{Rate, SimDuration};
        let spec = PathSpec::clean(Rate::from_mbps(50), SimDuration::from_millis(60));
        let copies = |p: Protocol| {
            run_single_path_flow(&spec, p, 100_000, 3)
                .unwrap()
                .counters
                .proactive_retx
        };
        let full = copies(Protocol::Halfback);
        let two_thirds = copies(Protocol::HalfbackRatio23);
        let half = copies(Protocol::HalfbackRatio12);
        let none = copies(Protocol::HalfbackNoRopr);
        assert!(full > two_thirds, "{full} vs {two_thirds}");
        assert!(two_thirds > half, "{two_thirds} vs {half}");
        assert_eq!(none, 0);
        // 1-per-2-ACKs should be roughly half the copies of 1-per-ACK.
        assert!(
            (half as f64 / full as f64 - 0.5).abs() < 0.2,
            "{half}/{full}"
        );
    }
}

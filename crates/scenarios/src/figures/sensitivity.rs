//! Sensitivity extension: how much of the latency-safety story depends on
//! the RFC 6298 1 s minimum RTO?
//!
//! DESIGN.md documents the 1 s floor as a calibration decision. This
//! experiment reruns the Fig. 12 sweep with a Linux-style 200 ms floor and
//! with the standard 1 s floor for the three pivotal schemes. Measured
//! result (asserted in tests): TCP is nearly insensitive (it rarely times
//! out), Halfback pays a bounded premium on its rare tail double-losses,
//! and JumpStart pays the largest absolute penalty — its collapse is
//! driven by repeated retransmission of the same packets, and every one of
//! the resulting timeouts is 5x more expensive under the RFC floor.

use crate::metrics::{FctStats, SweepPoint};
use crate::report::Figure;
use crate::runner::{plans_from_schedule, run_dumbbell, RunOptions};
use crate::{Protocol, Scale};
use netsim::rng::SimRng;
use netsim::topology::DumbbellSpec;
use netsim::{SimDuration, SimTime};
use workload::Schedule;

/// The utilizations scanned.
fn utilizations(scale: Scale) -> Vec<f64> {
    scale.pick(vec![0.05, 0.3, 0.5, 0.6, 0.7, 0.8], vec![0.05, 0.5, 0.7])
}

/// One sweep cell: `protocol` at utilization `u` under the given
/// minimum-RTO floor.
pub fn point(protocol: Protocol, floor: SimDuration, u: f64, scale: Scale) -> SweepPoint {
    let spec = DumbbellSpec::emulab(1);
    let horizon =
        SimTime::ZERO + scale.pick(SimDuration::from_secs(120), SimDuration::from_secs(40));
    let srng = SimRng::new(42).fork_indexed("sens", (u * 1000.0) as u64);
    let schedule = Schedule::fixed_size(spec.bottleneck_rate, 100_000, u, horizon, srng);
    let plans = plans_from_schedule(&schedule, protocol);
    let opts = RunOptions {
        host_pairs: 12,
        grace: SimDuration::from_secs(30),
        seed: 42 ^ 0x5eed,
        trace_bin_ns: None,
        min_rto: Some(floor),
    };
    let out = run_dumbbell(&spec, &plans, &opts);
    // Normalize by the arrival horizon (the denominator of the
    // offered load), not the longer drain period.
    let achieved = (out.bottleneck_tx_bytes as f64 * 8.0)
        / (spec.bottleneck_rate.as_bps() as f64
            * horizon.saturating_since(SimTime::ZERO).as_secs_f64());
    SweepPoint {
        utilization: u,
        achieved_utilization: achieved,
        stats: FctStats::from_records(&out.records, out.censored),
    }
}

/// One sweep with a given minimum-RTO floor, one harness job per cell.
pub fn sweep_with_floor(protocol: Protocol, floor: SimDuration, scale: Scale) -> Vec<SweepPoint> {
    crate::harness::parallel_map(
        utilizations(scale),
        |&u| {
            format!(
                "sensitivity/{}/rto{}ms/u{:.0}",
                protocol.name(),
                floor.as_millis_f64(),
                u * 100.0
            )
        },
        |u| point(protocol, floor, u, scale),
    )
}

/// Render the sensitivity figure.
pub fn figures(scale: Scale) -> Vec<Figure> {
    let mut fig = Figure::new(
        "sensitivity",
        "Extension: minimum-RTO sensitivity of the latency-safety gap",
        "utilization (%)",
        "mean FCT (ms)",
    );
    for floor_ms in [200u64, 1000] {
        let floor = SimDuration::from_millis(floor_ms);
        let mut at_07: Vec<(Protocol, f64)> = Vec::new();
        for p in [Protocol::Halfback, Protocol::JumpStart, Protocol::Tcp] {
            let pts = sweep_with_floor(p, floor, scale);
            if let Some(pt) = pts.iter().find(|pt| (pt.utilization - 0.7).abs() < 0.026) {
                at_07.push((p, pt.stats.mean_ms));
            }
            fig.push_series(
                format!("{} (minRTO {floor_ms}ms)", p.name()),
                pts.iter()
                    .map(|pt| (pt.utilization * 100.0, pt.stats.mean_ms))
                    .collect(),
            );
        }
        let get = |p: Protocol| {
            at_07
                .iter()
                .find(|(q, _)| *q == p)
                .map(|(_, m)| *m)
                .unwrap_or(f64::NAN)
        };
        fig.note(format!(
            "minRTO {floor_ms} ms @70% util: JumpStart/Halfback FCT ratio = {:.2}",
            get(Protocol::JumpStart) / get(Protocol::Halfback)
        ));
    }
    fig.note(
        "TCP barely notices the floor; JumpStart pays the largest absolute penalty \
         (every storm-induced timeout costs 5x more); Halfback sits between — its \
         ROPR avoids most timeouts, so the premium stays bounded"
            .to_string(),
    );
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_cost_sensitivity_ordering() {
        let at = |p, floor_ms: u64| {
            sweep_with_floor(p, SimDuration::from_millis(floor_ms), Scale::Quick)
                .iter()
                .find(|pt| (pt.utilization - 0.7).abs() < 0.026)
                .map(|pt| pt.stats.mean_ms)
                .unwrap()
        };
        // TCP rarely times out: nearly floor-insensitive.
        let tcp_premium = at(Protocol::Tcp, 1000) - at(Protocol::Tcp, 200);
        assert!(tcp_premium.abs() < 100.0, "TCP premium {tcp_premium:.0} ms");
        // JumpStart pays the largest absolute premium for expensive timeouts.
        let js_premium = at(Protocol::JumpStart, 1000) - at(Protocol::JumpStart, 200);
        let hb_premium = at(Protocol::Halfback, 1000) - at(Protocol::Halfback, 200);
        assert!(
            js_premium > hb_premium && hb_premium > tcp_premium,
            "premium ordering: JS {js_premium:.0} > HB {hb_premium:.0} > TCP {tcp_premium:.0}"
        );
        // And the JS/HB safety gap holds under BOTH floors: the collapse is
        // mechanism-driven (repeated retransmission), not an RTO artifact.
        for floor in [200u64, 1000] {
            let ratio = at(Protocol::JumpStart, floor) / at(Protocol::Halfback, floor);
            assert!(ratio > 1.5, "minRTO {floor}ms: JS/HB ratio {ratio:.2}");
        }
    }
}

//! Extension experiment (paper §6, Bufferbloat discussion): "reducing
//! queuing delay is fully complementary to our study of reducing the
//! number of RTTs in a flow; the improvements multiply."
//!
//! We rerun the bufferbloat setting (one background TCP flow + short
//! flows) with a bloated 600 KB bottleneck buffer, once with drop-tail and
//! once with CoDel, for TCP vs Halfback — quantifying the claimed
//! multiplication: CoDel cuts the RTT, Halfback cuts the RTT *count*.

use crate::metrics::FctStats;
use crate::report::Figure;
use crate::runner::{run_dumbbell, FlowPlan, RunOptions};
use crate::{Protocol, Scale};
use netsim::rng::SimRng;
use netsim::topology::DumbbellSpec;
use netsim::{SimDuration, SimTime};
use workload::PoissonArrivals;

/// One cell: short-flow FCT stats under a bloated buffer with/without AQM.
pub fn cell(protocol: Protocol, codel: bool, scale: Scale) -> FctStats {
    let mut spec = DumbbellSpec::emulab_with_buffer(1, 600_000);
    spec.bottleneck_codel = codel;
    let horizon = scale.pick(SimDuration::from_secs(300), SimDuration::from_secs(60));
    let interval = scale.pick(SimDuration::from_secs(10), SimDuration::from_secs(4));
    let mut plans = vec![FlowPlan {
        at: SimTime::ZERO,
        bytes: 2_000_000_000,
        protocol: Protocol::Tcp,
    }];
    let mut arrivals = PoissonArrivals::new(
        interval,
        SimTime::ZERO + SimDuration::from_secs(3),
        SimRng::new(83).fork("aqm"),
    );
    for t in arrivals.until(SimTime::ZERO + horizon) {
        plans.push(FlowPlan {
            at: t,
            bytes: 100_000,
            protocol,
        });
    }
    let opts = RunOptions {
        host_pairs: 8,
        grace: SimDuration::from_secs(60),
        seed: 89,
        trace_bin_ns: None,
        min_rto: None,
    };
    let out = run_dumbbell(&spec, &plans, &opts);
    let shorts: Vec<_> = out
        .records
        .iter()
        .filter(|r| r.bytes == 100_000)
        .cloned()
        .collect();
    let started = plans.len() - 1;
    FctStats::from_records(&shorts, started - shorts.len())
}

/// Render the AQM complementarity table.
pub fn figures(scale: Scale) -> Vec<Figure> {
    let mut fig = Figure::new(
        "aqm",
        "Extension: CoDel AQM x Halfback under a bloated 600 KB buffer",
        "scheme x queue",
        "mean short-flow FCT (ms)",
    );
    let mut results = Vec::new();
    let protos = [
        Protocol::Tcp,
        Protocol::Tcp10,
        Protocol::JumpStart,
        Protocol::Halfback,
    ];
    // One harness job per (protocol, queue-discipline) cell.
    let grid: Vec<(Protocol, bool)> = protos
        .into_iter()
        .flat_map(|p| [(p, false), (p, true)])
        .collect();
    let stats = crate::harness::parallel_map(
        grid,
        |&(p, codel)| {
            format!(
                "aqm/{}/{}",
                p.name(),
                if codel { "codel" } else { "droptail" }
            )
        },
        |(p, codel)| cell(p, codel, scale),
    );
    for (pi, p) in protos.into_iter().enumerate() {
        let dt = stats[pi * 2].clone();
        let cd = stats[pi * 2 + 1].clone();
        fig.note(format!(
            "{}: drop-tail {:.0} ms -> CoDel {:.0} ms ({:+.0}%)",
            p.name(),
            dt.mean_ms,
            cd.mean_ms,
            100.0 * (cd.mean_ms / dt.mean_ms - 1.0)
        ));
        results.push((p, dt.mean_ms, cd.mean_ms));
        fig.push_series(format!("{} drop-tail", p.name()), vec![(0.0, dt.mean_ms)]);
        fig.push_series(format!("{} CoDel", p.name()), vec![(1.0, cd.mean_ms)]);
    }
    let get = |p: Protocol, idx: usize| {
        results
            .iter()
            .find(|(q, _, _)| *q == p)
            .map(|r| if idx == 0 { r.1 } else { r.2 })
            .unwrap_or(f64::NAN)
    };
    fig.note(format!(
        "multiplication: TCP+drop-tail {:.0} ms vs Halfback+CoDel {:.0} ms ({:.1}x)",
        get(Protocol::Tcp, 0),
        get(Protocol::Halfback, 1),
        get(Protocol::Tcp, 0) / get(Protocol::Halfback, 1)
    ));
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codel_debloats_tcp_under_bloated_buffer() {
        let dt = cell(Protocol::Tcp, false, Scale::Quick);
        let cd = cell(Protocol::Tcp, true, Scale::Quick);
        // With a 600 KB standing queue, CoDel must cut TCP's short-flow FCT
        // substantially (the queueing delay dominates).
        assert!(
            cd.mean_ms < dt.mean_ms * 0.8,
            "CoDel {:.0} ms vs drop-tail {:.0} ms",
            cd.mean_ms,
            dt.mean_ms
        );
    }

    #[test]
    fn halfback_and_codel_multiply() {
        let worst = cell(Protocol::Tcp, false, Scale::Quick);
        let best = cell(Protocol::Halfback, true, Scale::Quick);
        assert!(
            best.mean_ms < worst.mean_ms * 0.45,
            "Halfback+CoDel {:.0} ms vs TCP+drop-tail {:.0} ms",
            best.mean_ms,
            worst.mean_ms
        );
    }
}

//! Fig. 2: fraction of traffic (bytes) carried by flows up to each size,
//! for the three measured environments — rendered straight from the
//! workload crate's empirical distributions.

use crate::report::Figure;
use crate::Scale;
use workload::flowsize::byte_fraction_below;
use workload::TraceKind;

/// Render Fig. 2.
pub fn figures(_scale: Scale) -> Vec<Figure> {
    let mut fig = Figure::new(
        "fig2",
        "CDF of fraction of traffic carried by different flow sizes",
        "flow size (bytes)",
        "fraction of traffic",
    );
    // Log-spaced size grid, 100 B .. 10 GB.
    let grid: Vec<f64> = (0..=40)
        .map(|i| 100.0 * 10f64.powf(i as f64 * 0.2))
        .collect();
    for kind in TraceKind::ALL {
        let dist = kind.distribution();
        let pts: Vec<(f64, f64)> = grid
            .iter()
            .map(|&s| (s, byte_fraction_below(&dist, s, f64::INFINITY)))
            .collect();
        fig.push_series(kind.name(), pts);
        fig.note(format!(
            "{}: {:.1}% of bytes in flows < 141 KB (paper: Internet 34.7%, data centers < 1%)",
            kind.name(),
            100.0 * byte_fraction_below(&dist, 141_000.0, f64::INFINITY)
        ));
    }
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_series_are_monotone_cdfs() {
        let figs = figures(Scale::Quick);
        assert_eq!(figs.len(), 1);
        for s in &figs[0].series {
            assert!(
                s.points.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-12),
                "{}",
                s.label
            );
            let last = s.points.last().unwrap().1;
            assert!(last > 0.99, "{} ends at {last}", s.label);
        }
    }
}

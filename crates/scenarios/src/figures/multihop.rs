//! Extension experiment (paper §7 future work: "emulation with more
//! complex topologies"): short flows crossing a 3-hop parking lot with
//! independent cross traffic on every hop.
//!
//! The question multi-bottleneck paths pose for Halfback: the Pacing phase
//! measures one end-to-end RTT but the flow now contends at *several*
//! queues, and ROPR's ACK clock reflects the slowest of them. We measure
//! through-flow FCT for each scheme while every hop carries its own
//! cross-traffic load.

use crate::metrics::FctStats;
use crate::report::Figure;
use crate::{Protocol, Scale};
use baselines::path_cache;
use netsim::rng::SimRng;
use netsim::topology::{build_parking_lot, ParkingLotSpec};
use netsim::{FlowId, SimDuration, SimTime};
use transport::{Host, TransportSim};
use workload::PoissonArrivals;

/// Run through-flows of one scheme across a 3-hop parking lot while TCP
/// cross traffic loads each hop at `cross_util` of its capacity.
pub fn run_through(protocol: Protocol, cross_util: f64, scale: Scale) -> FctStats {
    let spec = ParkingLotSpec::emulab_like(3);
    let mut sim = TransportSim::new(0x9a9a);
    let net = build_parking_lot(&mut sim, &spec, || Box::new(Host::new()));

    // Wire every host.
    let wire = |sim: &mut TransportSim, hosts: &[netsim::NodeId], egress: &[netsim::LinkId]| {
        for (&h, &e) in hosts.iter().zip(egress) {
            sim.with_node_mut::<Host, _>(h, |host, _| host.wire(h, e));
        }
    };
    wire(&mut sim, &net.through_senders, &net.through_egress);
    wire(
        &mut sim,
        &net.through_receivers,
        &net.through_receiver_egress,
    );
    for (ss, rs, ses, res) in &net.cross {
        wire(&mut sim, ss, ses);
        wire(&mut sim, rs, res);
    }

    let horizon =
        SimTime::ZERO + scale.pick(SimDuration::from_secs(120), SimDuration::from_secs(30));
    let cache = path_cache();
    let mut next_flow = 1u64;

    // Build the merged arrival list: (time, hop or through, pair index).
    let root = SimRng::new(4242).fork_indexed("multihop", (cross_util * 1000.0) as u64);
    let mut arrivals: Vec<(SimTime, Option<usize>)> = Vec::new();
    let cross_gap = workload::interarrival_for_utilization(spec.hop_rate, 100_000.0, cross_util);
    for h in 0..spec.hops {
        let mut p = PoissonArrivals::new(
            cross_gap,
            SimTime::ZERO,
            root.fork_indexed("cross", h as u64),
        );
        arrivals.extend(p.until(horizon).map(|t| (t, Some(h))));
    }
    // Through flows at a light 10% additional load.
    let through_gap = workload::interarrival_for_utilization(spec.hop_rate, 100_000.0, 0.10);
    let mut p = PoissonArrivals::new(through_gap, SimTime::ZERO, root.fork("through"));
    arrivals.extend(p.until(horizon).map(|t| (t, None)));
    arrivals.sort_by_key(|&(t, _)| t);

    let mut through_started = 0usize;
    for (i, (at, which)) in arrivals.into_iter().enumerate() {
        sim.run_until(at);
        let flow = FlowId(next_flow);
        next_flow += 1;
        match which {
            None => {
                // Through flow under test.
                let pair = through_started % net.through_senders.len();
                through_started += 1;
                let (src, dst) = (net.through_senders[pair], net.through_receivers[pair]);
                let strategy = protocol.make(&cache, (src, dst));
                sim.with_node_mut::<Host, _>(src, |h, core| {
                    h.start_flow(core, flow, dst, 100_000, strategy)
                });
            }
            Some(hop) => {
                // Cross traffic is always TCP.
                let (ss, rs, _, _) = &net.cross[hop];
                let pair = i % ss.len();
                let (src, dst) = (ss[pair], rs[pair]);
                let strategy = Protocol::Tcp.make(&cache, (src, dst));
                sim.with_node_mut::<Host, _>(src, |h, core| {
                    h.start_flow(core, flow, dst, 100_000, strategy)
                });
            }
        }
    }
    sim.run_until(horizon + SimDuration::from_secs(30));
    crate::harness::meter_add(
        sim.now().saturating_since(SimTime::ZERO).as_nanos(),
        sim.events_processed(),
    );

    let mut records = Vec::new();
    for &h in &net.through_senders {
        records.extend(sim.node_as::<Host>(h).unwrap().completed().iter().cloned());
    }
    FctStats::from_records(
        &records,
        crate::metrics::censored_count(through_started, records.len(), "multihop/through"),
    )
}

/// Render the multihop extension figure.
pub fn figures(scale: Scale) -> Vec<Figure> {
    let mut fig = Figure::new(
        "multihop",
        "Extension: through-flow FCT across a 3-hop parking lot with per-hop cross traffic",
        "per-hop cross utilization (%)",
        "mean through-flow FCT (ms)",
    );
    let utils = scale.pick(vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6], vec![0.2, 0.4]);
    let protos = [
        Protocol::Tcp,
        Protocol::Tcp10,
        Protocol::JumpStart,
        Protocol::Halfback,
    ];
    // One harness job per (protocol, cross-utilization) cell.
    let grid: Vec<(Protocol, f64)> = protos
        .into_iter()
        .flat_map(|p| utils.iter().map(move |&u| (p, u)))
        .collect();
    let stats = crate::harness::parallel_map(
        grid,
        |&(p, u)| format!("multihop/{}/x{:.0}", p.name(), u * 100.0),
        |(p, u)| run_through(p, u, scale),
    );
    for (pi, p) in protos.into_iter().enumerate() {
        let pts: Vec<(f64, f64)> = utils
            .iter()
            .zip(&stats[pi * utils.len()..(pi + 1) * utils.len()])
            .map(|(&u, s)| (u * 100.0, s.mean_ms))
            .collect();
        let last = pts.last().map(|&(_, y)| y).unwrap_or(f64::NAN);
        fig.note(format!(
            "{}: FCT at heaviest cross load {:.0} ms",
            p.name(),
            last
        ));
        fig.push_series(p.name(), pts);
    }
    fig.note(
        "Halfback's single-RTT pacing and ACK-clocked recovery survive multiple \
         bottlenecks: the ACK clock automatically tracks the slowest hop"
            .to_string(),
    );
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halfback_beats_tcp_across_multiple_hops() {
        let hb = run_through(Protocol::Halfback, 0.3, Scale::Quick);
        let tcp = run_through(Protocol::Tcp, 0.3, Scale::Quick);
        assert!(hb.completed > 0 && tcp.completed > 0);
        assert!(
            hb.mean_ms < tcp.mean_ms * 0.75,
            "Halfback {:.0} ms vs TCP {:.0} ms across 3 hops",
            hb.mean_ms,
            tcp.mean_ms
        );
    }

    #[test]
    fn through_flows_complete_under_cross_load() {
        for p in [Protocol::Halfback, Protocol::JumpStart] {
            let s = run_through(p, 0.4, Scale::Quick);
            assert!(
                s.completion_rate() > 0.9,
                "{p}: completion {}",
                s.completion_rate()
            );
        }
    }
}

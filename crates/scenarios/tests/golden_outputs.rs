//! Byte-identity regression tests against committed golden outputs.
//!
//! The committed fixtures under `tests/golden/` were rendered by the
//! original `BinaryHeap`-based engine at quick scale. Determinism is part
//! of the simulator's performance contract: any event-queue, transport, or
//! harness optimization must reproduce these trees byte for byte at the
//! same seeds. A legitimate behaviour change (new metric, model fix) must
//! regenerate the fixtures *in the same commit* and say so.
//!
//! Regenerate with:
//!   cargo run --release --bin repro -- fig6  --scale quick --jobs 1 \
//!       --out crates/scenarios/tests/golden/fig6
//!   cargo run --release --bin repro -- chaos --scale quick --jobs 1 \
//!       --out crates/scenarios/tests/golden/chaos
//! (only `figN*`/`chaos*` data files are compared; `repro` also writes the
//! same CSV/summary/gnuplot set the test renders).

use scenarios::figures::run_experiment;
use scenarios::{harness, Scale};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The harness worker count and metrics buffer are process-global;
/// serialize tests that touch them (also vs. other test binaries' state —
/// each binary is its own process, so a static suffices).
static HARNESS_LOCK: Mutex<()> = Mutex::new(());

fn golden_dir(experiment: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(experiment)
}

fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                fs::read(e.path()).unwrap(),
            )
        })
        .collect()
}

fn assert_matches_golden(experiment: &str) {
    let _guard = HARNESS_LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join(format!(
        "halfback-golden-{experiment}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();

    harness::set_workers(1);
    let figs = run_experiment(experiment, Scale::Quick).expect("known experiment");
    for fig in &figs {
        fig.write_csv(&dir).unwrap();
        fig.write_gnuplot(&dir).unwrap();
    }
    harness::set_workers(0);
    harness::take_metrics();

    let golden = snapshot(&golden_dir(experiment));
    let fresh = snapshot(&dir);
    assert!(!golden.is_empty(), "no golden fixtures for {experiment}");
    assert_eq!(
        golden.keys().collect::<Vec<_>>(),
        fresh.keys().collect::<Vec<_>>(),
        "{experiment}: file set differs from committed goldens"
    );
    for (name, want) in &golden {
        let got = &fresh[name];
        assert_eq!(
            got, want,
            "{experiment}/{name} differs from the committed golden \
             (determinism regression, or an intentional change that must \
             regenerate the fixtures)"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fig6_quick_is_byte_identical_to_golden() {
    assert_matches_golden("fig6");
}

#[test]
fn chaos_quick_is_byte_identical_to_golden() {
    assert_matches_golden("chaos");
}

/// The flight-recorder export of the default trace spec (Halfback, fig6
/// path, seed 42) against committed fixtures. Regenerate with:
///   cargo run --release --bin repro -- trace \
///       --out crates/scenarios/tests/golden/trace
#[test]
fn default_trace_is_byte_identical_to_golden() {
    let _guard = HARNESS_LOCK.lock().unwrap();
    let out = scenarios::trace::run_trace(&scenarios::trace::TraceSpec::default())
        .expect("default trace spec is valid");
    harness::take_metrics();
    let golden = snapshot(&golden_dir("trace"));
    assert!(!golden.is_empty(), "no golden trace fixtures");
    assert_eq!(
        out.jsonl.as_bytes(),
        golden["trace.jsonl"].as_slice(),
        "trace.jsonl differs from the committed golden (determinism \
         regression, or an intentional change that must regenerate it)"
    );
    assert_eq!(
        out.timeseq_csv.as_bytes(),
        golden["trace_timeseq.csv"].as_slice(),
        "trace_timeseq.csv differs from the committed golden"
    );
}

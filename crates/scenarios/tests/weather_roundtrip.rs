//! Checkpoint/restore battery for the open-loop weather service mode.
//!
//! The contract under test: a run killed at a checkpoint and resumed must
//! produce **byte-identical** output files to an uninterrupted run of the
//! same configuration — across every scheme, because each scheme carries
//! its own in-flight strategy state through the snapshot.

use netsim::SimDuration;
use scenarios::weather::{run_weather, WeatherConfig, WeatherRunOptions};
use scenarios::Protocol;
use std::path::PathBuf;

fn cfg(protocol: Protocol, secs: u64, window: u64, ckpt_every: u64) -> WeatherConfig {
    WeatherConfig {
        protocol,
        utilization: 0.3,
        duration: SimDuration::from_secs(secs),
        window: SimDuration::from_secs(window),
        warmup: SimDuration::from_secs(window),
        checkpoint_every: ckpt_every,
        amplitude: 0.3,
        period: SimDuration::from_secs(2 * secs),
        host_pairs: 2,
        seed: 11,
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("halfback-weather-rt-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// `weather.json` minus the machine-varying `"machine"` line (RSS moves
/// between invocations even in the same process).
fn summary_stripped(dir: &std::path::Path) -> String {
    std::fs::read_to_string(dir.join("weather.json"))
        .unwrap()
        .lines()
        .filter(|l| !l.contains("\"machine\""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Run `c` twice: once uninterrupted, once killed at the first checkpoint
/// and resumed; assert the output files (and the final checkpoint itself)
/// are byte-identical.
fn assert_kill_resume_identical(c: &WeatherConfig, tag: &str) {
    let a = tmp_dir(&format!("{tag}-a"));
    let b = tmp_dir(&format!("{tag}-b"));

    let full = run_weather(c, &a, &WeatherRunOptions::default()).unwrap();
    assert!(!full.stopped_early);
    assert!(
        full.checkpoints >= 1,
        "{tag}: config produced no checkpoints"
    );

    let killed = run_weather(
        c,
        &b,
        &WeatherRunOptions {
            resume: false,
            stop_after_checkpoints: Some(1),
        },
    )
    .unwrap();
    assert!(killed.stopped_early, "{tag}: kill did not trigger");
    assert!(
        killed.windows < full.windows,
        "{tag}: kill point must precede the end"
    );
    let resumed = run_weather(
        c,
        &b,
        &WeatherRunOptions {
            resume: true,
            stop_after_checkpoints: None,
        },
    )
    .unwrap();
    assert!(!resumed.stopped_early);

    assert_eq!(full.started, resumed.started, "{tag}: started diverged");
    assert_eq!(
        full.completed, resumed.completed,
        "{tag}: completed diverged"
    );
    assert_eq!(full.aborted, resumed.aborted, "{tag}: aborted diverged");

    let csv_a = std::fs::read(a.join("windows.csv")).unwrap();
    let csv_b = std::fs::read(b.join("windows.csv")).unwrap();
    assert!(
        csv_a == csv_b,
        "{tag}: windows.csv diverged after kill+resume:\n--- uninterrupted\n{}\n--- resumed\n{}",
        String::from_utf8_lossy(&csv_a),
        String::from_utf8_lossy(&csv_b)
    );
    assert_eq!(
        summary_stripped(&a),
        summary_stripped(&b),
        "{tag}: weather.json diverged after kill+resume"
    );
    let ck_a = std::fs::read(a.join("weather.ckpt")).unwrap();
    let ck_b = std::fs::read(b.join("weather.ckpt")).unwrap();
    assert!(ck_a == ck_b, "{tag}: final checkpoints diverged");

    std::fs::remove_dir_all(&a).unwrap();
    std::fs::remove_dir_all(&b).unwrap();
}

#[test]
fn kill_resume_is_byte_identical_halfback() {
    // Long enough for several checkpoints with flows in flight at each.
    assert_kill_resume_identical(&cfg(Protocol::Halfback, 60, 10, 2), "halfback");
}

#[test]
fn kill_resume_is_byte_identical_for_every_scheme() {
    // Checkpoint every window so the kill lands with the scheme's own
    // in-flight state (Reno, PCP probe trains, JumpStart batches, ROPR
    // cursors, TCP-Cache path entries) mid-life.
    for p in Protocol::EVALUATED {
        assert_kill_resume_identical(&cfg(p, 40, 10, 1), p.name());
    }
}

#[test]
fn resume_from_later_checkpoint_also_matches() {
    // Kill at the *second* checkpoint: exercises resume-state written by a
    // run that was itself resumed-equivalent (checkpoint-of-checkpoint).
    let c = cfg(Protocol::Halfback, 80, 10, 2);
    let a = tmp_dir("late-a");
    let b = tmp_dir("late-b");
    run_weather(&c, &a, &WeatherRunOptions::default()).unwrap();
    run_weather(
        &c,
        &b,
        &WeatherRunOptions {
            resume: false,
            stop_after_checkpoints: Some(2),
        },
    )
    .unwrap();
    run_weather(
        &c,
        &b,
        &WeatherRunOptions {
            resume: true,
            stop_after_checkpoints: None,
        },
    )
    .unwrap();
    assert_eq!(
        std::fs::read(a.join("windows.csv")).unwrap(),
        std::fs::read(b.join("windows.csv")).unwrap(),
        "late-kill resume diverged"
    );
    std::fs::remove_dir_all(&a).unwrap();
    std::fs::remove_dir_all(&b).unwrap();
}

#[test]
fn double_kill_double_resume_matches() {
    // Crash, resume, crash again during the resumed run, resume again.
    let c = cfg(Protocol::Halfback, 80, 10, 2);
    let a = tmp_dir("double-a");
    let b = tmp_dir("double-b");
    run_weather(&c, &a, &WeatherRunOptions::default()).unwrap();
    run_weather(
        &c,
        &b,
        &WeatherRunOptions {
            resume: false,
            stop_after_checkpoints: Some(1),
        },
    )
    .unwrap();
    let second = run_weather(
        &c,
        &b,
        &WeatherRunOptions {
            resume: true,
            stop_after_checkpoints: Some(1),
        },
    )
    .unwrap();
    assert!(second.stopped_early, "second kill did not trigger");
    run_weather(
        &c,
        &b,
        &WeatherRunOptions {
            resume: true,
            stop_after_checkpoints: None,
        },
    )
    .unwrap();
    assert_eq!(
        std::fs::read(a.join("windows.csv")).unwrap(),
        std::fs::read(b.join("windows.csv")).unwrap(),
        "double-kill resume diverged"
    );
    assert_eq!(summary_stripped(&a), summary_stripped(&b));
    std::fs::remove_dir_all(&a).unwrap();
    std::fs::remove_dir_all(&b).unwrap();
}

#[test]
fn receivers_are_reaped_on_long_runs() {
    // 10 simulated minutes: past the 180 s reap grace the receiver
    // population must plateau at roughly (arrival rate x grace), not grow
    // with total flow count.
    let c = cfg(Protocol::Halfback, 600, 60, 3);
    let dir = tmp_dir("reap");
    let out = run_weather(&c, &dir, &WeatherRunOptions::default()).unwrap();
    assert!(
        out.reaped > 0,
        "no receivers reaped in 10 simulated minutes"
    );
    let csv = std::fs::read_to_string(dir.join("windows.csv")).unwrap();
    let last = csv.lines().last().unwrap();
    let live_receivers: f64 = last.split(',').nth(10).unwrap().parse().unwrap();
    // Steady state: ~grace seconds of arrivals (grace 180 s + one 60 s
    // window of slop), well short of the 600 s total.
    let rate_per_s = out.started as f64 / 600.0;
    let bound = rate_per_s * 240.0 * 1.2;
    assert!(
        live_receivers < bound,
        "receiver population {live_receivers} above steady-state bound {bound:.0} \
         (started {})",
        out.started
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

//! The tentpole guarantee of the parallel harness: the worker count is
//! invisible in the output. Running a real figure with 1 worker and with 8
//! must yield byte-identical CSV and summary files, and a panicking job
//! must not take down its siblings.

use scenarios::figures::run_experiment;
use scenarios::{harness, Scale};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The harness worker count and metrics buffer are process-global;
/// serialize the tests that touch them.
static HARNESS_LOCK: Mutex<()> = Mutex::new(());

/// Render `experiment` at quick scale with `n` workers and write its
/// CSV/summary files under `dir`.
fn render_to(experiment: &str, n_workers: usize, dir: &Path) {
    harness::set_workers(n_workers);
    let figs = run_experiment(experiment, Scale::Quick).expect("known experiment");
    for fig in figs {
        fig.write_csv(dir).unwrap();
    }
}

/// Read every file under `dir` as (name, bytes), sorted by name.
fn snapshot(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("halfback-harness-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn serial_and_parallel_runs_are_byte_identical() {
    let _guard = HARNESS_LOCK.lock().unwrap();
    let d1 = scratch("serial");
    let d8 = scratch("parallel");
    // fig9 is the cheapest multi-cell experiment: 4 home networks x 2
    // protocols = 8 jobs, enough to exercise real out-of-order completion.
    render_to("fig9", 1, &d1);
    render_to("fig9", 8, &d8);
    harness::set_workers(0); // restore the default for other tests
    harness::take_metrics();

    let a = snapshot(&d1);
    let b = snapshot(&d8);
    assert!(!a.is_empty(), "no output files written");
    assert_eq!(
        a.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
        b.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
        "file sets differ between --jobs 1 and --jobs 8"
    );
    for ((name, bytes1), (_, bytes8)) in a.iter().zip(&b) {
        assert_eq!(
            bytes1, bytes8,
            "{name} differs between --jobs 1 and --jobs 8"
        );
    }
    let _ = fs::remove_dir_all(&d1);
    let _ = fs::remove_dir_all(&d8);
}

/// The chaos sweep adds fault-injected simulations and per-cell watchdog
/// caps on top of the harness; none of it may leak worker-count effects.
/// `repro chaos --jobs 1`, `--jobs 3`, and `--jobs 4` must write
/// identical bytes. The odd worker count matters since the packet arena
/// landed: each worker's simulator recycles arena slots in its own LIFO
/// order, and three workers over eight cells gives maximally uneven
/// cell-to-worker assignments — if slot reuse leaked into output (stale
/// handle read, id minted from a slot index), this is where it shows.
#[test]
fn chaos_runs_are_byte_identical_across_worker_counts() {
    let _guard = HARNESS_LOCK.lock().unwrap();
    let d1 = scratch("chaos-serial");
    let d3 = scratch("chaos-three");
    let d4 = scratch("chaos-parallel");
    render_to("chaos", 1, &d1);
    render_to("chaos", 3, &d3);
    render_to("chaos", 4, &d4);
    harness::set_workers(0);
    harness::take_metrics();

    let a = snapshot(&d1);
    let b = snapshot(&d4);
    let c = snapshot(&d3);
    assert!(!a.is_empty(), "no chaos output files written");
    assert_eq!(
        a.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
        b.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
        "file sets differ between --jobs 1 and --jobs 4"
    );
    for ((name, bytes1), (_, bytes4)) in a.iter().zip(&b) {
        assert_eq!(
            bytes1, bytes4,
            "{name} differs between --jobs 1 and --jobs 4"
        );
    }
    assert_eq!(a, c, "output differs between --jobs 1 and --jobs 3");
    let _ = fs::remove_dir_all(&d3);
    let summary = a
        .iter()
        .find(|(n, _)| n == "chaos.summary.txt")
        .expect("chaos summary written");
    let text = String::from_utf8(summary.1.clone()).unwrap();
    assert!(
        text.contains("invariant violations: 0"),
        "chaos summary reports violations:\n{text}"
    );
    let _ = fs::remove_dir_all(&d1);
    let _ = fs::remove_dir_all(&d4);
}

/// Render `experiment` at quick scale with `n` shard threads (intra-
/// scenario parallelism) and write its CSV/summary files under `dir`.
fn render_shards_to(experiment: &str, n_shards: usize, dir: &Path) {
    harness::set_shards(n_shards);
    let figs = run_experiment(experiment, Scale::Quick).expect("known experiment");
    for fig in figs {
        fig.write_csv(dir).unwrap();
    }
}

/// The sharded engine's contract, mirroring the `--jobs` batteries above:
/// the shard-thread count maps partitions onto workers but never shapes
/// the simulation, so `--shards 1`, `2`, and `4` must write byte-identical
/// files for the sharded scaled-PlanetLab scenario.
#[test]
fn sharded_scenario_is_byte_identical_across_shard_counts() {
    let _guard = HARNESS_LOCK.lock().unwrap();
    let d1 = scratch("shards1");
    let d2 = scratch("shards2");
    let d4 = scratch("shards4");
    render_shards_to("planetlab100k", 1, &d1);
    render_shards_to("planetlab100k", 2, &d2);
    render_shards_to("planetlab100k", 4, &d4);
    harness::set_shards(0); // restore the default for other tests
    harness::take_metrics();

    let a = snapshot(&d1);
    let b = snapshot(&d2);
    let c = snapshot(&d4);
    assert!(!a.is_empty(), "no sharded output files written");
    assert_eq!(a, b, "output differs between --shards 1 and --shards 2");
    assert_eq!(a, c, "output differs between --shards 1 and --shards 4");
    // The scenario aggregates FCTs through the quantile sketch now; make
    // sure the byte-identity above is actually exercising that path.
    let summary = a
        .iter()
        .find(|(n, _)| n.ends_with("summary.txt"))
        .expect("sharded summary written");
    let text = String::from_utf8(summary.1.clone()).unwrap();
    assert!(
        text.contains("(sketch"),
        "sharded summary is not sketch-backed:\n{text}"
    );
    let _ = fs::remove_dir_all(&d1);
    let _ = fs::remove_dir_all(&d2);
    let _ = fs::remove_dir_all(&d4);
}

/// Sketch-backed summaries across the *jobs* axis: shard-local sketches
/// merged in submission order must render byte-identical lines whether
/// the partial sketches were built on 1 worker or 4. Bucket counts are
/// integers, so the merge is exact — this is the property that lets the
/// registry drop per-flow samples without giving up `--jobs` invariance.
#[test]
fn sketch_summaries_are_byte_identical_across_worker_counts() {
    let _guard = HARNESS_LOCK.lock().unwrap();
    use scenarios::harness::{run_jobs_on, Job};
    use scenarios::metrics::MetricsRegistry;

    let render = |n_workers: usize| -> Vec<String> {
        let jobs: Vec<Job<'_, MetricsRegistry>> = (0..8u64)
            .map(|part| {
                Job::new(format!("part{part}"), move || {
                    let mut reg = MetricsRegistry::new();
                    let mut lcg = 0x9e3779b97f4a7c15u64 ^ part.wrapping_mul(0xff51afd7ed558ccd);
                    for _ in 0..5_000 {
                        lcg = lcg
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        reg.observe_sketch("fct_ms", ((lcg >> 33) % 1_000_000 + 1) as f64 / 1e3);
                    }
                    reg
                })
            })
            .collect();
        let mut merged = MetricsRegistry::new();
        for reg in run_jobs_on(jobs, n_workers) {
            merged.merge(reg.expect("sketch job panicked"));
        }
        merged.render_lines()
    };

    let serial = render(1);
    let parallel = render(4);
    harness::take_metrics();
    assert_eq!(
        serial, parallel,
        "sketch summary differs between 1 and 4 workers"
    );
    assert!(
        serial.iter().any(|l| l.contains("(sketch")),
        "summary lines are not sketch-backed: {serial:?}"
    );
}

/// `--shards` must be inert for cell-parallel experiments: fig6 and chaos
/// fan out over the jobs pool and never consult the shard setting, and
/// this pins that — a future scenario quietly branching on
/// `harness::shards()` outside a sharded engine run would break here.
#[test]
fn shard_setting_does_not_leak_into_job_parallel_experiments() {
    let _guard = HARNESS_LOCK.lock().unwrap();
    for experiment in ["fig6", "chaos"] {
        let d1 = scratch(&format!("{experiment}-shardflag1"));
        let d4 = scratch(&format!("{experiment}-shardflag4"));
        render_shards_to(experiment, 1, &d1);
        render_shards_to(experiment, 4, &d4);
        let a = snapshot(&d1);
        let b = snapshot(&d4);
        assert!(!a.is_empty(), "no {experiment} output files written");
        assert_eq!(a, b, "{experiment} output changed with the shard setting");
        let _ = fs::remove_dir_all(&d1);
        let _ = fs::remove_dir_all(&d4);
    }
    harness::set_shards(0);
    harness::take_metrics();
}

/// The flight-recorder export is a pure function of `(scenario, seed)`:
/// running the same trace specs as harness jobs on 1 worker and on 4 must
/// produce byte-identical JSONL and time–sequence CSV, and repeating the
/// whole thing must reproduce the same bytes again.
#[test]
fn trace_exports_are_byte_identical_across_worker_counts() {
    let _guard = HARNESS_LOCK.lock().unwrap();
    use scenarios::harness::{run_jobs_on, Job};
    use scenarios::trace::{run_trace, TraceSpec};
    use scenarios::Protocol;

    let specs = || {
        vec![
            TraceSpec::default(),
            TraceSpec {
                seed: 7,
                flow: 2,
                ..Default::default()
            },
            // Flow 3 starts at t = 1000 ms, inside a chaos down window, so
            // the trace must show wire-level fault events.
            TraceSpec {
                figure: "chaos".to_string(),
                protocol: Protocol::Tcp,
                seed: 9,
                flow: 3,
                ..Default::default()
            },
        ]
    };
    let render = |n_workers: usize| -> Vec<(String, String)> {
        let jobs: Vec<Job<'_, (String, String)>> = specs()
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                Job::new(format!("trace{i}"), move || {
                    let out = run_trace(&spec).expect("trace spec is valid");
                    (out.jsonl, out.timeseq_csv)
                })
            })
            .collect();
        run_jobs_on(jobs, n_workers)
            .into_iter()
            .map(|r| r.expect("trace job panicked"))
            .collect()
    };

    let serial = render(1);
    let parallel = render(4);
    let again = render(4);
    harness::take_metrics();
    assert_eq!(serial.len(), 3);
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s.0, p.0, "trace {i} JSONL differs between 1 and 4 workers");
        assert_eq!(s.1, p.1, "trace {i} CSV differs between 1 and 4 workers");
    }
    assert_eq!(parallel, again, "same-seed rerun changed trace bytes");
    // Sanity: the faulty-link spec produced wire-level fault events.
    assert!(
        serial[2].0.contains("\"fault_drop\"") || serial[2].0.contains("\"blackhole\""),
        "chaos trace shows no fault events"
    );
}

/// The simcheck battery stacks random-case generation, shrinking, and
/// trace export on top of the harness; its rendered summary (and every
/// failing-case trace) must be byte-identical for any worker count, which
/// is what makes an emitted `repro simcheck --seed … --case …` command
/// trustworthy.
#[test]
fn simcheck_batteries_are_byte_identical_across_worker_counts() {
    let _guard = HARNESS_LOCK.lock().unwrap();
    use scenarios::simcheck::{run_battery_on, run_breaking_battery};

    let serial = run_battery_on(42, 24, 1);
    let parallel = run_battery_on(42, 24, 4);
    harness::take_metrics();
    assert_eq!(
        serial.render_text(),
        parallel.render_text(),
        "simcheck summary differs between 1 and 4 workers"
    );
    assert_eq!(serial.failures(), 0, "healthy battery reported failures");
    assert!(serial.render_text().contains("invariant violations: 0"));
    assert!(serial.render_text().contains("watchdog trips: 0"));

    // A battery of deliberately broken cases exercises the full failure
    // path — shrink, repro command, trace export — and must stay
    // deterministic too. Cases without a fault event cannot reproduce the
    // break, so only some fail; each failing one emits a repro command.
    let broken_a = run_breaking_battery(42, 8);
    let broken_b = run_breaking_battery(42, 8);
    harness::take_metrics();
    assert_eq!(broken_a.render_text(), broken_b.render_text());
    assert!(broken_a.failures() > 0, "break hook never fired in 8 cases");
    let text = broken_a.render_text();
    assert!(text.contains("FAILED [conservation]"), "{text}");
    assert!(
        text.contains("repro: repro simcheck --seed 42 --case"),
        "{text}"
    );
    for (a, b) in broken_a.cases.iter().zip(&broken_b.cases) {
        assert_eq!(a.trace, b.trace, "case {} trace not deterministic", a.id);
    }
}

#[test]
fn panicking_job_does_not_poison_the_pool() {
    let _guard = HARNESS_LOCK.lock().unwrap();
    harness::take_metrics();
    use scenarios::harness::{run_jobs_on, Job};
    // A realistic mix: simulation-sized jobs around one that dies.
    let jobs: Vec<Job<'_, usize>> = (0..6)
        .map(|i| {
            Job::new(format!("cell{i}"), move || {
                if i == 3 {
                    panic!("divergent simulation in cell {i}");
                }
                (0..1000).map(|x: usize| x.wrapping_mul(i)).sum::<usize>() & 0xff
            })
        })
        .collect();
    let out = run_jobs_on(jobs, 4);
    assert_eq!(out.len(), 6);
    for (i, r) in out.iter().enumerate() {
        if i == 3 {
            let err = r.as_ref().unwrap_err();
            assert_eq!(err.key, "cell3");
            assert!(err.message.contains("divergent simulation"));
        } else {
            assert!(r.is_ok(), "sibling job {i} was poisoned");
        }
    }
    // After the pool drains, metrics exist for every job including the
    // panicked one.
    let metrics = harness::take_metrics();
    assert!(metrics.len() >= 6);
    assert_eq!(metrics.iter().filter(|m| !m.ok).count(), 1);
}

set terminal pngcairo size 900,600
set output 'fig7.png'
set title "Number of RTTs used per short flow (CDF)"
set xlabel "number of RTTs"
set ylabel "percent of trials"
set key outside right
set datafile separator ','
plot 'fig7.csv' using 2:($0 >= 0 && stringcolumn(1) eq "Halfback" ? $3 : NaN) with linespoints title "Halfback", \
     'fig7.csv' using 2:($0 >= 0 && stringcolumn(1) eq "JumpStart" ? $3 : NaN) with linespoints title "JumpStart", \
     'fig7.csv' using 2:($0 >= 0 && stringcolumn(1) eq "TCP-10" ? $3 : NaN) with linespoints title "TCP-10", \
     'fig7.csv' using 2:($0 >= 0 && stringcolumn(1) eq "Reactive" ? $3 : NaN) with linespoints title "Reactive", \
     'fig7.csv' using 2:($0 >= 0 && stringcolumn(1) eq "TCP" ? $3 : NaN) with linespoints title "TCP", \
     'fig7.csv' using 2:($0 >= 0 && stringcolumn(1) eq "Proactive" ? $3 : NaN) with linespoints title "Proactive"

set terminal pngcairo size 900,600
set output 'fig6b.png'
set title "Flow completion time of short flows (complementary CDF)"
set xlabel "latency (ms)"
set ylabel "percent of trials"
set key outside right
set datafile separator ','
plot 'fig6b.csv' using 2:($0 >= 0 && stringcolumn(1) eq "Halfback" ? $3 : NaN) with linespoints title "Halfback", \
     'fig6b.csv' using 2:($0 >= 0 && stringcolumn(1) eq "JumpStart" ? $3 : NaN) with linespoints title "JumpStart", \
     'fig6b.csv' using 2:($0 >= 0 && stringcolumn(1) eq "TCP-10" ? $3 : NaN) with linespoints title "TCP-10", \
     'fig6b.csv' using 2:($0 >= 0 && stringcolumn(1) eq "Reactive" ? $3 : NaN) with linespoints title "Reactive", \
     'fig6b.csv' using 2:($0 >= 0 && stringcolumn(1) eq "TCP" ? $3 : NaN) with linespoints title "TCP", \
     'fig6b.csv' using 2:($0 >= 0 && stringcolumn(1) eq "Proactive" ? $3 : NaN) with linespoints title "Proactive"

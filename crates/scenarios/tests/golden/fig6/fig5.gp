set terminal pngcairo size 900,600
set output 'fig5.png'
set title "Number of normal TCP retransmissions of short flows (CDF)"
set xlabel "normal retransmissions"
set ylabel "percent of trials"
set key outside right
set datafile separator ','
plot 'fig5.csv' using 2:($0 >= 0 && stringcolumn(1) eq "Halfback" ? $3 : NaN) with linespoints title "Halfback", \
     'fig5.csv' using 2:($0 >= 0 && stringcolumn(1) eq "JumpStart" ? $3 : NaN) with linespoints title "JumpStart", \
     'fig5.csv' using 2:($0 >= 0 && stringcolumn(1) eq "TCP-10" ? $3 : NaN) with linespoints title "TCP-10", \
     'fig5.csv' using 2:($0 >= 0 && stringcolumn(1) eq "Reactive" ? $3 : NaN) with linespoints title "Reactive", \
     'fig5.csv' using 2:($0 >= 0 && stringcolumn(1) eq "TCP" ? $3 : NaN) with linespoints title "TCP", \
     'fig5.csv' using 2:($0 >= 0 && stringcolumn(1) eq "Proactive" ? $3 : NaN) with linespoints title "Proactive"

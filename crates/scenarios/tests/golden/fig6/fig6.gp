set terminal pngcairo size 900,600
set output 'fig6.png'
set title "Flow completion time of short flows (CDF)"
set xlabel "latency (ms)"
set ylabel "percent of trials"
set key outside right
set datafile separator ','
plot 'fig6.csv' using 2:($0 >= 0 && stringcolumn(1) eq "Halfback" ? $3 : NaN) with linespoints title "Halfback", \
     'fig6.csv' using 2:($0 >= 0 && stringcolumn(1) eq "JumpStart" ? $3 : NaN) with linespoints title "JumpStart", \
     'fig6.csv' using 2:($0 >= 0 && stringcolumn(1) eq "TCP-10" ? $3 : NaN) with linespoints title "TCP-10", \
     'fig6.csv' using 2:($0 >= 0 && stringcolumn(1) eq "Reactive" ? $3 : NaN) with linespoints title "Reactive", \
     'fig6.csv' using 2:($0 >= 0 && stringcolumn(1) eq "TCP" ? $3 : NaN) with linespoints title "TCP", \
     'fig6.csv' using 2:($0 >= 0 && stringcolumn(1) eq "Proactive" ? $3 : NaN) with linespoints title "Proactive"

set terminal pngcairo size 900,600
set output 'chaos.png'
set title "Robustness: survival and FCT degradation under injected faults"
set xlabel "fault scenario index"
set ylabel "flows completed (%)"
set key outside right
set datafile separator ','
plot 'chaos.csv' using 2:($0 >= 0 && stringcolumn(1) eq "TCP" ? $3 : NaN) with linespoints title "TCP", \
     'chaos.csv' using 2:($0 >= 0 && stringcolumn(1) eq "TCP-10" ? $3 : NaN) with linespoints title "TCP-10", \
     'chaos.csv' using 2:($0 >= 0 && stringcolumn(1) eq "TCP-Cache" ? $3 : NaN) with linespoints title "TCP-Cache", \
     'chaos.csv' using 2:($0 >= 0 && stringcolumn(1) eq "JumpStart" ? $3 : NaN) with linespoints title "JumpStart", \
     'chaos.csv' using 2:($0 >= 0 && stringcolumn(1) eq "PCP" ? $3 : NaN) with linespoints title "PCP", \
     'chaos.csv' using 2:($0 >= 0 && stringcolumn(1) eq "Reactive" ? $3 : NaN) with linespoints title "Reactive", \
     'chaos.csv' using 2:($0 >= 0 && stringcolumn(1) eq "Proactive" ? $3 : NaN) with linespoints title "Proactive", \
     'chaos.csv' using 2:($0 >= 0 && stringcolumn(1) eq "Halfback" ? $3 : NaN) with linespoints title "Halfback"

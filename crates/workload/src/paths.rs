//! Path populations: the PlanetLab stand-in (§4.2.1) and the four home
//! access networks (§4.2.2).
//!
//! The paper's PlanetLab numbers are driven by two population statistics we
//! reproduce directly: the RTT spread (0.2–400 ms across five continents)
//! and the loss split (75 % of 100 KB transfers see no packet loss). Our
//! synthetic population draws per-path RTT, bottleneck bandwidth, buffer
//! depth and residual wire loss from distributions calibrated to those
//! statistics; queue-overflow loss from each scheme's own aggressiveness
//! then emerges inside the simulation, exactly as it did on the real paths
//! ("this happens when the bandwidth of the bottleneck link is noticeably
//! smaller than the pacing rate ... and/or the bottleneck router buffer is
//! small").

use crate::dist::WeightedChoice;
use netsim::loss::LossModel;
use netsim::rng::SimRng;
use netsim::topology::PathSpec;
use netsim::{Rate, SimDuration};

/// Draw the PlanetLab-like population of `n` paths.
pub fn planetlab_paths(n: usize, seed: u64) -> Vec<PathSpec> {
    let root = SimRng::new(seed);
    let bw_choice = WeightedChoice::new(vec![
        (10u64, 0.08),
        (20, 0.14),
        (50, 0.22),
        (100, 0.26),
        (200, 0.15),
        (500, 0.10),
        (1000, 0.05),
    ]);
    (0..n)
        .map(|i| {
            let mut rng = root.fork_indexed("pl-path", i as u64);
            // RTT: lognormal, median ~80 ms, clamped to the paper's range.
            let rtt_ms = rng.lognormal(80f64.ln(), 0.9).clamp(0.2, 400.0);
            let rtt = SimDuration::from_secs_f64(rtt_ms / 1000.0);
            let rate = Rate::from_mbps(bw_choice.sample(&mut rng));
            // Buffer: 0.5–2 BDP, floored at 8 full segments so tiny-RTT
            // paths still hold a handful of packets.
            let bdp = rate.bytes_in(rtt).max(1);
            let buffer = ((bdp as f64) * rng.uniform_range(0.5, 2.0)) as u64;
            let buffer = buffer.clamp(8 * 1500, 2_000_000);
            // Residual loss: most paths clean; the lossy quarter gets a
            // light Bernoulli process (heavy loss on PlanetLab was rare).
            let loss = if rng.chance(0.80) {
                LossModel::None
            } else {
                LossModel::Bernoulli {
                    p: rng.uniform_range(0.002, 0.03),
                }
            };
            PathSpec {
                rate,
                reverse_rate: rate,
                rtt,
                buffer,
                loss,
                reverse_loss: LossModel::None,
                faults: netsim::FaultSpec::none(),
            }
        })
        .collect()
}

/// One of the four §4.2.2 home access networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomeNetwork {
    /// AT&T DSL, ~6 Mbps downlink behind a home wireless router.
    AttDslWireless,
    /// Comcast cable, 25 Mbps wired.
    ComcastWired,
    /// Campus/building shared WiFi.
    ConnectivityUWireless,
    /// Campus wired connection.
    ConnectivityUWired,
}

impl HomeNetwork {
    /// All four, in the paper's comparison order.
    pub const ALL: [HomeNetwork; 4] = [
        HomeNetwork::ComcastWired,
        HomeNetwork::ConnectivityUWired,
        HomeNetwork::ConnectivityUWireless,
        HomeNetwork::AttDslWireless,
    ];

    /// Display name matching Fig. 9's legend.
    pub fn name(self) -> &'static str {
        match self {
            HomeNetwork::AttDslWireless => "Wireless AT&T",
            HomeNetwork::ComcastWired => "Wired Comcast",
            HomeNetwork::ConnectivityUWireless => "Wireless ConnectivityU",
            HomeNetwork::ConnectivityUWired => "Wired ConnectivityU",
        }
    }

    /// Downlink rate of the access bottleneck.
    pub fn downlink(self) -> Rate {
        match self {
            HomeNetwork::AttDslWireless => Rate::from_mbps(6),
            HomeNetwork::ComcastWired => Rate::from_mbps(25),
            HomeNetwork::ConnectivityUWireless => Rate::from_mbps(40),
            HomeNetwork::ConnectivityUWired => Rate::from_mbps(100),
        }
    }

    /// Access-link buffer (home gear is bufferbloat-prone; DSL most so).
    pub fn buffer_bytes(self) -> u64 {
        match self {
            HomeNetwork::AttDslWireless => 192_000,
            HomeNetwork::ComcastWired => 128_000,
            HomeNetwork::ConnectivityUWireless => 96_000,
            HomeNetwork::ConnectivityUWired => 128_000,
        }
    }

    /// Residual loss model of the access hop.
    pub fn loss(self) -> LossModel {
        match self {
            HomeNetwork::AttDslWireless => LossModel::GilbertElliott {
                p_good_to_bad: 0.004,
                p_bad_to_good: 0.12,
                loss_good: 0.0005,
                loss_bad: 0.25,
            },
            HomeNetwork::ComcastWired => LossModel::None,
            HomeNetwork::ConnectivityUWireless => LossModel::wifi_bursty(),
            HomeNetwork::ConnectivityUWired => LossModel::None,
        }
    }

    /// Paths from this home client to `n_servers` PlanetLab-like servers
    /// (the paper's §4.2.2 setup: 170 servers, clients in Champaign IL).
    pub fn server_paths(self, n_servers: usize, seed: u64) -> Vec<PathSpec> {
        let root = SimRng::new(seed).fork(self.name());
        (0..n_servers)
            .map(|i| {
                let mut rng = root.fork_indexed("server", i as u64);
                // Server RTTs from a US-centric client: median ~60 ms.
                let rtt_ms = rng.lognormal(60f64.ln(), 0.7).clamp(5.0, 400.0);
                PathSpec {
                    rate: self.downlink(),
                    // Uplink (ACK direction) is slower on DSL but never the
                    // binding constraint for 40-byte ACKs.
                    reverse_rate: self.downlink(),
                    rtt: SimDuration::from_secs_f64(rtt_ms / 1000.0),
                    buffer: self.buffer_bytes(),
                    loss: self.loss(),
                    reverse_loss: LossModel::None,
                    faults: netsim::FaultSpec::none(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planetlab_population_statistics() {
        let paths = planetlab_paths(2600, 1);
        assert_eq!(paths.len(), 2600);
        let rtts: Vec<f64> = paths.iter().map(|p| p.rtt.as_millis_f64()).collect();
        assert!(rtts.iter().all(|&r| (0.2..=400.0).contains(&r)));
        // Median RTT near 80 ms.
        let mut sorted = rtts.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!((50.0..=120.0).contains(&median), "median rtt {median}");
        // Roughly 20% of paths carry residual loss.
        let lossy = paths
            .iter()
            .filter(|p| !matches!(p.loss, LossModel::None))
            .count();
        let frac = lossy as f64 / paths.len() as f64;
        assert!((0.15..=0.25).contains(&frac), "lossy fraction {frac}");
        // Buffers respect bounds.
        assert!(paths
            .iter()
            .all(|p| p.buffer >= 8 * 1500 && p.buffer <= 2_000_000));
    }

    #[test]
    fn planetlab_deterministic() {
        let a = planetlab_paths(50, 3);
        let b = planetlab_paths(50, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rtt, y.rtt);
            assert_eq!(x.rate, y.rate);
            assert_eq!(x.buffer, y.buffer);
        }
    }

    #[test]
    fn home_networks_have_expected_ordering() {
        // Wired campus is the fastest link; DSL the slowest.
        assert!(HomeNetwork::ConnectivityUWired.downlink() > HomeNetwork::ComcastWired.downlink());
        assert!(HomeNetwork::ComcastWired.downlink() > HomeNetwork::AttDslWireless.downlink());
        // Wireless profiles carry loss; wired are clean.
        assert!(matches!(HomeNetwork::ComcastWired.loss(), LossModel::None));
        assert!(!matches!(
            HomeNetwork::AttDslWireless.loss(),
            LossModel::None
        ));
    }

    #[test]
    fn server_paths_count_and_bounds() {
        for hn in HomeNetwork::ALL {
            let paths = hn.server_paths(170, 9);
            assert_eq!(paths.len(), 170);
            assert!(paths.iter().all(|p| {
                let ms = p.rtt.as_millis_f64();
                (5.0..=400.0).contains(&ms)
            }));
        }
    }
}

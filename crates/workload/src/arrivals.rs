//! Flow arrival processes and utilization targeting.
//!
//! The paper's Emulab experiments control offered load by tuning the mean
//! of an exponential interarrival-time distribution so that
//! `mean flow wire bytes / mean interarrival = rho * bottleneck rate`
//! (§4.1: "short flows have ... exponential interarrival-time
//! distribution"; §4.3.1 "we vary average network utilization ... from 5%
//! to 90%").

use netsim::rng::SimRng;
use netsim::{Rate, SimDuration, SimTime};
use transport::wire::{flow_wire_bytes, CTRL_WIRE_BYTES};

/// Total wire bytes a flow of `payload` bytes puts on the data direction of
/// the bottleneck, including handshake overhead (first copies only; control
/// traffic is small but counted for honesty).
pub fn flow_offered_wire_bytes(payload: u64) -> u64 {
    flow_wire_bytes(payload) + 2 * CTRL_WIRE_BYTES as u64
}

/// The largest offered utilization [`interarrival_for_utilization`]
/// accepts. Values above 1.0 are *deliberate overload* — the arrival rate
/// offers more than the bottleneck can carry, which the feasible-capacity
/// experiments use to find the collapse point — and 150% is as far past
/// saturation as any experiment here needs to go. Anything beyond that is
/// almost certainly a units mistake (a percentage passed as a fraction).
pub const MAX_OVERLOAD_UTILIZATION: f64 = 1.5;

/// The mean interarrival time that offers `utilization` of `bottleneck`
/// given flows averaging `mean_flow_payload` bytes.
///
/// # Panics
///
/// `utilization` must lie in `(0, `[`MAX_OVERLOAD_UTILIZATION`]`]`:
/// 0 < ρ ≤ 1 is the paper's operating range, 1 < ρ ≤ 1.5 is deliberate
/// overload. `mean_flow_payload` must be at least one byte — a sub-byte
/// mean is a degenerate workload (historically it was silently clamped to
/// 1 byte, which hid unit mistakes in callers).
pub fn interarrival_for_utilization(
    bottleneck: Rate,
    mean_flow_payload: f64,
    utilization: f64,
) -> SimDuration {
    assert!(
        utilization > 0.0 && utilization <= MAX_OVERLOAD_UTILIZATION,
        "utilization {utilization} outside (0, {MAX_OVERLOAD_UTILIZATION}]: \
         values in (1, 1.5] mean deliberate overload; anything larger is \
         unsupported (did you pass a percentage?)"
    );
    assert!(
        mean_flow_payload >= 1.0,
        "mean flow payload {mean_flow_payload} is less than one byte \
         (did you pass KB instead of bytes?)"
    );
    let wire = flow_offered_wire_bytes(mean_flow_payload as u64) as f64;
    let flows_per_sec = utilization * bottleneck.as_bps() as f64 / (8.0 * wire);
    SimDuration::from_secs_f64(1.0 / flows_per_sec)
}

/// A Poisson arrival process over virtual time.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    mean: SimDuration,
    next: SimTime,
    rng: SimRng,
}

impl PoissonArrivals {
    /// Arrivals with the given mean interarrival, starting after one draw
    /// from `start`.
    pub fn new(mean: SimDuration, start: SimTime, rng: SimRng) -> Self {
        let mut p = PoissonArrivals {
            mean,
            next: start,
            rng,
        };
        p.advance();
        p
    }

    fn advance(&mut self) {
        let gap = self.rng.exponential(self.mean.as_secs_f64());
        self.next += SimDuration::from_secs_f64(gap);
    }

    /// Time of the next arrival.
    pub fn peek(&self) -> SimTime {
        self.next
    }

    /// Consume the next arrival and schedule the following one.
    pub fn pop(&mut self) -> SimTime {
        let t = self.next;
        self.advance();
        t
    }

    /// Stream every arrival up to `horizon`, in order, one at a time.
    ///
    /// This replaces the old `take_until`, which materialized every arrival
    /// into a `Vec` — fine for a minutes-long figure run, fatal for an
    /// open-loop service run where a 24-hour horizon holds tens of millions
    /// of arrivals. The iterator borrows the process, so arrivals past the
    /// horizon stay pending for the next call.
    pub fn until(&mut self, horizon: SimTime) -> impl Iterator<Item = SimTime> + '_ {
        std::iter::from_fn(move || (self.peek() <= horizon).then(|| self.pop()))
    }

    /// Serialize into the engine checkpoint codec.
    pub fn save(&self, w: &mut netsim::snap::SnapWriter) {
        w.u64(self.mean.as_nanos());
        w.u64(self.next.as_nanos());
        let (seed, state) = self.rng.state_parts();
        w.u64(seed);
        for word in state {
            w.u64(word);
        }
    }

    /// Rebuild a process saved by [`PoissonArrivals::save`].
    pub fn load(r: &mut netsim::snap::SnapReader<'_>) -> Result<Self, netsim::snap::SnapError> {
        let mean = SimDuration::from_nanos(r.u64()?);
        let next = SimTime::from_nanos(r.u64()?);
        let seed = r.u64()?;
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.u64()?;
        }
        Ok(PoissonArrivals {
            mean,
            next,
            rng: SimRng::from_parts(seed, state),
        })
    }
}

/// A Poisson arrival process whose rate follows a sinusoidal "diurnal"
/// envelope — the open-loop service mode's internet-weather model, where
/// offered load breathes through a daily cycle instead of holding a flat
/// mean.
///
/// Implemented by *thinning*: candidates are generated by a homogeneous
/// [`PoissonArrivals`] at the peak rate `λ·(1 + amplitude)`, and each
/// candidate at time `t` is accepted with probability `λ(t) / λ_peak`
/// where `λ(t) = λ·(1 + amplitude·sin(2πt/period))`. Thinning keeps the
/// process exactly Poisson at every instant and — crucially for
/// checkpointing — keeps the state small: two RNGs, one pending arrival.
#[derive(Debug, Clone)]
pub struct DiurnalPoisson {
    /// Candidate stream at the peak rate.
    base: PoissonArrivals,
    /// Relative swing of the rate around its mean, in `[0, 1)`. 0 swings
    /// nothing (plain Poisson); 0.5 breathes between 50% and 150% of mean.
    amplitude: f64,
    /// Length of one rate cycle.
    period: SimDuration,
    /// Accept/reject draws for thinning.
    thin_rng: SimRng,
    /// Next accepted arrival.
    next: SimTime,
}

impl DiurnalPoisson {
    /// Arrivals averaging `mean` apart, swinging by `amplitude` over
    /// `period`. `amplitude = 0` degenerates to a plain Poisson process
    /// (the thinning draw still advances the RNG, so the two are not
    /// stream-identical — pick one and stay with it for a given run).
    pub fn new(
        mean: SimDuration,
        amplitude: f64,
        period: SimDuration,
        start: SimTime,
        rng: SimRng,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&amplitude),
            "diurnal amplitude {amplitude} outside [0, 1): the rate would go negative"
        );
        assert!(!period.is_zero(), "diurnal period must be positive");
        let peak_mean = SimDuration::from_secs_f64(mean.as_secs_f64() / (1.0 + amplitude));
        let base = PoissonArrivals::new(peak_mean, start, rng.fork("diurnal-base"));
        let mut p = DiurnalPoisson {
            base,
            amplitude,
            period,
            thin_rng: rng.fork("diurnal-thin"),
            next: start,
        };
        p.advance();
        p
    }

    /// Instantaneous acceptance probability at `t`: `λ(t) / λ_peak`.
    fn accept_prob(&self, t: SimTime) -> f64 {
        let phase = (t.as_secs_f64() / self.period.as_secs_f64()) * std::f64::consts::TAU;
        (1.0 + self.amplitude * phase.sin()) / (1.0 + self.amplitude)
    }

    fn advance(&mut self) {
        loop {
            let cand = self.base.pop();
            if self.thin_rng.uniform() < self.accept_prob(cand) {
                self.next = cand;
                return;
            }
        }
    }

    /// Time of the next arrival.
    pub fn peek(&self) -> SimTime {
        self.next
    }

    /// Consume the next arrival and compute the following one.
    pub fn pop(&mut self) -> SimTime {
        let t = self.next;
        self.advance();
        t
    }

    /// Stream every arrival up to `horizon`, in order, one at a time.
    pub fn until(&mut self, horizon: SimTime) -> impl Iterator<Item = SimTime> + '_ {
        std::iter::from_fn(move || (self.peek() <= horizon).then(|| self.pop()))
    }

    /// Serialize into the engine checkpoint codec.
    pub fn save(&self, w: &mut netsim::snap::SnapWriter) {
        self.base.save(w);
        w.f64(self.amplitude);
        w.u64(self.period.as_nanos());
        let (seed, state) = self.thin_rng.state_parts();
        w.u64(seed);
        for word in state {
            w.u64(word);
        }
        w.u64(self.next.as_nanos());
    }

    /// Rebuild a process saved by [`DiurnalPoisson::save`].
    pub fn load(r: &mut netsim::snap::SnapReader<'_>) -> Result<Self, netsim::snap::SnapError> {
        let base = PoissonArrivals::load(r)?;
        let amplitude = r.f64()?;
        let period = SimDuration::from_nanos(r.u64()?);
        let seed = r.u64()?;
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.u64()?;
        }
        let next = SimTime::from_nanos(r.u64()?);
        Ok(DiurnalPoisson {
            base,
            amplitude,
            period,
            thin_rng: SimRng::from_parts(seed, state),
            next,
        })
    }
}

/// A pre-materialized arrival schedule: the paper compares schemes under
/// *identical* flow arrivals ("all the experiments for different schemes
/// use the same schedule of flow arrivals", §4.3.2), so schedules are
/// generated once from a seed and replayed for every scheme.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// (arrival time, payload bytes) per flow, ascending in time.
    pub flows: Vec<(SimTime, u64)>,
}

impl Schedule {
    /// Fixed-size flows at Poisson arrivals targeting `utilization`.
    pub fn fixed_size(
        bottleneck: Rate,
        flow_bytes: u64,
        utilization: f64,
        horizon: SimTime,
        rng: SimRng,
    ) -> Schedule {
        let mean = interarrival_for_utilization(bottleneck, flow_bytes as f64, utilization);
        let mut arr = PoissonArrivals::new(mean, SimTime::ZERO, rng);
        Schedule {
            flows: arr.until(horizon).map(|t| (t, flow_bytes)).collect(),
        }
    }

    /// Variable-size flows drawn via `draw`, at Poisson arrivals targeting
    /// `utilization` given the distribution's `mean_payload`.
    pub fn variable_size(
        bottleneck: Rate,
        mean_payload: f64,
        utilization: f64,
        horizon: SimTime,
        mut rng: SimRng,
        mut draw: impl FnMut(&mut SimRng) -> u64,
    ) -> Schedule {
        let mean = interarrival_for_utilization(bottleneck, mean_payload, utilization);
        let mut arr = PoissonArrivals::new(mean, SimTime::ZERO, rng.fork("arrivals"));
        let flows = arr.until(horizon).map(|t| (t, draw(&mut rng))).collect();
        Schedule { flows }
    }

    /// Total offered wire bytes of the schedule.
    pub fn offered_wire_bytes(&self) -> u64 {
        self.flows
            .iter()
            .map(|&(_, b)| flow_offered_wire_bytes(b))
            .sum()
    }

    /// Achieved offered utilization of `bottleneck` over `horizon`.
    pub fn offered_utilization(&self, bottleneck: Rate, horizon: SimTime) -> f64 {
        let bits = self.offered_wire_bytes() as f64 * 8.0;
        bits / (bottleneck.as_bps() as f64 * horizon.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interarrival_math() {
        // 100 KB flows at 15 Mbps, rho = 0.5: wire ~ 102.8 KB -> 822.4 kbit;
        // flows/s = 0.5 * 15e6 / 822_480 = 9.12 -> ~109.7 ms apart.
        let d = interarrival_for_utilization(Rate::from_mbps(15), 100_000.0, 0.5);
        let ms = d.as_millis_f64();
        assert!((ms - 109.7).abs() < 1.5, "interarrival {ms}ms");
    }

    #[test]
    fn poisson_mean_matches() {
        let mean = SimDuration::from_millis(50);
        let mut p = PoissonArrivals::new(mean, SimTime::ZERO, SimRng::new(31));
        let horizon = SimTime::ZERO + SimDuration::from_secs(400);
        let arr: Vec<SimTime> = p.until(horizon).collect();
        let emp = horizon.as_secs_f64() / arr.len() as f64;
        assert!((emp / 0.05 - 1.0).abs() < 0.05, "empirical mean {emp}s");
        // Ascending and strictly positive.
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        assert!(arr[0] > SimTime::ZERO);
        // The stream is resumable: arrivals past the horizon stay pending.
        assert!(p.peek() > horizon);
    }

    #[test]
    fn utilization_boundaries() {
        let r = Rate::from_mbps(15);
        // 1.0 (full load) and the documented 1.5 overload ceiling are in
        // range; a hair past the ceiling and non-positive values are not.
        interarrival_for_utilization(r, 100_000.0, 1.0);
        interarrival_for_utilization(r, 100_000.0, MAX_OVERLOAD_UTILIZATION);
        for bad in [0.0, -0.2, MAX_OVERLOAD_UTILIZATION + 1e-9, 50.0] {
            assert!(
                std::panic::catch_unwind(|| interarrival_for_utilization(r, 100_000.0, bad))
                    .is_err(),
                "utilization {bad} should be rejected"
            );
        }
    }

    #[test]
    fn payload_boundaries() {
        let r = Rate::from_mbps(15);
        // Exactly one byte is the smallest legal mean payload.
        interarrival_for_utilization(r, 1.0, 0.5);
        for bad in [0.999, 0.0, -5.0] {
            assert!(
                std::panic::catch_unwind(|| interarrival_for_utilization(r, bad, 0.5)).is_err(),
                "mean payload {bad} should be rejected"
            );
        }
    }

    #[test]
    fn poisson_snapshot_resumes_identically() {
        let mean = SimDuration::from_millis(10);
        let mut p = PoissonArrivals::new(mean, SimTime::ZERO, SimRng::new(77));
        for _ in 0..100 {
            p.pop();
        }
        let mut w = netsim::snap::SnapWriter::new();
        p.save(&mut w);
        let bytes = w.into_bytes();
        let mut q = PoissonArrivals::load(&mut netsim::snap::SnapReader::new(&bytes)).unwrap();
        for _ in 0..1000 {
            assert_eq!(p.pop(), q.pop());
        }
    }

    #[test]
    fn diurnal_rate_breathes() {
        // amplitude 0.5 over a 1000 s period: the first half-cycle should
        // see visibly more arrivals than the second.
        let mean = SimDuration::from_millis(20);
        let period = SimDuration::from_secs(1000);
        let mut p = DiurnalPoisson::new(mean, 0.5, period, SimTime::ZERO, SimRng::new(5));
        let half = SimTime::ZERO + SimDuration::from_secs(500);
        let first: usize = p.until(half).count();
        let second: usize = p.until(SimTime::ZERO + period).count();
        assert!(
            first as f64 > second as f64 * 1.5,
            "diurnal swing missing: {first} vs {second}"
        );
        // Overall mean still matches the configured mean within tolerance.
        let total = (first + second) as f64;
        let expect = 1000.0 / 0.02;
        assert!(
            (total / expect - 1.0).abs() < 0.1,
            "overall rate off: {total} vs {expect}"
        );
    }

    #[test]
    fn diurnal_snapshot_resumes_identically() {
        let mean = SimDuration::from_millis(10);
        let period = SimDuration::from_secs(600);
        let mut p = DiurnalPoisson::new(mean, 0.4, period, SimTime::ZERO, SimRng::new(13));
        for _ in 0..500 {
            p.pop();
        }
        let mut w = netsim::snap::SnapWriter::new();
        p.save(&mut w);
        let bytes = w.into_bytes();
        let mut q = DiurnalPoisson::load(&mut netsim::snap::SnapReader::new(&bytes)).unwrap();
        for _ in 0..2000 {
            assert_eq!(p.pop(), q.pop());
        }
    }

    #[test]
    fn schedule_hits_target_utilization() {
        let horizon = SimTime::ZERO + SimDuration::from_secs(600);
        let s = Schedule::fixed_size(Rate::from_mbps(15), 100_000, 0.4, horizon, SimRng::new(7));
        let rho = s.offered_utilization(Rate::from_mbps(15), horizon);
        assert!((rho - 0.4).abs() < 0.05, "offered utilization {rho}");
    }

    #[test]
    fn same_seed_same_schedule() {
        let horizon = SimTime::ZERO + SimDuration::from_secs(60);
        let a = Schedule::fixed_size(Rate::from_mbps(15), 100_000, 0.4, horizon, SimRng::new(9));
        let b = Schedule::fixed_size(Rate::from_mbps(15), 100_000, 0.4, horizon, SimRng::new(9));
        assert_eq!(a.flows, b.flows);
    }

    #[test]
    fn variable_size_draws_sizes() {
        let horizon = SimTime::ZERO + SimDuration::from_secs(60);
        let s = Schedule::variable_size(
            Rate::from_mbps(15),
            50_000.0,
            0.3,
            horizon,
            SimRng::new(11),
            |rng| if rng.chance(0.5) { 10_000 } else { 90_000 },
        );
        assert!(s.flows.iter().any(|&(_, b)| b == 10_000));
        assert!(s.flows.iter().any(|&(_, b)| b == 90_000));
    }
}

//! Flow arrival processes and utilization targeting.
//!
//! The paper's Emulab experiments control offered load by tuning the mean
//! of an exponential interarrival-time distribution so that
//! `mean flow wire bytes / mean interarrival = rho * bottleneck rate`
//! (§4.1: "short flows have ... exponential interarrival-time
//! distribution"; §4.3.1 "we vary average network utilization ... from 5%
//! to 90%").

use netsim::rng::SimRng;
use netsim::{Rate, SimDuration, SimTime};
use transport::wire::{flow_wire_bytes, CTRL_WIRE_BYTES};

/// Total wire bytes a flow of `payload` bytes puts on the data direction of
/// the bottleneck, including handshake overhead (first copies only; control
/// traffic is small but counted for honesty).
pub fn flow_offered_wire_bytes(payload: u64) -> u64 {
    flow_wire_bytes(payload) + 2 * CTRL_WIRE_BYTES as u64
}

/// The mean interarrival time that offers `utilization` (0–1) of
/// `bottleneck` given flows averaging `mean_flow_payload` bytes.
pub fn interarrival_for_utilization(
    bottleneck: Rate,
    mean_flow_payload: f64,
    utilization: f64,
) -> SimDuration {
    assert!(
        utilization > 0.0 && utilization <= 1.5,
        "utilization out of range: {utilization}"
    );
    let wire = flow_offered_wire_bytes(mean_flow_payload.max(1.0) as u64) as f64;
    let flows_per_sec = utilization * bottleneck.as_bps() as f64 / (8.0 * wire);
    SimDuration::from_secs_f64(1.0 / flows_per_sec)
}

/// A Poisson arrival process over virtual time.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    mean: SimDuration,
    next: SimTime,
    rng: SimRng,
}

impl PoissonArrivals {
    /// Arrivals with the given mean interarrival, starting after one draw
    /// from `start`.
    pub fn new(mean: SimDuration, start: SimTime, rng: SimRng) -> Self {
        let mut p = PoissonArrivals {
            mean,
            next: start,
            rng,
        };
        p.advance();
        p
    }

    fn advance(&mut self) {
        let gap = self.rng.exponential(self.mean.as_secs_f64());
        self.next += SimDuration::from_secs_f64(gap);
    }

    /// Time of the next arrival.
    pub fn peek(&self) -> SimTime {
        self.next
    }

    /// Consume the next arrival and schedule the following one.
    pub fn pop(&mut self) -> SimTime {
        let t = self.next;
        self.advance();
        t
    }

    /// Generate every arrival up to `horizon`, in order.
    pub fn take_until(&mut self, horizon: SimTime) -> Vec<SimTime> {
        let mut out = Vec::new();
        while self.peek() <= horizon {
            out.push(self.pop());
        }
        out
    }
}

/// A pre-materialized arrival schedule: the paper compares schemes under
/// *identical* flow arrivals ("all the experiments for different schemes
/// use the same schedule of flow arrivals", §4.3.2), so schedules are
/// generated once from a seed and replayed for every scheme.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// (arrival time, payload bytes) per flow, ascending in time.
    pub flows: Vec<(SimTime, u64)>,
}

impl Schedule {
    /// Fixed-size flows at Poisson arrivals targeting `utilization`.
    pub fn fixed_size(
        bottleneck: Rate,
        flow_bytes: u64,
        utilization: f64,
        horizon: SimTime,
        rng: SimRng,
    ) -> Schedule {
        let mean = interarrival_for_utilization(bottleneck, flow_bytes as f64, utilization);
        let mut arr = PoissonArrivals::new(mean, SimTime::ZERO, rng);
        Schedule {
            flows: arr
                .take_until(horizon)
                .into_iter()
                .map(|t| (t, flow_bytes))
                .collect(),
        }
    }

    /// Variable-size flows drawn via `draw`, at Poisson arrivals targeting
    /// `utilization` given the distribution's `mean_payload`.
    pub fn variable_size(
        bottleneck: Rate,
        mean_payload: f64,
        utilization: f64,
        horizon: SimTime,
        mut rng: SimRng,
        mut draw: impl FnMut(&mut SimRng) -> u64,
    ) -> Schedule {
        let mean = interarrival_for_utilization(bottleneck, mean_payload, utilization);
        let arrivals =
            PoissonArrivals::new(mean, SimTime::ZERO, rng.fork("arrivals")).take_until(horizon);
        let flows = arrivals.into_iter().map(|t| (t, draw(&mut rng))).collect();
        Schedule { flows }
    }

    /// Total offered wire bytes of the schedule.
    pub fn offered_wire_bytes(&self) -> u64 {
        self.flows
            .iter()
            .map(|&(_, b)| flow_offered_wire_bytes(b))
            .sum()
    }

    /// Achieved offered utilization of `bottleneck` over `horizon`.
    pub fn offered_utilization(&self, bottleneck: Rate, horizon: SimTime) -> f64 {
        let bits = self.offered_wire_bytes() as f64 * 8.0;
        bits / (bottleneck.as_bps() as f64 * horizon.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interarrival_math() {
        // 100 KB flows at 15 Mbps, rho = 0.5: wire ~ 102.8 KB -> 822.4 kbit;
        // flows/s = 0.5 * 15e6 / 822_480 = 9.12 -> ~109.7 ms apart.
        let d = interarrival_for_utilization(Rate::from_mbps(15), 100_000.0, 0.5);
        let ms = d.as_millis_f64();
        assert!((ms - 109.7).abs() < 1.5, "interarrival {ms}ms");
    }

    #[test]
    fn poisson_mean_matches() {
        let mean = SimDuration::from_millis(50);
        let mut p = PoissonArrivals::new(mean, SimTime::ZERO, SimRng::new(31));
        let horizon = SimTime::ZERO + SimDuration::from_secs(400);
        let arr = p.take_until(horizon);
        let emp = horizon.as_secs_f64() / arr.len() as f64;
        assert!((emp / 0.05 - 1.0).abs() < 0.05, "empirical mean {emp}s");
        // Ascending and strictly positive.
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        assert!(arr[0] > SimTime::ZERO);
    }

    #[test]
    fn schedule_hits_target_utilization() {
        let horizon = SimTime::ZERO + SimDuration::from_secs(600);
        let s = Schedule::fixed_size(Rate::from_mbps(15), 100_000, 0.4, horizon, SimRng::new(7));
        let rho = s.offered_utilization(Rate::from_mbps(15), horizon);
        assert!((rho - 0.4).abs() < 0.05, "offered utilization {rho}");
    }

    #[test]
    fn same_seed_same_schedule() {
        let horizon = SimTime::ZERO + SimDuration::from_secs(60);
        let a = Schedule::fixed_size(Rate::from_mbps(15), 100_000, 0.4, horizon, SimRng::new(9));
        let b = Schedule::fixed_size(Rate::from_mbps(15), 100_000, 0.4, horizon, SimRng::new(9));
        assert_eq!(a.flows, b.flows);
    }

    #[test]
    fn variable_size_draws_sizes() {
        let horizon = SimTime::ZERO + SimDuration::from_secs(60);
        let s = Schedule::variable_size(
            Rate::from_mbps(15),
            50_000.0,
            0.3,
            horizon,
            SimRng::new(11),
            |rng| if rng.chance(0.5) { 10_000 } else { 90_000 },
        );
        assert!(s.flows.iter().any(|&(_, b)| b == 10_000));
        assert!(s.flows.iter().any(|&(_, b)| b == 90_000));
    }
}

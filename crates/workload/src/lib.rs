//! # workload — traffic and path generation for the Halfback reproduction
//!
//! * [`dist`] — empirical CDFs and weighted choices
//! * [`flowsize`] — the three flow-size distributions of Fig. 2 / Fig. 11
//! * [`arrivals`] — Poisson arrivals with utilization targeting and
//!   replayable schedules (identical arrivals across schemes, §4.3.2)
//! * [`web`] — the synthetic 100-page corpus for the §4.4 web benchmark
//! * [`paths`] — PlanetLab-like and home-network path populations

#![warn(missing_docs)]

pub mod arrivals;
pub mod dist;
pub mod flowsize;
pub mod paths;
pub mod web;

pub use arrivals::{
    interarrival_for_utilization, DiurnalPoisson, PoissonArrivals, Schedule,
    MAX_OVERLOAD_UTILIZATION,
};
pub use dist::{EmpiricalCdf, WeightedChoice};
pub use flowsize::TraceKind;
pub use paths::{planetlab_paths, HomeNetwork};
pub use web::{Corpus, Page, MAX_CONCURRENT_CONNECTIONS};

//! Synthetic web-page corpus for the application-level benchmark (§4.4).
//!
//! The paper replays the front pages of the 100 most popular web sites,
//! serving all objects in Chrome's request order over the browser's
//! concurrent connections. Without the original page archives we synthesize
//! a 100-page corpus with object-count and object-size distributions
//! matching published web measurements of the era (tens of objects per
//! page, median object ~10 KB, page weight a few hundred KB to ~2 MB), and
//! replay each page over at most [`MAX_CONCURRENT_CONNECTIONS`] connections
//! in order — which preserves the phenomenon Fig. 16 measures: concurrent
//! short flows creating transient overload.

use netsim::rng::SimRng;

/// Browser concurrency limit per page load (Chrome-era default per host).
pub const MAX_CONCURRENT_CONNECTIONS: usize = 6;

/// One web page: the HTML document plus its subresource objects, in
/// request order.
#[derive(Debug, Clone)]
pub struct Page {
    /// Object sizes in bytes; index 0 is the HTML document.
    pub objects: Vec<u64>,
}

impl Page {
    /// Total page weight in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.objects.iter().sum()
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the page has no objects (never happens for generated pages).
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

/// A corpus of synthetic pages.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The pages.
    pub pages: Vec<Page>,
}

impl Corpus {
    /// Generate `n` pages from a seed (deterministic).
    pub fn synthesize(n: usize, seed: u64) -> Corpus {
        let mut rng = SimRng::new(seed).fork("web-corpus");
        let pages = (0..n)
            .map(|_| {
                // Object count: lognormal around ~30 objects.
                let count = (rng.lognormal(30f64.ln(), 0.55)).round().clamp(5.0, 150.0) as usize;
                let mut objects = Vec::with_capacity(count);
                // HTML document: median ~20 KB.
                objects.push(clamp_size(rng.lognormal(20_000f64.ln(), 0.7)));
                for _ in 1..count {
                    // Subresources: a bimodal mix of small assets
                    // (scripts, styles, icons; median ~6 KB) and images
                    // (median ~25 KB). Calibrated to 2015-era top-100
                    // front pages, which were light (a few hundred KB
                    // total, few objects above 100 KB).
                    let size = if rng.chance(0.30) {
                        rng.lognormal(25_000f64.ln(), 0.7)
                    } else {
                        rng.lognormal(6_000f64.ln(), 1.0)
                    };
                    objects.push(clamp_size(size));
                }
                // Chrome-like request order: the document first, then
                // subresources roughly small-to-large (scripts and styles
                // come before hero images), which also staggers the large
                // transfers instead of pacing six of them concurrently.
                objects[1..].sort_unstable();
                Page { objects }
            })
            .collect();
        Corpus { pages }
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Mean page weight in bytes (for utilization targeting).
    pub fn mean_page_bytes(&self) -> f64 {
        self.pages
            .iter()
            .map(|p| p.total_bytes() as f64)
            .sum::<f64>()
            / self.pages.len() as f64
    }

    /// Pick a page uniformly at random (the §4.4 client "randomly requests
    /// the front page of one of the 100 most popular web sites").
    pub fn pick<'a>(&'a self, rng: &mut SimRng) -> &'a Page {
        &self.pages[rng.index(self.pages.len())]
    }
}

fn clamp_size(x: f64) -> u64 {
    (x as u64).clamp(400, 250_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let a = Corpus::synthesize(100, 5);
        let b = Corpus::synthesize(100, 5);
        assert_eq!(a.pages.len(), 100);
        for (pa, pb) in a.pages.iter().zip(&b.pages) {
            assert_eq!(pa.objects, pb.objects);
        }
        let c = Corpus::synthesize(100, 6);
        assert!(a
            .pages
            .iter()
            .zip(&c.pages)
            .any(|(x, y)| x.objects != y.objects));
    }

    #[test]
    fn page_shapes_are_realistic() {
        let corpus = Corpus::synthesize(100, 1);
        let mean_objects: f64 =
            corpus.pages.iter().map(|p| p.len() as f64).sum::<f64>() / corpus.len() as f64;
        assert!(
            (12.0..=60.0).contains(&mean_objects),
            "mean objects {mean_objects}"
        );
        let mean_bytes = corpus.mean_page_bytes();
        assert!(
            (200_000.0..=1_200_000.0).contains(&mean_bytes),
            "mean page bytes {mean_bytes}"
        );
        for p in &corpus.pages {
            assert!(p.len() >= 5 && p.len() <= 150);
            assert!(p.objects.iter().all(|&b| (400..=250_000).contains(&b)));
        }
    }

    #[test]
    fn pick_is_uniformish() {
        let corpus = Corpus::synthesize(10, 2);
        let mut rng = SimRng::new(3);
        let mut hits = vec![0u32; 10];
        for _ in 0..10_000 {
            let p = corpus.pick(&mut rng);
            let idx = corpus
                .pages
                .iter()
                .position(|q| std::ptr::eq(q, p))
                .unwrap();
            hits[idx] += 1;
        }
        assert!(hits.iter().all(|&h| h > 700), "{hits:?}");
    }
}

//! Sampling distributions, including empirical CDFs defined by breakpoint
//! tables (how the paper approximates the published flow-size
//! distributions: "the distributions here were approximated from figures in
//! the publications", §4.2.4 footnote).

use netsim::rng::SimRng;

/// An empirical distribution over positive values, defined by `(value,
/// cumulative probability)` breakpoints. Sampling inverts the CDF with
/// log-space interpolation between breakpoints (natural for the heavy-tailed,
/// log-x-axis flow-size plots the tables are read from).
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    points: Vec<(f64, f64)>,
}

impl EmpiricalCdf {
    /// Build from breakpoints; values must be positive and strictly
    /// increasing, probabilities non-decreasing and ending at 1.0.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "need at least two breakpoints");
        for w in points.windows(2) {
            assert!(
                w[0].0 > 0.0 && w[1].0 > w[0].0,
                "values must be positive increasing: {points:?}"
            );
            assert!(w[1].1 >= w[0].1, "CDF must be non-decreasing: {points:?}");
        }
        let last = points.last().unwrap();
        assert!(
            (last.1 - 1.0).abs() < 1e-9,
            "CDF must end at 1.0, ends at {}",
            last.1
        );
        assert!(points[0].1 >= 0.0);
        EmpiricalCdf { points }
    }

    /// The value at cumulative probability `p` (inverse CDF).
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let first = self.points[0];
        if p <= first.1 {
            return first.0;
        }
        for w in self.points.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if p <= p1 {
                if p1 == p0 {
                    return v1;
                }
                let t = (p - p0) / (p1 - p0);
                // Log-space interpolation of the value axis.
                return (v0.ln() + t * (v1.ln() - v0.ln())).exp();
            }
        }
        self.points.last().unwrap().0
    }

    /// Draw a sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        self.quantile(rng.uniform())
    }

    /// Draw a sample, truncated: values above `max` are clamped (the paper
    /// truncates its flow-size distributions at 1 MB for Fig. 11).
    pub fn sample_truncated(&self, rng: &mut SimRng, max: f64) -> f64 {
        self.sample(rng).min(max)
    }

    /// CDF evaluated at `x` (piecewise log-linear, matching `quantile`).
    pub fn cdf(&self, x: f64) -> f64 {
        let first = self.points[0];
        if x <= first.0 {
            return if x < first.0 { 0.0 } else { first.1 };
        }
        for w in self.points.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if x <= v1 {
                let t = (x.ln() - v0.ln()) / (v1.ln() - v0.ln());
                return p0 + t * (p1 - p0);
            }
        }
        1.0
    }

    /// Approximate mean by numeric integration over the quantile function.
    pub fn approx_mean(&self) -> f64 {
        let n = 10_000;
        (0..n)
            .map(|i| self.quantile((i as f64 + 0.5) / n as f64))
            .sum::<f64>()
            / n as f64
    }

    /// Approximate mean with values clamped at `max`.
    pub fn approx_mean_truncated(&self, max: f64) -> f64 {
        let n = 10_000;
        (0..n)
            .map(|i| self.quantile((i as f64 + 0.5) / n as f64).min(max))
            .sum::<f64>()
            / n as f64
    }

    /// Breakpoints (for rendering Fig. 2).
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

/// A discrete choice among weighted alternatives.
#[derive(Debug, Clone)]
pub struct WeightedChoice<T: Clone> {
    items: Vec<(T, f64)>,
    total: f64,
}

impl<T: Clone> WeightedChoice<T> {
    /// Build from `(item, weight)` pairs with positive weights.
    pub fn new(items: Vec<(T, f64)>) -> Self {
        assert!(!items.is_empty());
        assert!(
            items.iter().all(|(_, w)| *w > 0.0),
            "weights must be positive"
        );
        let total = items.iter().map(|(_, w)| w).sum();
        WeightedChoice { items, total }
    }

    /// Draw one item.
    pub fn sample(&self, rng: &mut SimRng) -> T {
        let mut x = rng.uniform() * self.total;
        for (item, w) in &self.items {
            if x < *w {
                return item.clone();
            }
            x -= w;
        }
        self.items.last().unwrap().0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> EmpiricalCdf {
        EmpiricalCdf::new(vec![
            (1_000.0, 0.1),
            (10_000.0, 0.5),
            (100_000.0, 0.9),
            (1_000_000.0, 1.0),
        ])
    }

    #[test]
    fn quantile_hits_breakpoints() {
        let d = simple();
        let close = |a: f64, b: f64| (a / b - 1.0).abs() < 1e-9;
        assert!(close(d.quantile(0.1), 1_000.0));
        assert!(close(d.quantile(0.5), 10_000.0));
        assert!(close(d.quantile(1.0), 1_000_000.0));
        assert!(close(d.quantile(0.0), 1_000.0));
    }

    #[test]
    fn quantile_interpolates_in_log_space() {
        let d = simple();
        // Halfway (in probability) between 0.1 and 0.5 is sqrt(1e3 * 1e4).
        let v = d.quantile(0.3);
        let expect = (1_000.0f64 * 10_000.0).sqrt();
        assert!((v / expect - 1.0).abs() < 1e-9, "{v} vs {expect}");
    }

    #[test]
    fn cdf_inverts_quantile() {
        let d = simple();
        for p in [0.15, 0.3, 0.62, 0.88, 0.97] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn samples_match_cdf() {
        let d = simple();
        let mut rng = SimRng::new(11);
        let n = 40_000;
        let below_10k = (0..n).filter(|_| d.sample(&mut rng) <= 10_000.0).count();
        let frac = below_10k as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn truncation_clamps() {
        let d = simple();
        let mut rng = SimRng::new(12);
        assert!((0..10_000).all(|_| d.sample_truncated(&mut rng, 50_000.0) <= 50_000.0));
    }

    #[test]
    fn truncated_mean_below_full_mean() {
        let d = simple();
        assert!(d.approx_mean_truncated(50_000.0) < d.approx_mean());
    }

    #[test]
    fn weighted_choice_frequencies() {
        let wc = WeightedChoice::new(vec![("a", 1.0), ("b", 3.0)]);
        let mut rng = SimRng::new(13);
        let n = 40_000;
        let b = (0..n).filter(|_| wc.sample(&mut rng) == "b").count();
        let frac = b as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    #[should_panic]
    fn rejects_decreasing_cdf() {
        EmpiricalCdf::new(vec![(1.0, 0.5), (2.0, 0.4), (3.0, 1.0)]);
    }
}

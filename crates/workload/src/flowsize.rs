//! Flow-size distributions for the three environments of Fig. 2 / Fig. 11.
//!
//! The paper (§4.2.4, footnote 3) could not obtain the original data sets
//! and approximated the distributions from figures in the publications; we
//! do the same, reading breakpoints off the published flow-size CDFs:
//!
//! * **Internet** — a 10 Gbps Tier-1 backbone link (Qian et al., "TCP
//!   revisited" \[30\]): web-dominated, most flows well under 100 KB, heavy
//!   tail. Calibrated so roughly a third of *bytes* ride in flows under
//!   141 KB (the paper quotes 34.7 %).
//! * **Benson** — a private enterprise data center \[9\]: the overwhelming
//!   majority of flows are small (<10 KB), but nearly all bytes are in
//!   large flows.
//! * **VL2** — a 1 500-node Microsoft cluster \[21\]: bimodal mice-and-
//!   elephants.
//!
//! Fig. 11 truncates all three at 1 MB ("longer flows would use TCP").

use crate::dist::EmpiricalCdf;
use netsim::rng::SimRng;

/// Maximum flow size used in the Fig. 11 experiments.
pub const FIG11_TRUNCATION_BYTES: u64 = 1_000_000;

/// Which measured environment a distribution models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Tier-1 ISP backbone \[30\].
    Internet,
    /// Private enterprise data center \[9\].
    Benson,
    /// Public-cloud style data center \[21\].
    Vl2,
}

impl TraceKind {
    /// All three environments in the paper's order.
    pub const ALL: [TraceKind; 3] = [TraceKind::Internet, TraceKind::Benson, TraceKind::Vl2];

    /// Display name matching the paper's sub-figure captions.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Internet => "Internet",
            TraceKind::Benson => "Benson",
            TraceKind::Vl2 => "VL2",
        }
    }

    /// The flow-size (per-flow count) distribution.
    pub fn distribution(self) -> EmpiricalCdf {
        match self {
            TraceKind::Internet => EmpiricalCdf::new(vec![
                (200.0, 0.03),
                (1_000.0, 0.14),
                (5_000.0, 0.33),
                (10_000.0, 0.46),
                (30_000.0, 0.66),
                (100_000.0, 0.86),
                (141_000.0, 0.90),
                (300_000.0, 0.965),
                (1_000_000.0, 0.996),
                (3_000_000.0, 1.0),
            ]),
            TraceKind::Benson => EmpiricalCdf::new(vec![
                (200.0, 0.08),
                (1_000.0, 0.45),
                (10_000.0, 0.82),
                (100_000.0, 0.95),
                (1_000_000.0, 0.99),
                (100_000_000.0, 1.0),
            ]),
            TraceKind::Vl2 => EmpiricalCdf::new(vec![
                (200.0, 0.05),
                (1_000.0, 0.30),
                (10_000.0, 0.62),
                (100_000.0, 0.81),
                (1_000_000.0, 0.90),
                (1_000_000_000.0, 1.0),
            ]),
        }
    }

    /// Draw a flow size in bytes, truncated at the Fig. 11 maximum.
    pub fn sample_truncated(self, rng: &mut SimRng) -> u64 {
        (self
            .distribution()
            .sample_truncated(rng, FIG11_TRUNCATION_BYTES as f64) as u64)
            .max(200)
    }

    /// Mean truncated flow size (for utilization targeting).
    pub fn mean_truncated(self) -> f64 {
        self.distribution()
            .approx_mean_truncated(FIG11_TRUNCATION_BYTES as f64)
    }
}

/// Fraction of *bytes* carried by flows of size `<= cut` under truncation
/// `max` (the Fig. 2 view of the distribution: byte-weighted, not
/// count-weighted).
pub fn byte_fraction_below(dist: &EmpiricalCdf, cut: f64, max: f64) -> f64 {
    let n = 20_000;
    let mut below = 0.0;
    let mut total = 0.0;
    for i in 0..n {
        let v = dist.quantile((i as f64 + 0.5) / n as f64).min(max);
        total += v;
        if v <= cut {
            below += v;
        }
    }
    below / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_respect_truncation() {
        let mut rng = SimRng::new(21);
        for kind in TraceKind::ALL {
            for _ in 0..2000 {
                let s = kind.sample_truncated(&mut rng);
                assert!((200..=FIG11_TRUNCATION_BYTES).contains(&s), "{kind:?}: {s}");
            }
        }
    }

    #[test]
    fn internet_byte_share_below_141kb_matches_paper_untruncated() {
        // Paper §2.1: "only 34.7% of bytes were carried by flows smaller
        // than 141KB" on the Tier-1 link. Our approximation should land in
        // the same region (±15 points — it is read off a published figure).
        let d = TraceKind::Internet.distribution();
        let frac = byte_fraction_below(&d, 141_000.0, f64::INFINITY);
        assert!(
            (0.20..=0.50).contains(&frac),
            "byte share below 141KB: {frac}"
        );
    }

    #[test]
    fn datacenter_byte_share_below_141kb_is_small() {
        // Paper §2.1: "less than 1% of transmitted bytes were in flows
        // smaller than 141KB" in both data centers (untruncated).
        for kind in [TraceKind::Benson, TraceKind::Vl2] {
            let d = kind.distribution();
            let frac = byte_fraction_below(&d, 141_000.0, f64::INFINITY);
            assert!(frac < 0.06, "{kind:?}: byte share {frac}");
        }
    }

    #[test]
    fn most_flows_are_short() {
        // Count-weighted: the overwhelming majority of flows are short in
        // all three environments (paper §1: ~99% of Internet flows are
        // under 100 KB).
        for kind in TraceKind::ALL {
            let d = kind.distribution();
            assert!(d.cdf(100_000.0) > 0.78, "{kind:?}: {}", d.cdf(100_000.0));
        }
    }

    #[test]
    fn means_are_finite_and_ordered() {
        for kind in TraceKind::ALL {
            let m = kind.mean_truncated();
            assert!(m > 1_000.0 && m < 500_000.0, "{kind:?} mean {m}");
        }
    }
}

//! Point-to-point unidirectional links.
//!
//! A link serializes packets at a fixed [`Rate`], delays them by a fixed
//! propagation time, and feeds from a [`QueueDiscipline`] when busy. Random
//! wire loss (from a [`LossProcess`]) is applied after serialization,
//! modelling loss beyond the queue (e.g. WiFi corruption).
//!
//! Links never touch packet bodies: they move [`PacketMeta`] records whose
//! handles point into the engine's packet arena, so the whole link layer is
//! payload-agnostic and non-generic.

use crate::faults::FaultState;
use crate::loss::{LossModel, LossProcess};
use crate::packet::NodeId;
use crate::queue::{DropTail, QueueDiscipline, QueueStats};
use crate::time::{Rate, SimDuration, SimTime};

/// Configuration for one unidirectional link.
#[derive(Debug)]
pub struct LinkSpec {
    /// Node that transmits onto this link.
    pub src: NodeId,
    /// Node packets are delivered to.
    pub dst: NodeId,
    /// Serialization rate.
    pub rate: Rate,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Queue discipline feeding the link.
    pub queue: Box<dyn QueueDiscipline>,
    /// Random wire loss model.
    pub loss: LossModel,
}

impl LinkSpec {
    /// Convenience constructor with a drop-tail queue of `buffer_bytes` and
    /// no random loss.
    pub fn drop_tail(
        src: NodeId,
        dst: NodeId,
        rate: Rate,
        delay: SimDuration,
        buffer_bytes: u64,
    ) -> Self {
        LinkSpec {
            src,
            dst,
            rate,
            delay,
            queue: Box::new(DropTail::new(buffer_bytes)),
            loss: LossModel::None,
        }
    }

    /// Replace the loss model.
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }
}

/// Link transmission counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Packets offered to the link (`forward_on` calls), before any drop.
    pub offered: u64,
    /// Packets fully serialized onto the wire.
    pub tx_packets: u64,
    /// Bytes fully serialized onto the wire.
    pub tx_bytes: u64,
    /// Packets dropped by the random wire-loss process.
    pub wire_lost: u64,
    /// Packets rejected at offer time by a fault down-window.
    pub down_dropped: u64,
    /// Packets swallowed post-serialization by a fault blackhole window.
    pub blackholed: u64,
    /// Packets flagged corrupt by fault injection (dropped at the next node).
    pub corrupt_marked: u64,
    /// Extra delivered copies created by fault duplication.
    pub duplicated: u64,
    /// Packets delivered to this link's destination node (clean copies,
    /// including surviving duplicates). Counted per link so conservation
    /// oracles balance each link's books on multi-hop topologies.
    pub delivered: u64,
    /// Corrupt-marked packets dropped at this link's destination
    /// (checksum failure on arrival).
    pub corrupt_dropped: u64,
}

impl LinkStats {
    /// Packets this link failed to carry for non-queue reasons: wire loss,
    /// fault down-windows, and blackholes. Queue (congestion) drops are
    /// counted separately in [`QueueStats`].
    pub fn lost_total(&self) -> u64 {
        self.wire_lost + self.down_dropped + self.blackholed
    }
}

/// Runtime state of a link inside the engine.
pub(crate) struct LinkState {
    #[allow(dead_code)] // kept for debugging/tracing symmetry with `dst`
    pub(crate) src: NodeId,
    pub(crate) dst: NodeId,
    pub(crate) rate: Rate,
    pub(crate) delay: SimDuration,
    pub(crate) queue: Box<dyn QueueDiscipline>,
    pub(crate) loss: LossProcess,
    pub(crate) busy: bool,
    pub(crate) stats: LinkStats,
    /// Fault-injection state, if a spec was installed for this link.
    pub(crate) faults: Option<FaultState>,
    /// True while the link needs none of the fault/loss machinery: the
    /// engine's transmit path checks this one flag and takes a straight-line
    /// fast path when set. Recomputed whenever faults are installed.
    pub(crate) plain: bool,
}

impl LinkState {
    pub(crate) fn new(spec: LinkSpec) -> Self {
        let plain = spec.loss.is_none();
        LinkState {
            src: spec.src,
            dst: spec.dst,
            rate: spec.rate,
            delay: spec.delay,
            queue: spec.queue,
            loss: LossProcess::new(spec.loss),
            busy: false,
            stats: LinkStats::default(),
            faults: None,
            plain,
        }
    }

    /// Apply any rate/delay fault steps due at `now` (lazy: the link only
    /// changes when it next touches a packet).
    pub(crate) fn apply_fault_steps(&mut self, now: SimTime) {
        if let Some(f) = self.faults.as_mut() {
            let (rate, delay) = f.step_updates(now);
            if let Some(r) = rate {
                self.rate = r;
            }
            if let Some(d) = delay {
                self.delay = d;
            }
        }
    }

    /// Serialization time of a packet of `size` bytes on this link.
    pub(crate) fn tx_time(&self, size: u32) -> SimDuration {
        self.rate.transmission_time(size)
    }

    pub(crate) fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Current queueing delay a newly enqueued packet would see (backlog
    /// serialization time). Exposed for tests and bandwidth estimators.
    pub(crate) fn backlog_delay(&self) -> SimDuration {
        self.rate
            .transmission_time(self.queue.backlog_bytes().min(u32::MAX as u64) as u32)
    }
}

//! Topology builders.
//!
//! [`DumbbellSpec`] reproduces the paper's Emulab configuration (Fig. 4):
//! many hosts on 1 Gbps access links, a single 15 Mbps bottleneck with 60 ms
//! RTT and a 115 KB drop-tail buffer. [`PathSpec`] builds a two-host path
//! with one bottleneck, used for the PlanetLab-style and home-network path
//! populations.
//!
//! Builders only create routers and links; host nodes are supplied by the
//! caller (the transport layer), and the caller wires each host's egress
//! link id after construction using the ids returned here.

use crate::engine::Simulator;
use crate::faults::FaultSpec;
use crate::link::LinkSpec;
use crate::loss::LossModel;
use crate::packet::{LinkId, NodeId, Payload};
use crate::queue::{CoDel, DropTail, QueueDiscipline};
use crate::router::Router;
use crate::time::{Rate, SimDuration};

/// Which side of a dumbbell a host sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Sender side (left of the bottleneck in Fig. 4).
    Left,
    /// Receiver side.
    Right,
}

/// Parameters of a dumbbell topology.
#[derive(Debug, Clone)]
pub struct DumbbellSpec {
    /// Hosts on the left (sender) side.
    pub n_left: usize,
    /// Hosts on the right (receiver) side.
    pub n_right: usize,
    /// Access link rate (paper: 1 Gbps).
    pub access_rate: Rate,
    /// One-way access link delay (kept tiny; the RTT lives on the bottleneck).
    pub access_delay: SimDuration,
    /// Access link buffer (large; access links are never the bottleneck).
    pub access_buffer: u64,
    /// Bottleneck rate (paper: 15 Mbps).
    pub bottleneck_rate: Rate,
    /// One-way bottleneck delay (paper: 30 ms each way for a 60 ms RTT).
    pub bottleneck_delay: SimDuration,
    /// Bottleneck buffer in bytes (paper default: 115 KB, the BDP).
    pub bottleneck_buffer: u64,
    /// Random loss on the bottleneck (defaults to none).
    pub bottleneck_loss: LossModel,
    /// Run CoDel AQM on the bottleneck instead of drop-tail (the §6
    /// complementarity extension; the paper's testbed is drop-tail).
    pub bottleneck_codel: bool,
}

impl DumbbellSpec {
    /// The paper's Emulab configuration (Fig. 4) with `n` host pairs.
    pub fn emulab(n: usize) -> Self {
        DumbbellSpec {
            n_left: n,
            n_right: n,
            access_rate: Rate::from_gbps(1),
            access_delay: SimDuration::from_micros(10),
            access_buffer: 10_000_000,
            bottleneck_rate: Rate::from_mbps(15),
            bottleneck_delay: SimDuration::from_millis(30),
            bottleneck_buffer: 115_000,
            bottleneck_loss: LossModel::None,
            bottleneck_codel: false,
        }
    }

    /// Same as [`DumbbellSpec::emulab`] but with a different bottleneck
    /// buffer (the Fig. 10 sweep).
    pub fn emulab_with_buffer(n: usize, buffer_bytes: u64) -> Self {
        let mut s = Self::emulab(n);
        s.bottleneck_buffer = buffer_bytes;
        s
    }

    /// Round-trip propagation time between a left and a right host.
    pub fn base_rtt(&self) -> SimDuration {
        (self.bottleneck_delay + self.access_delay * 2) * 2
    }

    /// Bandwidth-delay product of the bottleneck in bytes.
    pub fn bdp_bytes(&self) -> u64 {
        self.bottleneck_rate.bytes_in(self.base_rtt())
    }
}

/// Node and link ids of a built dumbbell.
#[derive(Debug, Clone)]
pub struct Dumbbell {
    /// Left-side host node ids (index-aligned with the factory calls).
    pub left_hosts: Vec<NodeId>,
    /// Right-side host node ids.
    pub right_hosts: Vec<NodeId>,
    /// Left router.
    pub left_router: NodeId,
    /// Right router.
    pub right_router: NodeId,
    /// Bottleneck link left -> right (data direction in the experiments).
    pub bottleneck_lr: LinkId,
    /// Bottleneck link right -> left (mostly ACKs).
    pub bottleneck_rl: LinkId,
    /// Egress (host -> router) link for every left host.
    pub left_egress: Vec<LinkId>,
    /// Egress (host -> router) link for every right host.
    pub right_egress: Vec<LinkId>,
}

/// Build a dumbbell. `make_host(i, side)` supplies each host node.
pub fn build_dumbbell<P, F>(
    sim: &mut Simulator<P>,
    spec: &DumbbellSpec,
    mut make_host: F,
) -> Dumbbell
where
    P: Payload,
    F: FnMut(usize, Side) -> Box<dyn crate::node::Node<P>>,
{
    let left_router = sim.add_node(Box::new(Router::new()));
    let right_router = sim.add_node(Box::new(Router::new()));

    let mut left_hosts = Vec::with_capacity(spec.n_left);
    let mut right_hosts = Vec::with_capacity(spec.n_right);
    let mut left_egress = Vec::with_capacity(spec.n_left);
    let mut right_egress = Vec::with_capacity(spec.n_right);

    for i in 0..spec.n_left {
        left_hosts.push(sim.add_node(make_host(i, Side::Left)));
    }
    for i in 0..spec.n_right {
        right_hosts.push(sim.add_node(make_host(i, Side::Right)));
    }

    // Bottleneck links, both directions. ACK-direction gets the same buffer;
    // it essentially never fills in these workloads.
    let make_queue = |spec: &DumbbellSpec| -> Box<dyn QueueDiscipline> {
        if spec.bottleneck_codel {
            Box::new(CoDel::new(spec.bottleneck_buffer))
        } else {
            Box::new(DropTail::new(spec.bottleneck_buffer))
        }
    };
    let bottleneck_lr = sim.add_link(LinkSpec {
        src: left_router,
        dst: right_router,
        rate: spec.bottleneck_rate,
        delay: spec.bottleneck_delay,
        queue: make_queue(spec),
        loss: spec.bottleneck_loss.clone(),
    });
    let bottleneck_rl = sim.add_link(LinkSpec {
        src: right_router,
        dst: left_router,
        rate: spec.bottleneck_rate,
        delay: spec.bottleneck_delay,
        queue: make_queue(spec),
        loss: spec.bottleneck_loss.clone(),
    });

    // Access links and routes.
    for (i, &h) in left_hosts.iter().enumerate() {
        let up = sim.add_link(LinkSpec::drop_tail(
            h,
            left_router,
            spec.access_rate,
            spec.access_delay,
            spec.access_buffer,
        ));
        let down = sim.add_link(LinkSpec::drop_tail(
            left_router,
            h,
            spec.access_rate,
            spec.access_delay,
            spec.access_buffer,
        ));
        left_egress.push(up);
        let r = sim.node_as_mut::<Router>(left_router).expect("left router");
        r.add_route(h, down);
        let _ = i;
    }
    for &h in &right_hosts {
        let up = sim.add_link(LinkSpec::drop_tail(
            h,
            right_router,
            spec.access_rate,
            spec.access_delay,
            spec.access_buffer,
        ));
        let down = sim.add_link(LinkSpec::drop_tail(
            right_router,
            h,
            spec.access_rate,
            spec.access_delay,
            spec.access_buffer,
        ));
        right_egress.push(up);
        let r = sim
            .node_as_mut::<Router>(right_router)
            .expect("right router");
        r.add_route(h, down);
    }

    // Cross-bottleneck default routes.
    sim.node_as_mut::<Router>(left_router)
        .unwrap()
        .set_default_route(bottleneck_lr);
    sim.node_as_mut::<Router>(right_router)
        .unwrap()
        .set_default_route(bottleneck_rl);

    Dumbbell {
        left_hosts,
        right_hosts,
        left_router,
        right_router,
        bottleneck_lr,
        bottleneck_rl,
        left_egress,
        right_egress,
    }
}

/// One hop's cross-traffic endpoints in a [`ParkingLot`]:
/// (senders, receivers, sender egress links, receiver egress links).
pub type CrossHop = (Vec<NodeId>, Vec<NodeId>, Vec<LinkId>, Vec<LinkId>);

/// Parameters of a parking-lot topology: `hops` bottleneck links in a row
/// with one router between each pair. "Through" traffic crosses every hop;
/// per-hop cross traffic enters at hop `i` and exits at hop `i+1`. This is
/// the "more complex topologies" extension the paper leaves as future work
/// (§7).
#[derive(Debug, Clone)]
pub struct ParkingLotSpec {
    /// Number of bottleneck hops (>= 2 for a multi-bottleneck path).
    pub hops: usize,
    /// Host pairs whose flows cross every hop.
    pub n_through: usize,
    /// Host pairs per hop for single-hop cross traffic.
    pub n_cross_per_hop: usize,
    /// Rate of every bottleneck hop.
    pub hop_rate: Rate,
    /// One-way propagation per hop.
    pub hop_delay: SimDuration,
    /// Drop-tail buffer per hop.
    pub hop_buffer: u64,
    /// Access link rate.
    pub access_rate: Rate,
}

impl ParkingLotSpec {
    /// A 3-hop parking lot scaled like the Emulab dumbbell (each hop
    /// 15 Mbps / 20 ms, 115 KB buffers).
    pub fn emulab_like(hops: usize) -> Self {
        assert!(hops >= 2, "a parking lot needs at least two hops");
        ParkingLotSpec {
            hops,
            n_through: 4,
            n_cross_per_hop: 4,
            hop_rate: Rate::from_mbps(15),
            hop_delay: SimDuration::from_millis(10),
            hop_buffer: 115_000,
            access_rate: Rate::from_gbps(1),
        }
    }

    /// End-to-end RTT of the through path.
    pub fn through_rtt(&self) -> SimDuration {
        (self.hop_delay * self.hops as u64) * 2
    }
}

/// Ids of a built parking lot.
#[derive(Debug, Clone)]
pub struct ParkingLot {
    /// Through-traffic senders (attached before hop 0).
    pub through_senders: Vec<NodeId>,
    /// Through-traffic receivers (attached after the last hop).
    pub through_receivers: Vec<NodeId>,
    /// Egress link of each through sender.
    pub through_egress: Vec<LinkId>,
    /// Egress link of each through receiver (for ACKs).
    pub through_receiver_egress: Vec<LinkId>,
    /// `cross[h]` = (senders, receivers, sender egress, receiver egress)
    /// for the cross traffic of hop `h`.
    pub cross: Vec<CrossHop>,
    /// The routers, one per hop boundary (hops + 1 of them).
    pub routers: Vec<NodeId>,
    /// Forward bottleneck link of each hop.
    pub hop_links: Vec<LinkId>,
}

/// Build a parking lot. `make_host()` supplies every host node.
pub fn build_parking_lot<P, F>(
    sim: &mut Simulator<P>,
    spec: &ParkingLotSpec,
    mut make_host: F,
) -> ParkingLot
where
    P: Payload,
    F: FnMut() -> Box<dyn crate::node::Node<P>>,
{
    let access_delay = SimDuration::from_micros(10);
    let access_buffer = 10_000_000;
    // Routers R0..R_hops.
    let routers: Vec<NodeId> = (0..=spec.hops)
        .map(|_| sim.add_node(Box::new(Router::new())))
        .collect();

    // Bottleneck chain, both directions.
    let mut hop_links = Vec::with_capacity(spec.hops);
    for h in 0..spec.hops {
        let fwd = sim.add_link(LinkSpec::drop_tail(
            routers[h],
            routers[h + 1],
            spec.hop_rate,
            spec.hop_delay,
            spec.hop_buffer,
        ));
        let rev = sim.add_link(LinkSpec::drop_tail(
            routers[h + 1],
            routers[h],
            spec.hop_rate,
            spec.hop_delay,
            spec.hop_buffer,
        ));
        hop_links.push(fwd);
        // Default routes: everything unknown goes "forward" from the left
        // routers and "backward" from the right ones; per-host routes are
        // added below, so defaults only matter for cross-chain traffic.
        sim.node_as_mut::<Router>(routers[h])
            .unwrap()
            .set_default_route(fwd);
        if h == spec.hops - 1 {
            sim.node_as_mut::<Router>(routers[h + 1])
                .unwrap()
                .set_default_route(rev);
        }
        let _ = rev;
    }

    // fwd link of hop h is hop_links[h]; its reverse was allocated
    // immediately after, so rev id = fwd id + 1.
    let hop_fwd: Vec<LinkId> = hop_links.clone();
    let hop_rev: Vec<LinkId> = hop_links.iter().map(|l| LinkId(l.0 + 1)).collect();

    // Helper to attach a host to a router with explicit routes on every
    // router toward it (routes toward hosts left of a router go backward
    // over the previous hop; hosts to the right go forward over this hop).
    let attach = |sim: &mut Simulator<P>, make_host: &mut F, at: usize| -> (NodeId, LinkId) {
        let host = sim.add_node(make_host());
        let up = sim.add_link(LinkSpec::drop_tail(
            host,
            routers[at],
            spec.access_rate,
            access_delay,
            access_buffer,
        ));
        let down = sim.add_link(LinkSpec::drop_tail(
            routers[at],
            host,
            spec.access_rate,
            access_delay,
            access_buffer,
        ));
        sim.node_as_mut::<Router>(routers[at])
            .unwrap()
            .add_route(host, down);
        for r in 0..routers.len() {
            if r == at {
                continue;
            }
            let next = if r < at { hop_fwd[r] } else { hop_rev[r - 1] };
            sim.node_as_mut::<Router>(routers[r])
                .unwrap()
                .add_route(host, next);
        }
        (host, up)
    };

    // Through hosts: senders at R0, receivers at R_hops.
    let mut through_senders = Vec::new();
    let mut through_receivers = Vec::new();
    let mut through_egress = Vec::new();
    let mut through_receiver_egress = Vec::new();
    for _ in 0..spec.n_through {
        let (s, se) = attach(sim, &mut make_host, 0);
        let (r, re) = attach(sim, &mut make_host, spec.hops);
        through_senders.push(s);
        through_receivers.push(r);
        through_egress.push(se);
        through_receiver_egress.push(re);
    }

    // Cross traffic per hop: sender at R_h, receiver at R_{h+1}.
    let mut cross = Vec::with_capacity(spec.hops);
    for h in 0..spec.hops {
        let mut ss = Vec::new();
        let mut rs = Vec::new();
        let mut ses = Vec::new();
        let mut res = Vec::new();
        for _ in 0..spec.n_cross_per_hop {
            let (s, se) = attach(sim, &mut make_host, h);
            let (r, re) = attach(sim, &mut make_host, h + 1);
            ss.push(s);
            rs.push(r);
            ses.push(se);
            res.push(re);
        }
        cross.push((ss, rs, ses, res));
    }

    ParkingLot {
        through_senders,
        through_receivers,
        through_egress,
        through_receiver_egress,
        cross,
        routers,
        hop_links,
    }
}

/// Parameters of a single two-host path with one bottleneck (PlanetLab-style
/// and home-network experiments).
#[derive(Debug, Clone)]
pub struct PathSpec {
    /// Bottleneck rate in the data direction.
    pub rate: Rate,
    /// Reverse-direction (ACK) rate; usually generous.
    pub reverse_rate: Rate,
    /// Round-trip propagation time.
    pub rtt: SimDuration,
    /// Bottleneck buffer in bytes.
    pub buffer: u64,
    /// Random loss in the data direction.
    pub loss: LossModel,
    /// Random loss in the ACK direction.
    pub reverse_loss: LossModel,
    /// Fault-injection schedule for the data-direction link.
    pub faults: FaultSpec,
}

impl PathSpec {
    /// A clean path: no random loss, buffer of one BDP (min 8 packets).
    pub fn clean(rate: Rate, rtt: SimDuration) -> Self {
        let bdp = rate.bytes_in(rtt).max(8 * 1500);
        PathSpec {
            rate,
            reverse_rate: rate,
            rtt,
            buffer: bdp,
            loss: LossModel::None,
            reverse_loss: LossModel::None,
            faults: FaultSpec::none(),
        }
    }

    /// Replace the data-direction fault schedule.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }
}

/// Node and link ids of a built path.
#[derive(Debug, Clone, Copy)]
pub struct PathNet {
    /// The sender-side host.
    pub sender: NodeId,
    /// The receiver-side host.
    pub receiver: NodeId,
    /// Sender -> receiver bottleneck link (this is the sender's egress).
    pub forward: LinkId,
    /// Receiver -> sender link (the receiver's egress).
    pub reverse: LinkId,
}

/// Build a two-host path; hosts supplied by the caller.
pub fn build_path<P, F>(sim: &mut Simulator<P>, spec: &PathSpec, mut make_host: F) -> PathNet
where
    P: Payload,
    F: FnMut(Side) -> Box<dyn crate::node::Node<P>>,
{
    let sender = sim.add_node(make_host(Side::Left));
    let receiver = sim.add_node(make_host(Side::Right));
    let one_way = SimDuration::from_nanos(spec.rtt.as_nanos() / 2);
    let forward = sim.add_link(LinkSpec {
        src: sender,
        dst: receiver,
        rate: spec.rate,
        delay: one_way,
        queue: Box::new(DropTail::new(spec.buffer)),
        loss: spec.loss.clone(),
    });
    let reverse = sim.add_link(LinkSpec {
        src: receiver,
        dst: sender,
        rate: spec.reverse_rate,
        delay: spec.rtt - one_way,
        queue: Box::new(DropTail::new(spec.buffer.max(64 * 1500))),
        loss: spec.reverse_loss.clone(),
    });
    if !spec.faults.is_noop() {
        sim.set_link_faults(forward, spec.faults.clone());
    }
    PathNet {
        sender,
        receiver,
        forward,
        reverse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Ctx;
    use crate::node::{Node, TimerId};
    use crate::packet::{FlowId, Packet};
    use std::any::Any;

    struct Echo {
        got: Vec<u64>,
    }
    impl Node<u64> for Echo {
        fn on_packet(&mut self, pkt: Packet<u64>, _ctx: &mut Ctx<'_, u64>) {
            self.got.push(pkt.payload);
        }
        fn on_timer(&mut self, _: TimerId, _: u64, _: &mut Ctx<'_, u64>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn emulab_spec_matches_paper_parameters() {
        let s = DumbbellSpec::emulab(4);
        assert_eq!(s.bottleneck_rate, Rate::from_mbps(15));
        assert_eq!(s.bottleneck_buffer, 115_000);
        // RTT ~= 60 ms (plus 40 us of access propagation).
        let rtt = s.base_rtt();
        assert!(rtt >= SimDuration::from_millis(60) && rtt <= SimDuration::from_millis(61));
        // BDP at 15 Mbps x 60 ms ~= 112.5 KB; paper rounds to 115 KB.
        let bdp = s.bdp_bytes();
        assert!(bdp > 110_000 && bdp < 115_000, "bdp {bdp}");
    }

    #[test]
    fn dumbbell_delivers_end_to_end() {
        let mut sim: Simulator<u64> = Simulator::new(0);
        let spec = DumbbellSpec::emulab(2);
        let net = build_dumbbell(&mut sim, &spec, |_, _| Box::new(Echo { got: vec![] }));
        // Left host 0 sends to right host 1 through both routers.
        let pkt = Packet::new(FlowId(1), net.left_hosts[0], net.right_hosts[1], 1500, 99);
        sim.core().send_on(net.left_egress[0], pkt);
        sim.run_to_completion(100);
        assert_eq!(
            sim.node_as::<Echo>(net.right_hosts[1]).unwrap().got,
            vec![99]
        );
        // And the reverse direction.
        let pkt = Packet::new(FlowId(1), net.right_hosts[1], net.left_hosts[0], 40, 7);
        sim.core().send_on(net.right_egress[1], pkt);
        sim.run_to_completion(100);
        assert_eq!(sim.node_as::<Echo>(net.left_hosts[0]).unwrap().got, vec![7]);
    }

    #[test]
    fn dumbbell_one_way_latency_close_to_30ms() {
        let mut sim: Simulator<u64> = Simulator::new(0);
        let spec = DumbbellSpec::emulab(1);
        let net = build_dumbbell(&mut sim, &spec, |_, _| Box::new(Echo { got: vec![] }));
        let pkt = Packet::new(FlowId(1), net.left_hosts[0], net.right_hosts[0], 1500, 1);
        sim.core().send_on(net.left_egress[0], pkt);
        sim.run_to_completion(100);
        let t = sim.now().as_millis_f64();
        // 30 ms propagation + ~0.8 ms serialization at 15 Mbps + access overhead.
        assert!(t > 30.0 && t < 32.0, "one-way latency {t}ms");
    }

    #[test]
    fn parking_lot_routes_through_and_cross_traffic() {
        let mut sim: Simulator<u64> = Simulator::new(0);
        let spec = ParkingLotSpec::emulab_like(3);
        let net = build_parking_lot(&mut sim, &spec, || Box::new(Echo { got: vec![] }));
        // Through sender 0 -> through receiver 0 crosses all three hops.
        let pkt = Packet::new(
            FlowId(1),
            net.through_senders[0],
            net.through_receivers[0],
            1500,
            11,
        );
        sim.core().send_on(net.through_egress[0], pkt);
        sim.run_to_completion(1000);
        assert_eq!(
            sim.node_as::<Echo>(net.through_receivers[0]).unwrap().got,
            vec![11]
        );
        // ~3 hops of 10 ms + serialization.
        let t = sim.now().as_millis_f64();
        assert!(t > 30.0 && t < 34.0, "through latency {t}ms");

        // Reverse direction (ACK path) works too.
        let pkt = Packet::new(
            FlowId(1),
            net.through_receivers[0],
            net.through_senders[0],
            40,
            12,
        );
        sim.core().send_on(net.through_receiver_egress[0], pkt);
        sim.run_to_completion(1000);
        assert_eq!(
            sim.node_as::<Echo>(net.through_senders[0]).unwrap().got,
            vec![12]
        );

        // Cross traffic of hop 1 only crosses hop 1.
        let (ss, rs, ses, _res) = &net.cross[1];
        let t0 = sim.now().as_millis_f64();
        let pkt = Packet::new(FlowId(2), ss[0], rs[0], 1500, 13);
        sim.core().send_on(ses[0], pkt);
        sim.run_to_completion(1000);
        assert_eq!(sim.node_as::<Echo>(rs[0]).unwrap().got, vec![13]);
        let dt = sim.now().as_millis_f64() - t0;
        assert!(dt > 10.0 && dt < 12.0, "cross latency {dt}ms");
        // No router dropped anything for lack of a route.
        for &r in &net.routers {
            assert_eq!(
                sim.node_as::<crate::router::Router>(r)
                    .unwrap()
                    .unroutable(),
                0
            );
        }
    }

    #[test]
    fn path_round_trip_time_matches_spec() {
        let mut sim: Simulator<u64> = Simulator::new(0);
        let spec = PathSpec::clean(Rate::from_mbps(100), SimDuration::from_millis(80));
        let net = build_path(&mut sim, &spec, |_| Box::new(Echo { got: vec![] }));
        let pkt = Packet::new(FlowId(1), net.sender, net.receiver, 40, 1);
        sim.core().send_on(net.forward, pkt);
        sim.run_to_completion(100);
        let fwd = sim.now();
        let pkt = Packet::new(FlowId(1), net.receiver, net.sender, 40, 2);
        sim.core().send_on(net.reverse, pkt);
        sim.run_to_completion(100);
        let rtt_ms = sim.now().as_millis_f64();
        assert!(
            (80.0..80.2).contains(&rtt_ms),
            "rtt {rtt_ms}ms (fwd at {fwd})"
        );
    }
}

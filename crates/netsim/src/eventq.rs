//! The engine's event queue: a bucketed calendar queue (timer wheel) with a
//! far-future overflow heap, plus generation-stamped timer slots.
//!
//! The queue is a drop-in replacement for the `BinaryHeap<Reverse<_>>` the
//! engine started with, with the same total order — events fire strictly by
//! `(at, seq)` — but O(1) amortized push/pop for the near-future events that
//! dominate a simulation (serialization completions, propagation
//! deliveries, ACK clocking), instead of O(log n) sift operations over a
//! heap that also holds every stale cancelled RTO timer.
//!
//! Layout:
//!
//! - **Wheel**: `N_BUCKETS` buckets of `2^W_SHIFT` ns each, covering a
//!   sliding window of ~34 ms from the cursor. An event lands in bucket
//!   `(at >> W_SHIFT) % N_BUCKETS`; bucket membership is tracked in a
//!   bitmap so advancing over empty buckets costs a trailing-zeros scan,
//!   not a per-bucket probe.
//! - **Slab arena**: bucket contents are index-linked chains through one
//!   growing slab, not per-bucket `Vec`s. The figure sweeps run hundreds of
//!   small simulations per second, so per-queue setup and teardown must
//!   stay at one allocation, matching the heap it replaces.
//! - **Current run**: when the cursor reaches a bucket, its chain is
//!   unlinked into a reusable scratch `Vec`, sorted descending so
//!   `Vec::pop` yields the earliest entry, and consumed in place.
//! - **Inbox**: events scheduled into the cursor's own bucket (or behind
//!   the eagerly-advanced cursor) are binary-inserted into the sorted run
//!   while it is short, and spill to a small min-heap once the run exceeds
//!   [`INBOX_SPILL`] — at high queue depth a mid-run insert is an
//!   O(bucket) memmove per push, while at low depth the memmove beats two
//!   heap operations. Pop takes the smaller of the run's tail and the
//!   inbox head; the inbox only ever holds entries for the window
//!   currently being consumed, so it stays small.
//! - **Overflow**: events beyond the window (RTO timers, long flow-start
//!   schedules) go to a min-heap ordered by `(at, seq)` and migrate into
//!   buckets as the window slides over them.
//!
//! Two invariants carry the determinism proof: every bucket's entries
//! belong to exactly one future cursor visit (pushes beyond the window go
//! to overflow, and overflow drains exactly as the window slides), and the
//! cursor never passes an occupied bucket. Together they mean the pop
//! sequence is exactly the ascending `(at, seq)` order — byte-identical to
//! the reference heap, which `tests/event_order.rs` checks against a
//! sorted-list model under randomized schedule/cancel workloads.

use crate::node::TimerId;
use crate::packet::{LinkId, NodeId, Packet, Payload};
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Bucket width: 2^17 ns = 131.072 us.
const W_SHIFT: u32 = 17;
/// Number of buckets; the window spans `N_BUCKETS << W_SHIFT` ns (~537 ms).
/// Sized so that WAN-scale RTT events (the PlanetLab population is
/// lognormal, median ~80 ms, clamped at 400 ms) land in buckets rather
/// than bouncing through the overflow heap — only second-scale timers
/// (RTO backoff, idle horizons) overflow.
const N_BUCKETS: usize = 4096;
const IDX_MASK: usize = N_BUCKETS - 1;
/// Sliding-window span in nanoseconds.
const HORIZON_NS: u64 = (N_BUCKETS as u64) << W_SHIFT;
/// Chain terminator / empty bucket marker.
const NIL: u32 = u32::MAX;
/// Pushes into the cursor's bucket are binary-inserted into the sorted
/// `current` run while it is at most this long; past that they go to the
/// inbox heap (a mid-run `Vec::insert` memmove grows with run length).
const INBOX_SPILL: usize = 64;

#[inline]
fn bucket_of(at_ns: u64) -> usize {
    ((at_ns >> W_SHIFT) as usize) & IDX_MASK
}

pub(crate) enum EventKind<P: Payload> {
    /// The head packet of `link` finished serializing.
    LinkTxDone { link: LinkId, pkt: Packet<P> },
    /// A packet arrives at a node after propagation. `link` is the link it
    /// travelled, carried so delivery can be accounted per link (the
    /// conservation oracles in `scenarios::simcheck` balance each link's
    /// books on arbitrary multi-hop topologies).
    Deliver {
        node: NodeId,
        link: LinkId,
        pkt: Packet<P>,
    },
    /// A timer fires at a node.
    Timer {
        node: NodeId,
        id: TimerId,
        token: u64,
    },
}

pub(crate) struct EventEntry<P: Payload> {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind<P>,
}

impl<P: Payload> PartialEq for EventEntry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<P: Payload> Eq for EventEntry<P> {}
impl<P: Payload> PartialOrd for EventEntry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P: Payload> Ord for EventEntry<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One slab cell: an entry plus the next link of its bucket chain. Free
/// cells keep `entry: None` and chain through the free list.
struct Slot<P: Payload> {
    entry: Option<EventEntry<P>>,
    next: u32,
}

/// The calendar queue. Total order: `(at, seq)` ascending.
pub(crate) struct EventQueue<P: Payload> {
    /// Per-bucket chain heads into `arena` (`NIL` = empty bucket).
    heads: Vec<u32>,
    /// One bit per bucket: does it hold any entries?
    occupied: Vec<u64>,
    /// Slab of chain cells; the only growing allocation.
    arena: Vec<Slot<P>>,
    /// Free-list head into `arena`.
    free_head: u32,
    /// Entries across all bucket chains (excluding `current`/`overflow`).
    in_buckets: usize,
    /// Index of the bucket the cursor last consumed from.
    cursor: usize,
    /// Start time of the cursor's bucket (multiple of the bucket width).
    cursor_time: u64,
    /// Remaining entries of the cursor's bucket, sorted *descending* by
    /// `(at, seq)` so `pop()` removes the earliest. Capacity is reused
    /// across bucket loads.
    current: Vec<EventEntry<P>>,
    /// Entries pushed into the cursor's bucket (or behind the cursor)
    /// after it was loaded; consumed in merge with `current`.
    inbox: BinaryHeap<Reverse<EventEntry<P>>>,
    /// Events at least one horizon past the cursor.
    overflow: BinaryHeap<Reverse<EventEntry<P>>>,
    /// Total entries in the queue.
    len: usize,
}

impl<P: Payload> EventQueue<P> {
    pub(crate) fn new() -> Self {
        EventQueue {
            heads: vec![NIL; N_BUCKETS],
            occupied: vec![0u64; N_BUCKETS / 64],
            arena: Vec::new(),
            free_head: NIL,
            in_buckets: 0,
            cursor: 0,
            cursor_time: 0,
            current: Vec::new(),
            inbox: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Window membership, overflow-safe at `t = u64::MAX` (FAR_FUTURE):
    /// `t` is within the wheel iff it is less than one horizon past the
    /// cursor. `t >= cursor_time` always holds (events are never scheduled
    /// into the past), so the subtraction cannot underflow.
    #[inline]
    fn in_window(&self, t: u64) -> bool {
        t - self.cursor_time < HORIZON_NS
    }

    #[inline]
    fn set_occupied(&mut self, b: usize) {
        self.occupied[b >> 6] |= 1 << (b & 63);
    }

    #[inline]
    fn clear_occupied(&mut self, b: usize) {
        self.occupied[b >> 6] &= !(1 << (b & 63));
    }

    /// Link `entry` into its bucket's chain.
    fn bucket_insert(&mut self, b: usize, entry: EventEntry<P>) {
        let idx = if self.free_head != NIL {
            let idx = self.free_head;
            let s = &mut self.arena[idx as usize];
            self.free_head = s.next;
            s.entry = Some(entry);
            idx
        } else {
            debug_assert!(self.arena.len() < NIL as usize);
            self.arena.push(Slot {
                entry: Some(entry),
                next: NIL,
            });
            (self.arena.len() - 1) as u32
        };
        self.arena[idx as usize].next = self.heads[b];
        self.heads[b] = idx;
        self.set_occupied(b);
        self.in_buckets += 1;
    }

    /// Insert an event. The engine guarantees `at >= now` (never into the
    /// past); `at` may still land *behind* the wheel cursor, because `peek`
    /// advances the cursor eagerly — such entries go to the inbox heap,
    /// which keeps the global `(at, seq)` order: everything already popped
    /// is `<= now <= at`, and everything still in buckets or overflow is
    /// strictly past the cursor's bucket.
    pub(crate) fn push(&mut self, entry: EventEntry<P>) {
        let at = entry.at.as_nanos();
        self.len += 1;
        if at >= self.cursor_time {
            if !self.in_window(at) {
                self.overflow.push(Reverse(entry));
                return;
            }
            let b = bucket_of(at);
            if b != self.cursor {
                self.bucket_insert(b, entry);
                return;
            }
        }
        // Cursor's own bucket, or behind the eagerly-advanced cursor.
        // Short runs (the common case in small simulations) take a binary
        // insert into `current` — a few-entry memmove beats two heap
        // operations. Deep runs spill to the inbox instead, where the
        // memmove would be O(bucket population).
        if self.current.len() <= INBOX_SPILL {
            let key = (entry.at, entry.seq);
            let idx = self.current.partition_point(|e| (e.at, e.seq) > key);
            self.current.insert(idx, entry);
        } else {
            self.inbox.push(Reverse(entry));
        }
    }

    /// Advance the cursor to the next occupied bucket (draining overflow as
    /// the window slides) and load that bucket into the `current` run.
    /// Returns `false` if the queue is empty. Caller ensures `current` is
    /// empty.
    fn refill(&mut self) -> bool {
        debug_assert!(self.current.is_empty());
        if self.in_buckets == 0 {
            // Everything pending (if anything) is beyond the window: jump
            // the cursor straight to the overflow head's bucket.
            let head_at = match self.overflow.peek() {
                Some(Reverse(head)) => head.at.as_nanos(),
                None => return false,
            };
            self.cursor_time = head_at & !((1u64 << W_SHIFT) - 1);
            self.cursor = bucket_of(head_at);
            self.drain_overflow();
        } else {
            let d = self.next_occupied_distance();
            self.cursor = (self.cursor + d) & IDX_MASK;
            self.cursor_time += (d as u64) << W_SHIFT;
            self.drain_overflow();
        }
        // Unlink the cursor's chain into the scratch run and sort it.
        let b = self.cursor;
        let mut h = self.heads[b];
        debug_assert!(h != NIL, "advanced to an empty bucket");
        while h != NIL {
            let s = &mut self.arena[h as usize];
            self.current
                .push(s.entry.take().expect("chained slot is free"));
            let next = s.next;
            s.next = self.free_head;
            self.free_head = h;
            h = next;
        }
        self.heads[b] = NIL;
        self.clear_occupied(b);
        self.in_buckets -= self.current.len();
        self.current
            .sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
        true
    }

    /// The earliest entry, if any. May advance the cursor internally (which
    /// is invisible to firing order — see `push`).
    pub(crate) fn peek(&mut self) -> Option<&EventEntry<P>> {
        if self.current.is_empty() {
            self.refill();
        }
        let run = self.current.last();
        let inbox = self.inbox.peek().map(|Reverse(e)| e);
        match (run, inbox) {
            (Some(c), Some(i)) => Some(if (i.at, i.seq) < (c.at, c.seq) { i } else { c }),
            (Some(c), None) => Some(c),
            (None, i) => i,
        }
    }

    /// Remove and return the earliest entry.
    pub(crate) fn pop(&mut self) -> Option<EventEntry<P>> {
        if self.current.is_empty() {
            self.refill();
        }
        let take_inbox = match (self.current.last(), self.inbox.peek()) {
            (Some(c), Some(Reverse(i))) => (i.at, i.seq) < (c.at, c.seq),
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (None, None) => return None,
        };
        self.len -= 1;
        if take_inbox {
            self.inbox.pop().map(|Reverse(e)| e)
        } else {
            self.current.pop()
        }
    }

    /// Distance (1..N_BUCKETS-1) from the cursor to the next occupied
    /// bucket in circular order. The cursor's own bucket is always empty
    /// (its entries live in `current`), so the scan starts one past it.
    fn next_occupied_distance(&self) -> usize {
        debug_assert!(self.in_buckets > 0);
        let n_words = N_BUCKETS / 64;
        let start = (self.cursor + 1) & IDX_MASK;
        let mut word_idx = start >> 6;
        let mut word = self.occupied[word_idx] & (!0u64 << (start & 63));
        for _ in 0..=n_words {
            if word != 0 {
                let idx = (word_idx << 6) + word.trailing_zeros() as usize;
                return (idx + N_BUCKETS - self.cursor) & IDX_MASK;
            }
            word_idx = (word_idx + 1) % n_words;
            word = self.occupied[word_idx];
        }
        unreachable!("in_buckets > 0 but no occupied bucket found");
    }

    /// Move overflow entries that the (just-slid) window now covers into
    /// their buckets. They land behind the cursor — i.e. in buckets whose
    /// next visit is exactly their firing window.
    fn drain_overflow(&mut self) {
        while let Some(Reverse(head)) = self.overflow.peek() {
            if !self.in_window(head.at.as_nanos()) {
                break;
            }
            let Reverse(e) = self.overflow.pop().unwrap();
            let b = bucket_of(e.at.as_nanos());
            self.bucket_insert(b, e);
        }
    }

    /// Keep only entries satisfying `pred` (used to shed stale cancelled
    /// timers when they dominate the queue). Order is preserved.
    pub(crate) fn retain(&mut self, mut pred: impl FnMut(&EventEntry<P>) -> bool) {
        self.current.retain(|e| pred(e));
        for b in 0..N_BUCKETS {
            let mut h = self.heads[b];
            if h == NIL {
                continue;
            }
            self.heads[b] = NIL;
            while h != NIL {
                let next = self.arena[h as usize].next;
                let s = &mut self.arena[h as usize];
                if pred(s.entry.as_ref().expect("chained slot is free")) {
                    s.next = self.heads[b];
                    self.heads[b] = h;
                } else {
                    s.entry = None;
                    s.next = self.free_head;
                    self.free_head = h;
                    self.in_buckets -= 1;
                }
                h = next;
            }
            if self.heads[b] == NIL {
                self.clear_occupied(b);
            }
        }
        let inbox = std::mem::take(&mut self.inbox);
        self.inbox = inbox
            .into_vec()
            .into_iter()
            .filter(|Reverse(e)| pred(e))
            .collect();
        let overflow = std::mem::take(&mut self.overflow);
        self.overflow = overflow
            .into_vec()
            .into_iter()
            .filter(|Reverse(e)| pred(e))
            .collect();
        self.len = self.in_buckets + self.current.len() + self.inbox.len() + self.overflow.len();
    }
}

/// Generation-stamped timer slots: O(1) arm / cancel / fire with ABA-safe
/// id reuse.
///
/// A [`TimerId`] packs `(generation << 32) | slot`. A slot's generation is
/// odd while armed and even while free; arming bumps it to odd and
/// disarming (fire or cancel) bumps it to even, so any queue entry holding
/// a stale id fails the generation match in O(1) — no hash set, no
/// per-cancel heap surgery.
#[derive(Default)]
pub(crate) struct TimerSlots {
    gens: Vec<u32>,
    free: Vec<u32>,
    live: usize,
}

impl TimerSlots {
    pub(crate) fn new() -> Self {
        TimerSlots::default()
    }

    /// Number of currently armed timers.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// Arm a fresh timer; returns its id.
    pub(crate) fn arm(&mut self) -> TimerId {
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.gens.push(0);
                (self.gens.len() - 1) as u32
            }
        };
        let gen = &mut self.gens[idx as usize];
        *gen += 1; // odd: armed
        debug_assert!(*gen & 1 == 1);
        self.live += 1;
        TimerId(((*gen as u64) << 32) | idx as u64)
    }

    /// True while `id` is armed (neither fired nor cancelled).
    pub(crate) fn is_live(&self, id: TimerId) -> bool {
        let idx = (id.0 & 0xFFFF_FFFF) as usize;
        let gen = (id.0 >> 32) as u32;
        idx < self.gens.len() && self.gens[idx] == gen
    }

    /// Disarm `id` (cancel or fire). Returns `true` if it was armed; a
    /// second disarm of the same id — or of a recycled slot's older
    /// generation — is a no-op returning `false`.
    pub(crate) fn disarm(&mut self, id: TimerId) -> bool {
        let idx = (id.0 & 0xFFFF_FFFF) as usize;
        let gen = (id.0 >> 32) as u32;
        if idx < self.gens.len() && self.gens[idx] == gen {
            self.gens[idx] += 1; // even: free
            self.free.push(idx as u32);
            self.live -= 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at_ns: u64, seq: u64) -> EventEntry<()> {
        EventEntry {
            at: SimTime::from_nanos(at_ns),
            seq,
            kind: EventKind::Timer {
                node: NodeId(0),
                id: TimerId(0),
                token: seq,
            },
        }
    }

    #[test]
    fn pops_in_at_seq_order_across_window_boundaries() {
        let mut q: EventQueue<()> = EventQueue::new();
        // A spread from sub-bucket to far beyond the horizon.
        let times = [
            0u64,
            1,
            100,
            (1 << W_SHIFT) - 1,
            1 << W_SHIFT,
            HORIZON_NS - 1,
            HORIZON_NS,
            HORIZON_NS + 1,
            3 * HORIZON_NS + 17,
            u64::MAX,
        ];
        let mut seq = 0u64;
        let mut expect: Vec<(u64, u64)> = Vec::new();
        for &t in &times {
            for _ in 0..3 {
                q.push(entry(t, seq));
                expect.push((t, seq));
                seq += 1;
            }
        }
        expect.sort_unstable();
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push((e.at.as_nanos(), e.seq));
        }
        assert_eq!(got, expect);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q: EventQueue<()> = EventQueue::new();
        for (i, &t) in [5u64, HORIZON_NS + 5, 3, 3, 80_000].iter().enumerate() {
            q.push(entry(t, i as u64));
        }
        while q.len() > 0 {
            let peeked = {
                let e = q.peek().unwrap();
                (e.at, e.seq)
            };
            let popped = q.pop().unwrap();
            assert_eq!(peeked, (popped.at, popped.seq));
        }
        assert!(q.peek().is_none());
    }

    #[test]
    fn interleaved_push_pop_respects_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        let mut now = 0u64;
        let mut fired: Vec<(u64, u64)> = Vec::new();
        // Schedule relative to the last fired time, like dispatch does;
        // the round number doubles as the scheduling sequence.
        for round in 0..5_000u64 {
            let spread = [1, 700, 9_000, 2_000_000, 120_000_000];
            let d = spread[(round % 5) as usize] + (round * 37) % 977;
            q.push(entry(now + d, round));
            if round % 3 == 0 {
                if let Some(e) = q.pop() {
                    assert!(e.at.as_nanos() >= now, "time went backwards");
                    now = e.at.as_nanos();
                    fired.push((now, e.seq));
                }
            }
        }
        while let Some(e) = q.pop() {
            assert!(e.at.as_nanos() >= now);
            now = e.at.as_nanos();
            fired.push((now, e.seq));
        }
        assert_eq!(fired.len(), 5_000);
        let mut sorted = fired.clone();
        sorted.sort_unstable();
        assert_eq!(fired, sorted, "pop order must be (at, seq) ascending");
    }

    #[test]
    fn retain_drops_entries_and_fixes_len() {
        let mut q: EventQueue<()> = EventQueue::new();
        for i in 0..100u64 {
            q.push(entry(i * 500_000, i)); // spans buckets and overflow
        }
        q.push(entry(2 * HORIZON_NS, 100));
        q.retain(|e| e.seq % 2 == 0);
        assert_eq!(q.len(), 51);
        let mut prev = (0u64, 0u64);
        let mut n = 0;
        while let Some(e) = q.pop() {
            assert!(e.seq % 2 == 0);
            let k = (e.at.as_nanos(), e.seq);
            assert!(k >= prev);
            prev = k;
            n += 1;
        }
        assert_eq!(n, 51);
    }

    #[test]
    fn timer_slots_generations() {
        let mut s = TimerSlots::new();
        let a = s.arm();
        let b = s.arm();
        assert_eq!(s.live(), 2);
        assert!(s.is_live(a) && s.is_live(b));
        assert!(s.disarm(a));
        assert!(!s.disarm(a), "double disarm must be a no-op");
        assert!(!s.is_live(a));
        assert_eq!(s.live(), 1);
        // Reuse the slot: the old id must stay dead.
        let c = s.arm();
        assert!(s.is_live(c));
        assert!(!s.is_live(a));
        assert_ne!(a, c);
        assert!(s.disarm(b));
        assert!(s.disarm(c));
        assert_eq!(s.live(), 0);
    }
}

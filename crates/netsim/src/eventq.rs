//! The engine's event queue: a two-level bucketed calendar queue (timer
//! wheel) with batch-drained buckets, plus generation-stamped timer slots.
//!
//! The queue is a drop-in replacement for the `BinaryHeap<Reverse<_>>` the
//! engine started with, with the same total order — events fire strictly by
//! `(at, seq)` — but O(1) amortized push/pop for the near-future events that
//! dominate a simulation (serialization completions, propagation
//! deliveries, ACK clocking), instead of O(log n) sift operations over a
//! heap that also holds every stale cancelled RTO timer.
//!
//! Since the packet-arena refactor the queue is also *payload-free*: packet
//! events carry a [`PacketHandle`] into the engine's arena, so an
//! [`EventEntry`] is a few `Copy` words regardless of the protocol payload,
//! and the whole structure is non-generic.
//!
//! Layout:
//!
//! - **L1 wheel**: `N_BUCKETS` buckets of `2^W_SHIFT` ns each. An event
//!   lands in bucket `(at >> W_SHIFT) % N_BUCKETS`; bucket membership is
//!   tracked in a bitmap so advancing over empty buckets costs a
//!   trailing-zeros scan, not a per-bucket probe. The L1 window is
//!   *segment-aligned*: it covers `[cursor_time, end of the current L2
//!   segment)`, never straddling an L2 boundary.
//! - **L2 wheel**: `N_L2` buckets, each spanning one whole L1 horizon
//!   (`2^L2_SHIFT` ns — one *segment*). Events past the current segment but
//!   within the L2 span park here and cascade into L1 when the cursor
//!   crosses into their segment. This is what keeps multi-second RTO timers
//!   and long flow-start schedules off the comparison-based heap.
//! - **Dense buckets**: each bucket (both levels) is a plain
//!   `Vec<EventEntry>` whose capacity persists across drains. An earlier
//!   design chained entries through a shared slab to keep the queue at one
//!   allocation, but draining a chain is serial pointer-chasing — one
//!   dependent cache miss per entry once the population outgrows the LLC,
//!   which capped the whole engine near 4 M events/s. Contiguous buckets
//!   let the drain *stream*: the hardware prefetcher hides the latency, and
//!   the entries-are-`Copy` move is a memcpy the compiler vectorizes.
//! - **Batch drain**: when the cursor reaches an occupied L1 bucket, the
//!   whole bucket is sorted ascending by `(at, seq)` *in place* and then
//!   consumed through an advancing index — a drain moves nothing, and
//!   `pop` degenerates to a sequential read the prefetcher sees coming.
//!   (An intermediate design copied sort keys into a structure-of-arrays
//!   scratch; sorting the `Copy` bodies directly measured faster — the
//!   keys' extra write+read traffic outweighed the smaller sort moves.)
//! - **Inbox**: events scheduled into the cursor's own bucket (or behind
//!   the eagerly-advanced cursor) are binary-inserted into the sorted run
//!   while it is short, and spill to a small min-heap once the run exceeds
//!   [`INBOX_SPILL`] — at high queue depth a mid-run insert is an
//!   O(bucket) memmove per push, while at low depth the memmove beats two
//!   heap operations. Pop takes the smaller of the run's tail and the
//!   inbox head; the inbox only ever holds entries for the window
//!   currently being consumed, so it stays small.
//! - **Overflow**: events beyond the L2 span (~9 virtual minutes — idle
//!   horizons, `FAR_FUTURE` sentinels) go to a min-heap ordered by
//!   `(at, seq)` and migrate into the wheels as segments advance.
//! - **Sparse mode**: a fresh queue allocates *nothing* and routes every
//!   entry through the overflow heap until the pending population crosses
//!   [`SPARSE_LIMIT`]; only then are the wheels allocated and the heap
//!   drained into them (a one-way migration). A figure sweep runs hundreds
//!   of tiny simulations that never hold more than a few dozen pending
//!   events — at that depth two heap sifts beat the wheel's bucket
//!   arithmetic, and skipping the wheel allocation (two Vec-of-Vecs plus
//!   bitmaps, ~128 KB of zeroed headers) is the bigger win. A heap and the
//!   wheels pop in the same `(at, seq)` order, so the migration point is
//!   observationally invisible.
//!
//! Three invariants carry the determinism proof: every L1 bucket's entries
//! belong to the current segment (pushes beyond it go to L2 or overflow),
//! L2/overflow entries are strictly beyond the current segment (both drain
//! exactly at segment crossings), and the cursor never passes an occupied
//! bucket. Together they mean the pop sequence is exactly the ascending
//! `(at, seq)` order — byte-identical to the reference heap, which
//! `tests/event_order.rs` checks against a sorted-list model under
//! randomized schedule/cancel workloads.

use crate::node::TimerId;
use crate::packet::{LinkId, NodeId, PacketHandle};
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// L1 bucket width: 2^17 ns = 131.072 us.
const W_SHIFT: u32 = 17;
/// Number of L1 buckets; one segment spans `N_BUCKETS << W_SHIFT` ns
/// (~134 ms). Sized so one segment's population stays cache-resident even
/// at millions of pending events: pushes scatter randomly across the
/// current segment's buckets, and bounding the segment bounds that
/// working set. Events past the segment (WAN RTTs, RTOs) take a dense L2
/// append plus a streaming cascade, which is cheaper than missing to DRAM
/// on every push.
const N_BUCKETS: usize = 1024;
const IDX_MASK: usize = N_BUCKETS - 1;
/// L2 bucket width: one whole L1 segment. `W_SHIFT + log2(N_BUCKETS)`.
const L2_SHIFT: u32 = W_SHIFT + N_BUCKETS.trailing_zeros();
/// Number of L2 buckets; the L2 span is `N_L2 << L2_SHIFT` ns (~9 min).
/// Second-scale timers (RTO backoff towers, flow-start schedules) all land
/// here; only idle-horizon sentinels overflow.
const N_L2: usize = 4096;
const L2_MASK: usize = N_L2 - 1;
/// Pushes into the cursor's bucket are binary-inserted into the sorted
/// `current` run while it is at most this long; past that they go to the
/// inbox heap (a mid-run `Vec::insert` memmove grows with run length).
const INBOX_SPILL: usize = 64;
/// Pending-entry threshold for leaving sparse mode: while fewer entries
/// are pending the queue is a plain min-heap and the wheels stay
/// unallocated. Crossing it allocates the wheels and drains the heap into
/// them. A single-path transport simulation holds tens of *live* events,
/// but lazily-cancelled RTO re-arms linger as stale entries until their
/// scheduled instant, so the pending population of even a one-flow run
/// transiently reaches a few hundred — 256 densified most of the quick
/// sweep and gave back half the win; 1024 keeps those runs sparse while a
/// ~10-level heap sift still costs about as little as the wheel's bucket
/// arithmetic.
const SPARSE_LIMIT: usize = 1024;

#[inline]
fn bucket_of(at_ns: u64) -> usize {
    ((at_ns >> W_SHIFT) as usize) & IDX_MASK
}

/// Absolute segment index (L2 bucket ordinal) of a timestamp.
#[inline]
fn segment_of(at_ns: u64) -> u64 {
    at_ns >> L2_SHIFT
}

#[derive(Clone, Copy)]
pub(crate) enum EventKind {
    /// The head packet of `link` finished serializing.
    LinkTxDone { link: LinkId, pkt: PacketHandle },
    /// A packet arrives at a node after propagation. `link` is the link it
    /// travelled, carried so delivery can be accounted per link (the
    /// conservation oracles in `scenarios::simcheck` balance each link's
    /// books on arbitrary multi-hop topologies).
    Deliver {
        node: NodeId,
        link: LinkId,
        pkt: PacketHandle,
    },
    /// A timer fires at a node.
    Timer {
        node: NodeId,
        id: TimerId,
        token: u64,
    },
}

#[derive(Clone, Copy)]
pub(crate) struct EventEntry {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for EventEntry {}
impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The calendar queue. Total order: `(at, seq)` ascending.
pub(crate) struct EventQueue {
    /// L1 buckets; capacity persists across drains, so steady state runs
    /// allocation-free.
    l1: Vec<Vec<EventEntry>>,
    /// One bit per L1 bucket: does it hold any entries?
    occupied: Vec<u64>,
    /// L2 buckets (one per segment in the span).
    l2: Vec<Vec<EventEntry>>,
    /// One bit per L2 bucket.
    l2_occupied: Vec<u64>,
    /// Entries across all L1 buckets.
    in_buckets: usize,
    /// Entries parked in L2.
    in_l2: usize,
    /// Index of the bucket the cursor last consumed from.
    cursor: usize,
    /// Start time of the cursor's bucket (multiple of the bucket width).
    cursor_time: u64,
    /// Consumption index into `l1[cursor]`, which after a refill is sorted
    /// ascending by `(at, seq)` *in place* — a drain moves nothing, `pop`
    /// is a sequential read, and consumed entries linger in the bucket's
    /// prefix until the next refill clears it.
    run_pos: usize,
    /// Cascade scratch, swapped with an L2 bucket during a segment jump so
    /// its capacity is recycled.
    seg_scratch: Vec<EventEntry>,
    /// Entries pushed into the cursor's bucket (or behind the cursor)
    /// after it was loaded; consumed in merge with the run.
    inbox: BinaryHeap<Reverse<EventEntry>>,
    /// Events beyond the L2 span. In sparse mode this heap holds *every*
    /// pending entry.
    overflow: BinaryHeap<Reverse<EventEntry>>,
    /// Total entries in the queue.
    len: usize,
    /// Still in sparse (heap-only) mode; the wheel Vecs are empty until the
    /// first [`SPARSE_LIMIT`] crossing densifies them. One-way.
    sparse: bool,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue {
            l1: Vec::new(),
            occupied: Vec::new(),
            l2: Vec::new(),
            l2_occupied: Vec::new(),
            in_buckets: 0,
            in_l2: 0,
            cursor: 0,
            cursor_time: 0,
            run_pos: 0,
            seg_scratch: Vec::new(),
            inbox: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            len: 0,
            sparse: true,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn set_occupied(&mut self, b: usize) {
        self.occupied[b >> 6] |= 1 << (b & 63);
    }

    #[inline]
    fn clear_occupied(&mut self, b: usize) {
        self.occupied[b >> 6] &= !(1 << (b & 63));
    }

    /// Append `entry` to its L1 bucket.
    #[inline]
    fn bucket_insert(&mut self, b: usize, entry: EventEntry) {
        let v = &mut self.l1[b];
        if !v.is_empty() && v.capacity() == v.len() {
            // Skip the 8→16→32→… doubling ramp once a bucket proves it
            // holds more than one entry: dense fills put dozens per
            // bucket and the ramp's reallocs dominate the push cost. The
            // first touch stays a plain push, so the hundreds of tiny
            // simulations in a figure sweep (one or two events per
            // bucket, bucket never revisited) don't pay a 32-slot
            // allocation per bucket they graze.
            v.reserve(32.max(v.len()));
        }
        v.push(entry);
        self.set_occupied(b);
        self.in_buckets += 1;
    }

    /// Append `entry` to an L2 bucket.
    #[inline]
    fn l2_insert(&mut self, slot: usize, entry: EventEntry) {
        let v = &mut self.l2[slot];
        if !v.is_empty() && v.capacity() == v.len() {
            v.reserve(32.max(v.len()));
        }
        v.push(entry);
        self.l2_occupied[slot >> 6] |= 1 << (slot & 63);
        self.in_l2 += 1;
    }

    /// Insert an event. The engine guarantees `at >= now` (never into the
    /// past); `at` may still land *behind* the wheel cursor, because `peek`
    /// advances the cursor eagerly — such entries go to the inbox heap,
    /// which keeps the global `(at, seq)` order: everything already popped
    /// is `<= now <= at`, and everything still in buckets or overflow is
    /// strictly past the cursor's bucket.
    pub(crate) fn push(&mut self, entry: EventEntry) {
        if self.sparse {
            if self.len < SPARSE_LIMIT {
                self.len += 1;
                self.overflow.push(Reverse(entry));
                return;
            }
            self.densify();
        }
        self.len += 1;
        self.push_dense(entry);
    }

    /// Leave sparse mode: allocate the wheels, anchor the cursor at the
    /// earliest pending entry's bucket (so nothing lands behind it), and
    /// drain the heap through the dense push path. Entries already counted
    /// in `len` keep their count; order is unchanged because a heap and the
    /// wheels pop in the same `(at, seq)` order.
    #[cold]
    fn densify(&mut self) {
        self.sparse = false;
        self.l1 = (0..N_BUCKETS).map(|_| Vec::new()).collect();
        self.occupied = vec![0u64; N_BUCKETS / 64];
        self.l2 = (0..N_L2).map(|_| Vec::new()).collect();
        self.l2_occupied = vec![0u64; N_L2 / 64];
        let pending = std::mem::take(&mut self.overflow).into_vec();
        if let Some(min_at) = pending.iter().map(|Reverse(e)| e.at.as_nanos()).min() {
            self.cursor_time = (min_at >> W_SHIFT) << W_SHIFT;
            self.cursor = bucket_of(min_at);
        }
        for Reverse(e) in pending {
            self.push_dense(e);
        }
    }

    fn push_dense(&mut self, entry: EventEntry) {
        let at = entry.at.as_nanos();
        if at >= self.cursor_time {
            let seg = segment_of(self.cursor_time);
            if segment_of(at) == seg {
                // Within the current L1 segment.
                let b = bucket_of(at);
                if b != self.cursor {
                    self.bucket_insert(b, entry);
                    return;
                }
            } else {
                // `segment_of(at) > seg`; distances up to N_L2 park in the
                // L2 wheel (the slot for `seg + N_L2` is free: its previous
                // tenant was drained when the cursor entered `seg`).
                let d = segment_of(at) - seg;
                if d <= N_L2 as u64 {
                    self.l2_insert((segment_of(at) as usize) & L2_MASK, entry);
                } else {
                    self.overflow.push(Reverse(entry));
                }
                return;
            }
        }
        // Cursor's own bucket, or behind the eagerly-advanced cursor.
        // Short runs (the common case in small simulations) take a binary
        // insert into the run — a few-entry memmove beats two heap
        // operations. Deep runs spill to the inbox instead, where the
        // memmove would be O(bucket population).
        let run = &mut self.l1[self.cursor];
        if run.len() - self.run_pos <= INBOX_SPILL {
            let key = (entry.at, entry.seq);
            let pos = self.run_pos + run[self.run_pos..].partition_point(|e| (e.at, e.seq) < key);
            run.insert(pos, entry);
        } else {
            self.inbox.push(Reverse(entry));
        }
    }

    /// Jump the cursor to the next segment holding work (L2 buckets or
    /// overflow entries) and cascade that segment's events into L1.
    /// Returns `false` when nothing is pending in L2 or overflow.
    fn advance_segment(&mut self) -> bool {
        debug_assert!(self.in_buckets == 0);
        let seg = segment_of(self.cursor_time);
        // Distance (1..=N_L2) to the next occupied L2 bucket, if any.
        let l2_d = if self.in_l2 > 0 {
            Some(next_occupied_distance(
                &self.l2_occupied,
                N_L2,
                ((seg as usize) + 1) & L2_MASK,
                (seg as usize) & L2_MASK,
            ))
        } else {
            None
        };
        let heap_d = self
            .overflow
            .peek()
            .map(|Reverse(e)| segment_of(e.at.as_nanos()) - seg);
        let d = match (l2_d, heap_d) {
            (Some(a), Some(b)) => a.min(b as usize),
            (Some(a), None) => a,
            (None, Some(b)) => b as usize,
            (None, None) => return false,
        };
        let target = seg + d as u64;
        self.cursor_time = target << L2_SHIFT;
        self.cursor = bucket_of(self.cursor_time);
        // Cascade the target segment's L2 bucket: a streaming copy into the
        // L1 buckets (dense source, so the prefetcher hides the latency).
        let slot = (target as usize) & L2_MASK;
        if !self.l2[slot].is_empty() {
            let mut batch =
                std::mem::replace(&mut self.l2[slot], std::mem::take(&mut self.seg_scratch));
            self.l2_occupied[slot >> 6] &= !(1 << (slot & 63));
            self.in_l2 -= batch.len();
            for e in batch.drain(..) {
                let at = e.at.as_nanos();
                debug_assert_eq!(segment_of(at), target, "L2 bucket holds a mixed segment");
                self.bucket_insert(bucket_of(at), e);
            }
            self.seg_scratch = batch;
        }
        // Drain overflow entries that fall inside the target segment.
        while let Some(Reverse(head)) = self.overflow.peek() {
            if segment_of(head.at.as_nanos()) != target {
                break;
            }
            let Reverse(e) = self.overflow.pop().unwrap();
            let b = bucket_of(e.at.as_nanos());
            self.bucket_insert(b, e);
        }
        debug_assert!(self.in_buckets > 0, "segment jump found no entries");
        true
    }

    /// Advance the cursor to the next occupied bucket (crossing segments as
    /// needed) and batch-drain that bucket into the run scratch: bodies are
    /// copied once, keys are sorted. Returns `false` if the wheels and
    /// overflow are empty (the inbox may still hold entries — `pop`/`peek`
    /// check it). Caller ensures the run is empty.
    /// Remaining entries in the current sorted run.
    #[inline]
    fn run_len(&self) -> usize {
        self.l1[self.cursor].len() - self.run_pos
    }

    fn refill(&mut self) -> bool {
        debug_assert!(self.run_len() == 0);
        // The consumed run still occupies the old cursor bucket's prefix;
        // with the run drained it is all dead, so reclaim the bucket
        // before the cursor moves on (it must be empty by the time the
        // wheel wraps back to it).
        self.l1[self.cursor].clear();
        self.run_pos = 0;
        if self.in_buckets == 0 && !self.advance_segment() {
            return false;
        }
        // Inclusive scan: after a segment jump the cursor's own bucket may
        // hold the cascaded entries (distance 0); in steady state the
        // cursor bucket is empty (its entries were drained), so the scan
        // lands strictly ahead.
        let d = next_occupied_distance(&self.occupied, N_BUCKETS, self.cursor, self.cursor);
        self.cursor = (self.cursor + d) & IDX_MASK;
        self.cursor_time += (d as u64) << W_SHIFT;
        let b = self.cursor;
        debug_assert!(!self.l1[b].is_empty(), "advanced to an empty bucket");
        self.clear_occupied(b);
        self.in_buckets -= self.l1[b].len();
        self.l1[b].sort_unstable_by_key(|e| (e.at, e.seq));
        true
    }

    /// The entry `n` pops in the future within the current sorted run, if
    /// the run is that deep. A pure read: no refill, no cursor motion.
    /// The engine uses it to issue cache prefetches far enough ahead to
    /// cover DRAM latency; entries that will merge in from the inbox are
    /// not seen here, which only costs a wasted hint.
    pub(crate) fn lookahead(&self, n: usize) -> Option<&EventEntry> {
        if self.sparse {
            // No sorted run to read ahead in; the engine just skips its
            // prefetch hints (tiny populations are cache-resident anyway).
            return None;
        }
        self.l1[self.cursor].get(self.run_pos + n)
    }

    /// The earliest entry, if any. May advance the cursor internally (which
    /// is invisible to firing order — see `push`).
    pub(crate) fn peek(&mut self) -> Option<&EventEntry> {
        if self.sparse {
            return self.overflow.peek().map(|Reverse(e)| e);
        }
        if self.run_len() == 0 {
            self.refill();
        }
        let run = self.l1[self.cursor].get(self.run_pos);
        match (run, self.inbox.peek()) {
            (Some(c), Some(Reverse(i))) => {
                if (i.at, i.seq) < (c.at, c.seq) {
                    self.inbox.peek().map(|Reverse(e)| e)
                } else {
                    run
                }
            }
            (Some(_), None) => run,
            (None, _) => self.inbox.peek().map(|Reverse(e)| e),
        }
    }

    /// Remove and return the earliest entry.
    pub(crate) fn pop(&mut self) -> Option<EventEntry> {
        if self.sparse {
            let e = self.overflow.pop().map(|Reverse(e)| e)?;
            self.len -= 1;
            return Some(e);
        }
        if self.run_len() == 0 {
            self.refill();
        }
        let take_inbox = match (self.l1[self.cursor].get(self.run_pos), self.inbox.peek()) {
            (Some(c), Some(Reverse(i))) => (i.at, i.seq) < (c.at, c.seq),
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (None, None) => return None,
        };
        self.len -= 1;
        if take_inbox {
            self.inbox.pop().map(|Reverse(e)| e)
        } else {
            let e = self.l1[self.cursor][self.run_pos];
            self.run_pos += 1;
            Some(e)
        }
    }

    /// Remove and return every pending entry in `(at, seq)` order, leaving
    /// the queue empty. The engine snapshot codec uses this to serialize
    /// the queue as a canonical sorted multiset — internal layout (sparse
    /// vs. dense, cursor position, inbox contents) is never persisted,
    /// because pop order depends only on `(at, seq)` and rebuilding by
    /// re-pushing the sorted entries is observationally identical.
    pub(crate) fn drain_sorted(&mut self) -> Vec<EventEntry> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(e) = self.pop() {
            out.push(e);
        }
        debug_assert!(out
            .windows(2)
            .all(|w| (w[0].at, w[0].seq) <= (w[1].at, w[1].seq)));
        out
    }

    /// Keep only entries satisfying `pred` (used to shed stale cancelled
    /// timers when they dominate the queue). Order is preserved.
    pub(crate) fn retain(&mut self, mut pred: impl FnMut(&EventEntry) -> bool) {
        if self.sparse {
            let overflow = std::mem::take(&mut self.overflow);
            self.overflow = overflow
                .into_vec()
                .into_iter()
                .filter(|Reverse(e)| pred(e))
                .collect();
            self.len = self.overflow.len();
            return;
        }
        // Current run: compact the live suffix of the cursor bucket in
        // place; the consumed prefix must not be resurrected, so the
        // bucket is filtered from `run_pos` on and truncated.
        let cursor = self.cursor;
        {
            let v = &mut self.l1[cursor];
            let mut w = self.run_pos;
            for r in self.run_pos..v.len() {
                if pred(&v[r]) {
                    v[w] = v[r];
                    w += 1;
                }
            }
            v.truncate(w);
        }
        // L1 and L2 buckets. The cursor bucket is run storage — handled
        // above — so it is skipped here.
        for b in 0..N_BUCKETS {
            if b == cursor {
                continue;
            }
            let before = self.l1[b].len();
            self.l1[b].retain(&mut pred);
            self.in_buckets -= before - self.l1[b].len();
            if self.l1[b].is_empty() {
                self.clear_occupied(b);
            }
        }
        for s in 0..N_L2 {
            let before = self.l2[s].len();
            self.l2[s].retain(&mut pred);
            self.in_l2 -= before - self.l2[s].len();
            if self.l2[s].is_empty() {
                self.l2_occupied[s >> 6] &= !(1 << (s & 63));
            }
        }
        let inbox = std::mem::take(&mut self.inbox);
        self.inbox = inbox
            .into_vec()
            .into_iter()
            .filter(|Reverse(e)| pred(e))
            .collect();
        let overflow = std::mem::take(&mut self.overflow);
        self.overflow = overflow
            .into_vec()
            .into_iter()
            .filter(|Reverse(e)| pred(e))
            .collect();
        self.len =
            self.in_buckets + self.in_l2 + self.run_len() + self.inbox.len() + self.overflow.len();
    }
}

/// Distance (0..n) from `start` to the next set bit in circular order,
/// scanning the whole ring. `origin` anchors the returned distance so a
/// ring with one set bit exactly at `start` still terminates. Caller
/// guarantees at least one bit is set.
fn next_occupied_distance(bitmap: &[u64], n: usize, start: usize, origin: usize) -> usize {
    let n_words = n / 64;
    let mut word_idx = start >> 6;
    let mut word = bitmap[word_idx] & (!0u64 << (start & 63));
    for _ in 0..=n_words {
        if word != 0 {
            let idx = (word_idx << 6) + word.trailing_zeros() as usize;
            return (idx + n - origin) & (n - 1);
        }
        word_idx = (word_idx + 1) % n_words;
        word = bitmap[word_idx];
    }
    unreachable!("no occupied bucket found in a ring promised non-empty");
}

/// Generation-stamped timer slots: O(1) arm / cancel / fire with ABA-safe
/// id reuse.
///
/// A [`TimerId`] packs `(generation << 32) | slot`. A slot's generation is
/// odd while armed and even while free; arming bumps it to odd and
/// disarming (fire or cancel) bumps it to even, so any queue entry holding
/// a stale id fails the generation match in O(1) — no hash set, no
/// per-cancel heap surgery.
#[derive(Default)]
pub(crate) struct TimerSlots {
    gens: Vec<u32>,
    free: Vec<u32>,
    live: usize,
}

impl TimerSlots {
    pub(crate) fn new() -> Self {
        TimerSlots::default()
    }

    /// Number of currently armed timers.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// Arm a fresh timer; returns its id.
    pub(crate) fn arm(&mut self) -> TimerId {
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.gens.push(0);
                (self.gens.len() - 1) as u32
            }
        };
        let gen = &mut self.gens[idx as usize];
        *gen += 1; // odd: armed
        debug_assert!(*gen & 1 == 1);
        self.live += 1;
        TimerId(((*gen as u64) << 32) | idx as u64)
    }

    /// Hint the CPU to pull `id`'s generation cell into cache. Timer fires
    /// walk the generation table in schedule-time order — random — so at
    /// large timer populations every `disarm` is a dependent DRAM miss;
    /// the engine prefetches the *next* event's slot while dispatching the
    /// current one, overlapping the miss with useful work. Architecturally
    /// a no-op: determinism and observable state are untouched.
    #[inline]
    pub(crate) fn prefetch(&self, id: TimerId) {
        let idx = (id.0 & 0xFFFF_FFFF) as usize;
        #[cfg(target_arch = "x86_64")]
        if idx < self.gens.len() {
            // SAFETY: `idx` is in bounds; _mm_prefetch has no memory or
            // register effects beyond the cache hint.
            unsafe {
                use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                _mm_prefetch(self.gens.as_ptr().add(idx) as *const i8, _MM_HINT_T0);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = idx;
    }

    /// True while `id` is armed (neither fired nor cancelled).
    pub(crate) fn is_live(&self, id: TimerId) -> bool {
        let idx = (id.0 & 0xFFFF_FFFF) as usize;
        let gen = (id.0 >> 32) as u32;
        idx < self.gens.len() && self.gens[idx] == gen
    }

    /// The slot table's full state for the engine snapshot codec. The
    /// free list's LIFO order matters: recycled slots must come back in
    /// the same order after a restore, or re-armed [`TimerId`]s diverge
    /// from the uninterrupted run.
    pub(crate) fn snapshot_parts(&self) -> (&[u32], &[u32], usize) {
        (&self.gens, &self.free, self.live)
    }

    /// Restore the slot table bit-exactly from [`TimerSlots::snapshot_parts`]
    /// output — generations (ABA safety for ids still referenced by queue
    /// entries and host state), free-list order, and live count.
    pub(crate) fn restore_parts(&mut self, gens: Vec<u32>, free: Vec<u32>, live: usize) {
        self.gens = gens;
        self.free = free;
        self.live = live;
    }

    /// Disarm `id` (cancel or fire). Returns `true` if it was armed; a
    /// second disarm of the same id — or of a recycled slot's older
    /// generation — is a no-op returning `false`.
    pub(crate) fn disarm(&mut self, id: TimerId) -> bool {
        let idx = (id.0 & 0xFFFF_FFFF) as usize;
        let gen = (id.0 >> 32) as u32;
        if idx < self.gens.len() && self.gens[idx] == gen {
            self.gens[idx] += 1; // even: free
            self.free.push(idx as u32);
            self.live -= 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Segment span in nanoseconds (the old single-level horizon).
    const SEG_NS: u64 = (N_BUCKETS as u64) << W_SHIFT;
    /// Full L2 span in nanoseconds.
    const L2_SPAN_NS: u64 = (N_L2 as u64) << L2_SHIFT;

    fn entry(at_ns: u64, seq: u64) -> EventEntry {
        EventEntry {
            at: SimTime::from_nanos(at_ns),
            seq,
            kind: EventKind::Timer {
                node: NodeId(0),
                id: TimerId(0),
                token: seq,
            },
        }
    }

    #[test]
    #[ignore = "manual perf probe"]
    fn raw_throughput_probe() {
        for (label, n, spread) in [
            ("1e5/1e8", 100_000u64, 100_000_000u64),
            ("1e6/1e9", 1_000_000, 1_000_000_000),
            ("1e6/6e10", 1_000_000, 60_000_000_000),
        ] {
            let mut q = EventQueue::new();
            let mut lcg: u64 = 0x9e3779b97f4a7c15;
            let t0 = std::time::Instant::now();
            for seq in 0..n {
                lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                q.push(entry((lcg >> 16) % spread + 1, seq));
            }
            let push_t = t0.elapsed();
            let t1 = std::time::Instant::now();
            let mut popped = 0u64;
            while q.pop().is_some() {
                popped += 1;
            }
            let pop_t = t1.elapsed();
            assert_eq!(popped, n);
            let total = push_t + pop_t;
            eprintln!(
                "{label}: push {:?} pop {:?} total {:?} => {:.2} M ev/s",
                push_t,
                pop_t,
                total,
                n as f64 / total.as_secs_f64() / 1e6
            );
        }
    }

    #[test]
    fn pops_in_at_seq_order_across_window_boundaries() {
        let mut q = EventQueue::new();
        // A spread from sub-bucket to beyond the L2 span: L1 same-bucket,
        // L1 neighbours, segment boundaries (L2 parking), deep L2, the
        // overflow heap, and the FAR_FUTURE sentinel.
        let times = [
            0u64,
            1,
            100,
            (1 << W_SHIFT) - 1,
            1 << W_SHIFT,
            SEG_NS - 1,
            SEG_NS,
            SEG_NS + 1,
            3 * SEG_NS + 17,
            60_000_000_000, // 60 s: deep in the L2 wheel
            L2_SPAN_NS - 1, // last L2 segment
            L2_SPAN_NS,     // first overflow entry
            3 * L2_SPAN_NS + 99,
            u64::MAX,
        ];
        let mut seq = 0u64;
        let mut expect: Vec<(u64, u64)> = Vec::new();
        for &t in &times {
            for _ in 0..3 {
                q.push(entry(t, seq));
                expect.push((t, seq));
                seq += 1;
            }
        }
        expect.sort_unstable();
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push((e.at.as_nanos(), e.seq));
        }
        assert_eq!(got, expect);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        for (i, &t) in [5u64, SEG_NS + 5, 3, 3, 80_000, 2 * L2_SPAN_NS]
            .iter()
            .enumerate()
        {
            q.push(entry(t, i as u64));
        }
        while q.len() > 0 {
            let peeked = {
                let e = q.peek().unwrap();
                (e.at, e.seq)
            };
            let popped = q.pop().unwrap();
            assert_eq!(peeked, (popped.at, popped.seq));
        }
        assert!(q.peek().is_none());
    }

    #[test]
    fn interleaved_push_pop_respects_order() {
        let mut q = EventQueue::new();
        let mut now = 0u64;
        let mut fired: Vec<(u64, u64)> = Vec::new();
        // Schedule relative to the last fired time, like dispatch does;
        // the round number doubles as the scheduling sequence. The spread
        // hits the same bucket, nearby buckets, the L2 wheel, and (via the
        // 3_000 s delta) the overflow heap.
        for round in 0..5_000u64 {
            let spread = [1, 700, 9_000, 2_000_000, 120_000_000, 3_000_000_000_000];
            let d = spread[(round % 6) as usize] + (round * 37) % 977;
            q.push(entry(now + d, round));
            if round % 3 == 0 {
                if let Some(e) = q.pop() {
                    assert!(e.at.as_nanos() >= now, "time went backwards");
                    now = e.at.as_nanos();
                    fired.push((now, e.seq));
                }
            }
        }
        while let Some(e) = q.pop() {
            assert!(e.at.as_nanos() >= now);
            now = e.at.as_nanos();
            fired.push((now, e.seq));
        }
        assert_eq!(fired.len(), 5_000);
        let mut sorted = fired.clone();
        sorted.sort_unstable();
        assert_eq!(fired, sorted, "pop order must be (at, seq) ascending");
    }

    #[test]
    fn l2_cascade_preserves_order_at_scale() {
        // A dense population spread over ~100 segments: every entry parks
        // in L2 first and cascades into L1 as segments advance.
        let mut q = EventQueue::new();
        let mut lcg: u64 = 0x9e3779b97f4a7c15;
        let n = 50_000u64;
        for seq in 0..n {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            q.push(entry((lcg >> 16) % (100 * SEG_NS), seq));
        }
        let mut prev = (0u64, 0u64);
        let mut count = 0u64;
        while let Some(e) = q.pop() {
            let k = (e.at.as_nanos(), e.seq);
            assert!(k > prev || count == 0, "order violated at {k:?}");
            prev = k;
            count += 1;
        }
        assert_eq!(count, n);
    }

    #[test]
    fn retain_drops_entries_and_fixes_len() {
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.push(entry(i * 500_000, i)); // spans many L1 buckets
        }
        q.push(entry(2 * SEG_NS, 100)); // parked in L2
        q.push(entry(2 * L2_SPAN_NS, 101)); // overflow heap
        q.push(entry(3 * L2_SPAN_NS, 102)); // overflow heap
        q.retain(|e| e.seq % 2 == 0);
        assert_eq!(q.len(), 52);
        let mut prev = (0u64, 0u64);
        let mut n = 0;
        while let Some(e) = q.pop() {
            assert!(e.seq % 2 == 0);
            let k = (e.at.as_nanos(), e.seq);
            assert!(k >= prev);
            prev = k;
            n += 1;
        }
        assert_eq!(n, 52);
    }

    #[test]
    fn sparse_mode_pops_in_order_without_densifying() {
        let mut q = EventQueue::new();
        // Descending times, well under SPARSE_LIMIT: the queue must stay
        // sparse (wheels unallocated) and still pop ascending.
        for seq in 0..50u64 {
            q.push(entry((50 - seq) * 1_000, seq));
        }
        assert!(q.sparse);
        assert!(q.l1.is_empty(), "sparse queue must not allocate the wheels");
        let mut prev = 0u64;
        while let Some(e) = q.pop() {
            assert!(e.at.as_nanos() >= prev);
            prev = e.at.as_nanos();
        }
        assert!(q.sparse, "popping must never densify");
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn densify_crossing_preserves_order() {
        // Fill past SPARSE_LIMIT after consuming a prefix, so the migration
        // happens with a non-zero clock and a mix of near/far entries;
        // pushes after the crossing may land behind the new cursor (the
        // run-insert path). The pop sequence must be (at, seq) ascending
        // throughout, exactly as if the queue had been dense from birth.
        let mut q = EventQueue::new();
        let mut seq = 0u64;
        let mut expect: Vec<(u64, u64)> = Vec::new();
        let mut push = |q: &mut EventQueue, at: u64, expect: &mut Vec<(u64, u64)>| {
            q.push(entry(at, seq));
            expect.push((at, seq));
            seq += 1;
        };
        for i in 0..100u64 {
            push(&mut q, 10_000 + i * 7_919 % 50_000, &mut expect);
        }
        // Consume a few so the heap has seen pops before densifying.
        for _ in 0..10 {
            let e = q.pop().unwrap();
            let pos = expect
                .iter()
                .position(|&(at, s)| (at, s) == (e.at.as_nanos(), e.seq))
                .unwrap();
            expect.remove(pos);
        }
        assert!(q.sparse);
        // Blow past the limit with a spread covering L1, L2, and overflow.
        for i in 0..(2 * SPARSE_LIMIT as u64) {
            push(&mut q, 60_000 + (i * 104_729) % (120 * SEG_NS), &mut expect);
        }
        assert!(!q.sparse, "limit crossing must densify");
        expect.sort_unstable();
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push((e.at.as_nanos(), e.seq));
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn sparse_retain_drops_entries_and_fixes_len() {
        let mut q = EventQueue::new();
        for i in 0..20u64 {
            q.push(entry(i * 1_000, i));
        }
        q.retain(|e| e.seq % 2 == 0);
        assert_eq!(q.len(), 10);
        assert!(q.sparse);
        let mut n = 0;
        while let Some(e) = q.pop() {
            assert!(e.seq % 2 == 0);
            n += 1;
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn timer_slots_generations() {
        let mut s = TimerSlots::new();
        let a = s.arm();
        let b = s.arm();
        assert_eq!(s.live(), 2);
        assert!(s.is_live(a) && s.is_live(b));
        assert!(s.disarm(a));
        assert!(!s.disarm(a), "double disarm must be a no-op");
        assert!(!s.is_live(a));
        assert_eq!(s.live(), 1);
        // Reuse the slot: the old id must stay dead.
        let c = s.arm();
        assert!(s.is_live(c));
        assert!(!s.is_live(a));
        assert_ne!(a, c);
        assert!(s.disarm(b));
        assert!(s.disarm(c));
        assert_eq!(s.live(), 0);
    }
}

#[cfg(test)]
mod review_probe {
    use super::*;
    use crate::time::SimTime;
    fn entry(at_ns: u64, seq: u64) -> EventEntry {
        EventEntry {
            at: SimTime::from_nanos(at_ns),
            seq,
            kind: EventKind::Timer {
                node: crate::packet::NodeId(0),
                id: TimerId(0),
                token: 0,
            },
        }
    }
    #[test]
    fn exactly_one_l2_span_ahead() {
        let mut q = EventQueue::new();
        let l2_span = (N_L2 as u64) << L2_SHIFT;
        // push a near event and one exactly one L2 span ahead
        q.push(entry(5, 0));
        q.push(entry(l2_span + 5, 1));
        assert_eq!(q.pop().unwrap().seq, 0);
        let e = q.pop().unwrap();
        assert_eq!(e.seq, 1);
        assert_eq!(e.at.as_nanos(), l2_span + 5);
        assert!(q.pop().is_none());
    }
}

//! # netsim — deterministic discrete-event network simulator
//!
//! The substrate for the Halfback reproduction: links with serialization and
//! propagation delay, drop-tail (and CoDel) queues, random wire-loss models,
//! store-and-forward routers, and a totally ordered event engine driven by
//! virtual time.
//!
//! Everything is deterministic: event ordering is `(time, insertion
//! sequence)` and all randomness flows from a single seed per run
//! ([`rng::SimRng`]), so every figure in the evaluation is reproducible
//! bit-for-bit.
//!
//! ## Layering
//!
//! `netsim` knows nothing about transport protocols. Packets are generic
//! over a payload type; the `transport` crate instantiates the engine with
//! its segment/ACK header and plugs host nodes into topologies built by
//! [`topology`].
//!
//! ## Quick example
//!
//! ```
//! use netsim::engine::Simulator;
//! use netsim::link::LinkSpec;
//! use netsim::packet::{FlowId, Packet};
//! use netsim::time::{Rate, SimDuration};
//! # use netsim::engine::Ctx; use netsim::node::{Node, TimerId}; use std::any::Any;
//! # struct Sink(u32);
//! # impl Node<()> for Sink {
//! #     fn on_packet(&mut self, _p: Packet<()>, _c: &mut Ctx<'_, ()>) { self.0 += 1; }
//! #     fn on_timer(&mut self, _i: TimerId, _t: u64, _c: &mut Ctx<'_, ()>) {}
//! #     fn as_any(&self) -> &dyn Any { self }
//! #     fn as_any_mut(&mut self) -> &mut dyn Any { self }
//! # }
//! let mut sim: Simulator<()> = Simulator::new(42);
//! let a = sim.add_node(Box::new(Sink(0)));
//! let b = sim.add_node(Box::new(Sink(0)));
//! let l = sim.add_link(LinkSpec::drop_tail(
//!     a, b, Rate::from_mbps(15), SimDuration::from_millis(30), 115_000));
//! sim.core().send_on(l, Packet::new(FlowId(0), a, b, 1500, ()));
//! sim.run_to_completion(100);
//! assert!(sim.now().as_millis_f64() > 30.0);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub(crate) mod eventq;
pub mod faults;
pub mod link;
pub mod loss;
pub mod node;
pub mod packet;
pub mod queue;
pub mod rng;
pub mod router;
pub mod shard;
pub mod snap;
pub mod stats;
pub mod time;
pub mod topology;

pub use engine::{Ctx, HygieneReport, Simulator};
pub use faults::FaultSpec;
pub use node::{Node, TimerId};
pub use packet::{
    FlowId, LinkId, NodeId, Packet, PacketArena, PacketHandle, PacketId, PacketMeta, Payload,
};
pub use snap::{SnapError, SnapPayload, SnapReader, SnapWriter};
pub use time::{Rate, SimDuration, SimTime};

//! Small statistics helpers shared by experiments and tests.

/// Running summary (count / mean / min / max) without storing samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add a sample.
    pub fn add(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample: {x}");
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Minimum, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Default [`Ecdf`] sample budget: one mebi-sample. Past this, `add`
/// refuses (debug assert, silently dropped in release) — large scenarios
/// must aggregate through [`LogHistogram`], which is O(1) per metric.
pub const ECDF_DEFAULT_BUDGET: usize = 1 << 20;

/// Error returned by [`Ecdf::try_add`] once the sample budget is spent.
///
/// An `Ecdf` stores every sample, so its memory is linear in the flow
/// count; the budget is the explicit ceiling that keeps a misrouted
/// million-flow scenario from silently eating gigabytes. Scenarios that
/// legitimately need more samples should either raise the budget with
/// [`Ecdf::with_budget`] or — for anything flow-scaled — switch to the
/// bounded [`LogHistogram`] sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcdfBudgetExceeded {
    /// The budget that was exhausted.
    pub budget: usize,
}

impl std::fmt::Display for EcdfBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Ecdf sample budget exhausted ({} samples); use LogHistogram for \
             flow-scaled aggregation or raise the budget explicitly",
            self.budget
        )
    }
}

impl std::error::Error for EcdfBudgetExceeded {}

/// An empirical distribution built from stored samples: percentiles and CDF
/// series for the paper's CDF/CCDF figures.
///
/// Samples accumulate in a small unsorted tail (`pending`) and are merged
/// into the sorted main run only when a query needs order. Interleaved
/// add/query workloads (the per-cell metrics path) therefore pay one
/// `O(k log k)` sort of the *new* samples plus a linear merge, instead of
/// re-sorting all `n` samples every time.
///
/// Memory is linear in the sample count, so growth is capped by an
/// explicit budget (default [`ECDF_DEFAULT_BUDGET`]): past it, [`Ecdf::add`]
/// debug-asserts and drops the sample in release builds (see
/// [`Ecdf::try_add`] / [`Ecdf::refused`]). Flow-scaled scenarios belong on
/// [`LogHistogram`] instead.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
    pending: Vec<f64>,
    budget: usize,
    refused: u64,
}

impl Default for Ecdf {
    fn default() -> Self {
        Ecdf {
            sorted: Vec::new(),
            pending: Vec::new(),
            budget: ECDF_DEFAULT_BUDGET,
            refused: 0,
        }
    }
}

impl Ecdf {
    /// An empty distribution with the default sample budget.
    pub fn new() -> Self {
        Ecdf::default()
    }

    /// An empty distribution that refuses samples past `budget`.
    pub fn with_budget(budget: usize) -> Self {
        Ecdf {
            budget,
            ..Ecdf::default()
        }
    }

    /// Build from a vector of samples. The budget is the default, widened
    /// if needed so the constructed value is not already over it.
    pub fn from_samples(mut xs: Vec<f64>) -> Self {
        xs.retain(|x| x.is_finite());
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Ecdf {
            budget: ECDF_DEFAULT_BUDGET.max(xs.len()),
            sorted: xs,
            pending: Vec::new(),
            refused: 0,
        }
    }

    /// The sample budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Samples refused because the budget was exhausted (release builds;
    /// debug builds assert instead).
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// Add a sample, or refuse it with [`EcdfBudgetExceeded`] once the
    /// budget is spent. Non-finite samples are filtered (not an error).
    pub fn try_add(&mut self, x: f64) -> Result<(), EcdfBudgetExceeded> {
        if !x.is_finite() {
            return Ok(());
        }
        if self.len() >= self.budget {
            self.refused += 1;
            return Err(EcdfBudgetExceeded {
                budget: self.budget,
            });
        }
        self.pending.push(x);
        Ok(())
    }

    /// Add a sample. Past the budget this debug-asserts; in release the
    /// sample is dropped and counted in [`Ecdf::refused`].
    pub fn add(&mut self, x: f64) {
        let r = self.try_add(x);
        debug_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    fn ensure_sorted(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.pending
            .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        if self.sorted.is_empty() {
            std::mem::swap(&mut self.sorted, &mut self.pending);
            return;
        }
        // Merge the two sorted runs.
        let mut merged = Vec::with_capacity(self.sorted.len() + self.pending.len());
        let (mut i, mut j) = (0, 0);
        while i < self.sorted.len() && j < self.pending.len() {
            if self.sorted[i] <= self.pending[j] {
                merged.push(self.sorted[i]);
                i += 1;
            } else {
                merged.push(self.pending[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.sorted[i..]);
        merged.extend_from_slice(&self.pending[j..]);
        self.sorted = merged;
        self.pending.clear();
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len() + self.pending.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty() && self.pending.is_empty()
    }

    /// Mean of the samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            let sum = self.sorted.iter().sum::<f64>() + self.pending.iter().sum::<f64>();
            Some(sum / self.len() as f64)
        }
    }

    /// Percentile in `\[0, 100\]` using nearest-rank; `None` if empty.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        self.ensure_sorted();
        if self.sorted.is_empty() {
            return None;
        }
        let n = self.sorted.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(self.sorted[rank.clamp(1, n) - 1])
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Fraction of samples `<= x`.
    pub fn cdf_at(&mut self, x: f64) -> f64 {
        self.ensure_sorted();
        if self.sorted.is_empty() {
            return 0.0;
        }
        let k = self.sorted.partition_point(|&s| s <= x);
        k as f64 / self.sorted.len() as f64
    }

    /// The full `(value, percent <= value)` series for plotting a CDF, one
    /// point per sample (like the paper's gnuplot CDFs).
    pub fn cdf_series(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, 100.0 * (i + 1) as f64 / n as f64))
            .collect()
    }

    /// The `(value, percent > value)` series for a complementary CDF.
    pub fn ccdf_series(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, 100.0 * (n - i - 1) as f64 / n as f64))
            .collect()
    }

    /// Sorted view of the samples.
    pub fn sorted(&mut self) -> &[f64] {
        self.ensure_sorted();
        &self.sorted
    }

    /// Every sample in insertion-independent (but unspecified) order — for
    /// merging one distribution into another.
    pub fn samples(&self) -> impl Iterator<Item = f64> + '_ {
        self.sorted.iter().chain(self.pending.iter()).copied()
    }
}

/// Mantissa bits kept per bucket: 32 sub-buckets per power of two, so a
/// bucket spans a relative width of 2^-5 = 3.125 % and the midpoint
/// representative is within **1.57 % relative error** of any sample in it.
const SKETCH_SUB_BITS: u32 = 5;

/// Per-bucket bookkeeping cost estimate for [`LogHistogram::memory_bytes`]:
/// a `(u32, u64)` entry plus `BTreeMap` node overhead.
const SKETCH_BUCKET_COST: usize = 48;

/// A deterministic, mergeable fixed-bucket log-histogram quantile sketch.
///
/// Samples land in buckets keyed by their IEEE-754 exponent plus the top
/// [`SKETCH_SUB_BITS`] mantissa bits — a pure bit shift, no floating-point
/// log, so bucketing is exact and identical on every platform. Bucket
/// counts are integers, which makes merges **exact, associative, and
/// commutative**: summaries computed from sketches are byte-identical
/// across `--jobs N` and `--shards N` no matter how the samples were
/// partitioned.
///
/// Memory is O(distinct buckets) — a few hundred entries even for
/// distributions spanning nine decades — instead of O(samples), which is
/// what lets `repro planetlab100k` aggregate 10^5..10^6 flow completion
/// times without retaining a single `FlowRecord`.
///
/// Contract: samples must be finite; non-finite samples are filtered like
/// [`Ecdf::add`]. Samples `<= 0` are counted in a dedicated zero bucket
/// (FCTs, RTTs, and counts are non-negative; a true negative is a caller
/// bug and debug-asserts). Quantiles are bucket midpoints clamped to the
/// exact observed `[min, max]`, so the relative error bound of 1.57 %
/// holds for every positive quantile.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    /// Bucket key -> sample count. BTreeMap so iteration is in ascending
    /// value order (bucket keys are order-preserving for positive f64).
    buckets: std::collections::BTreeMap<u32, u64>,
    /// Samples with value <= 0 (exactly representable; no bucket error).
    zeros: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// High-water mark of distinct buckets, for memory accounting.
    hiwater: usize,
}

/// Bucket key for a positive finite sample: sign bit is zero, so shifting
/// keeps (exponent, top mantissa bits) — order-preserving and exact.
fn sketch_bucket(x: f64) -> u32 {
    (x.to_bits() >> (52 - SKETCH_SUB_BITS)) as u32
}

/// Inclusive-exclusive value range `[lo, hi)` covered by a bucket key.
fn sketch_bounds(key: u32) -> (f64, f64) {
    let lo = f64::from_bits((key as u64) << (52 - SKETCH_SUB_BITS));
    let hi = f64::from_bits(((key as u64) + 1) << (52 - SKETCH_SUB_BITS));
    (lo, hi)
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty sketch.
    pub fn new() -> Self {
        LogHistogram {
            buckets: std::collections::BTreeMap::new(),
            zeros: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            hiwater: 0,
        }
    }

    /// Add a sample. Non-finite samples are filtered; negatives
    /// debug-assert and count as zero.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        debug_assert!(x >= 0.0, "negative sketch sample: {x}");
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if x <= 0.0 {
            self.zeros += 1;
        } else {
            *self.buckets.entry(sketch_bucket(x)).or_insert(0) += 1;
            self.hiwater = self.hiwater.max(self.buckets.len());
        }
    }

    /// Merge another sketch in. Integer bucket counts make this exact:
    /// `(a ∪ b) ∪ c == a ∪ (b ∪ c)` and `a ∪ b == b ∪ a`, bit for bit
    /// (the float `sum` is commutative-associative only as far as IEEE
    /// addition is; merge in a deterministic order when byte-identity of
    /// the *mean* matters, as the harness and shard runner both do).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (&k, &n) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += n;
        }
        self.hiwater = self.hiwater.max(self.buckets.len());
        self.zeros += other.zeros;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean (tracked outside the buckets), or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Exact minimum, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Nearest-rank quantile for `p` in `[0, 100]`, or `None` if empty.
    /// The result is the midpoint of the bucket holding the ranked sample,
    /// clamped to the observed `[min, max]` — within 1.57 % relative error
    /// of the exact [`Ecdf::percentile`] answer.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "quantile out of range: {p}");
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        if rank <= self.zeros {
            return Some(0.0);
        }
        let mut seen = self.zeros;
        for (&k, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let (lo, hi) = sketch_bounds(k);
                return Some((0.5 * (lo + hi)).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Distinct non-zero buckets currently held.
    pub fn buckets_len(&self) -> usize {
        self.buckets.len()
    }

    /// Estimated heap + inline footprint, deterministic in the bucket
    /// count (used for the manifest's sketch memory high-water line).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.hiwater * SKETCH_BUCKET_COST
    }

    /// Serialize into the engine checkpoint codec: bucket table in
    /// ascending key order (BTreeMap iteration order, so the bytes are
    /// deterministic), then the scalar accumulators. `hiwater` rides along
    /// so a resumed run's memory accounting matches the uninterrupted one.
    pub fn save(&self, w: &mut crate::snap::SnapWriter) {
        w.usize(self.buckets.len());
        for (&k, &n) in &self.buckets {
            w.u32(k);
            w.u64(n);
        }
        w.u64(self.zeros);
        w.u64(self.count);
        w.f64(self.sum);
        w.f64(self.min);
        w.f64(self.max);
        w.usize(self.hiwater);
    }

    /// Rebuild a sketch saved by [`LogHistogram::save`].
    pub fn load(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        let n_buckets = r.usize()?;
        let mut buckets = std::collections::BTreeMap::new();
        for _ in 0..n_buckets {
            let k = r.u32()?;
            let n = r.u64()?;
            buckets.insert(k, n);
        }
        Ok(LogHistogram {
            buckets,
            zeros: r.u64()?,
            count: r.u64()?,
            sum: r.f64()?,
            min: r.f64()?,
            max: r.f64()?,
            hiwater: r.usize()?,
        })
    }

    /// `(bucket upper edge, percent of samples <= edge)` series for
    /// plotting a CDF: one point per non-empty bucket instead of one per
    /// sample, so a 10^5-flow CDF is a few hundred points. The final
    /// point is pinned to the exact maximum at 100 %.
    pub fn cdf_series(&self) -> Vec<(f64, f64)> {
        if self.count == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.buckets.len() + 2);
        let mut seen = 0u64;
        if self.zeros > 0 {
            seen += self.zeros;
            out.push((0.0, 100.0 * seen as f64 / self.count as f64));
        }
        for (&k, &n) in &self.buckets {
            seen += n;
            let (_, hi) = sketch_bounds(k);
            out.push((hi.min(self.max), 100.0 * seen as f64 / self.count as f64));
        }
        out
    }
}

/// Windowed sketches over virtual time with warm-up trimming: one
/// [`LogHistogram`] per fixed-width window, samples before the warm-up
/// mark dropped (counted, not stored). This is the steady-state shape
/// ROADMAP item 2 needs — tail percentiles per window, plus an exact
/// aggregate over everything past warm-up — in O(windows) memory.
#[derive(Debug, Clone)]
pub struct WindowedSketch {
    window_ns: u64,
    warmup_ns: u64,
    windows: Vec<LogHistogram>,
    trimmed: u64,
}

impl WindowedSketch {
    /// Create with the given window width; samples before `warmup_ns` are
    /// trimmed.
    pub fn new(window_ns: u64, warmup_ns: u64) -> Self {
        assert!(window_ns > 0, "window width must be positive");
        WindowedSketch {
            window_ns,
            warmup_ns,
            windows: Vec::new(),
            trimmed: 0,
        }
    }

    /// Add sample `x` observed at virtual time `t_ns`.
    pub fn add(&mut self, t_ns: u64, x: f64) {
        if t_ns < self.warmup_ns {
            self.trimmed += 1;
            return;
        }
        let idx = ((t_ns - self.warmup_ns) / self.window_ns) as usize;
        if idx >= self.windows.len() {
            self.windows.resize_with(idx + 1, LogHistogram::new);
        }
        self.windows[idx].add(x);
    }

    /// Merge another windowed sketch (same window width and warm-up).
    /// Window-by-window integer merges keep the same exactness contract
    /// as [`LogHistogram::merge`].
    pub fn merge(&mut self, other: &WindowedSketch) {
        assert_eq!(self.window_ns, other.window_ns, "window width mismatch");
        assert_eq!(self.warmup_ns, other.warmup_ns, "warm-up mismatch");
        if other.windows.len() > self.windows.len() {
            self.windows
                .resize_with(other.windows.len(), LogHistogram::new);
        }
        for (w, o) in self.windows.iter_mut().zip(&other.windows) {
            w.merge(o);
        }
        self.trimmed += other.trimmed;
    }

    /// Merge of every post-warm-up window.
    pub fn aggregate(&self) -> LogHistogram {
        let mut all = LogHistogram::new();
        for w in &self.windows {
            all.merge(w);
        }
        all
    }

    /// Per-window snapshots, in time order (some may be empty).
    pub fn windows(&self) -> &[LogHistogram] {
        &self.windows
    }

    /// Samples dropped by warm-up trimming.
    pub fn trimmed(&self) -> u64 {
        self.trimmed
    }

    /// Window width in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Warm-up mark in nanoseconds.
    pub fn warmup_ns(&self) -> u64 {
        self.warmup_ns
    }

    /// Footprint estimate: sum of the per-window sketch footprints.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .windows
                .iter()
                .map(LogHistogram::memory_bytes)
                .sum::<usize>()
    }

    /// Serialize into the engine checkpoint codec (configuration plus
    /// every window sketch).
    pub fn save(&self, w: &mut crate::snap::SnapWriter) {
        w.u64(self.window_ns);
        w.u64(self.warmup_ns);
        w.u64(self.trimmed);
        w.usize(self.windows.len());
        for win in &self.windows {
            win.save(w);
        }
    }

    /// Rebuild a windowed sketch saved by [`WindowedSketch::save`].
    pub fn load(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        let window_ns = r.u64()?;
        let warmup_ns = r.u64()?;
        let trimmed = r.u64()?;
        let n = r.usize()?;
        let mut windows = Vec::with_capacity(n);
        for _ in 0..n {
            windows.push(LogHistogram::load(r)?);
        }
        Ok(WindowedSketch {
            window_ns,
            warmup_ns,
            windows,
            trimmed,
        })
    }
}

/// Bins event counts into fixed-width time buckets — used for the Fig. 15
/// throughput-over-time traces (the paper samples every 60 ms).
#[derive(Debug, Clone)]
pub struct TimeBinned {
    bin_width_ns: u64,
    bins: Vec<f64>,
    /// Instant the series was closed (e.g. flow completion). When set, rate
    /// conversions scale the final bin by the time actually covered instead
    /// of silently under-reporting the partial bin.
    end_ns: Option<u64>,
}

impl TimeBinned {
    /// Create with the given bin width in nanoseconds.
    pub fn new(bin_width_ns: u64) -> Self {
        assert!(bin_width_ns > 0);
        TimeBinned {
            bin_width_ns,
            bins: Vec::new(),
            end_ns: None,
        }
    }

    /// Add `amount` at time `t_ns`.
    pub fn add(&mut self, t_ns: u64, amount: f64) {
        let idx = (t_ns / self.bin_width_ns) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += amount;
    }

    /// Mark the series as ending at `t_ns` (the flow-completion instant).
    /// The final partial bin then converts to a rate over its real width.
    /// Later `add`s past the mark reopen the series.
    pub fn close_at(&mut self, t_ns: u64) {
        self.end_ns = Some(t_ns);
    }

    /// The close instant, if [`TimeBinned::close_at`] was called.
    pub fn end_ns(&self) -> Option<u64> {
        self.end_ns
    }

    /// Bin width in nanoseconds.
    pub fn bin_width_ns(&self) -> u64 {
        self.bin_width_ns
    }

    /// Add another series' bins element-wise. Bin widths must match; the
    /// later of the two close marks survives.
    pub fn merge(&mut self, other: &TimeBinned) {
        assert_eq!(
            self.bin_width_ns, other.bin_width_ns,
            "merging TimeBinned series with different bin widths"
        );
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), 0.0);
        }
        for (i, v) in other.bins.iter().enumerate() {
            self.bins[i] += v;
        }
        self.end_ns = match (self.end_ns, other.end_ns) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// `(bin_start_seconds, sum)` series.
    pub fn series(&self) -> Vec<(f64, f64)> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * self.bin_width_ns as f64 / 1e9, v))
            .collect()
    }

    /// Convert byte counts per bin into a Mbit/s series. If the series was
    /// closed with [`TimeBinned::close_at`], the final bin is averaged over
    /// the time it actually covers (completion mid-bin must not dilute the
    /// rate over the full bin width).
    pub fn as_mbps(&self) -> Vec<(f64, f64)> {
        let full_secs = self.bin_width_ns as f64 / 1e9;
        let last = self.bins.len().saturating_sub(1);
        let last_secs = match self.end_ns {
            Some(end) if (end / self.bin_width_ns) as usize == last => {
                let into_bin = end - last as u64 * self.bin_width_ns;
                if into_bin == 0 {
                    full_secs
                } else {
                    into_bin as f64 / 1e9
                }
            }
            _ => full_secs,
        };
        self.series()
            .into_iter()
            .enumerate()
            .map(|(i, (t, bytes))| {
                let secs = if i == last { last_secs } else { full_secs };
                (t, bytes * 8.0 / 1e6 / secs)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_snapshot_roundtrip_is_exact() {
        let mut ws = WindowedSketch::new(1_000, 500);
        let mut h = LogHistogram::new();
        for i in 0..5_000u64 {
            let x = (i as f64 * 0.37).sin().abs() * 1e6 + (i % 7) as f64;
            ws.add(i * 3, x);
            h.add(x);
        }
        h.add(0.0); // exercise the zero bucket

        let mut w = crate::snap::SnapWriter::new();
        h.save(&mut w);
        ws.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::snap::SnapReader::new(&bytes);
        let h2 = LogHistogram::load(&mut r).unwrap();
        let ws2 = WindowedSketch::load(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);

        assert_eq!(h.count(), h2.count());
        assert_eq!(h.mean(), h2.mean());
        assert_eq!(h.quantile(99.0), h2.quantile(99.0));
        assert_eq!(h.memory_bytes(), h2.memory_bytes());
        assert_eq!(ws.trimmed(), ws2.trimmed());
        assert_eq!(ws.windows().len(), ws2.windows().len());
        assert_eq!(
            ws.aggregate().quantile(50.0),
            ws2.aggregate().quantile(50.0)
        );

        // A second save of the restored sketches is byte-identical.
        let mut w2 = crate::snap::SnapWriter::new();
        h2.save(&mut w2);
        ws2.save(&mut w2);
        assert_eq!(bytes, w2.into_bytes());
    }

    #[test]
    fn summary_tracks_mean_min_max() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), None);
        for x in [3.0, 1.0, 2.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), Some(2.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut e = Ecdf::from_samples((1..=100).map(|i| i as f64).collect());
        assert_eq!(e.percentile(50.0), Some(50.0));
        assert_eq!(e.percentile(99.0), Some(99.0));
        assert_eq!(e.percentile(100.0), Some(100.0));
        assert_eq!(e.percentile(1.0), Some(1.0));
        assert_eq!(e.percentile(0.0), Some(1.0));
    }

    #[test]
    fn cdf_at_counts_fraction() {
        let mut e = Ecdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf_at(0.5), 0.0);
        assert_eq!(e.cdf_at(2.0), 0.5);
        assert_eq!(e.cdf_at(10.0), 1.0);
    }

    #[test]
    fn cdf_and_ccdf_are_complementary() {
        let mut e = Ecdf::from_samples(vec![5.0, 1.0, 3.0]);
        let cdf = e.cdf_series();
        let ccdf = e.ccdf_series();
        for ((xa, pa), (xb, pb)) in cdf.iter().zip(ccdf.iter()) {
            assert_eq!(xa, xb);
            assert!((pa + pb - 100.0).abs() < 1e-9);
        }
        // Adding a sample after reading still works.
        e.add(2.0);
        assert_eq!(e.len(), 4);
        assert_eq!(e.median(), Some(2.0));
    }

    #[test]
    fn interleaved_adds_and_queries_merge_correctly() {
        // Exercises the sorted-run + pending-tail merge: every query must
        // see all samples added so far, in order, across repeated rounds.
        let mut e = Ecdf::new();
        let mut reference: Vec<f64> = Vec::new();
        for round in 0..5 {
            for k in 0..20 {
                // A scattered, partly descending pattern.
                let x = ((k * 37 + round * 11) % 50) as f64 - 10.0;
                e.add(x);
                reference.push(x);
            }
            reference.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(e.len(), reference.len());
            assert_eq!(e.sorted(), &reference[..]);
            // Nearest-rank median: element at rank ceil(n/2).
            let mid = reference[reference.len().div_ceil(2) - 1];
            assert_eq!(e.median(), Some(mid));
            let mean = reference.iter().sum::<f64>() / reference.len() as f64;
            assert!((e.mean().unwrap() - mean).abs() < 1e-12);
        }
        // NaN / infinite samples are still filtered out via `add`.
        e.add(f64::NAN);
        e.add(f64::INFINITY);
        assert_eq!(e.len(), reference.len());
    }

    #[test]
    fn ecdf_budget_refuses_past_cap() {
        let mut e = Ecdf::with_budget(3);
        for x in [1.0, 2.0, 3.0] {
            assert_eq!(e.try_add(x), Ok(()));
        }
        assert_eq!(e.try_add(4.0), Err(EcdfBudgetExceeded { budget: 3 }));
        assert_eq!(e.len(), 3);
        assert_eq!(e.refused(), 1);
        // Non-finite samples are filtered, not charged against the budget.
        assert_eq!(e.try_add(f64::NAN), Ok(()));
        // from_samples widens the budget to at least its own length.
        let big = Ecdf::from_samples((0..10).map(|i| i as f64).collect());
        assert!(big.budget() >= 10);
        assert_eq!(big.budget(), ECDF_DEFAULT_BUDGET);
    }

    #[test]
    #[should_panic(expected = "sample budget exhausted")]
    #[cfg(debug_assertions)]
    fn ecdf_add_asserts_past_budget_in_debug() {
        let mut e = Ecdf::with_budget(1);
        e.add(1.0);
        e.add(2.0);
    }

    /// Seeded sample sets spanning the distributions the figures actually
    /// aggregate (exponential FCT-ish, lognormal, pareto tails, zeros).
    fn seeded_samples(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = crate::rng::SimRng::new(seed);
        (0..n)
            .map(|i| match i % 4 {
                0 => rng.exponential(120.0),
                1 => rng.lognormal(3.0, 1.2),
                2 => rng.pareto(5.0, 1.8),
                _ => {
                    if rng.chance(0.05) {
                        0.0
                    } else {
                        rng.uniform_range(0.5, 5000.0)
                    }
                }
            })
            .collect()
    }

    #[test]
    fn sketch_quantiles_track_exact_ecdf_within_error_bound() {
        for seed in [1u64, 7, 42] {
            let xs = seeded_samples(seed, 20_000);
            let mut exact = Ecdf::from_samples(xs.clone());
            let mut sketch = LogHistogram::new();
            for &x in &xs {
                sketch.add(x);
            }
            assert_eq!(sketch.count(), xs.len() as u64);
            let exact_mean = exact.mean().unwrap();
            assert!((sketch.mean().unwrap() - exact_mean).abs() < 1e-9 * exact_mean.abs());
            for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
                let truth = exact.percentile(p).unwrap();
                let approx = sketch.quantile(p).unwrap();
                if truth == 0.0 {
                    assert_eq!(approx, 0.0, "seed {seed} p{p}");
                } else {
                    let rel = (approx - truth).abs() / truth;
                    // Documented bound: bucket midpoint within 2^-6 of any
                    // sample in the bucket.
                    assert!(
                        rel <= 0.016,
                        "seed {seed} p{p}: {approx} vs {truth} ({rel})"
                    );
                }
            }
        }
    }

    #[test]
    fn sketch_merge_is_associative_and_commutative() {
        let parts: Vec<LogHistogram> = (0..3)
            .map(|s| {
                let mut h = LogHistogram::new();
                for x in seeded_samples(s + 100, 5_000) {
                    h.add(x);
                }
                h
            })
            .collect();
        let digest = |h: &LogHistogram| {
            let mut d = format!("{}|{}|", h.count(), h.buckets_len());
            for p in [50.0, 99.0, 99.9] {
                d.push_str(&format!("{:.17e},", h.quantile(p).unwrap()));
            }
            d.push_str(&format!(
                "{:.17e},{:.17e}",
                h.min().unwrap(),
                h.max().unwrap()
            ));
            d
        };
        // (a ∪ b) ∪ c
        let mut abc = parts[0].clone();
        abc.merge(&parts[1]);
        abc.merge(&parts[2]);
        // a ∪ (b ∪ c)
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        let mut a_bc = parts[0].clone();
        a_bc.merge(&bc);
        // c ∪ b ∪ a
        let mut cba = parts[2].clone();
        cba.merge(&parts[1]);
        cba.merge(&parts[0]);
        assert_eq!(digest(&abc), digest(&a_bc));
        assert_eq!(digest(&abc), digest(&cba));
        // Merging an empty sketch is the identity (min/max must survive).
        let mut with_empty = abc.clone();
        with_empty.merge(&LogHistogram::new());
        assert_eq!(digest(&abc), digest(&with_empty));
        // And the merged sketch equals the all-at-once sketch exactly.
        let mut whole = LogHistogram::new();
        for s in 0..3 {
            for x in seeded_samples(s + 100, 5_000) {
                whole.add(x);
            }
        }
        assert_eq!(digest(&abc), digest(&whole));
    }

    #[test]
    fn sketch_cdf_series_is_bucket_bounded_and_monotone() {
        let mut h = LogHistogram::new();
        for x in seeded_samples(9, 10_000) {
            h.add(x);
        }
        let series = h.cdf_series();
        assert!(series.len() <= h.buckets_len() + 2);
        assert!(series.len() < 1_000, "bucket CDF must stay small");
        for w in series.windows(2) {
            assert!(w[0].0 <= w[1].0, "x monotone");
            assert!(w[0].1 <= w[1].1, "percent monotone");
        }
        let last = series.last().unwrap();
        assert_eq!(last.0, h.max().unwrap());
        assert!((last.1 - 100.0).abs() < 1e-9);
        // Memory stays bucket-bounded no matter the sample count.
        assert!(h.memory_bytes() < 64 * 1024, "{}", h.memory_bytes());
    }

    #[test]
    fn windowed_sketch_trims_warmup_and_merges() {
        let mut w = WindowedSketch::new(1_000, 500);
        w.add(100, 9.0); // pre-warm-up: trimmed
        w.add(500, 1.0); // window 0
        w.add(1_499, 2.0); // window 0
        w.add(1_500, 3.0); // window 1
        w.add(3_700, 4.0); // window 3 (window 2 stays empty)
        assert_eq!(w.trimmed(), 1);
        assert_eq!(w.windows().len(), 4);
        assert_eq!(w.windows()[0].count(), 2);
        assert_eq!(w.windows()[2].count(), 0);
        let agg = w.aggregate();
        assert_eq!(agg.count(), 4);
        assert_eq!(agg.min(), Some(1.0));
        assert_eq!(agg.max(), Some(4.0));

        let mut other = WindowedSketch::new(1_000, 500);
        other.add(0, 5.0);
        other.add(2_600, 6.0); // window 2
        w.merge(&other);
        assert_eq!(w.trimmed(), 2);
        assert_eq!(w.windows()[2].count(), 1);
        assert_eq!(w.aggregate().count(), 5);
    }

    #[test]
    fn time_binned_throughput() {
        let mut tb = TimeBinned::new(60_000_000); // 60 ms bins
        tb.add(0, 7500.0); // 7.5 KB in first bin
        tb.add(59_999_999, 7500.0);
        tb.add(60_000_000, 1500.0);
        let mbps = tb.as_mbps();
        // 15 KB in 60 ms = 2 Mbit/s.
        assert!((mbps[0].1 - 2.0).abs() < 1e-9, "{:?}", mbps);
        assert!((mbps[1].1 - 0.2).abs() < 1e-9);
    }

    #[test]
    fn time_binned_close_scales_final_partial_bin() {
        let mut tb = TimeBinned::new(60_000_000);
        tb.add(0, 7500.0);
        tb.add(60_000_000, 1500.0);
        // The flow completes 15 ms into the second bin: 1.5 KB over 15 ms
        // is 0.8 Mbit/s, not the 0.2 Mbit/s a full-width average reports.
        tb.close_at(75_000_000);
        let mbps = tb.as_mbps();
        assert!((mbps[0].1 - 1.0).abs() < 1e-9, "{:?}", mbps);
        assert!((mbps[1].1 - 0.8).abs() < 1e-9, "{:?}", mbps);
        // Closing exactly on a later bin boundary leaves earlier bins full
        // width, and a close in a bin that got no samples changes nothing.
        let mut tb2 = TimeBinned::new(60_000_000);
        tb2.add(0, 7500.0);
        tb2.close_at(60_000_000);
        assert!((tb2.as_mbps()[0].1 - 1.0).abs() < 1e-9);
    }
}

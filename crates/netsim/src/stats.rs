//! Small statistics helpers shared by experiments and tests.

/// Running summary (count / mean / min / max) without storing samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add a sample.
    pub fn add(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample: {x}");
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Minimum, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// An empirical distribution built from stored samples: percentiles and CDF
/// series for the paper's CDF/CCDF figures.
///
/// Samples accumulate in a small unsorted tail (`pending`) and are merged
/// into the sorted main run only when a query needs order. Interleaved
/// add/query workloads (the per-cell metrics path) therefore pay one
/// `O(k log k)` sort of the *new* samples plus a linear merge, instead of
/// re-sorting all `n` samples every time.
#[derive(Debug, Clone, Default)]
pub struct Ecdf {
    sorted: Vec<f64>,
    pending: Vec<f64>,
}

impl Ecdf {
    /// An empty distribution.
    pub fn new() -> Self {
        Ecdf::default()
    }

    /// Build from a vector of samples.
    pub fn from_samples(mut xs: Vec<f64>) -> Self {
        xs.retain(|x| x.is_finite());
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Ecdf {
            sorted: xs,
            pending: Vec::new(),
        }
    }

    /// Add a sample.
    pub fn add(&mut self, x: f64) {
        if x.is_finite() {
            self.pending.push(x);
        }
    }

    fn ensure_sorted(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.pending
            .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        if self.sorted.is_empty() {
            std::mem::swap(&mut self.sorted, &mut self.pending);
            return;
        }
        // Merge the two sorted runs.
        let mut merged = Vec::with_capacity(self.sorted.len() + self.pending.len());
        let (mut i, mut j) = (0, 0);
        while i < self.sorted.len() && j < self.pending.len() {
            if self.sorted[i] <= self.pending[j] {
                merged.push(self.sorted[i]);
                i += 1;
            } else {
                merged.push(self.pending[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.sorted[i..]);
        merged.extend_from_slice(&self.pending[j..]);
        self.sorted = merged;
        self.pending.clear();
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len() + self.pending.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty() && self.pending.is_empty()
    }

    /// Mean of the samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            let sum = self.sorted.iter().sum::<f64>() + self.pending.iter().sum::<f64>();
            Some(sum / self.len() as f64)
        }
    }

    /// Percentile in `\[0, 100\]` using nearest-rank; `None` if empty.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        self.ensure_sorted();
        if self.sorted.is_empty() {
            return None;
        }
        let n = self.sorted.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(self.sorted[rank.clamp(1, n) - 1])
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Fraction of samples `<= x`.
    pub fn cdf_at(&mut self, x: f64) -> f64 {
        self.ensure_sorted();
        if self.sorted.is_empty() {
            return 0.0;
        }
        let k = self.sorted.partition_point(|&s| s <= x);
        k as f64 / self.sorted.len() as f64
    }

    /// The full `(value, percent <= value)` series for plotting a CDF, one
    /// point per sample (like the paper's gnuplot CDFs).
    pub fn cdf_series(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, 100.0 * (i + 1) as f64 / n as f64))
            .collect()
    }

    /// The `(value, percent > value)` series for a complementary CDF.
    pub fn ccdf_series(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, 100.0 * (n - i - 1) as f64 / n as f64))
            .collect()
    }

    /// Sorted view of the samples.
    pub fn sorted(&mut self) -> &[f64] {
        self.ensure_sorted();
        &self.sorted
    }

    /// Every sample in insertion-independent (but unspecified) order — for
    /// merging one distribution into another.
    pub fn samples(&self) -> impl Iterator<Item = f64> + '_ {
        self.sorted.iter().chain(self.pending.iter()).copied()
    }
}

/// Bins event counts into fixed-width time buckets — used for the Fig. 15
/// throughput-over-time traces (the paper samples every 60 ms).
#[derive(Debug, Clone)]
pub struct TimeBinned {
    bin_width_ns: u64,
    bins: Vec<f64>,
    /// Instant the series was closed (e.g. flow completion). When set, rate
    /// conversions scale the final bin by the time actually covered instead
    /// of silently under-reporting the partial bin.
    end_ns: Option<u64>,
}

impl TimeBinned {
    /// Create with the given bin width in nanoseconds.
    pub fn new(bin_width_ns: u64) -> Self {
        assert!(bin_width_ns > 0);
        TimeBinned {
            bin_width_ns,
            bins: Vec::new(),
            end_ns: None,
        }
    }

    /// Add `amount` at time `t_ns`.
    pub fn add(&mut self, t_ns: u64, amount: f64) {
        let idx = (t_ns / self.bin_width_ns) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += amount;
    }

    /// Mark the series as ending at `t_ns` (the flow-completion instant).
    /// The final partial bin then converts to a rate over its real width.
    /// Later `add`s past the mark reopen the series.
    pub fn close_at(&mut self, t_ns: u64) {
        self.end_ns = Some(t_ns);
    }

    /// The close instant, if [`TimeBinned::close_at`] was called.
    pub fn end_ns(&self) -> Option<u64> {
        self.end_ns
    }

    /// Bin width in nanoseconds.
    pub fn bin_width_ns(&self) -> u64 {
        self.bin_width_ns
    }

    /// Add another series' bins element-wise. Bin widths must match; the
    /// later of the two close marks survives.
    pub fn merge(&mut self, other: &TimeBinned) {
        assert_eq!(
            self.bin_width_ns, other.bin_width_ns,
            "merging TimeBinned series with different bin widths"
        );
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), 0.0);
        }
        for (i, v) in other.bins.iter().enumerate() {
            self.bins[i] += v;
        }
        self.end_ns = match (self.end_ns, other.end_ns) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// `(bin_start_seconds, sum)` series.
    pub fn series(&self) -> Vec<(f64, f64)> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * self.bin_width_ns as f64 / 1e9, v))
            .collect()
    }

    /// Convert byte counts per bin into a Mbit/s series. If the series was
    /// closed with [`TimeBinned::close_at`], the final bin is averaged over
    /// the time it actually covers (completion mid-bin must not dilute the
    /// rate over the full bin width).
    pub fn as_mbps(&self) -> Vec<(f64, f64)> {
        let full_secs = self.bin_width_ns as f64 / 1e9;
        let last = self.bins.len().saturating_sub(1);
        let last_secs = match self.end_ns {
            Some(end) if (end / self.bin_width_ns) as usize == last => {
                let into_bin = end - last as u64 * self.bin_width_ns;
                if into_bin == 0 {
                    full_secs
                } else {
                    into_bin as f64 / 1e9
                }
            }
            _ => full_secs,
        };
        self.series()
            .into_iter()
            .enumerate()
            .map(|(i, (t, bytes))| {
                let secs = if i == last { last_secs } else { full_secs };
                (t, bytes * 8.0 / 1e6 / secs)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_tracks_mean_min_max() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), None);
        for x in [3.0, 1.0, 2.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), Some(2.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut e = Ecdf::from_samples((1..=100).map(|i| i as f64).collect());
        assert_eq!(e.percentile(50.0), Some(50.0));
        assert_eq!(e.percentile(99.0), Some(99.0));
        assert_eq!(e.percentile(100.0), Some(100.0));
        assert_eq!(e.percentile(1.0), Some(1.0));
        assert_eq!(e.percentile(0.0), Some(1.0));
    }

    #[test]
    fn cdf_at_counts_fraction() {
        let mut e = Ecdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf_at(0.5), 0.0);
        assert_eq!(e.cdf_at(2.0), 0.5);
        assert_eq!(e.cdf_at(10.0), 1.0);
    }

    #[test]
    fn cdf_and_ccdf_are_complementary() {
        let mut e = Ecdf::from_samples(vec![5.0, 1.0, 3.0]);
        let cdf = e.cdf_series();
        let ccdf = e.ccdf_series();
        for ((xa, pa), (xb, pb)) in cdf.iter().zip(ccdf.iter()) {
            assert_eq!(xa, xb);
            assert!((pa + pb - 100.0).abs() < 1e-9);
        }
        // Adding a sample after reading still works.
        e.add(2.0);
        assert_eq!(e.len(), 4);
        assert_eq!(e.median(), Some(2.0));
    }

    #[test]
    fn interleaved_adds_and_queries_merge_correctly() {
        // Exercises the sorted-run + pending-tail merge: every query must
        // see all samples added so far, in order, across repeated rounds.
        let mut e = Ecdf::new();
        let mut reference: Vec<f64> = Vec::new();
        for round in 0..5 {
            for k in 0..20 {
                // A scattered, partly descending pattern.
                let x = ((k * 37 + round * 11) % 50) as f64 - 10.0;
                e.add(x);
                reference.push(x);
            }
            reference.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(e.len(), reference.len());
            assert_eq!(e.sorted(), &reference[..]);
            // Nearest-rank median: element at rank ceil(n/2).
            let mid = reference[reference.len().div_ceil(2) - 1];
            assert_eq!(e.median(), Some(mid));
            let mean = reference.iter().sum::<f64>() / reference.len() as f64;
            assert!((e.mean().unwrap() - mean).abs() < 1e-12);
        }
        // NaN / infinite samples are still filtered out via `add`.
        e.add(f64::NAN);
        e.add(f64::INFINITY);
        assert_eq!(e.len(), reference.len());
    }

    #[test]
    fn time_binned_throughput() {
        let mut tb = TimeBinned::new(60_000_000); // 60 ms bins
        tb.add(0, 7500.0); // 7.5 KB in first bin
        tb.add(59_999_999, 7500.0);
        tb.add(60_000_000, 1500.0);
        let mbps = tb.as_mbps();
        // 15 KB in 60 ms = 2 Mbit/s.
        assert!((mbps[0].1 - 2.0).abs() < 1e-9, "{:?}", mbps);
        assert!((mbps[1].1 - 0.2).abs() < 1e-9);
    }

    #[test]
    fn time_binned_close_scales_final_partial_bin() {
        let mut tb = TimeBinned::new(60_000_000);
        tb.add(0, 7500.0);
        tb.add(60_000_000, 1500.0);
        // The flow completes 15 ms into the second bin: 1.5 KB over 15 ms
        // is 0.8 Mbit/s, not the 0.2 Mbit/s a full-width average reports.
        tb.close_at(75_000_000);
        let mbps = tb.as_mbps();
        assert!((mbps[0].1 - 1.0).abs() < 1e-9, "{:?}", mbps);
        assert!((mbps[1].1 - 0.8).abs() < 1e-9, "{:?}", mbps);
        // Closing exactly on a later bin boundary leaves earlier bins full
        // width, and a close in a bin that got no samples changes nothing.
        let mut tb2 = TimeBinned::new(60_000_000);
        tb2.add(0, 7500.0);
        tb2.close_at(60_000_000);
        assert!((tb2.as_mbps()[0].1 - 1.0).abs() < 1e-9);
    }
}

//! Versioned binary snapshot codec for engine checkpoint/restore.
//!
//! The open-loop service mode (`repro weather`) periodically serializes the
//! full dynamic state of a simulation — wheel, arena, links, hosts, RNG —
//! so a 24-hour run can be killed at an arbitrary checkpoint and resumed
//! with *byte-identical* output. The codec here is deliberately dumb:
//! little-endian fixed-width integers, length-prefixed sequences, `f64` as
//! IEEE-754 bits, and explicit section magics so a reader that drifts out
//! of phase with its writer fails loudly at the next section boundary
//! instead of silently misreading state.
//!
//! Versioning rules (see DESIGN.md "Open-loop service mode"):
//!
//! * The file-level header is `(magic, version)`. A reader refuses any
//!   version it does not know — snapshots are *not* forward-compatible.
//! * Any change to the byte layout of any section bumps
//!   [`SNAP_VERSION`]. There is no per-section versioning: snapshots are
//!   short-lived artifacts of one binary, not an archival format.
//! * Restoring validates the topology-independent scalars it can check
//!   (link counts, payload tags) and panics/errors on mismatch rather
//!   than limping on.

use std::fmt;

/// Snapshot format version. Bump on ANY layout change.
pub const SNAP_VERSION: u32 = 1;

/// File-level magic: "HBSN" (Halfback SNapshot).
pub const SNAP_MAGIC: u32 = 0x4842_534E;

/// Decode-side failure: truncated input, wrong magic, unknown tag, or a
/// snapshot that does not match the rebuilt topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// Input ended before the expected field.
    Eof {
        /// Byte offset at which the read was attempted.
        at: usize,
        /// How many bytes the field needed.
        wanted: usize,
    },
    /// A section or file magic did not match.
    Magic {
        /// The magic the reader expected.
        expected: u32,
        /// The magic actually read.
        got: u32,
    },
    /// An enum tag byte was out of range for the type named.
    Tag {
        /// Type being decoded.
        ty: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// The snapshot's format version is not supported by this binary.
    Version {
        /// Version found in the header.
        got: u32,
    },
    /// The snapshot describes state this codec version cannot carry (e.g.
    /// faulted links, non-drop-tail queues) or that contradicts the
    /// rebuilt topology.
    Unsupported(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Eof { at, wanted } => {
                write!(
                    f,
                    "snapshot truncated: {wanted} bytes wanted at offset {at}"
                )
            }
            SnapError::Magic { expected, got } => write!(
                f,
                "snapshot section magic mismatch: expected {expected:#010x}, got {got:#010x}"
            ),
            SnapError::Tag { ty, tag } => write!(f, "invalid {ty} tag {tag} in snapshot"),
            SnapError::Version { got } => write!(
                f,
                "unsupported snapshot version {got} (this binary reads {SNAP_VERSION})"
            ),
            SnapError::Unsupported(what) => write!(f, "snapshot cannot carry this state: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only snapshot writer over an owned byte buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// Consume the writer and return the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a section magic (little-endian `u32`).
    pub fn magic(&mut self, m: u32) {
        self.u32(m);
    }

    /// Write one byte.
    pub fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Write a bool as one byte.
    pub fn bool(&mut self, x: bool) {
        self.buf.push(x as u8);
    }

    /// Write a little-endian `u32`.
    pub fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Write a `usize` as a `u64`.
    pub fn usize(&mut self, x: usize) {
        self.u64(x as u64);
    }

    /// Write an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }

    /// Write a length-prefixed byte slice.
    pub fn bytes(&mut self, xs: &[u8]) {
        self.usize(xs.len());
        self.buf.extend_from_slice(xs);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

/// Sequential snapshot reader over a borrowed byte slice.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Eof {
                at: self.pos,
                wanted: n,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool (one byte; any nonzero is `true`).
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        Ok(self.u8()? != 0)
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a `usize` written by [`SnapWriter::usize`].
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        Ok(self.u64()? as usize)
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| SnapError::Unsupported("non-UTF-8 string in snapshot".into()))
    }

    /// Read a `u32` and require it to equal `expected`.
    pub fn expect_magic(&mut self, expected: u32) -> Result<(), SnapError> {
        let got = self.u32()?;
        if got != expected {
            return Err(SnapError::Magic { expected, got });
        }
        Ok(())
    }
}

/// Payload types that can ride through an engine snapshot. The `transport`
/// crate implements this for its wire `Header`; unit payloads get a no-op
/// impl so engine-level tests can snapshot too.
pub trait SnapPayload: Sized {
    /// Append this payload's encoding to `w`.
    fn encode(&self, w: &mut SnapWriter);
    /// Decode a payload previously written by [`SnapPayload::encode`].
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

impl SnapPayload for () {
    fn encode(&self, _w: &mut SnapWriter) {}
    fn decode(_r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(())
    }
}

impl SnapPayload for u64 {
    fn encode(&self, w: &mut SnapWriter) {
        w.u64(*self);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.magic(SNAP_MAGIC);
        w.u8(7);
        w.bool(true);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.usize(12345);
        w.f64(-0.0);
        w.f64(f64::INFINITY);
        w.bytes(b"hello");
        w.str("weather");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        r.expect_magic(SNAP_MAGIC).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap(), f64::INFINITY);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.str().unwrap(), "weather");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = SnapWriter::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..4]);
        assert!(matches!(r.u64(), Err(SnapError::Eof { .. })));
    }

    #[test]
    fn magic_mismatch_is_detected() {
        let mut w = SnapWriter::new();
        w.magic(0x1111_2222);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            r.expect_magic(0x3333_4444),
            Err(SnapError::Magic { .. })
        ));
    }
}

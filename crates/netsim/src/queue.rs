//! Router queues.
//!
//! The paper's testbed uses drop-tail FIFO queues sized in bytes (Fig. 4:
//! 115 KB, the sender–receiver BDP; Fig. 10 sweeps 10–600 KB). [`DropTail`]
//! is the workhorse. [`CoDel`] is provided as an extension for the
//! bufferbloat discussion in §6 (AQM is "fully complementary" to Halfback —
//! the ablation bench exercises it).
//!
//! Queues store [`PacketMeta`] — a `Copy` handle-plus-accounting record —
//! not packets: the packet bodies stay parked in the engine's
//! [`PacketArena`](crate::packet::PacketArena), so an enqueue/dequeue cycle
//! moves four words regardless of payload size, and the disciplines are not
//! generic over the payload type.

use crate::packet::PacketMeta;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Statistics kept by every queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets handed to the link.
    pub dequeued: u64,
    /// Packets dropped because the queue was full (or AQM-marked).
    pub dropped: u64,
    /// Bytes dropped.
    pub dropped_bytes: u64,
    /// High-water mark of queued bytes.
    pub max_backlog_bytes: u64,
    /// Packets larger than the byte capacity admitted into an empty queue
    /// (standard drop-tail semantics; prevents sub-MTU buffers from
    /// blackholing every packet).
    pub oversized_admitted: u64,
}

/// Outcome of offering a packet to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Packet was queued.
    Accepted,
    /// Packet was dropped.
    Dropped,
}

/// A queue discipline: accepts packets, releases them in some order,
/// may drop.
pub trait QueueDiscipline: std::fmt::Debug {
    /// Offer a packet at `now`; the queue either keeps it or drops it.
    /// On [`Verdict::Dropped`] the caller still owns the packet (and must
    /// release its arena slot).
    fn enqueue(&mut self, pkt: PacketMeta, now: SimTime) -> Verdict;
    /// Remove the next packet to transmit, if any. Disciplines that drop at
    /// dequeue time (AQM) push the victims into `dropped` — ownership of
    /// those transfers to the caller, which must release their arena slots.
    fn dequeue(&mut self, now: SimTime, dropped: &mut Vec<PacketMeta>) -> Option<PacketMeta>;
    /// Bytes currently queued.
    fn backlog_bytes(&self) -> u64;
    /// Packets currently queued.
    fn len(&self) -> usize;
    /// True when nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Statistics snapshot.
    fn stats(&self) -> QueueStats;
    /// Drop-tail view for the engine snapshot codec. Snapshot v1 only
    /// carries [`DropTail`] queues; disciplines with extra control state
    /// (CoDel) keep the default `None` and make a checkpoint attempt fail
    /// with a clear error instead of silently losing state.
    fn as_drop_tail(&self) -> Option<&DropTail> {
        None
    }
    /// Mutable drop-tail view for restore (see
    /// [`QueueDiscipline::as_drop_tail`]).
    fn as_drop_tail_mut(&mut self) -> Option<&mut DropTail> {
        None
    }
}

/// Byte-limited drop-tail FIFO.
#[derive(Debug)]
pub struct DropTail {
    capacity_bytes: u64,
    backlog_bytes: u64,
    queue: VecDeque<PacketMeta>,
    stats: QueueStats,
}

impl DropTail {
    /// Create a queue holding at most `capacity_bytes` of packets.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "queue capacity must be positive");
        DropTail {
            capacity_bytes,
            backlog_bytes: 0,
            queue: VecDeque::new(),
            stats: QueueStats::default(),
        }
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Queued records front-to-back, for the engine snapshot codec (the
    /// packet bodies live in the arena; the codec serializes them inline).
    pub(crate) fn queued(&self) -> impl Iterator<Item = &PacketMeta> {
        self.queue.iter()
    }

    /// Restore queue contents and statistics from a snapshot. `items` must
    /// be in front-to-back order and carry *current* arena handles (the
    /// codec re-parks bodies and rewrites handles before calling this).
    /// Backlog is recomputed from the items; capacity stays whatever the
    /// topology rebuild configured.
    pub(crate) fn restore(&mut self, items: Vec<PacketMeta>, stats: QueueStats) {
        self.backlog_bytes = items.iter().map(|m| m.size as u64).sum();
        self.queue = items.into();
        self.stats = stats;
    }
}

impl QueueDiscipline for DropTail {
    fn enqueue(&mut self, pkt: PacketMeta, _now: SimTime) -> Verdict {
        let sz = pkt.size as u64;
        if self.backlog_bytes + sz > self.capacity_bytes {
            // A packet bigger than the whole buffer still gets service
            // when the queue is empty — otherwise a capacity below one
            // MTU would silently blackhole every packet forever.
            if self.queue.is_empty() {
                self.stats.oversized_admitted += 1;
            } else {
                self.stats.dropped += 1;
                self.stats.dropped_bytes += sz;
                return Verdict::Dropped;
            }
        }
        self.backlog_bytes += sz;
        self.stats.enqueued += 1;
        self.stats.max_backlog_bytes = self.stats.max_backlog_bytes.max(self.backlog_bytes);
        self.queue.push_back(pkt);
        Verdict::Accepted
    }

    fn dequeue(&mut self, _now: SimTime, _dropped: &mut Vec<PacketMeta>) -> Option<PacketMeta> {
        let pkt = self.queue.pop_front()?;
        self.backlog_bytes -= pkt.size as u64;
        self.stats.dequeued += 1;
        Some(pkt)
    }

    fn backlog_bytes(&self) -> u64 {
        self.backlog_bytes
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }

    fn as_drop_tail(&self) -> Option<&DropTail> {
        Some(self)
    }

    fn as_drop_tail_mut(&mut self) -> Option<&mut DropTail> {
        Some(self)
    }
}

/// CoDel active queue management (simplified, per the CoDel paper's
/// pseudocode): packets carry an enqueue timestamp; if the *sojourn time*
/// of dequeued packets stays above `target` for at least `interval`, CoDel
/// enters a dropping state, dropping one packet and shrinking the next drop
/// interval by `1/sqrt(count)`.
#[derive(Debug)]
pub struct CoDel {
    capacity_bytes: u64,
    target: SimDuration,
    interval: SimDuration,
    backlog_bytes: u64,
    queue: VecDeque<(PacketMeta, SimTime)>,
    stats: QueueStats,
    // CoDel state
    first_above_time: Option<SimTime>,
    drop_next: SimTime,
    drop_count: u32,
    dropping: bool,
}

impl CoDel {
    /// Create a CoDel queue with the standard 5 ms target / 100 ms interval.
    pub fn new(capacity_bytes: u64) -> Self {
        Self::with_params(
            capacity_bytes,
            SimDuration::from_millis(5),
            SimDuration::from_millis(100),
        )
    }

    /// Create a CoDel queue with explicit target sojourn time and interval.
    pub fn with_params(capacity_bytes: u64, target: SimDuration, interval: SimDuration) -> Self {
        assert!(capacity_bytes > 0, "queue capacity must be positive");
        CoDel {
            capacity_bytes,
            target,
            interval,
            backlog_bytes: 0,
            queue: VecDeque::new(),
            stats: QueueStats::default(),
            first_above_time: None,
            drop_next: SimTime::ZERO,
            drop_count: 0,
            dropping: false,
        }
    }

    fn control_law(&self, t: SimTime) -> SimTime {
        let shrink = (self.drop_count.max(1) as f64).sqrt();
        t + self.interval.mul_f64(1.0 / shrink)
    }

    /// Pop head and decide whether its sojourn time keeps us "above target".
    fn do_dequeue(&mut self, now: SimTime) -> (Option<PacketMeta>, bool) {
        match self.queue.pop_front() {
            None => {
                self.first_above_time = None;
                (None, false)
            }
            Some((pkt, enq)) => {
                self.backlog_bytes -= pkt.size as u64;
                let sojourn = now.saturating_since(enq);
                if sojourn < self.target || self.backlog_bytes < 1500 {
                    self.first_above_time = None;
                    (Some(pkt), false)
                } else {
                    let fat = *self.first_above_time.get_or_insert(now + self.interval);
                    (Some(pkt), now >= fat)
                }
            }
        }
    }

    /// Account a dequeue-time drop and surrender the victim to the caller.
    fn drop_victim(&mut self, victim: PacketMeta, dropped: &mut Vec<PacketMeta>) {
        self.stats.dropped += 1;
        self.stats.dropped_bytes += victim.size as u64;
        dropped.push(victim);
    }
}

impl QueueDiscipline for CoDel {
    fn enqueue(&mut self, pkt: PacketMeta, now: SimTime) -> Verdict {
        let sz = pkt.size as u64;
        if self.backlog_bytes + sz > self.capacity_bytes {
            self.stats.dropped += 1;
            self.stats.dropped_bytes += sz;
            return Verdict::Dropped;
        }
        self.backlog_bytes += sz;
        self.stats.enqueued += 1;
        self.stats.max_backlog_bytes = self.stats.max_backlog_bytes.max(self.backlog_bytes);
        self.queue.push_back((pkt, now));
        Verdict::Accepted
    }

    fn dequeue(&mut self, now: SimTime, dropped: &mut Vec<PacketMeta>) -> Option<PacketMeta> {
        let (mut pkt, mut above) = self.do_dequeue(now);
        if self.dropping {
            if !above {
                self.dropping = false;
            } else {
                while self.dropping && now >= self.drop_next {
                    // Drop the packet we hold and pull the next one.
                    if let Some(victim) = pkt.take() {
                        self.drop_victim(victim, dropped);
                    }
                    self.drop_count += 1;
                    let (next, still_above) = self.do_dequeue(now);
                    pkt = next;
                    above = still_above;
                    if !above {
                        self.dropping = false;
                    } else {
                        self.drop_next = self.control_law(self.drop_next);
                    }
                }
            }
        } else if above
            && (now.saturating_since(self.drop_next) < self.interval || self.drop_count > 0)
        {
            // Enter dropping state.
            if let Some(victim) = pkt.take() {
                self.drop_victim(victim, dropped);
            }
            let (next, _) = self.do_dequeue(now);
            pkt = next;
            self.dropping = true;
            self.drop_count = if self.drop_count > 2 {
                self.drop_count - 2
            } else {
                1
            };
            self.drop_next = self.control_law(now);
        } else if above {
            if let Some(victim) = pkt.take() {
                self.drop_victim(victim, dropped);
            }
            let (next, _) = self.do_dequeue(now);
            pkt = next;
            self.dropping = true;
            self.drop_count = 1;
            self.drop_next = self.control_law(now);
        }
        if pkt.is_some() {
            self.stats.dequeued += 1;
        }
        pkt
    }

    fn backlog_bytes(&self) -> u64 {
        self.backlog_bytes
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId, Packet, PacketArena};

    /// Park a packet of `size` bytes in `arena` and return its queue record.
    fn pkt(arena: &mut PacketArena<u8>, size: u32) -> PacketMeta {
        let h = arena.alloc(Packet::new(FlowId(0), NodeId(0), NodeId(1), size, 0));
        arena.meta(h)
    }

    #[test]
    fn droptail_fifo_order() {
        let mut arena = PacketArena::new();
        let mut none = Vec::new();
        let mut q = DropTail::new(10_000);
        let mut handles = Vec::new();
        for _ in 0..3 {
            let m = pkt(&mut arena, 1000);
            handles.push(m.handle);
            assert_eq!(q.enqueue(m, SimTime::ZERO), Verdict::Accepted);
        }
        for h in handles {
            assert_eq!(q.dequeue(SimTime::ZERO, &mut none).unwrap().handle, h);
        }
        assert!(q.dequeue(SimTime::ZERO, &mut none).is_none());
        assert!(none.is_empty(), "drop-tail never drops at dequeue");
    }

    #[test]
    fn droptail_drops_when_full() {
        let mut arena = PacketArena::new();
        let mut none = Vec::new();
        let mut q = DropTail::new(2500);
        assert_eq!(
            q.enqueue(pkt(&mut arena, 1500), SimTime::ZERO),
            Verdict::Accepted
        );
        assert_eq!(
            q.enqueue(pkt(&mut arena, 1000), SimTime::ZERO),
            Verdict::Accepted
        );
        assert_eq!(
            q.enqueue(pkt(&mut arena, 1), SimTime::ZERO),
            Verdict::Dropped
        );
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.backlog_bytes(), 2500);
        // Draining frees space again.
        q.dequeue(SimTime::ZERO, &mut none).unwrap();
        assert_eq!(
            q.enqueue(pkt(&mut arena, 1500), SimTime::ZERO),
            Verdict::Accepted
        );
    }

    #[test]
    fn droptail_byte_conservation() {
        let mut arena = PacketArena::new();
        let mut none = Vec::new();
        let mut q = DropTail::new(100_000);
        let mut in_bytes = 0u64;
        for i in 0..50 {
            let size = 100 + (i * 37) % 1400;
            if q.enqueue(pkt(&mut arena, size), SimTime::ZERO) == Verdict::Accepted {
                in_bytes += size as u64;
            }
        }
        let mut out_bytes = 0u64;
        while let Some(p) = q.dequeue(SimTime::ZERO, &mut none) {
            out_bytes += p.size as u64;
        }
        assert_eq!(in_bytes, out_bytes);
        assert_eq!(q.backlog_bytes(), 0);
    }

    #[test]
    fn droptail_high_water_mark() {
        let mut arena = PacketArena::new();
        let mut none = Vec::new();
        let mut q = DropTail::new(5000);
        q.enqueue(pkt(&mut arena, 1500), SimTime::ZERO);
        q.enqueue(pkt(&mut arena, 1500), SimTime::ZERO);
        q.dequeue(SimTime::ZERO, &mut none);
        q.enqueue(pkt(&mut arena, 500), SimTime::ZERO);
        assert_eq!(q.stats().max_backlog_bytes, 3000);
    }

    #[test]
    fn droptail_admits_oversized_packet_into_empty_queue() {
        // Capacity below one MTU: without the empty-queue exception every
        // 1500-byte packet would be dropped and the link would blackhole.
        let mut arena = PacketArena::new();
        let mut none = Vec::new();
        let mut q = DropTail::new(1000);
        assert_eq!(
            q.enqueue(pkt(&mut arena, 1500), SimTime::ZERO),
            Verdict::Accepted
        );
        assert_eq!(q.stats().oversized_admitted, 1);
        assert_eq!(q.backlog_bytes(), 1500);
        // A second packet sees a non-empty (over-full) queue and is dropped.
        assert_eq!(
            q.enqueue(pkt(&mut arena, 100), SimTime::ZERO),
            Verdict::Dropped
        );
        assert_eq!(q.stats().dropped, 1);
        // Draining restores service; the next oversized packet is admitted.
        assert_eq!(q.dequeue(SimTime::ZERO, &mut none).unwrap().size, 1500);
        assert_eq!(
            q.enqueue(pkt(&mut arena, 1500), SimTime::ZERO),
            Verdict::Accepted
        );
        assert_eq!(q.stats().oversized_admitted, 2);
        assert_eq!(q.stats().enqueued, 2);
    }

    #[test]
    fn codel_passes_traffic_below_target() {
        let mut arena = PacketArena::new();
        let mut drops = Vec::new();
        let mut q = CoDel::new(100_000);
        let mut t = SimTime::ZERO;
        // Light load: every packet dequeued 1 ms after enqueue (< 5 ms target).
        for _ in 0..100 {
            q.enqueue(pkt(&mut arena, 1500), t);
            t += SimDuration::from_millis(1);
            assert!(q.dequeue(t, &mut drops).is_some());
        }
        assert_eq!(q.stats().dropped, 0);
        assert!(drops.is_empty());
    }

    #[test]
    fn codel_drops_under_sustained_standing_queue() {
        let mut arena = PacketArena::new();
        let mut drops = Vec::new();
        let mut q = CoDel::new(1_000_000);
        // Build a large standing queue, then drain slowly: sojourn times far
        // above target for far longer than the interval.
        for _ in 0..400 {
            q.enqueue(pkt(&mut arena, 1500), SimTime::ZERO);
        }
        let mut t = SimTime::from_nanos(0);
        let mut got = 0;
        for _ in 0..400 {
            t += SimDuration::from_millis(10);
            if q.dequeue(t, &mut drops).is_some() {
                got += 1;
            }
            if q.is_empty() {
                break;
            }
        }
        assert!(q.stats().dropped > 0, "CoDel never dropped: got {got}");
        // Every dequeue-time victim was surrendered to the caller, and the
        // ledger balances: enqueued = dequeued + dropped + still queued.
        assert_eq!(drops.len() as u64, q.stats().dropped);
        let s = q.stats();
        assert_eq!(s.enqueued, s.dequeued + s.dropped + q.len() as u64);
    }
}

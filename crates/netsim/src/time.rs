//! Virtual time for the discrete-event simulator.
//!
//! All simulation time is kept in integer nanoseconds ([`SimTime`] /
//! [`SimDuration`]) so event ordering is exact and runs are reproducible
//! bit-for-bit. Link speeds are expressed as [`Rate`] in bits per second;
//! serialization delays are computed in integer arithmetic with rounding up
//! (a packet is never done transmitting early).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any event a simulation will ever schedule.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the start of the run, as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`. Saturates at zero if `earlier`
    /// is in the future (callers compare clock snapshots; never panic).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (for workload generators; the result
    /// is still an exact integer nanosecond count).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative: {s}"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float (reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer multiplication, saturating.
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a float factor (used by RTO backoff and estimators).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(
            k.is_finite() && k >= 0.0,
            "scale must be finite and non-negative: {k}"
        );
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// Element-wise maximum.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Element-wise minimum.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// A transmission rate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rate(u64);

impl Rate {
    /// Construct from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        Rate(bps)
    }

    /// Construct from kilobits per second (10^3 bits).
    pub const fn from_kbps(kbps: u64) -> Self {
        Rate(kbps * 1_000)
    }

    /// Construct from megabits per second (10^6 bits).
    pub const fn from_mbps(mbps: u64) -> Self {
        Rate(mbps * 1_000_000)
    }

    /// Construct from gigabits per second (10^9 bits).
    pub const fn from_gbps(gbps: u64) -> Self {
        Rate(gbps * 1_000_000_000)
    }

    /// Bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Megabits per second as a float (reporting only).
    pub fn as_mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time to serialize `bytes` onto a wire of this rate, rounded up so a
    /// packet never finishes early.
    pub fn transmission_time(self, bytes: u32) -> SimDuration {
        assert!(self.0 > 0, "cannot transmit on a zero-rate link");
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(self.0 as u128);
        SimDuration(ns as u64)
    }

    /// How many bytes this rate carries in `dur` (rounded down).
    pub fn bytes_in(self, dur: SimDuration) -> u64 {
        ((self.0 as u128 * dur.0 as u128) / (8 * 1_000_000_000)) as u64
    }

    /// The rate that transmits `bytes` in `dur` (rounded up). Returns `None`
    /// for a zero duration.
    pub fn for_bytes_in(bytes: u64, dur: SimDuration) -> Option<Rate> {
        if dur.is_zero() {
            return None;
        }
        let bits = bytes as u128 * 8;
        let bps = (bits * 1_000_000_000).div_ceil(dur.0 as u128);
        Some(Rate(bps.min(u64::MAX as u128) as u64))
    }

    /// Scale by a float factor (used for utilization targeting).
    pub fn mul_f64(self, k: f64) -> Rate {
        assert!(k.is_finite() && k >= 0.0);
        Rate((self.0 as f64 * k).round() as u64)
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}Mbps", self.as_mbps_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_500_000);
        let d = SimDuration::from_millis(2);
        assert_eq!((t + d).as_nanos(), 3_500_000);
        assert_eq!((t + d).saturating_since(t), d);
        assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
        assert_eq!((t + d).checked_since(t), Some(d));
        assert_eq!(t.checked_since(t + d), None);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.25),
            SimDuration::from_millis(250)
        );
    }

    #[test]
    fn transmission_time_matches_hand_calculation() {
        // 1500 bytes at 15 Mbps = 12_000 bits / 15e6 bps = 800 microseconds.
        let r = Rate::from_mbps(15);
        assert_eq!(r.transmission_time(1500), SimDuration::from_micros(800));
        // 1 Gbps: 1500B = 12 microseconds.
        assert_eq!(
            Rate::from_gbps(1).transmission_time(1500),
            SimDuration::from_micros(12)
        );
    }

    #[test]
    fn transmission_time_rounds_up() {
        // 1 byte at 3 bps: 8/3 s = 2.666..s -> must round up.
        let r = Rate::from_bps(3);
        assert_eq!(r.transmission_time(1).as_nanos(), 2_666_666_667);
    }

    #[test]
    fn bytes_in_inverts_transmission_time() {
        let r = Rate::from_mbps(15);
        let d = r.transmission_time(100_000);
        let b = r.bytes_in(d);
        assert!((100_000..=100_001).contains(&b), "got {b}");
    }

    #[test]
    fn rate_for_bytes_in_is_sufficient() {
        // Pacing 100 KB over 60 ms must finish within 60 ms.
        let dur = SimDuration::from_millis(60);
        let rate = Rate::for_bytes_in(100_000, dur).unwrap();
        assert!(rate.transmission_time(100_000) <= dur + SimDuration::from_nanos(1));
        assert_eq!(Rate::for_bytes_in(100, SimDuration::ZERO), None);
    }

    #[test]
    fn saturating_behaviour() {
        let big = SimDuration::from_nanos(u64::MAX);
        assert_eq!(big + big, big);
        assert_eq!(SimTime::FAR_FUTURE + big, SimTime::FAR_FUTURE);
        assert_eq!(big.saturating_mul(3), big);
    }

    #[test]
    #[should_panic]
    fn negative_float_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}

//! The discrete-event engine.
//!
//! Events are totally ordered by `(time, insertion sequence)`: two events at
//! the same instant fire in the order they were scheduled, so no hash-map
//! iteration order or floating-point comparison can perturb a run. All
//! randomness comes from the engine's seeded [`SimRng`].
//!
//! The queue behind the clock is a bucketed calendar queue (`eventq`
//! module) rather than a binary heap: the
//! near future lives in fixed-width time buckets consumed in place, the far
//! future in a small overflow heap. Timer liveness is tracked by
//! generation-stamped slots instead of a hash set, so arm/cancel/fire are
//! all O(1) and allocation-free. Both structures preserve the exact
//! `(time, seq)` total order — the swap is observationally invisible, which
//! the golden-output regression tests in `scenarios` enforce byte-for-byte.

use crate::eventq::{EventKind, EventQueue, TimerSlots};
use crate::faults::{FaultSpec, FaultState};
use crate::link::{LinkSpec, LinkState, LinkStats};
use crate::node::{Node, TimerId};
use crate::packet::{
    LinkId, NodeId, Packet, PacketArena, PacketHandle, PacketId, PacketMeta, Payload,
};
use crate::queue::{QueueDiscipline, QueueStats, Verdict};
use crate::rng::SimRng;
use crate::snap::{SnapError, SnapPayload, SnapReader, SnapWriter, SNAP_MAGIC, SNAP_VERSION};
use crate::time::{SimDuration, SimTime};

/// What happened on the wire — delivered to an optional trace hook.
///
/// Ordering contract: every [`LinkStats`]/queue counter that accounts for an
/// event is incremented *immediately before* the event is emitted, with
/// nothing observable in between (atomic-in-order). A tracer therefore sees
/// stats that already include the event it is being told about, at every
/// event boundary — `netsim/tests/conservation.rs` asserts this in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields (link/packet/size) are self-describing
pub enum TraceEvent {
    /// A packet started serializing onto a link.
    TxStart {
        link: LinkId,
        packet: PacketId,
        size: u32,
    },
    /// A packet was dropped by a link's queue (congestion loss).
    QueueDrop {
        link: LinkId,
        packet: PacketId,
        size: u32,
    },
    /// A packet was dropped by a link's random loss process (wire loss).
    WireDrop {
        link: LinkId,
        packet: PacketId,
        size: u32,
    },
    /// A packet arrived at a node.
    Deliver {
        node: NodeId,
        packet: PacketId,
        size: u32,
    },
    /// A packet was rejected at offer time by a fault down-window.
    FaultDrop {
        link: LinkId,
        packet: PacketId,
        size: u32,
    },
    /// A serialized packet was swallowed by a fault blackhole window.
    Blackhole {
        link: LinkId,
        packet: PacketId,
        size: u32,
    },
    /// Fault duplication scheduled a second delivery of this packet.
    Duplicate {
        link: LinkId,
        packet: PacketId,
        size: u32,
    },
    /// A corrupted packet reached a node and was dropped there (checksum
    /// failure) instead of being dispatched.
    CorruptDrop {
        node: NodeId,
        packet: PacketId,
        size: u32,
    },
}

/// A trace callback.
pub type Tracer = Box<dyn FnMut(SimTime, &TraceEvent)>;

/// The parts of the engine that remain borrowable while a node is being
/// dispatched (the node itself is temporarily moved out of the node table).
pub struct EngineCore<P: Payload> {
    now: SimTime,
    seq: u64,
    events: EventQueue,
    links: Vec<LinkState>,
    /// Bodies of every packet in flight or queued; events and link queues
    /// hold generation-stamped handles into this slab.
    packets: PacketArena<P>,
    /// Reusable scratch for dequeue-time (AQM) drop victims.
    queue_drop_scratch: Vec<PacketMeta>,
    rng: SimRng,
    timers: TimerSlots,
    cancelled_pending: u64,
    next_packet_id: u64,
    tracer: Option<Tracer>,
    corrupt_dropped: u64,
    /// Total events dispatched (for runaway detection and perf reporting).
    pub events_processed: u64,
}

impl<P: Payload> EngineCore<P> {
    fn push(&mut self, at: SimTime, kind: EventKind) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.events
            .push(crate::eventq::EventEntry { at, seq, kind });
    }

    fn trace(&mut self, ev: TraceEvent) {
        if let Some(t) = &mut self.tracer {
            t(self.now, &ev);
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The engine's random number generator.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Transmit `pkt` on `link`. The packet gets a fresh [`PacketId`] and its
    /// `sent_at` stamped. If the link is busy the packet is offered to the
    /// link's queue (and may be dropped).
    pub fn send_on(&mut self, link: LinkId, mut pkt: Packet<P>) {
        pkt.id = PacketId(self.next_packet_id);
        self.next_packet_id += 1;
        pkt.sent_at = self.now;
        self.forward_on(link, pkt);
    }

    /// Transmit a packet that already has an id (router forwarding path).
    pub fn forward_on(&mut self, link: LinkId, pkt: Packet<P>) {
        let now = self.now;
        let l = &mut self.links[link.0 as usize];
        l.stats.offered += 1;
        // `plain` links have no fault state, so the step/down-window checks
        // are no-ops by construction and skipping them is unobservable.
        if !l.plain {
            l.apply_fault_steps(now);
            // A down link rejects the packet at offer time (no carrier); a
            // packet already serializing completes (store-and-forward).
            if l.faults.as_ref().is_some_and(|f| f.is_down(now)) {
                l.stats.down_dropped += 1;
                let (id, size) = (pkt.id, pkt.size);
                self.trace(TraceEvent::FaultDrop {
                    link,
                    packet: id,
                    size,
                });
                return;
            }
        }
        let (id, flow, size) = (pkt.id, pkt.flow, pkt.size);
        let h = self.packets.alloc(pkt);
        let meta = PacketMeta {
            handle: h,
            id,
            flow,
            size,
        };
        let l = &mut self.links[link.0 as usize];
        if l.busy {
            if l.queue.enqueue(meta, now) == Verdict::Dropped {
                self.packets.free(h);
                self.trace(TraceEvent::QueueDrop {
                    link,
                    packet: meta.id,
                    size: meta.size,
                });
            }
        } else {
            l.busy = true;
            let done = now + l.tx_time(meta.size);
            self.trace(TraceEvent::TxStart {
                link,
                packet: meta.id,
                size: meta.size,
            });
            self.push(done, EventKind::LinkTxDone { link, pkt: h });
        }
    }

    /// Pull the next packet (if any) from `link`'s queue onto the wire, or
    /// mark the link idle. AQM disciplines may surrender dequeue-time drop
    /// victims here; those are accounted in [`QueueStats`] by the queue
    /// itself and emit no trace event — the engine only releases their
    /// arena slots.
    fn pump_link(&mut self, link: LinkId) {
        let now = self.now;
        let mut dropped = std::mem::take(&mut self.queue_drop_scratch);
        let l = &mut self.links[link.0 as usize];
        match l.queue.dequeue(now, &mut dropped) {
            Some(next) => {
                let done = now + l.tx_time(next.size);
                self.trace(TraceEvent::TxStart {
                    link,
                    packet: next.id,
                    size: next.size,
                });
                self.push(
                    done,
                    EventKind::LinkTxDone {
                        link,
                        pkt: next.handle,
                    },
                );
            }
            None => {
                l.busy = false;
            }
        }
        for victim in dropped.drain(..) {
            self.packets.free(victim.handle);
        }
        self.queue_drop_scratch = dropped;
    }

    /// Schedule a timer for `node`, `after` from now. Returns an id usable
    /// with [`EngineCore::cancel_timer`].
    pub fn set_timer(&mut self, node: NodeId, after: SimDuration, token: u64) -> TimerId {
        self.set_timer_at(node, self.now + after, token)
    }

    /// Schedule a timer at an absolute instant.
    pub fn set_timer_at(&mut self, node: NodeId, at: SimTime, token: u64) -> TimerId {
        let id = self.timers.arm();
        self.push(at.max(self.now), EventKind::Timer { node, id, token });
        id
    }

    /// Cancel a timer; a timer that already fired is ignored.
    ///
    /// Cancellation is lazy (the queue entry stays until its scheduled time,
    /// failing its generation check when popped), but the engine compacts
    /// the queue when dead timer entries dominate — without this,
    /// retransmission-storm scenarios that re-arm their RTO on every ACK
    /// accumulate gigabytes of stale entries scheduled up to 60 s in the
    /// virtual future.
    pub fn cancel_timer(&mut self, id: TimerId) {
        if self.timers.disarm(id) {
            self.cancelled_pending += 1;
            self.maybe_compact();
        }
    }

    fn maybe_compact(&mut self) {
        if self.cancelled_pending < 4096 || self.cancelled_pending * 2 < self.events.len() as u64 {
            return;
        }
        let timers = &self.timers;
        self.events.retain(|e| match &e.kind {
            EventKind::Timer { id, .. } => timers.is_live(*id),
            _ => true,
        });
        self.cancelled_pending = 0;
    }

    /// Number of events currently pending in the queue (live and stale).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Number of currently armed (uncancelled, unfired) timers.
    pub fn live_timer_count(&self) -> usize {
        self.timers.live()
    }

    /// Statistics for a link's queue.
    pub fn queue_stats(&self, link: LinkId) -> QueueStats {
        self.links[link.0 as usize].queue_stats()
    }

    /// Transmission statistics for a link.
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        self.links[link.0 as usize].stats
    }

    /// Bytes currently queued at a link.
    pub fn link_backlog(&self, link: LinkId) -> u64 {
        self.links[link.0 as usize].queue.backlog_bytes()
    }

    /// The serialization delay of the current backlog on a link.
    pub fn link_backlog_delay(&self, link: LinkId) -> SimDuration {
        self.links[link.0 as usize].backlog_delay()
    }

    /// Corrupted packets dropped at delivery (checksum failures), all nodes.
    pub fn corrupt_dropped(&self) -> u64 {
        self.corrupt_dropped
    }

    /// Packets currently parked in the arena (on the wire or queued).
    pub fn live_packets(&self) -> usize {
        self.packets.live()
    }

    /// High-water mark of simultaneously parked packets (arena slots ever
    /// allocated — growth tests pin this).
    pub fn packet_arena_capacity(&self) -> usize {
        self.packets.capacity()
    }

    /// Number of links in the topology (oracles iterate every link).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Schedule `pkt` to arrive at `node` at absolute time `at`, accounted
    /// to `link` (which must be an ingress stub link of this engine's
    /// topology — its `delivered` counter is bumped at arrival, closing the
    /// wire-side conservation books across a partition boundary).
    ///
    /// This is the shard driver's injection point: the packet body crossed
    /// the boundary by value, its source-side arena slot was released at
    /// the portal, and it gets a fresh slot here. The event takes the next
    /// local `seq`, so injection order decides the tiebreak among
    /// same-instant arrivals — callers must inject in a canonical order
    /// (see `crate::shard`). Panics if `at` is in this engine's past.
    pub fn inject_arrival(&mut self, at: SimTime, node: NodeId, link: LinkId, pkt: Packet<P>) {
        assert!(
            at >= self.now,
            "cross-shard arrival in the past: {at} < {} (lookahead violated)",
            self.now
        );
        assert!(
            (link.0 as usize) < self.links.len(),
            "inject_arrival: no such link {link}"
        );
        let h = self.packets.alloc(pkt);
        self.push(at, EventKind::Deliver { node, link, pkt: h });
    }
}

/// Section magic for the engine-scalar portion of a snapshot.
const SEC_ENGINE: u32 = 0x4842_0001;
/// Section magic for the per-link portion of a snapshot.
const SEC_LINKS: u32 = 0x4842_0002;

impl<P: Payload + SnapPayload> EngineCore<P> {
    fn write_packet(w: &mut SnapWriter, pkt: &Packet<P>) {
        w.u64(pkt.id.0);
        w.u64(pkt.flow.0);
        w.u32(pkt.src.0);
        w.u32(pkt.dst.0);
        w.u32(pkt.size);
        w.u64(pkt.sent_at.as_nanos());
        w.bool(pkt.corrupted);
        pkt.payload.encode(w);
    }

    fn read_packet(r: &mut SnapReader<'_>) -> Result<Packet<P>, SnapError> {
        let id = PacketId(r.u64()?);
        let flow = crate::packet::FlowId(r.u64()?);
        let src = NodeId(r.u32()?);
        let dst = NodeId(r.u32()?);
        let size = r.u32()?;
        let sent_at = SimTime::from_nanos(r.u64()?);
        let corrupted = r.bool()?;
        let payload = P::decode(r)?;
        let mut pkt = Packet::new(flow, src, dst, size, payload);
        pkt.id = id;
        pkt.sent_at = sent_at;
        pkt.corrupted = corrupted;
        Ok(pkt)
    }

    fn write_link_stats(w: &mut SnapWriter, s: &LinkStats) {
        w.u64(s.offered);
        w.u64(s.tx_packets);
        w.u64(s.tx_bytes);
        w.u64(s.wire_lost);
        w.u64(s.down_dropped);
        w.u64(s.blackholed);
        w.u64(s.corrupt_marked);
        w.u64(s.duplicated);
        w.u64(s.delivered);
        w.u64(s.corrupt_dropped);
    }

    fn read_link_stats(r: &mut SnapReader<'_>) -> Result<LinkStats, SnapError> {
        Ok(LinkStats {
            offered: r.u64()?,
            tx_packets: r.u64()?,
            tx_bytes: r.u64()?,
            wire_lost: r.u64()?,
            down_dropped: r.u64()?,
            blackholed: r.u64()?,
            corrupt_marked: r.u64()?,
            duplicated: r.u64()?,
            delivered: r.u64()?,
            corrupt_dropped: r.u64()?,
        })
    }

    fn write_queue_stats(w: &mut SnapWriter, s: &QueueStats) {
        w.u64(s.enqueued);
        w.u64(s.dequeued);
        w.u64(s.dropped);
        w.u64(s.dropped_bytes);
        w.u64(s.max_backlog_bytes);
        w.u64(s.oversized_admitted);
    }

    fn read_queue_stats(r: &mut SnapReader<'_>) -> Result<QueueStats, SnapError> {
        Ok(QueueStats {
            enqueued: r.u64()?,
            dequeued: r.u64()?,
            dropped: r.u64()?,
            dropped_bytes: r.u64()?,
            max_backlog_bytes: r.u64()?,
            oversized_admitted: r.u64()?,
        })
    }

    /// Serialize the engine's full dynamic state: clock, sequence counter,
    /// RNG stream position, timer slot table (bit-exact, including free-list
    /// order), the pending event multiset (with in-flight packet bodies
    /// inlined), and per-link busy/stats/loss/queue state.
    ///
    /// Snapshot v1 refuses links with fault specs or non-drop-tail queues —
    /// the open-loop service mode runs on clean drop-tail paths, and
    /// refusing is safer than silently dropping the extra state.
    ///
    /// Takes `&mut self` because the event queue is drained to its canonical
    /// `(at, seq)`-sorted form and rebuilt; the rebuild is observationally
    /// invisible (pop order depends only on `(at, seq)`), so saving does not
    /// perturb the run.
    pub fn save_snapshot(&mut self, w: &mut SnapWriter) -> Result<(), SnapError> {
        for (i, l) in self.links.iter().enumerate() {
            if l.faults.is_some() {
                return Err(SnapError::Unsupported(format!(
                    "link l{i} has fault injection installed (snapshot v1 carries clean links only)"
                )));
            }
            if l.queue.as_drop_tail().is_none() {
                return Err(SnapError::Unsupported(format!(
                    "link l{i} uses a non-drop-tail queue (snapshot v1 carries DropTail only)"
                )));
            }
        }
        w.magic(SNAP_MAGIC);
        w.u32(SNAP_VERSION);
        w.magic(SEC_ENGINE);
        w.u64(self.now.as_nanos());
        w.u64(self.seq);
        w.u64(self.cancelled_pending);
        w.u64(self.next_packet_id);
        w.u64(self.corrupt_dropped);
        w.u64(self.events_processed);
        let (seed, state) = self.rng.state_parts();
        w.u64(seed);
        for word in state {
            w.u64(word);
        }
        {
            let (gens, free, live) = self.timers.snapshot_parts();
            w.usize(gens.len());
            for g in gens {
                w.u32(*g);
            }
            w.usize(free.len());
            for f in free {
                w.u32(*f);
            }
            w.usize(live);
        }
        let entries = self.events.drain_sorted();
        w.usize(entries.len());
        for e in &entries {
            w.u64(e.at.as_nanos());
            w.u64(e.seq);
            match e.kind {
                EventKind::LinkTxDone { link, pkt } => {
                    w.u8(0);
                    w.u32(link.0);
                    Self::write_packet(w, self.packets.get(pkt));
                }
                EventKind::Deliver { node, link, pkt } => {
                    w.u8(1);
                    w.u32(node.0);
                    w.u32(link.0);
                    Self::write_packet(w, self.packets.get(pkt));
                }
                EventKind::Timer { node, id, token } => {
                    w.u8(2);
                    w.u32(node.0);
                    w.u64(id.0);
                    w.u64(token);
                }
            }
        }
        // Put the entries back; a rebuilt queue pops in the same order.
        let mut q = EventQueue::new();
        for e in entries {
            q.push(e);
        }
        self.events = q;
        w.magic(SEC_LINKS);
        w.usize(self.links.len());
        for l in &self.links {
            w.bool(l.busy);
            Self::write_link_stats(w, &l.stats);
            let (in_bad, seen) = l.loss.snapshot_parts();
            w.bool(in_bad);
            w.u64(seen);
            let dt = l.queue.as_drop_tail().expect("checked above");
            w.usize(dt.len());
            for m in dt.queued() {
                Self::write_packet(w, self.packets.get(m.handle));
            }
            Self::write_queue_stats(w, &dt.stats());
        }
        Ok(())
    }

    /// Restore dynamic state saved by [`EngineCore::save_snapshot`] into a
    /// *freshly built* engine whose static topology (nodes, links, queue
    /// capacities, loss models) was rebuilt by the same code path that
    /// built the original. In-flight packet bodies get fresh arena slots in
    /// canonical order — event order, then link queues front-to-back — and
    /// every handle is rewritten, so arena layout may differ from the
    /// uninterrupted run (layout is unobservable; handles never leak into
    /// output).
    pub fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if self.packets.live() != 0 || self.events.len() != 0 || self.now != SimTime::ZERO {
            return Err(SnapError::Unsupported(
                "restore target must be a freshly built, never-run simulator".into(),
            ));
        }
        r.expect_magic(SNAP_MAGIC)?;
        let v = r.u32()?;
        if v != SNAP_VERSION {
            return Err(SnapError::Version { got: v });
        }
        r.expect_magic(SEC_ENGINE)?;
        self.now = SimTime::from_nanos(r.u64()?);
        self.seq = r.u64()?;
        self.cancelled_pending = r.u64()?;
        self.next_packet_id = r.u64()?;
        self.corrupt_dropped = r.u64()?;
        self.events_processed = r.u64()?;
        let seed = r.u64()?;
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.u64()?;
        }
        self.rng = SimRng::from_parts(seed, state);
        let n_gens = r.usize()?;
        let mut gens = Vec::with_capacity(n_gens);
        for _ in 0..n_gens {
            gens.push(r.u32()?);
        }
        let n_free = r.usize()?;
        let mut free = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            free.push(r.u32()?);
        }
        let live = r.usize()?;
        self.timers.restore_parts(gens, free, live);
        let n_events = r.usize()?;
        let mut q = EventQueue::new();
        for _ in 0..n_events {
            let at = SimTime::from_nanos(r.u64()?);
            let seq = r.u64()?;
            let kind = match r.u8()? {
                0 => {
                    let link = LinkId(r.u32()?);
                    let pkt = self.packets.alloc(Self::read_packet(r)?);
                    EventKind::LinkTxDone { link, pkt }
                }
                1 => {
                    let node = NodeId(r.u32()?);
                    let link = LinkId(r.u32()?);
                    let pkt = self.packets.alloc(Self::read_packet(r)?);
                    EventKind::Deliver { node, link, pkt }
                }
                2 => {
                    let node = NodeId(r.u32()?);
                    let id = TimerId(r.u64()?);
                    let token = r.u64()?;
                    EventKind::Timer { node, id, token }
                }
                tag => {
                    return Err(SnapError::Tag {
                        ty: "EventKind",
                        tag,
                    })
                }
            };
            q.push(crate::eventq::EventEntry { at, seq, kind });
        }
        self.events = q;
        r.expect_magic(SEC_LINKS)?;
        let n_links = r.usize()?;
        if n_links != self.links.len() {
            return Err(SnapError::Unsupported(format!(
                "snapshot has {n_links} links, rebuilt topology has {} (config drift?)",
                self.links.len()
            )));
        }
        for i in 0..n_links {
            let busy = r.bool()?;
            let stats = Self::read_link_stats(r)?;
            let in_bad = r.bool()?;
            let seen = r.u64()?;
            let n_queued = r.usize()?;
            let mut items = Vec::with_capacity(n_queued);
            for _ in 0..n_queued {
                let body = Self::read_packet(r)?;
                let (id, flow, size) = (body.id, body.flow, body.size);
                let handle = self.packets.alloc(body);
                items.push(PacketMeta {
                    handle,
                    id,
                    flow,
                    size,
                });
            }
            let qstats = Self::read_queue_stats(r)?;
            let l = &mut self.links[i];
            l.busy = busy;
            l.stats = stats;
            l.loss.restore_parts(in_bad, seen);
            l.queue
                .as_drop_tail_mut()
                .ok_or_else(|| {
                    SnapError::Unsupported(format!("rebuilt link l{i} uses a non-drop-tail queue"))
                })?
                .restore(items, qstats);
        }
        Ok(())
    }
}

/// Execution context handed to a node during dispatch.
pub struct Ctx<'a, P: Payload> {
    core: &'a mut EngineCore<P>,
    node: NodeId,
}

impl<'a, P: Payload> Ctx<'a, P> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.core.now()
    }

    /// The id of the node being dispatched.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Send a packet out on a link attached to this node.
    pub fn send(&mut self, link: LinkId, pkt: Packet<P>) {
        self.core.send_on(link, pkt);
    }

    /// Forward an already-stamped packet (routers).
    pub fn forward(&mut self, link: LinkId, pkt: Packet<P>) {
        self.core.forward_on(link, pkt);
    }

    /// Set a timer for this node.
    pub fn set_timer(&mut self, after: SimDuration, token: u64) -> TimerId {
        self.core.set_timer(self.node, after, token)
    }

    /// Set a timer for this node at an absolute instant.
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) -> TimerId {
        self.core.set_timer_at(self.node, at, token)
    }

    /// Cancel a previously set timer.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.core.cancel_timer(id);
    }

    /// The engine RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.core.rng()
    }

    /// Queue statistics for a link (used by tests and in-simulation probes).
    pub fn queue_stats(&self, link: LinkId) -> QueueStats {
        self.core.queue_stats(link)
    }
}

/// The simulator: nodes, links, clock and event queue.
pub struct Simulator<P: Payload> {
    core: EngineCore<P>,
    nodes: Vec<Option<Box<dyn Node<P>>>>,
}

impl<P: Payload + SnapPayload> Simulator<P> {
    /// Serialize engine dynamic state into `w`. Node state is *not*
    /// included — hosts save themselves through their own codecs; see
    /// [`EngineCore::save_snapshot`] for what is carried and what is
    /// refused.
    pub fn save_snapshot(&mut self, w: &mut SnapWriter) -> Result<(), SnapError> {
        self.core.save_snapshot(w)
    }

    /// Restore engine dynamic state saved by [`Simulator::save_snapshot`]
    /// into a freshly built simulator with the same static topology. Node
    /// state must be restored separately by the caller.
    pub fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.core.restore_snapshot(r)
    }
}

impl<P: Payload> Simulator<P> {
    /// Create an empty simulator with the given root seed.
    pub fn new(seed: u64) -> Self {
        Simulator {
            core: EngineCore {
                now: SimTime::ZERO,
                seq: 0,
                events: EventQueue::new(),
                links: Vec::new(),
                packets: PacketArena::new(),
                queue_drop_scratch: Vec::new(),
                rng: SimRng::new(seed),
                timers: TimerSlots::new(),
                cancelled_pending: 0,
                next_packet_id: 0,
                tracer: None,
                corrupt_dropped: 0,
                events_processed: 0,
            },
            nodes: Vec::new(),
        }
    }

    /// Install a trace callback receiving every wire-level event.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.core.tracer = Some(tracer);
    }

    /// Add a node; returns its id.
    pub fn add_node(&mut self, node: Box<dyn Node<P>>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(node));
        id
    }

    /// Add a link; returns its id.
    pub fn add_link(&mut self, spec: LinkSpec) -> LinkId {
        let id = LinkId(self.core.links.len() as u32);
        self.core.links.push(LinkState::new(spec));
        id
    }

    /// Install a fault-injection spec on a link (replacing any previous
    /// one). Fault draws come from a substream forked from the engine seed
    /// and the link id, so the `(seed, spec)` pair fully determines every
    /// fault decision and the engine's own RNG stream is untouched.
    pub fn set_link_faults(&mut self, link: LinkId, spec: FaultSpec) {
        let rng = self.core.rng.fork_indexed("link-faults", link.0 as u64);
        let l = &mut self.core.links[link.0 as usize];
        l.faults = Some(FaultState::new(spec, rng));
        l.plain = false; // fault machinery now required on this link
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.core.now()
    }

    /// Access the engine core (scheduling from outside a node dispatch, e.g.
    /// the workload driver priming flow-start timers).
    pub fn core(&mut self) -> &mut EngineCore<P> {
        &mut self.core
    }

    /// Immutable view of a node, downcast to its concrete type.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.nodes[id.0 as usize]
            .as_deref()
            .and_then(|n| n.as_any().downcast_ref::<T>())
    }

    /// Mutable view of a node, downcast to its concrete type.
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes[id.0 as usize]
            .as_deref_mut()
            .and_then(|n| n.as_any_mut().downcast_mut::<T>())
    }

    /// Borrow a node mutably *together with* the engine core, so harness code
    /// outside a dispatch can both mutate the node and schedule events (e.g.
    /// a workload driver starting a new flow on a host). Returns `None` if
    /// the node is not of type `T`.
    pub fn with_node_mut<T: 'static, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut EngineCore<P>) -> R,
    ) -> Option<R> {
        let idx = id.0 as usize;
        let mut n = self.nodes[idx].take().expect("node is being dispatched");
        let r = n
            .as_any_mut()
            .downcast_mut::<T>()
            .map(|t| f(t, &mut self.core));
        self.nodes[idx] = Some(n);
        r
    }

    /// Statistics for a link's queue.
    pub fn queue_stats(&self, link: LinkId) -> QueueStats {
        self.core.queue_stats(link)
    }

    /// Transmission statistics for a link.
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        self.core.link_stats(link)
    }

    /// Number of links in the topology.
    pub fn link_count(&self) -> usize {
        self.core.link_count()
    }

    /// Dispatch a single event. Returns `false` when the event queue is empty.
    ///
    /// A stale cancelled timer entry still advances the clock to its
    /// scheduled instant and counts as a processed event (it just isn't
    /// dispatched) — identical to the original heap's lazy-cancellation
    /// semantics, which the byte-identity goldens depend on.
    pub fn step(&mut self) -> bool {
        let entry = match self.core.events.pop() {
            Some(e) => e,
            None => return false,
        };
        debug_assert!(entry.at >= self.core.now, "time went backwards");
        self.core.now = entry.at;
        self.core.events_processed += 1;
        // Lookahead prefetch: start a future event's dependent random load
        // (timer generation cell / packet arena slot) while this one
        // dispatches. At millions of pending timers or in-flight packets
        // those loads are DRAM misses that would otherwise serialize with
        // dispatch; a depth of 8 pops puts the hint far enough ahead to
        // cover the latency, and the adjacent depth-1 hint covers run
        // boundaries. Purely cache hints — invisible to firing order and
        // all observable state.
        for depth in [1usize, 8] {
            if let Some(next) = self.core.events.lookahead(depth) {
                match next.kind {
                    EventKind::Timer { id, .. } => self.core.timers.prefetch(id),
                    EventKind::Deliver { pkt, .. } | EventKind::LinkTxDone { pkt, .. } => {
                        self.core.packets.prefetch(pkt)
                    }
                }
            }
        }
        match entry.kind {
            EventKind::LinkTxDone { link, pkt } => self.handle_tx_done(link, pkt),
            EventKind::Deliver { node, link, pkt } => {
                // The packet leaves the arena here: delivery hands the body
                // to the node by value, a corrupt arrival just drops it.
                let pkt = self.core.packets.take(pkt);
                if pkt.corrupted {
                    self.core.corrupt_dropped += 1;
                    self.core.links[link.0 as usize].stats.corrupt_dropped += 1;
                    self.core.trace(TraceEvent::CorruptDrop {
                        node,
                        packet: pkt.id,
                        size: pkt.size,
                    });
                } else {
                    self.core.links[link.0 as usize].stats.delivered += 1;
                    self.core.trace(TraceEvent::Deliver {
                        node,
                        packet: pkt.id,
                        size: pkt.size,
                    });
                    self.dispatch(node, |n, ctx| n.on_packet(pkt, ctx));
                }
            }
            EventKind::Timer { node, id, token } => {
                if self.core.timers.disarm(id) {
                    self.dispatch(node, |n, ctx| n.on_timer(id, token, ctx));
                }
            }
        }
        true
    }

    fn handle_tx_done(&mut self, link: LinkId, pkt: PacketHandle) {
        let now = self.core.now;
        let l = &mut self.core.links[link.0 as usize];
        if l.plain {
            // Fast path: the link has no faults installed and a `None` loss
            // model. `apply_fault_steps` and the blackhole/corrupt/reorder/
            // duplicate draws are all no-ops by construction, and
            // `LossProcess::should_drop` for `LossModel::None` consumes no
            // randomness (it only advances the process's private packet
            // counter, which nothing observes for this model) — so skipping
            // the whole machinery leaves the RNG stream, stats, and trace
            // byte-identical to the general path.
            let size = self.core.packets.get(pkt).size;
            l.stats.tx_packets += 1;
            l.stats.tx_bytes += size as u64;
            let (dst, delay) = (l.dst, l.delay);
            self.core.push(
                now + delay,
                EventKind::Deliver {
                    node: dst,
                    link,
                    pkt,
                },
            );
        } else {
            self.handle_tx_done_faulty(link, pkt);
        }
        self.core.pump_link(link);
    }

    /// The general transmit-completion path: wire loss, fault windows, and
    /// the corrupt/reorder/duplicate draws. Kept out of the hot path — the
    /// common topology has no loss model and no fault spec on any link.
    #[cold]
    fn handle_tx_done_faulty(&mut self, link: LinkId, pkt: PacketHandle) {
        let now = self.core.now;
        let meta = self.core.packets.meta(pkt);
        let l = &mut self.core.links[link.0 as usize];
        l.apply_fault_steps(now);
        l.stats.tx_packets += 1;
        l.stats.tx_bytes += meta.size as u64;
        let dst = l.dst;
        let delay = l.delay;
        let dropped = l.loss.should_drop(&mut self.core.rng);
        // Fault decisions come from the link's private substream, so the
        // engine RNG sequence is identical with faults on or off. Draw
        // order per surviving packet is fixed: corrupt, reorder, duplicate
        // (plus the duplicate's own reorder draw).
        let mut blackholed = false;
        let mut extra = SimDuration::ZERO;
        let mut duplicate_extra = None;
        if !dropped {
            let l = &mut self.core.links[link.0 as usize];
            if let Some(f) = l.faults.as_mut() {
                if f.is_blackholed(now) {
                    blackholed = true;
                } else {
                    if f.draw_corrupt() {
                        self.core.packets.get_mut(pkt).corrupted = true;
                        l.stats.corrupt_marked += 1;
                    }
                    extra = f.draw_reorder_extra();
                    if f.draw_duplicate() {
                        duplicate_extra = Some(f.draw_reorder_extra());
                    }
                }
            }
        }
        // Stats increment and trace emission stay adjacent per outcome (the
        // `TraceEvent` atomic-in-order contract): the draw block above only
        // decides, it does not account.
        if dropped {
            self.core.links[link.0 as usize].stats.wire_lost += 1;
            self.core.packets.free(pkt);
            self.core.trace(TraceEvent::WireDrop {
                link,
                packet: meta.id,
                size: meta.size,
            });
        } else if blackholed {
            self.core.links[link.0 as usize].stats.blackholed += 1;
            self.core.packets.free(pkt);
            self.core.trace(TraceEvent::Blackhole {
                link,
                packet: meta.id,
                size: meta.size,
            });
        } else {
            if let Some(dup_extra) = duplicate_extra {
                self.core.links[link.0 as usize].stats.duplicated += 1;
                self.core.trace(TraceEvent::Duplicate {
                    link,
                    packet: meta.id,
                    size: meta.size,
                });
                // The duplicate gets its own arena slot holding a clone of
                // the (possibly corrupt-marked) body; both copies are then
                // independent deliveries.
                let dup = self.core.packets.get(pkt).clone();
                let dup = self.core.packets.alloc(dup);
                self.core.push(
                    now + delay + dup_extra,
                    EventKind::Deliver {
                        node: dst,
                        link,
                        pkt: dup,
                    },
                );
            }
            self.core.push(
                now + delay + extra,
                EventKind::Deliver {
                    node: dst,
                    link,
                    pkt,
                },
            );
        }
    }

    fn dispatch<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Node<P>, &mut Ctx<'_, P>),
    {
        let idx = node.0 as usize;
        let mut n = self.nodes[idx].take().unwrap_or_else(|| {
            panic!("dispatch to node {node} while it is already being dispatched")
        });
        {
            let mut ctx = Ctx {
                core: &mut self.core,
                node,
            };
            f(n.as_mut(), &mut ctx);
        }
        self.nodes[idx] = Some(n);
    }

    /// Run until the clock reaches `until` or the event queue drains.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(at) = self.core.events.peek().map(|e| e.at) {
            if at > until {
                break;
            }
            self.step();
        }
        if self.core.now < until {
            self.core.now = until;
        }
    }

    /// Run until the event queue is empty. `max_events` guards against
    /// runaway protocols in tests (panics when exceeded).
    pub fn run_to_completion(&mut self, max_events: u64) {
        let start = self.core.events_processed;
        while self.step() {
            if self.core.events_processed - start > max_events {
                panic!(
                    "simulation exceeded {max_events} events (runaway?) at t={}",
                    self.core.now
                );
            }
        }
    }

    /// Time of the next scheduled event, if any. Takes `&mut self` because
    /// the calendar queue may rotate its cursor to find the head (a purely
    /// internal motion — firing order and observable state are unchanged).
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.core.events.peek().map(|e| e.at)
    }

    /// Number of events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// Events currently pending in the wheel (live and stale) — the
    /// "wheel depth" a shard telemetry window reports. Immutable twin of
    /// [`EngineCore::pending_events`] for observers that only hold `&self`.
    pub fn pending_events(&self) -> usize {
        self.core.pending_events()
    }

    /// Packets currently parked in the arena (on the wire or queued).
    pub fn live_packets(&self) -> usize {
        self.core.live_packets()
    }

    /// High-water mark of simultaneously parked packets — the arena's
    /// capacity never shrinks, so this is also its allocated footprint.
    pub fn arena_high_water(&self) -> usize {
        self.core.packet_arena_capacity()
    }

    /// Snapshot of everything that should be empty once a simulation has
    /// drained: live timers, busy links, queued packets. Stale cancelled
    /// timer entries still sitting in the queue are *not* leaks and do not
    /// make a report unclean.
    pub fn hygiene_report(&self) -> HygieneReport {
        let busy_links: Vec<LinkId> = self
            .core
            .links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.busy)
            .map(|(i, _)| LinkId(i as u32))
            .collect();
        let backlogged_links: Vec<(LinkId, u64)> = self
            .core
            .links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.queue.backlog_bytes() > 0)
            .map(|(i, l)| (LinkId(i as u32), l.queue.backlog_bytes()))
            .collect();
        HygieneReport {
            live_timers: self.core.timers.live(),
            pending_events: self.core.events.len(),
            live_packets: self.core.packets.live(),
            busy_links,
            backlogged_links,
        }
    }

    /// Panic with a diagnostic if the simulation left live timers, busy
    /// links, or queued packets behind. Call after a run has drained.
    pub fn assert_drained(&self) {
        let report = self.hygiene_report();
        assert!(report.is_clean(), "simulation not drained: {report}");
    }
}

/// What [`Simulator::hygiene_report`] found still alive after a run.
#[derive(Debug, Clone)]
pub struct HygieneReport {
    /// Armed, unfired timers (must be 0 at drain).
    pub live_timers: usize,
    /// Queue entries, including stale cancelled timers (informational).
    pub pending_events: usize,
    /// Packets still parked in the arena (must be 0 at drain: every packet
    /// on the wire or in a queue holds a slot, so a leftover means a leaked
    /// handle somewhere in the engine's drop paths).
    pub live_packets: usize,
    /// Links still mid-serialization (must be empty at drain).
    pub busy_links: Vec<LinkId>,
    /// Links with queued bytes (must be empty at drain).
    pub backlogged_links: Vec<(LinkId, u64)>,
}

impl HygieneReport {
    /// True when nothing leaked: no live timers, no live packets, no busy
    /// links, no backlog.
    pub fn is_clean(&self) -> bool {
        self.live_timers == 0
            && self.live_packets == 0
            && self.busy_links.is_empty()
            && self.backlogged_links.is_empty()
    }
}

impl std::fmt::Display for HygieneReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} live timers, {} pending queue entries, {} live packets, busy links {:?}, backlogged links {:?}",
            self.live_timers,
            self.pending_events,
            self.live_packets,
            self.busy_links,
            self.backlogged_links
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::DropTail;
    use crate::time::Rate;
    use std::any::Any;

    /// Test node: records deliveries, can bounce packets back.
    struct Recorder {
        delivered: Vec<(SimTime, u64)>,
        timers: Vec<(SimTime, u64)>,
    }

    impl Node<u64> for Recorder {
        fn on_packet(&mut self, pkt: Packet<u64>, ctx: &mut Ctx<'_, u64>) {
            self.delivered.push((ctx.now(), pkt.payload));
        }
        fn on_timer(&mut self, _id: TimerId, token: u64, ctx: &mut Ctx<'_, u64>) {
            self.timers.push((ctx.now(), token));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn recorder() -> Box<Recorder> {
        Box::new(Recorder {
            delivered: vec![],
            timers: vec![],
        })
    }

    fn two_node_sim(
        rate: Rate,
        delay: SimDuration,
        buf: u64,
    ) -> (Simulator<u64>, NodeId, NodeId, LinkId) {
        let mut sim = Simulator::new(0);
        let a = sim.add_node(recorder());
        let b = sim.add_node(recorder());
        let l = sim.add_link(LinkSpec {
            src: a,
            dst: b,
            rate,
            delay,
            queue: Box::new(DropTail::new(buf)),
            loss: crate::loss::LossModel::None,
        });
        (sim, a, b, l)
    }

    fn pkt(src: NodeId, dst: NodeId, size: u32, tag: u64) -> Packet<u64> {
        Packet::new(crate::packet::FlowId(0), src, dst, size, tag)
    }

    #[test]
    fn single_packet_latency_is_tx_plus_prop() {
        let (mut sim, a, b, l) =
            two_node_sim(Rate::from_mbps(15), SimDuration::from_millis(30), 100_000);
        sim.core().send_on(l, pkt(a, b, 1500, 7));
        sim.run_to_completion(1000);
        let rec = sim.node_as::<Recorder>(b).unwrap();
        // 1500B at 15 Mbps = 800us, plus 30ms prop.
        assert_eq!(
            rec.delivered,
            vec![(SimTime::ZERO + SimDuration::from_micros(30_800), 7)]
        );
    }

    #[test]
    fn packets_serialize_back_to_back() {
        let (mut sim, a, b, l) = two_node_sim(Rate::from_mbps(15), SimDuration::ZERO, 1_000_000);
        for i in 0..3 {
            sim.core().send_on(l, pkt(a, b, 1500, i));
        }
        sim.run_to_completion(1000);
        let rec = sim.node_as::<Recorder>(b).unwrap();
        let us = |x: u64| SimTime::ZERO + SimDuration::from_micros(x);
        assert_eq!(
            rec.delivered,
            vec![(us(800), 0), (us(1600), 1), (us(2400), 2)]
        );
    }

    #[test]
    fn queue_overflow_drops_excess() {
        // Buffer of 2 packets; send 5 while the link is busy with the first.
        let (mut sim, a, b, l) = two_node_sim(Rate::from_mbps(15), SimDuration::ZERO, 3000);
        for i in 0..5 {
            sim.core().send_on(l, pkt(a, b, 1500, i));
        }
        sim.run_to_completion(1000);
        let rec = sim.node_as::<Recorder>(b).unwrap();
        // First transmits immediately, two fit in the queue, two dropped.
        assert_eq!(rec.delivered.len(), 3);
        assert_eq!(sim.queue_stats(l).dropped, 2);
        let tags: Vec<u64> = rec.delivered.iter().map(|d| d.1).collect();
        assert_eq!(tags, vec![0, 1, 2], "drop-tail must drop the last arrivals");
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        let mut sim = Simulator::new(0);
        let a = sim.add_node(recorder());
        sim.core().set_timer(a, SimDuration::from_millis(5), 50);
        let to_cancel = sim.core().set_timer(a, SimDuration::from_millis(1), 10);
        sim.core().set_timer(a, SimDuration::from_millis(3), 30);
        sim.core().cancel_timer(to_cancel);
        sim.run_to_completion(100);
        let rec = sim.node_as::<Recorder>(a).unwrap();
        let tokens: Vec<u64> = rec.timers.iter().map(|t| t.1).collect();
        assert_eq!(tokens, vec![30, 50]);
    }

    #[test]
    fn same_instant_events_fire_in_scheduling_order() {
        let mut sim = Simulator::new(0);
        let a = sim.add_node(recorder());
        for token in [3, 1, 2] {
            sim.core().set_timer(a, SimDuration::from_millis(7), token);
        }
        sim.run_to_completion(100);
        let rec = sim.node_as::<Recorder>(a).unwrap();
        let tokens: Vec<u64> = rec.timers.iter().map(|t| t.1).collect();
        assert_eq!(tokens, vec![3, 1, 2]);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulator::new(0);
        let a = sim.add_node(recorder());
        sim.core().set_timer(a, SimDuration::from_millis(10), 1);
        sim.core().set_timer(a, SimDuration::from_millis(20), 2);
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(15));
        {
            let rec = sim.node_as::<Recorder>(a).unwrap();
            assert_eq!(rec.timers.len(), 1);
        }
        sim.run_to_completion(10);
        let rec = sim.node_as::<Recorder>(a).unwrap();
        assert_eq!(rec.timers.len(), 2);
    }

    #[test]
    fn wire_loss_drops_packets() {
        let mut sim = Simulator::new(42);
        let a = sim.add_node(recorder());
        let b = sim.add_node(recorder());
        let l = sim.add_link(
            LinkSpec::drop_tail(a, b, Rate::from_gbps(1), SimDuration::ZERO, 10_000_000)
                .with_loss(crate::loss::LossModel::Bernoulli { p: 0.5 }),
        );
        for i in 0..1000 {
            sim.core().send_on(l, pkt(a, b, 100, i));
        }
        sim.run_to_completion(100_000);
        let delivered = sim.node_as::<Recorder>(b).unwrap().delivered.len();
        assert!(delivered > 350 && delivered < 650, "delivered {delivered}");
        assert_eq!(sim.link_stats(l).wire_lost as usize, 1000 - delivered);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(seed);
            let a = sim.add_node(recorder());
            let b = sim.add_node(recorder());
            // Queue sized for the whole burst, so every packet reaches the
            // wire-loss draw: 200 Bernoulli draws make two seeds' delivery
            // sets collide with probability ~0.82^200.
            let l = sim.add_link(
                LinkSpec::drop_tail(
                    a,
                    b,
                    Rate::from_mbps(10),
                    SimDuration::from_millis(1),
                    250_000,
                )
                .with_loss(crate::loss::LossModel::Bernoulli { p: 0.1 }),
            );
            for i in 0..200 {
                sim.core().send_on(l, pkt(a, b, 1000, i));
            }
            sim.run_to_completion(10_000);
            sim.node_as::<Recorder>(b).unwrap().delivered.clone()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn tracer_sees_drops() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let drops = Rc::new(RefCell::new(0u32));
        let drops2 = drops.clone();
        let (mut sim, a, b, l) = two_node_sim(Rate::from_mbps(1), SimDuration::ZERO, 1500);
        sim.set_tracer(Box::new(move |_, ev| {
            if matches!(ev, TraceEvent::QueueDrop { .. }) {
                *drops2.borrow_mut() += 1;
            }
        }));
        for i in 0..4 {
            sim.core().send_on(l, pkt(a, b, 1500, i));
        }
        sim.run_to_completion(1000);
        assert_eq!(*drops.borrow(), 2);
    }
}

#[cfg(test)]
mod compaction_tests {
    use super::*;
    use crate::node::{Node, TimerId as TId};
    use std::any::Any;

    struct Collector(Vec<u64>);
    impl Node<()> for Collector {
        fn on_packet(&mut self, _p: Packet<()>, _c: &mut Ctx<'_, ()>) {}
        fn on_timer(&mut self, _id: TId, token: u64, _c: &mut Ctx<'_, ()>) {
            self.0.push(token);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn compaction_preserves_live_timers() {
        let mut sim: Simulator<()> = Simulator::new(0);
        let a = sim.add_node(Box::new(Collector(Vec::new())));
        // Arm a large batch, cancel every odd one; compaction must trigger
        // (threshold 4096) and the survivors must still fire in order.
        let n = 20_000u64;
        let mut ids = Vec::new();
        for i in 0..n {
            let id = sim.core().set_timer(a, SimDuration::from_millis(1 + i), i);
            ids.push(id);
        }
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 1 {
                sim.core().cancel_timer(*id);
            }
        }
        // Queue must have shrunk well below the armed count.
        assert!(
            sim.core().pending_events() < (n as usize) * 3 / 4,
            "queue not compacted: {} entries",
            sim.core().pending_events()
        );
        sim.run_to_completion(n * 2);
        let fired = &sim.node_as::<Collector>(a).unwrap().0;
        assert_eq!(fired.len(), (n / 2) as usize);
        assert!(fired.iter().all(|t| t % 2 == 0), "cancelled timer fired");
        assert!(fired.windows(2).all(|w| w[0] < w[1]), "order violated");
    }

    #[test]
    fn compaction_keeps_packet_events() {
        use crate::link::LinkSpec;
        use crate::time::Rate;
        let mut sim: Simulator<()> = Simulator::new(0);
        let a = sim.add_node(Box::new(Collector(Vec::new())));
        let b = sim.add_node(Box::new(Collector(Vec::new())));
        let l = sim.add_link(LinkSpec::drop_tail(
            a,
            b,
            Rate::from_kbps(10), // slow: packets stay in flight a while
            SimDuration::from_secs(5),
            100_000_000,
        ));
        for _ in 0..20 {
            sim.core()
                .send_on(l, Packet::new(crate::packet::FlowId(0), a, b, 100, ()));
        }
        // Mass timer churn to force compaction while packets are pending.
        for i in 0..20_000u64 {
            let id = sim.core().set_timer(a, SimDuration::from_secs(60), i);
            sim.core().cancel_timer(id);
        }
        sim.run_to_completion(200_000);
        // All 20 packets must still be delivered despite compaction.
        assert_eq!(sim.link_stats(l).tx_packets, 20);
    }
}

//! Deterministic randomness for simulations.
//!
//! Every source of randomness in a scenario flows from a single `u64` seed.
//! Substreams are derived by hashing a textual label together with the parent
//! seed ([`SimRng::fork`]), so adding a new consumer of randomness does not
//! perturb the draws seen by existing consumers — a property the experiment
//! harness relies on when comparing protocols under *identical* flow-arrival
//! schedules (paper §4.3.2).

/// A seeded random number generator with labelled forking.
///
/// The generator is xoshiro256++ (Blackman & Vigna), seeded through
/// SplitMix64 as its authors recommend. It is implemented in-repo so the
/// simulator has no external dependencies and its streams are identical on
/// every platform and toolchain.
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

impl SimRng {
    /// Create a generator from a root seed.
    pub fn new(seed: u64) -> Self {
        // Expand the 64-bit seed into the 256-bit state with SplitMix64;
        // the all-zero state is unreachable this way.
        let mut s = seed;
        let mut state = [0u64; 4];
        for w in &mut state {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *w = splitmix64(s);
        }
        SimRng { seed, state }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent substream identified by `label`. Forking with
    /// the same (seed, label) always yields the same stream, regardless of
    /// how much the parent has been used.
    pub fn fork(&self, label: &str) -> SimRng {
        let sub = splitmix_hash(self.seed, label);
        SimRng::new(sub)
    }

    /// Derive an independent substream identified by a label and an index
    /// (e.g. one stream per path in a population).
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        let sub =
            splitmix_hash(self.seed, label) ^ splitmix64(index.wrapping_add(0x9E37_79B9_7F4A_7C15));
        SimRng::new(sub)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits of a u64 draw, scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "invalid range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw an index from an empty range");
        // Lemire's multiply-shift method with rejection: unbiased for any n.
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n.wrapping_neg() % n {
                return (m >> 64) as usize;
            }
        }
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.uniform() < p
    }

    /// Exponentially distributed draw with the given mean (inverse-CDF
    /// method). Used for Poisson interarrival times.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean > 0.0 && mean.is_finite(),
            "exponential mean must be positive: {mean}"
        );
        // 1 - U is in (0, 1], so ln never sees zero.
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Standard normal draw (Box–Muller; one value per call keeps the stream
    /// layout simple and deterministic).
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.uniform(); // (0, 1]
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normally distributed draw with the given parameters of the
    /// underlying normal (`mu`, `sigma`).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Pareto draw with scale `x_min` and shape `alpha`.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min > 0.0 && alpha > 0.0);
        x_min / (1.0 - self.uniform()).powf(1.0 / alpha)
    }

    /// The generator's full state, for engine checkpointing: the original
    /// seed plus the current xoshiro256++ state words. Restoring with
    /// [`SimRng::from_parts`] resumes the stream exactly where it was —
    /// including the fork labels, which derive from the seed alone.
    pub fn state_parts(&self) -> (u64, [u64; 4]) {
        (self.seed, self.state)
    }

    /// Rebuild a generator from [`SimRng::state_parts`] output.
    pub fn from_parts(seed: u64, state: [u64; 4]) -> Self {
        SimRng { seed, state }
    }

    /// Raw `u64` draw (for seeding nested structures).
    pub fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

/// SplitMix64 finalizer — a solid 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a seed together with a textual label (FNV-1a folded through
/// SplitMix64).
fn splitmix_hash(seed: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    splitmix64(h ^ splitmix64(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_usage() {
        let a = SimRng::new(7);
        let mut a_used = SimRng::new(7);
        for _ in 0..50 {
            a_used.next_u64();
        }
        let mut f1 = a.fork("loss");
        let mut f2 = a_used.fork("loss");
        for _ in 0..20 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn distinct_labels_give_distinct_streams() {
        let root = SimRng::new(7);
        let x = root.fork("alpha").next_u64();
        let y = root.fork("beta").next_u64();
        assert_ne!(x, y);
        let i = root.fork_indexed("path", 0).next_u64();
        let j = root.fork_indexed("path", 1).next_u64();
        assert_ne!(i, j);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::new(1);
        let n = 20_000;
        let mean = 3.5;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let emp = sum / n as f64;
        assert!((emp - mean).abs() < 0.1, "empirical mean {emp}");
    }

    #[test]
    fn chance_frequency_is_close() {
        let mut r = SimRng::new(2);
        let n = 50_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count();
        let f = hits as f64 / n as f64;
        assert!((f - 0.3).abs() < 0.01, "frequency {f}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut r = SimRng::new(3);
        let mut xs: Vec<f64> = (0..10_001).map(|_| r.lognormal(2.0, 0.7)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        let expect = 2.0_f64.exp();
        assert!(
            (median / expect - 1.0).abs() < 0.1,
            "median {median} vs {expect}"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(4);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "shuffle left slice untouched"
        );
    }
}

//! Wire loss models.
//!
//! Queue-overflow loss emerges naturally from [`crate::queue::DropTail`];
//! these models add *path* loss that is not congestion at the modelled
//! bottleneck — e.g. WiFi corruption on the home-network profiles (§4.2.2)
//! or loss inside the un-modelled middle of a PlanetLab path (§4.2.1).

use crate::rng::SimRng;

/// A random loss process applied to packets traversing a link.
#[derive(Debug, Clone)]
pub enum LossModel {
    /// No random loss; only queue overflow drops packets.
    None,
    /// Independent per-packet loss with probability `p`.
    Bernoulli {
        /// Loss probability in `\[0, 1\]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott bursty loss. In the Good state packets are
    /// lost with probability `loss_good` (usually 0); in the Bad state with
    /// `loss_bad`. Transitions happen per packet with probabilities
    /// `p_good_to_bad` and `p_bad_to_good`.
    GilbertElliott {
        /// P(transition Good -> Bad) per packet.
        p_good_to_bad: f64,
        /// P(transition Bad -> Good) per packet.
        p_bad_to_good: f64,
        /// Loss probability while in the Good state.
        loss_good: f64,
        /// Loss probability while in the Bad state.
        loss_bad: f64,
    },
    /// Deterministically drop specific packets by their 1-based transmission
    /// ordinal on the link. Used by tests and the Fig. 3 walkthrough, where
    /// exactly one known packet must be lost.
    DropList {
        /// Sorted 1-based ordinals of packets to drop.
        ordinals: Vec<u64>,
    },
}

impl LossModel {
    /// A Gilbert–Elliott model tuned to resemble consumer WiFi: rare bursts
    /// (~0.5 % of packets start a burst), bursts last ~10 packets, and most
    /// packets inside a burst are lost.
    pub fn wifi_bursty() -> LossModel {
        LossModel::GilbertElliott {
            p_good_to_bad: 0.005,
            p_bad_to_good: 0.10,
            loss_good: 0.0002,
            loss_bad: 0.35,
        }
    }

    /// True for [`LossModel::None`] — the model never drops and its
    /// evaluator consumes no randomness, so links carrying it qualify for
    /// the engine's no-loss fast path.
    pub fn is_none(&self) -> bool {
        matches!(self, LossModel::None)
    }

    /// Expected long-run loss rate of the model.
    pub fn mean_loss_rate(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { p } => p,
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                // Stationary distribution of the two-state chain.
                let denom = p_good_to_bad + p_bad_to_good;
                if denom == 0.0 {
                    return loss_good;
                }
                let pi_bad = p_good_to_bad / denom;
                (1.0 - pi_bad) * loss_good + pi_bad * loss_bad
            }
            LossModel::DropList { .. } => 0.0, // finite drops: zero long-run rate
        }
    }
}

/// Stateful evaluator for a [`LossModel`]; one per link.
#[derive(Debug, Clone)]
pub struct LossProcess {
    model: LossModel,
    in_bad_state: bool,
    packets_seen: u64,
}

impl LossProcess {
    /// Create a process starting in the Good state.
    pub fn new(model: LossModel) -> Self {
        LossProcess {
            model,
            in_bad_state: false,
            packets_seen: 0,
        }
    }

    /// The model this process evaluates.
    pub fn model(&self) -> &LossModel {
        &self.model
    }

    /// Dynamic state for the engine snapshot codec: the Gilbert–Elliott
    /// chain position and the per-link packet ordinal (which the DropList
    /// model indexes).
    pub(crate) fn snapshot_parts(&self) -> (bool, u64) {
        (self.in_bad_state, self.packets_seen)
    }

    /// Restore dynamic state saved by [`LossProcess::snapshot_parts`]. The
    /// model itself comes from the topology rebuild, not the snapshot.
    pub(crate) fn restore_parts(&mut self, in_bad_state: bool, packets_seen: u64) {
        self.in_bad_state = in_bad_state;
        self.packets_seen = packets_seen;
    }

    /// Decide whether the next packet is lost.
    pub fn should_drop(&mut self, rng: &mut SimRng) -> bool {
        self.packets_seen += 1;
        match self.model {
            LossModel::None => false,
            LossModel::Bernoulli { p } => p > 0.0 && rng.chance(p),
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                if self.in_bad_state {
                    if rng.chance(p_bad_to_good) {
                        self.in_bad_state = false;
                    }
                } else if rng.chance(p_good_to_bad) {
                    self.in_bad_state = true;
                }
                let p = if self.in_bad_state {
                    loss_bad
                } else {
                    loss_good
                };
                p > 0.0 && rng.chance(p)
            }
            LossModel::DropList { ref ordinals } => {
                ordinals.binary_search(&self.packets_seen).is_ok()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_drops() {
        let mut rng = SimRng::new(1);
        let mut lp = LossProcess::new(LossModel::None);
        assert!((0..1000).all(|_| !lp.should_drop(&mut rng)));
    }

    #[test]
    fn bernoulli_rate_matches() {
        let mut rng = SimRng::new(2);
        let mut lp = LossProcess::new(LossModel::Bernoulli { p: 0.05 });
        let n = 100_000;
        let drops = (0..n).filter(|_| lp.should_drop(&mut rng)).count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.005, "rate {rate}");
    }

    #[test]
    fn gilbert_elliott_long_run_rate_matches_formula() {
        let model = LossModel::wifi_bursty();
        let expect = model.mean_loss_rate();
        let mut rng = SimRng::new(3);
        let mut lp = LossProcess::new(model);
        let n = 400_000;
        let drops = (0..n).filter(|_| lp.should_drop(&mut rng)).count();
        let rate = drops as f64 / n as f64;
        assert!(
            (rate - expect).abs() < expect * 0.25 + 0.002,
            "rate {rate} expected {expect}"
        );
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Compare the number of loss "runs" with a Bernoulli process of the
        // same mean rate: GE should have fewer, longer runs.
        let model = LossModel::wifi_bursty();
        let mean = model.mean_loss_rate();
        let n = 200_000;

        let runs = |seq: &[bool]| seq.windows(2).filter(|w| !w[0] && w[1]).count();

        let mut rng = SimRng::new(4);
        let mut ge = LossProcess::new(model);
        let ge_seq: Vec<bool> = (0..n).map(|_| ge.should_drop(&mut rng)).collect();

        let mut rng2 = SimRng::new(5);
        let mut be = LossProcess::new(LossModel::Bernoulli { p: mean });
        let be_seq: Vec<bool> = (0..n).map(|_| be.should_drop(&mut rng2)).collect();

        // GE losses cluster inside Bad periods, so distinct loss runs are
        // noticeably fewer than under an independent process of equal rate
        // (in-burst losses still interleave with successes, so the gap is
        // well under the naive burst-length factor).
        assert!(
            runs(&ge_seq) < runs(&be_seq) * 4 / 5,
            "GE runs {} not much burstier than Bernoulli runs {}",
            runs(&ge_seq),
            runs(&be_seq)
        );
    }
}

#[cfg(test)]
mod droplist_tests {
    use super::*;

    #[test]
    fn droplist_drops_exact_ordinals() {
        let mut rng = SimRng::new(1);
        let mut lp = LossProcess::new(LossModel::DropList {
            ordinals: vec![2, 5],
        });
        let dropped: Vec<bool> = (0..6).map(|_| lp.should_drop(&mut rng)).collect();
        assert_eq!(dropped, vec![false, true, false, false, true, false]);
        assert_eq!(lp.model().mean_loss_rate(), 0.0);
    }
}

//! The [`Node`] trait: anything that receives packets and timer callbacks.

use crate::engine::Ctx;
use crate::packet::{Packet, Payload};
use std::any::Any;

/// Identifies a scheduled timer so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

/// A network element: a host (holding transport endpoints) or a router.
///
/// Nodes never call each other directly — all interaction goes through
/// packets and timers scheduled on the engine, which keeps event ordering
/// total and runs reproducible.
pub trait Node<P: Payload>: Any {
    /// A packet addressed to (or forwarded through) this node arrived.
    fn on_packet(&mut self, pkt: Packet<P>, ctx: &mut Ctx<'_, P>);

    /// A timer set by this node fired. `token` is the value passed to
    /// [`Ctx::set_timer`]; `id` is the timer's identity.
    fn on_timer(&mut self, id: TimerId, token: u64, ctx: &mut Ctx<'_, P>);

    /// Downcast support so the experiment harness can inspect concrete node
    /// types after a run.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

//! Deterministic per-link fault injection.
//!
//! A [`FaultSpec`] describes everything pathological a link can do beyond
//! its steady-state loss model: flap down, blackhole traffic for a window,
//! reorder (bounded random extra delay), duplicate, corrupt payloads, and
//! step its bandwidth or propagation delay mid-run. Specs are pure data;
//! the engine instantiates a [`FaultState`] per link whose random draws
//! come from a **private substream** forked from the engine seed and the
//! link id. Two consequences:
//!
//! 1. A `(seed, spec)` pair fully determines every fault decision, so runs
//!    replay byte-identically regardless of `--jobs N`.
//! 2. Installing a fault spec never perturbs the engine's main RNG stream,
//!    so a run with faults disabled is bit-for-bit the run before this
//!    module existed.
//!
//! Semantics (see DESIGN.md for the full contract):
//! - **Down windows** reject packets at offer time ([`super::engine`]'s
//!   `forward_on`): a NIC with no carrier. A packet already serializing
//!   when the window opens completes (store-and-forward).
//! - **Blackhole windows** swallow packets *after* serialization: the
//!   bandwidth is consumed, the packet vanishes (a silently misrouted
//!   path, the classic mid-path blackhole).
//! - **Corruption** flags the packet; it traverses the link and is dropped
//!   at the next node like a checksum failure, never dispatched.
//! - **Duplication** delivers a second copy of the packet (same
//!   [`crate::PacketId`]).
//! - **Reordering** adds a bounded uniform extra propagation delay per
//!   delivered copy, letting later packets overtake.
//! - **Rate/delay steps** apply lazily the next time the link touches a
//!   packet at or after the step time.

use crate::rng::SimRng;
use crate::time::{Rate, SimDuration, SimTime};

/// A half-open virtual-time window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First instant inside the window.
    pub start: SimTime,
    /// First instant after the window.
    pub end: SimTime,
}

impl Window {
    /// Construct a window; `start` must not exceed `end`.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        assert!(start <= end, "window start {start} after end {end}");
        Window { start, end }
    }

    /// Is `t` inside the window?
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }
}

/// Reordering model: each delivered copy independently gains a uniform
/// extra delay in `[0, max_extra)` with probability `prob`.
#[derive(Debug, Clone, Copy)]
pub struct ReorderSpec {
    /// Probability a delivered copy is delayed.
    pub prob: f64,
    /// Upper bound on the extra delay.
    pub max_extra: SimDuration,
}

/// Everything pathological one link can do, as pure data.
///
/// The default spec is a no-op; build scenarios with the chained
/// constructors. All probabilities must be in `[0, 1]`.
#[derive(Debug, Clone, Default)]
pub struct FaultSpec {
    /// Windows during which the link rejects offered packets (carrier loss).
    pub down: Vec<Window>,
    /// Windows during which serialized packets silently vanish.
    pub blackhole: Vec<Window>,
    /// Per-copy reordering model.
    pub reorder: Option<ReorderSpec>,
    /// Probability a serialized packet is delivered twice.
    pub duplicate_prob: f64,
    /// Probability a serialized packet is flagged corrupt (dropped at the
    /// receiving node like a checksum failure).
    pub corrupt_prob: f64,
    /// `(at, rate)` bandwidth changes, applied lazily at `at`.
    pub rate_steps: Vec<(SimTime, Rate)>,
    /// `(at, delay)` one-way propagation changes, applied lazily at `at`.
    pub delay_steps: Vec<(SimTime, SimDuration)>,
}

impl FaultSpec {
    /// A spec that does nothing (same as `Default`).
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// Add a link-down window.
    pub fn down_window(mut self, start: SimTime, end: SimTime) -> Self {
        self.down.push(Window::new(start, end));
        self
    }

    /// Add a blackhole window.
    pub fn blackhole_window(mut self, start: SimTime, end: SimTime) -> Self {
        self.blackhole.push(Window::new(start, end));
        self
    }

    /// Enable reordering: each copy delayed by up to `max_extra` with
    /// probability `prob`.
    pub fn with_reorder(mut self, prob: f64, max_extra: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&prob), "reorder prob {prob}");
        self.reorder = Some(ReorderSpec { prob, max_extra });
        self
    }

    /// Enable duplication with the given per-packet probability.
    pub fn with_duplication(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "duplicate prob {prob}");
        self.duplicate_prob = prob;
        self
    }

    /// Enable corruption with the given per-packet probability.
    pub fn with_corruption(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "corrupt prob {prob}");
        self.corrupt_prob = prob;
        self
    }

    /// Step the link rate to `rate` at virtual time `at`.
    pub fn rate_step(mut self, at: SimTime, rate: Rate) -> Self {
        self.rate_steps.push((at, rate));
        self
    }

    /// Step the one-way propagation delay to `delay` at virtual time `at`.
    pub fn delay_step(mut self, at: SimTime, delay: SimDuration) -> Self {
        self.delay_steps.push((at, delay));
        self
    }

    /// Does this spec change link behaviour at all?
    pub fn is_noop(&self) -> bool {
        self.down.is_empty()
            && self.blackhole.is_empty()
            && self.reorder.is_none()
            && self.duplicate_prob == 0.0
            && self.corrupt_prob == 0.0
            && self.rate_steps.is_empty()
            && self.delay_steps.is_empty()
    }
}

/// Runtime fault state of one link: the spec, its private RNG substream,
/// and cursors into the step schedules.
#[derive(Debug)]
pub(crate) struct FaultState {
    spec: FaultSpec,
    rng: SimRng,
    next_rate_step: usize,
    next_delay_step: usize,
}

impl FaultState {
    /// Build the runtime state; `rng` must be a substream derived from the
    /// engine seed and the link id (see `Simulator::set_link_faults`).
    pub(crate) fn new(mut spec: FaultSpec, rng: SimRng) -> Self {
        // Steps apply via a forward-only cursor; keep them time-sorted so
        // callers may list them in any order.
        spec.rate_steps.sort_by_key(|s| s.0);
        spec.delay_steps.sort_by_key(|s| s.0);
        FaultState {
            spec,
            rng,
            next_rate_step: 0,
            next_delay_step: 0,
        }
    }

    pub(crate) fn is_down(&self, now: SimTime) -> bool {
        self.spec.down.iter().any(|w| w.contains(now))
    }

    pub(crate) fn is_blackholed(&self, now: SimTime) -> bool {
        self.spec.blackhole.iter().any(|w| w.contains(now))
    }

    pub(crate) fn draw_corrupt(&mut self) -> bool {
        self.spec.corrupt_prob > 0.0 && self.rng.chance(self.spec.corrupt_prob)
    }

    pub(crate) fn draw_duplicate(&mut self) -> bool {
        self.spec.duplicate_prob > 0.0 && self.rng.chance(self.spec.duplicate_prob)
    }

    /// Extra propagation delay for one delivered copy (ZERO when reordering
    /// is off or the per-copy draw misses).
    pub(crate) fn draw_reorder_extra(&mut self) -> SimDuration {
        match self.spec.reorder {
            Some(r) if r.prob > 0.0 && self.rng.chance(r.prob) => SimDuration::from_nanos(
                self.rng.uniform_range(0.0, r.max_extra.as_nanos() as f64) as u64,
            ),
            _ => SimDuration::ZERO,
        }
    }

    /// Advance the step cursors to `now`; returns the latest rate/delay at
    /// or before `now`, if any step became due since the last call.
    pub(crate) fn step_updates(&mut self, now: SimTime) -> (Option<Rate>, Option<SimDuration>) {
        let mut rate = None;
        while self.next_rate_step < self.spec.rate_steps.len()
            && self.spec.rate_steps[self.next_rate_step].0 <= now
        {
            rate = Some(self.spec.rate_steps[self.next_rate_step].1);
            self.next_rate_step += 1;
        }
        let mut delay = None;
        while self.next_delay_step < self.spec.delay_steps.len()
            && self.spec.delay_steps[self.next_delay_step].0 <= now
        {
            delay = Some(self.spec.delay_steps[self.next_delay_step].1);
            self.next_delay_step += 1;
        }
        (rate, delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn windows_are_half_open() {
        let w = Window::new(t(10), t(20));
        assert!(!w.contains(t(9)));
        assert!(w.contains(t(10)));
        assert!(w.contains(t(19)));
        assert!(!w.contains(t(20)));
    }

    #[test]
    fn noop_detection() {
        assert!(FaultSpec::none().is_noop());
        assert!(!FaultSpec::none().with_duplication(0.1).is_noop());
        assert!(!FaultSpec::none().down_window(t(1), t(2)).is_noop());
        assert!(!FaultSpec::none()
            .rate_step(t(0), Rate::from_mbps(1))
            .is_noop());
    }

    #[test]
    fn step_cursor_applies_latest_due_step_once() {
        let spec = FaultSpec::none()
            .rate_step(t(5), Rate::from_mbps(5))
            .rate_step(t(1), Rate::from_mbps(1))
            .delay_step(t(3), SimDuration::from_millis(3));
        let mut st = FaultState::new(spec, SimRng::new(0));
        // Both rate steps due at t=6: the later one wins, applied once.
        let (rate, delay) = st.step_updates(t(6));
        assert_eq!(rate, Some(Rate::from_mbps(5)));
        assert_eq!(delay, Some(SimDuration::from_millis(3)));
        let (rate, delay) = st.step_updates(t(7));
        assert_eq!(rate, None);
        assert_eq!(delay, None);
    }

    #[test]
    fn draws_are_deterministic_per_substream() {
        let spec = FaultSpec::none()
            .with_duplication(0.5)
            .with_corruption(0.5)
            .with_reorder(0.5, SimDuration::from_millis(10));
        let run = |seed: u64| {
            let mut st = FaultState::new(spec.clone(), SimRng::new(seed));
            (0..64)
                .map(|_| {
                    (
                        st.draw_corrupt(),
                        st.draw_duplicate(),
                        st.draw_reorder_extra(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}

//! A store-and-forward router with a static route table.

use crate::engine::Ctx;
use crate::node::{Node, TimerId};
use crate::packet::{LinkId, NodeId, Packet, Payload};
use std::any::Any;
use std::collections::HashMap;

/// Routes packets by destination node id over a static table.
///
/// Forwarding is output-queued: the router immediately offers the packet to
/// the chosen output link, whose queue applies the configured discipline and
/// buffer size. Unroutable packets are counted and dropped (a protocol bug
/// in a scenario shows up as a non-zero [`Router::unroutable`] count rather
/// than a panic deep inside a run).
#[derive(Debug, Default)]
pub struct Router {
    routes: HashMap<NodeId, LinkId>,
    default_route: Option<LinkId>,
    unroutable: u64,
    forwarded: u64,
}

impl Router {
    /// An empty router (add routes before running).
    pub fn new() -> Self {
        Router::default()
    }

    /// Route packets destined to `dst` out of `link`.
    pub fn add_route(&mut self, dst: NodeId, link: LinkId) {
        self.routes.insert(dst, link);
    }

    /// Fallback link for destinations with no explicit route.
    pub fn set_default_route(&mut self, link: LinkId) {
        self.default_route = Some(link);
    }

    /// Packets dropped for lack of a route.
    pub fn unroutable(&self) -> u64 {
        self.unroutable
    }

    /// Packets forwarded.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    fn lookup(&self, dst: NodeId) -> Option<LinkId> {
        self.routes.get(&dst).copied().or(self.default_route)
    }
}

impl<P: Payload> Node<P> for Router {
    fn on_packet(&mut self, pkt: Packet<P>, ctx: &mut Ctx<'_, P>) {
        match self.lookup(pkt.dst) {
            Some(link) => {
                self.forwarded += 1;
                ctx.forward(link, pkt);
            }
            None => {
                self.unroutable += 1;
            }
        }
    }

    fn on_timer(&mut self, _id: TimerId, _token: u64, _ctx: &mut Ctx<'_, P>) {}

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::link::LinkSpec;
    use crate::packet::FlowId;
    use crate::time::{Rate, SimDuration};

    struct Sink(Vec<u64>);
    impl Node<u64> for Sink {
        fn on_packet(&mut self, pkt: Packet<u64>, _ctx: &mut Ctx<'_, u64>) {
            self.0.push(pkt.payload);
        }
        fn on_timer(&mut self, _id: TimerId, _t: u64, _c: &mut Ctx<'_, u64>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn router_forwards_by_destination() {
        let mut sim: Simulator<u64> = Simulator::new(0);
        let r = sim.add_node(Box::new(Router::new()));
        let a = sim.add_node(Box::new(Sink(vec![])));
        let b = sim.add_node(Box::new(Sink(vec![])));
        let la = sim.add_link(LinkSpec::drop_tail(
            r,
            a,
            Rate::from_gbps(1),
            SimDuration::ZERO,
            10_000,
        ));
        let lb = sim.add_link(LinkSpec::drop_tail(
            r,
            b,
            Rate::from_gbps(1),
            SimDuration::ZERO,
            10_000,
        ));
        {
            let router = sim.node_as_mut::<Router>(r).unwrap();
            router.add_route(a, la);
            router.add_route(b, lb);
        }
        // Inject two packets at the router addressed to different hosts.
        let ingress = sim.add_link(LinkSpec::drop_tail(
            a,
            r,
            Rate::from_gbps(1),
            SimDuration::ZERO,
            10_000,
        ));
        sim.core()
            .send_on(ingress, Packet::new(FlowId(0), a, b, 100, 42));
        sim.core()
            .send_on(ingress, Packet::new(FlowId(0), b, a, 100, 43));
        sim.run_to_completion(100);
        assert_eq!(sim.node_as::<Sink>(b).unwrap().0, vec![42]);
        assert_eq!(sim.node_as::<Sink>(a).unwrap().0, vec![43]);
        assert_eq!(sim.node_as::<Router>(r).unwrap().forwarded(), 2);
    }

    #[test]
    fn unroutable_packets_are_counted_not_paniced() {
        let mut sim: Simulator<u64> = Simulator::new(0);
        let r = sim.add_node(Box::new(Router::new()));
        let a = sim.add_node(Box::new(Sink(vec![])));
        let ingress = sim.add_link(LinkSpec::drop_tail(
            a,
            r,
            Rate::from_gbps(1),
            SimDuration::ZERO,
            10_000,
        ));
        sim.core()
            .send_on(ingress, Packet::new(FlowId(0), a, NodeId(99), 100, 1));
        sim.run_to_completion(100);
        assert_eq!(sim.node_as::<Router>(r).unwrap().unroutable(), 1);
    }
}

//! Packets and identifier types.
//!
//! The simulator is generic over the packet payload: the `transport` crate
//! instantiates it with its segment/ACK header type. `netsim` itself only
//! needs the wire size and addressing fields.

use crate::time::SimTime;
use std::fmt;

/// Identifies a node (host or router) in a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifies a unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// Identifies a flow (one transport connection direction pair shares one id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// Unique per-transmission identifier (retransmissions get fresh ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Marker trait for payload types carried by [`Packet`].
pub trait Payload: Clone + fmt::Debug + 'static {}
impl<T: Clone + fmt::Debug + 'static> Payload for T {}

/// A packet in flight.
#[derive(Debug, Clone)]
pub struct Packet<P> {
    /// Unique id of this transmission (retransmissions differ).
    pub id: PacketId,
    /// Flow this packet belongs to (used by hosts to dispatch to endpoints).
    pub flow: FlowId,
    /// Originating node.
    pub src: NodeId,
    /// Destination node (routers forward based on this).
    pub dst: NodeId,
    /// Total on-wire size in bytes, headers included.
    pub size: u32,
    /// Time the packet was handed to the first link (set by the engine).
    pub sent_at: SimTime,
    /// Payload corrupted in flight (fault injection). The engine drops the
    /// packet at the next node like a checksum failure instead of
    /// dispatching it.
    pub corrupted: bool,
    /// Protocol-level header/payload.
    pub payload: P,
}

impl<P: Payload> Packet<P> {
    /// Construct a packet; `id` and `sent_at` are assigned by the engine at
    /// send time, so builders use placeholders here.
    pub fn new(flow: FlowId, src: NodeId, dst: NodeId, size: u32, payload: P) -> Self {
        Packet {
            id: PacketId(0),
            flow,
            src,
            dst,
            size,
            sent_at: SimTime::ZERO,
            corrupted: false,
            payload,
        }
    }
}

/// Generation-stamped index of a packet parked in a [`PacketArena`].
///
/// Packs `(generation << 32) | slot`, the same scheme as the engine's timer
/// slots: a slot's generation is odd while occupied and even while free, so
/// any handle that survives past its packet's release fails the generation
/// match — use-after-free is a deterministic panic, not silent corruption.
///
/// Everything between a packet's send and its delivery (event-queue
/// entries, link-queue entries) moves this one word instead of the packet
/// struct, which for the transport payload is well over a hundred bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketHandle(u64);

impl PacketHandle {
    #[inline]
    fn new(gen: u32, idx: u32) -> Self {
        PacketHandle(((gen as u64) << 32) | idx as u64)
    }

    #[inline]
    fn idx(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    #[inline]
    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Metadata a link queue needs about a parked packet: enough to account
/// bytes, trace drops, and (later) classify flows — without touching the
/// payload. `Copy`, four words; this is what queue disciplines store.
#[derive(Debug, Clone, Copy)]
pub struct PacketMeta {
    /// Arena handle of the parked packet.
    pub handle: PacketHandle,
    /// Unique transmission id (for trace events).
    pub id: PacketId,
    /// Flow the packet belongs to (flow-aware disciplines key on this).
    pub flow: FlowId,
    /// Total on-wire size in bytes.
    pub size: u32,
}

/// A slab of in-flight packets addressed by generation-stamped handles.
///
/// One growing allocation per simulator, sized by the peak number of
/// packets simultaneously in flight (wire + queues), not by the number of
/// packets sent: slots are freed at delivery/drop and reused LIFO. The
/// generation array is kept separate from the payload slots so a liveness
/// check touches four bytes, not a payload-sized stride.
#[derive(Debug)]
pub struct PacketArena<P> {
    gens: Vec<u32>,
    slots: Vec<Option<Packet<P>>>,
    free: Vec<u32>,
    live: usize,
}

impl<P> Default for PacketArena<P> {
    fn default() -> Self {
        PacketArena {
            gens: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }
}

impl<P: Payload> PacketArena<P> {
    /// An empty arena.
    pub fn new() -> Self {
        PacketArena::default()
    }

    /// Park a packet; returns its handle.
    pub fn alloc(&mut self, pkt: Packet<P>) -> PacketHandle {
        self.live += 1;
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = Some(pkt);
                idx
            }
            None => {
                debug_assert!(self.slots.len() < u32::MAX as usize);
                self.slots.push(Some(pkt));
                self.gens.push(0);
                (self.slots.len() - 1) as u32
            }
        };
        let gen = &mut self.gens[idx as usize];
        *gen = gen.wrapping_add(1); // odd: occupied
        debug_assert!(*gen & 1 == 1);
        PacketHandle::new(*gen, idx)
    }

    /// True while `h` refers to a packet still parked in the arena.
    pub fn is_live(&self, h: PacketHandle) -> bool {
        let idx = h.idx();
        idx < self.gens.len() && self.gens[idx] == h.gen()
    }

    /// Hint the CPU to pull `h`'s slot into cache ahead of a `get`/`take`.
    /// The engine issues this for the *next* event's packet while the
    /// current one dispatches, hiding the arena's random-access miss at
    /// high in-flight populations. Architecturally a no-op.
    #[inline]
    pub fn prefetch(&self, h: PacketHandle) {
        let idx = h.idx();
        #[cfg(target_arch = "x86_64")]
        if idx < self.gens.len() {
            // SAFETY: `idx` is in bounds; _mm_prefetch has no memory or
            // register effects beyond the cache hint.
            unsafe {
                use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                _mm_prefetch(self.gens.as_ptr().add(idx) as *const i8, _MM_HINT_T0);
                _mm_prefetch(self.slots.as_ptr().add(idx) as *const i8, _MM_HINT_T0);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = idx;
    }

    #[inline]
    fn check(&self, h: PacketHandle, op: &str) {
        assert!(
            self.is_live(h),
            "packet handle use-after-free: {op} of {h:?} (slot reused or already released)"
        );
    }

    /// Borrow the parked packet. Panics on a stale handle.
    #[inline]
    pub fn get(&self, h: PacketHandle) -> &Packet<P> {
        self.check(h, "get");
        self.slots[h.idx()]
            .as_ref()
            .expect("live slot holds packet")
    }

    /// Mutably borrow the parked packet. Panics on a stale handle.
    #[inline]
    pub fn get_mut(&mut self, h: PacketHandle) -> &mut Packet<P> {
        self.check(h, "get_mut");
        self.slots[h.idx()]
            .as_mut()
            .expect("live slot holds packet")
    }

    /// Remove and return the parked packet, releasing its slot. Panics on a
    /// stale handle (double release is a bug, not a no-op).
    pub fn take(&mut self, h: PacketHandle) -> Packet<P> {
        self.check(h, "take");
        let idx = h.idx();
        self.gens[idx] = self.gens[idx].wrapping_add(1); // even: free
        self.free.push(idx as u32);
        self.live -= 1;
        self.slots[idx].take().expect("live slot holds packet")
    }

    /// Release a parked packet without reading it (drop paths).
    pub fn free(&mut self, h: PacketHandle) {
        drop(self.take(h));
    }

    /// The queue-facing record of a parked packet. Panics on a stale
    /// handle.
    #[inline]
    pub fn meta(&self, h: PacketHandle) -> PacketMeta {
        let p = self.get(h);
        PacketMeta {
            handle: h,
            id: p.id,
            flow: p.flow,
            size: p.size,
        }
    }

    /// Packets currently parked.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Slots ever allocated — the arena's high-water mark of simultaneously
    /// parked packets (growth tests pin this).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_new_sets_placeholders() {
        let p: Packet<u8> = Packet::new(FlowId(3), NodeId(0), NodeId(1), 1500, 7);
        assert_eq!(p.id, PacketId(0));
        assert_eq!(p.sent_at, SimTime::ZERO);
        assert_eq!(p.size, 1500);
        assert_eq!(p.payload, 7);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(LinkId(2).to_string(), "l2");
        assert_eq!(FlowId(9).to_string(), "f9");
    }

    fn parked(tag: u8) -> Packet<u8> {
        Packet::new(FlowId(0), NodeId(0), NodeId(1), 1500, tag)
    }

    #[test]
    fn arena_roundtrip_and_slot_reuse() {
        let mut a: PacketArena<u8> = PacketArena::new();
        let h1 = a.alloc(parked(1));
        let h2 = a.alloc(parked(2));
        assert_eq!(a.live(), 2);
        assert_eq!(a.get(h1).payload, 1);
        assert_eq!(a.take(h1).payload, 1);
        assert_eq!(a.live(), 1);
        // The freed slot is reused, but under a fresh generation.
        let h3 = a.alloc(parked(3));
        assert_eq!(h3.idx(), h1.idx());
        assert_ne!(h3, h1);
        assert!(!a.is_live(h1));
        assert!(a.is_live(h3) && a.is_live(h2));
        assert_eq!(a.capacity(), 2, "reuse must not grow the arena");
    }

    #[test]
    #[should_panic(expected = "use-after-free")]
    fn arena_get_after_take_panics() {
        let mut a: PacketArena<u8> = PacketArena::new();
        let h = a.alloc(parked(1));
        let _ = a.take(h);
        let _ = a.get(h);
    }

    #[test]
    #[should_panic(expected = "use-after-free")]
    fn arena_double_take_panics() {
        let mut a: PacketArena<u8> = PacketArena::new();
        let h = a.alloc(parked(1));
        let _ = a.take(h);
        let _ = a.take(h);
    }

    #[test]
    #[should_panic(expected = "use-after-free")]
    fn arena_stale_handle_after_slot_reuse_panics() {
        let mut a: PacketArena<u8> = PacketArena::new();
        let h = a.alloc(parked(1));
        let _ = a.take(h);
        let _fresh = a.alloc(parked(2)); // reuses the slot, bumps generation
        let _ = a.get(h);
    }
}

//! Packets and identifier types.
//!
//! The simulator is generic over the packet payload: the `transport` crate
//! instantiates it with its segment/ACK header type. `netsim` itself only
//! needs the wire size and addressing fields.

use crate::time::SimTime;
use std::fmt;

/// Identifies a node (host or router) in a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifies a unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// Identifies a flow (one transport connection direction pair shares one id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// Unique per-transmission identifier (retransmissions get fresh ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Marker trait for payload types carried by [`Packet`].
pub trait Payload: Clone + fmt::Debug + 'static {}
impl<T: Clone + fmt::Debug + 'static> Payload for T {}

/// A packet in flight.
#[derive(Debug, Clone)]
pub struct Packet<P> {
    /// Unique id of this transmission (retransmissions differ).
    pub id: PacketId,
    /// Flow this packet belongs to (used by hosts to dispatch to endpoints).
    pub flow: FlowId,
    /// Originating node.
    pub src: NodeId,
    /// Destination node (routers forward based on this).
    pub dst: NodeId,
    /// Total on-wire size in bytes, headers included.
    pub size: u32,
    /// Time the packet was handed to the first link (set by the engine).
    pub sent_at: SimTime,
    /// Payload corrupted in flight (fault injection). The engine drops the
    /// packet at the next node like a checksum failure instead of
    /// dispatching it.
    pub corrupted: bool,
    /// Protocol-level header/payload.
    pub payload: P,
}

impl<P: Payload> Packet<P> {
    /// Construct a packet; `id` and `sent_at` are assigned by the engine at
    /// send time, so builders use placeholders here.
    pub fn new(flow: FlowId, src: NodeId, dst: NodeId, size: u32, payload: P) -> Self {
        Packet {
            id: PacketId(0),
            flow,
            src,
            dst,
            size,
            sent_at: SimTime::ZERO,
            corrupted: false,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_new_sets_placeholders() {
        let p: Packet<u8> = Packet::new(FlowId(3), NodeId(0), NodeId(1), 1500, 7);
        assert_eq!(p.id, PacketId(0));
        assert_eq!(p.sent_at, SimTime::ZERO);
        assert_eq!(p.size, 1500);
        assert_eq!(p.payload, 7);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(LinkId(2).to_string(), "l2");
        assert_eq!(FlowId(9).to_string(), "f9");
    }
}

//! Conservative parallel execution: one scenario, N shards, zero rollback.
//!
//! A sharded run splits a topology into `parts` **partitions**, each owning
//! a disjoint set of hosts plus their access links, with its own
//! [`Simulator`] — its own event wheel, packet arena, and RNG substreams.
//! Partitions exchange packets only through [`Portal`] nodes, which carry a
//! mandatory extra propagation delay (the WAN leg of the path). That delay
//! is the **lookahead** `L`: a packet handed off at local time `t` cannot
//! arrive before `t + L`, so all partitions can safely simulate the window
//! `[now, M + L]` in parallel, where `M` is the global minimum next-event
//! time. No partition ever needs to roll back.
//!
//! ## Determinism contract
//!
//! The partition count is a property of the *scenario*, not of the machine:
//! `threads` only maps partitions onto worker threads. Every quantity that
//! shapes execution — window boundaries, injection order, per-partition
//! `(at, seq)` assignment — is computed from partition-indexed state and is
//! independent of which thread touches it, so output is byte-identical for
//! `threads = 1, 2, or N` (the same contract the harness enforces for
//! `--jobs`).
//!
//! Cross-partition arrivals are injected at each window barrier in a
//! canonical order: sorted by `(arrival time, source partition rank,
//! emission index within source)`. Injection assigns the destination's next
//! `seq`, so the merged firing order inherits the engine's exact
//! `(at, seq)` discipline with the shard rank as tiebreak.
//!
//! ## Arena-handle rule
//!
//! [`crate::packet::PacketHandle`]s never cross a partition boundary. A
//! packet leaves its source shard **by value** (the portal receives it
//! after the engine freed its arena slot) and is re-allocated into the
//! destination arena by [`crate::engine::EngineCore::inject_arrival`]. Packet *ids* are
//! only unique per partition; cross-partition id collisions are benign
//! because ids feed stats and traces, never lookups.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use crate::engine::{Ctx, HygieneReport, Simulator};
use crate::node::{Node, TimerId};
use crate::packet::{LinkId, NodeId, Packet, Payload};
use crate::time::{SimDuration, SimTime};

/// A packet crossing a partition boundary, by value, with its arrival
/// prescheduled in the destination's clock.
pub struct OutMsg<P: Payload> {
    /// Absolute arrival time at the destination node (source handoff time
    /// plus the portal's extra delay).
    pub at: SimTime,
    /// Destination partition rank.
    pub dst_part: usize,
    /// Destination node, in the destination partition's id space.
    pub dst_node: NodeId,
    /// Ingress stub link in the destination partition; its `delivered`
    /// counter is bumped at arrival so wire-side conservation closes across
    /// the boundary (egress `delivered` == ingress `delivered`).
    pub dst_link: LinkId,
    /// The packet itself (ids remain from the source partition's counter).
    pub pkt: Packet<P>,
}

/// Where a partition's portals park outbound messages between barriers.
type Outbox<P> = Rc<RefCell<Vec<OutMsg<P>>>>;

/// Terminal node for a cross-partition egress link. The source partition
/// routes WAN-bound packets onto a zero-delay link whose `dst` is a portal;
/// the portal stamps the WAN propagation delay and parks the packet in the
/// partition's outbox for the next barrier.
struct Portal<P: Payload> {
    outbox: Outbox<P>,
    dst_part: usize,
    dst_node: NodeId,
    dst_link: LinkId,
    extra_delay: SimDuration,
}

impl<P: Payload> Node<P> for Portal<P> {
    fn on_packet(&mut self, pkt: Packet<P>, ctx: &mut Ctx<'_, P>) {
        self.outbox.borrow_mut().push(OutMsg {
            at: ctx.now() + self.extra_delay,
            dst_part: self.dst_part,
            dst_node: self.dst_node,
            dst_link: self.dst_link,
            pkt,
        });
    }

    fn on_timer(&mut self, _id: TimerId, _token: u64, _ctx: &mut Ctx<'_, P>) {
        unreachable!("portals never arm timers");
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Handed to the build closure so it can wire portals into its partition.
/// Tracks the minimum portal delay, which bounds the lookahead window.
pub struct ShardHandle<P: Payload> {
    part: usize,
    parts: usize,
    outbox: Outbox<P>,
    min_extra_delay: Option<SimDuration>,
}

impl<P: Payload> ShardHandle<P> {
    /// This partition's rank in `0..parts()`.
    pub fn part(&self) -> usize {
        self.part
    }

    /// Total number of partitions in the run.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Add a portal node to `sim` forwarding to `(dst_part, dst_node)` with
    /// arrivals accounted to `dst_link` (an ingress stub link that must
    /// exist in the destination partition). Point a zero-delay egress link
    /// at the returned node; `extra_delay` models the WAN leg and must be
    /// positive — it is the lookahead that keeps the conservative barrier
    /// sound.
    pub fn add_portal(
        &mut self,
        sim: &mut Simulator<P>,
        dst_part: usize,
        dst_node: NodeId,
        dst_link: LinkId,
        extra_delay: SimDuration,
    ) -> NodeId {
        assert!(
            dst_part != self.part && dst_part < self.parts,
            "portal must target another partition: {} -> {dst_part}",
            self.part
        );
        assert!(
            !extra_delay.is_zero(),
            "portal extra_delay must be > 0: it is the lookahead bounding \
             the conservative window"
        );
        self.min_extra_delay = Some(match self.min_extra_delay {
            Some(d) => d.min(extra_delay),
            None => extra_delay,
        });
        sim.add_node(Box::new(Portal {
            outbox: Rc::clone(&self.outbox),
            dst_part,
            dst_node,
            dst_link,
            extra_delay,
        }))
    }
}

/// One per-partition, per-window telemetry record — the runtime data the
/// barrier loop was blind to before: load balance, mailbox pressure,
/// wheel depth, arena footprint, and where wall time actually goes.
///
/// **Determinism contract:** every field except the two `wall_*` fields
/// is a function of `(parts, seeds, horizon)` alone — byte-identical for
/// any `--shards N` — and is safe to golden. The `wall_*` fields are
/// wall-clock measurements, vary run to run and thread count to thread
/// count, and must be excluded from byte-identity checks (the JSONL
/// emitter groups them under a separate `"wall"` object so checkers can
/// strip them syntactically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowTelemetry {
    /// Conservative window index (0-based round counter).
    pub window: u64,
    /// Partition rank this record describes.
    pub part: usize,
    /// Window end in virtual nanoseconds (`u64::MAX` for the single
    /// unbounded window of a portal-free run).
    pub w_end_ns: u64,
    /// Events this partition fired inside the window.
    pub events: u64,
    /// Cross-partition messages this partition deposited at the window's
    /// Phase A barrier (generated during the *previous* window).
    pub deposited: u64,
    /// Cross-partition messages injected into this partition at Phase B.
    pub injected: u64,
    /// Deepest single-source mailbox batch seen at injection — the
    /// per-pair burst size, the number finer partitioning must tame.
    pub mailbox_max: u64,
    /// Events still pending in the wheel after the window (live + stale).
    pub wheel_depth: u64,
    /// Packets parked in the arena after the window.
    pub arena_live: u64,
    /// Arena high-water mark (allocated slots; never shrinks).
    pub arena_hiwater: u64,
    /// Wall time this partition's *thread* spent blocked on the window's
    /// two barriers (thread-attributed: partitions sharing a thread
    /// report the same value). Nondeterministic.
    pub wall_barrier_ns: u64,
    /// Wall time spent advancing this partition through the window.
    /// Nondeterministic.
    pub wall_window_ns: u64,
}

/// Aggregate progress snapshot handed to the heartbeat hook once per
/// window (by exactly one thread, after all partitions finished the
/// previous window).
#[derive(Debug, Clone, Copy)]
pub struct Heartbeat {
    /// Windows completed so far.
    pub round: u64,
    /// Virtual end of the last completed window, in nanoseconds.
    pub now_ns: u64,
    /// Sum of the progress-probe results across all partitions (e.g.
    /// flows completed), or 0 when no probe is installed.
    pub done: u64,
    /// Partition count, for rate math in the sink.
    pub parts: usize,
}

/// A [`ShardHooks::progress`] probe: `(partition rank, partition sim) ->
/// cumulative units done`.
pub type ProgressProbe<'a, P> = &'a (dyn Fn(usize, &mut Simulator<P>) -> u64 + Sync);

/// Optional observers for a sharded run. Everything defaults to off, and
/// the off path costs one branch per partition per window — the same
/// cold-`None` contract as the engine's flight recorder.
pub struct ShardHooks<'a, P: Payload> {
    /// Collect a [`WindowTelemetry`] record per partition per window.
    pub telemetry: bool,
    /// Per-partition progress probe, run after each window on the thread
    /// owning the partition: returns cumulative "units done" (scenario
    /// defined — e.g. completed flows). Sums feed the heartbeat.
    pub progress: Option<ProgressProbe<'a, P>>,
    /// Called once per window with the aggregate [`Heartbeat`]. Intended
    /// for stderr progress lines; never write run output here (it fires
    /// on an arbitrary worker thread).
    pub heartbeat: Option<&'a (dyn Fn(&Heartbeat) + Sync)>,
}

impl<P: Payload> Default for ShardHooks<'_, P> {
    fn default() -> Self {
        ShardHooks {
            telemetry: false,
            progress: None,
            heartbeat: None,
        }
    }
}

/// What [`run_sharded`] returns: per-partition results and hygiene, in
/// partition order, plus run-shape counters.
pub struct ShardRun<T> {
    /// One entry per partition, in rank order, from the finish closure.
    pub results: Vec<T>,
    /// Per-partition hygiene snapshots taken after the run ended. At a
    /// natural drain `live_packets` must sum to zero across all entries;
    /// a horizon cut legitimately leaves in-flight packets behind.
    pub hygiene: Vec<HygieneReport>,
    /// Number of barrier rounds executed.
    pub rounds: u64,
    /// Total cross-partition messages injected.
    pub cross_messages: u64,
    /// Per-window, per-partition runtime records in canonical
    /// `(window, part)` order — `Some` iff [`ShardHooks::telemetry`] was
    /// set. Virtual-time fields are byte-identical for any thread count.
    pub telemetry: Option<Vec<WindowTelemetry>>,
}

/// Shared coordination state for one sharded run.
struct Coord<P: Payload> {
    /// `mail[dst][src]`: messages deposited by `src` for `dst` this round.
    /// Uncontended by construction (one writer per slot, barrier-separated
    /// from the reader), so the mutexes never block.
    mail: Vec<Vec<Mutex<Vec<OutMsg<P>>>>>,
    /// Per-partition lookahead published once after build.
    lookahead: Vec<Mutex<Option<SimDuration>>>,
    /// Per-partition next-event time published each round after injection.
    mins: Vec<Mutex<Option<u64>>>,
    barrier: Barrier,
    rounds: AtomicU64,
    cross_messages: AtomicU64,
    /// Per-partition cumulative progress units (probe results), read by
    /// the heartbeat leader one barrier later.
    progress: Vec<AtomicU64>,
    /// Telemetry records parked by each worker at run end; `run_sharded`
    /// sorts them into canonical `(window, part)` order.
    telemetry: Mutex<Vec<WindowTelemetry>>,
}

/// Run a partitioned scenario to completion (or `horizon`) on up to
/// `threads` worker threads.
///
/// `build(rank, handle)` constructs partition `rank`'s simulator — nodes,
/// links, portals via [`ShardHandle::add_portal`], and any initial events —
/// and is called on the thread that will own the partition (a
/// [`Simulator`] never migrates). `finish(rank, sim)` runs after the
/// barrier loop ends and extracts the partition's result.
///
/// Partitions are assigned to threads round-robin (`rank % threads`);
/// because all scheduling decisions are partition-indexed, the output is
/// byte-identical for any `threads >= 1`.
pub fn run_sharded<P, T, B, F>(
    parts: usize,
    threads: usize,
    horizon: Option<SimTime>,
    build: B,
    finish: F,
) -> ShardRun<T>
where
    P: Payload + Send,
    T: Send,
    B: Fn(usize, &mut ShardHandle<P>) -> Simulator<P> + Sync,
    F: Fn(usize, &mut Simulator<P>) -> T + Sync,
{
    run_sharded_with(
        parts,
        threads,
        horizon,
        ShardHooks::default(),
        build,
        finish,
    )
}

/// [`run_sharded`] with observers attached — window telemetry, progress
/// probe, heartbeat (see [`ShardHooks`]). With default hooks this is
/// exactly `run_sharded`.
pub fn run_sharded_with<P, T, B, F>(
    parts: usize,
    threads: usize,
    horizon: Option<SimTime>,
    hooks: ShardHooks<'_, P>,
    build: B,
    finish: F,
) -> ShardRun<T>
where
    P: Payload + Send,
    T: Send,
    B: Fn(usize, &mut ShardHandle<P>) -> Simulator<P> + Sync,
    F: Fn(usize, &mut Simulator<P>) -> T + Sync,
{
    assert!(parts >= 1, "need at least one partition");
    let threads = threads.clamp(1, parts);

    let coord = Coord::<P> {
        mail: (0..parts)
            .map(|_| (0..parts).map(|_| Mutex::new(Vec::new())).collect())
            .collect(),
        lookahead: (0..parts).map(|_| Mutex::new(None)).collect(),
        mins: (0..parts).map(|_| Mutex::new(None)).collect(),
        barrier: Barrier::new(threads),
        rounds: AtomicU64::new(0),
        cross_messages: AtomicU64::new(0),
        progress: (0..parts).map(|_| AtomicU64::new(0)).collect(),
        telemetry: Mutex::new(Vec::new()),
    };
    let slots: Mutex<Vec<Option<(T, HygieneReport)>>> =
        Mutex::new((0..parts).map(|_| None).collect());

    std::thread::scope(|scope| {
        for tid in 0..threads {
            let coord = &coord;
            let slots = &slots;
            let build = &build;
            let finish = &finish;
            let hooks = &hooks;
            scope.spawn(move || {
                shard_worker(
                    tid, threads, parts, horizon, hooks, coord, slots, build, finish,
                );
            });
        }
    });

    let mut results = Vec::with_capacity(parts);
    let mut hygiene = Vec::with_capacity(parts);
    for (rank, slot) in slots.into_inner().unwrap().into_iter().enumerate() {
        let (r, h) = slot.unwrap_or_else(|| panic!("partition {rank} produced no result"));
        results.push(r);
        hygiene.push(h);
    }
    let telemetry = hooks.telemetry.then(|| {
        let mut t = coord.telemetry.into_inner().unwrap();
        t.sort_by_key(|r| (r.window, r.part));
        t
    });
    ShardRun {
        results,
        hygiene,
        rounds: coord.rounds.load(Ordering::Relaxed),
        cross_messages: coord.cross_messages.load(Ordering::Relaxed),
        telemetry,
    }
}

/// One worker thread's life: build owned partitions, run the two-barrier
/// round loop, extract results. All threads compute the same window bounds
/// from the same published state, so no leader election is needed for
/// control flow (the barrier leader only bumps the round counter).
#[allow(clippy::too_many_arguments)]
fn shard_worker<P, T, B, F>(
    tid: usize,
    threads: usize,
    parts: usize,
    horizon: Option<SimTime>,
    hooks: &ShardHooks<'_, P>,
    coord: &Coord<P>,
    slots: &Mutex<Vec<Option<(T, HygieneReport)>>>,
    build: &B,
    finish: &F,
) where
    P: Payload + Send,
    T: Send,
    B: Fn(usize, &mut ShardHandle<P>) -> Simulator<P> + Sync,
    F: Fn(usize, &mut Simulator<P>) -> T + Sync,
{
    // Build the partitions this thread owns (round-robin assignment).
    let mut owned: Vec<(usize, Simulator<P>, Outbox<P>)> = Vec::new();
    for rank in (tid..parts).step_by(threads) {
        let outbox: Outbox<P> = Rc::new(RefCell::new(Vec::new()));
        let mut handle = ShardHandle {
            part: rank,
            parts,
            outbox: Rc::clone(&outbox),
            min_extra_delay: None,
        };
        let sim = build(rank, &mut handle);
        *coord.lookahead[rank].lock().unwrap() = handle.min_extra_delay;
        owned.push((rank, sim, outbox));
    }
    coord.barrier.wait();

    // Global lookahead: the smallest portal delay anywhere. `None` means no
    // portals exist — partitions are independent and one unbounded window
    // suffices.
    let lookahead: Option<SimDuration> = coord
        .lookahead
        .iter()
        .filter_map(|m| *m.lock().unwrap())
        .min();
    let horizon_ns = horizon.map_or(u64::MAX, |h| h.as_nanos());
    let mut local_cross: u64 = 0;
    // Telemetry state, all dormant unless the hook is armed: records for
    // the partitions this thread owns, plus per-partition scratch for the
    // phases of the window currently in flight.
    let mut tele: Vec<WindowTelemetry> = Vec::new();
    let mut scratch: Vec<(u64, u64, u64)> = vec![(0, 0, 0); owned.len()]; // (deposited, injected, mailbox_max)
    let mut round: u64 = 0;
    let mut last_w_end: u64 = 0;

    loop {
        // Phase A: deposit this round's outboxes into the mailboxes.
        for (i, (rank, _, outbox)) in owned.iter().enumerate() {
            let mut deposited = 0u64;
            for msg in outbox.borrow_mut().drain(..) {
                coord.mail[msg.dst_part][*rank].lock().unwrap().push(msg);
                deposited += 1;
            }
            if hooks.telemetry {
                scratch[i] = (deposited, 0, 0);
            }
        }
        let mut wall_barrier = std::time::Duration::ZERO;
        let t0 = hooks.telemetry.then(std::time::Instant::now);
        let a_leader = coord.barrier.wait().is_leader();
        if let Some(t0) = t0 {
            wall_barrier += t0.elapsed();
        }
        // Heartbeat: the Phase A barrier orders every probe store from the
        // previous window before this read, so one thread reports an exact
        // global snapshot (round 0 has nothing to report).
        if a_leader && round > 0 {
            if let Some(beat) = hooks.heartbeat {
                let done = coord
                    .progress
                    .iter()
                    .map(|p| p.load(Ordering::Relaxed))
                    .sum();
                beat(&Heartbeat {
                    round,
                    now_ns: last_w_end,
                    done,
                    parts,
                });
            }
        }

        // Phase B: inject inbound messages in canonical order, publish the
        // partition's next-event time.
        for (i, (rank, sim, _)) in owned.iter_mut().enumerate() {
            let mut inbound: Vec<(u64, usize, usize, OutMsg<P>)> = Vec::new();
            let mut mailbox_max = 0u64;
            for src in 0..parts {
                let batch = std::mem::take(&mut *coord.mail[*rank][src].lock().unwrap());
                mailbox_max = mailbox_max.max(batch.len() as u64);
                for (idx, msg) in batch.into_iter().enumerate() {
                    inbound.push((msg.at.as_nanos(), src, idx, msg));
                }
            }
            inbound.sort_by_key(|&(at, src, idx, _)| (at, src, idx));
            local_cross += inbound.len() as u64;
            if hooks.telemetry {
                scratch[i].1 = inbound.len() as u64;
                scratch[i].2 = mailbox_max;
            }
            for (_, _, _, msg) in inbound {
                sim.core()
                    .inject_arrival(msg.at, msg.dst_node, msg.dst_link, msg.pkt);
            }
            *coord.mins[*rank].lock().unwrap() = sim.next_event_time().map(SimTime::as_nanos);
        }
        let t0 = hooks.telemetry.then(std::time::Instant::now);
        if coord.barrier.wait().is_leader() {
            coord.rounds.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(t0) = t0 {
            wall_barrier += t0.elapsed();
        }

        // Phase C: every thread computes the same window from the published
        // mins (stable until the next round's Phase B, which all threads
        // must pass Phase A's barrier to reach). M == None means globally
        // drained: no events, no mail, no outbox entries anywhere.
        let m = coord.mins.iter().filter_map(|m| *m.lock().unwrap()).min();
        let w_end = match m {
            None => break,
            Some(m) if m > horizon_ns => break,
            Some(m) => lookahead
                .map_or(u64::MAX, |l| m.saturating_add(l.as_nanos()))
                .min(horizon_ns),
        };

        // Phase D: advance every partition through the window. `run_until`
        // is inclusive, and any message generated at t <= w_end has
        // at >= M + L = w_end, so nothing injected next round lands in a
        // partition's past.
        for (i, (rank, sim, _)) in owned.iter_mut().enumerate() {
            let before = if hooks.telemetry {
                sim.events_processed()
            } else {
                0
            };
            let t0 = hooks.telemetry.then(std::time::Instant::now);
            sim.run_until(SimTime::from_nanos(w_end));
            if hooks.telemetry {
                let (deposited, injected, mailbox_max) = scratch[i];
                tele.push(WindowTelemetry {
                    window: round,
                    part: *rank,
                    w_end_ns: w_end,
                    events: sim.events_processed() - before,
                    deposited,
                    injected,
                    mailbox_max,
                    wheel_depth: sim.pending_events() as u64,
                    arena_live: sim.live_packets() as u64,
                    arena_hiwater: sim.arena_high_water() as u64,
                    wall_barrier_ns: wall_barrier.as_nanos() as u64,
                    wall_window_ns: t0.map_or(0, |t| t.elapsed().as_nanos() as u64),
                });
            }
            if let Some(probe) = hooks.progress {
                let done = probe(*rank, sim);
                coord.progress[*rank].store(done, Ordering::Relaxed);
            }
        }
        round += 1;
        last_w_end = w_end;
    }

    // Align clocks at the horizon (processes nothing: remaining events, if
    // any, are strictly beyond it) and extract results.
    let mut out = Vec::new();
    for (rank, sim, _) in &mut owned {
        if let Some(h) = horizon {
            sim.run_until(h);
        }
        let hygiene = sim.hygiene_report();
        out.push((*rank, finish(*rank, sim), hygiene));
    }
    coord
        .cross_messages
        .fetch_add(local_cross, Ordering::Relaxed);
    if hooks.telemetry {
        coord.telemetry.lock().unwrap().extend(tele);
    }
    let mut slots = slots.lock().unwrap();
    for (rank, result, hygiene) in out {
        slots[rank] = Some((result, hygiene));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::packet::FlowId;
    use crate::time::Rate;

    /// Counts arrivals and replies with a decremented hop budget until it
    /// hits zero, bouncing packets back through its egress link.
    struct Bouncer {
        egress: LinkId,
        arrivals: Vec<(u64, u64)>, // (t_ns, remaining hops)
    }

    impl Node<u64> for Bouncer {
        fn on_packet(&mut self, pkt: Packet<u64>, ctx: &mut Ctx<'_, u64>) {
            self.arrivals.push((ctx.now().as_nanos(), pkt.payload));
            if pkt.payload > 0 {
                let reply = Packet::new(pkt.flow, pkt.dst, pkt.src, pkt.size, pkt.payload - 1);
                ctx.send(self.egress, reply);
            }
        }
        fn on_timer(&mut self, _id: TimerId, _t: u64, _ctx: &mut Ctx<'_, u64>) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// Two partitions, one bouncer each, wired symmetrically:
    /// bouncer -> zero-delay egress link -> portal (5 ms extra) -> peer.
    /// Layout per partition: node 0 = bouncer (ingress stub link 0),
    /// node 1 = portal, link 1 = egress.
    fn build_pingpong(rank: usize, handle: &mut ShardHandle<u64>) -> Simulator<u64> {
        let peer = 1 - rank;
        let mut sim: Simulator<u64> = Simulator::new(7 + rank as u64);
        let egress_guess = LinkId(1);
        let bouncer = sim.add_node(Box::new(Bouncer {
            egress: egress_guess,
            arrivals: Vec::new(),
        }));
        assert_eq!(bouncer, NodeId(0));
        // Link 0: ingress stub (stats anchor for injected arrivals).
        let ingress = sim.add_link(LinkSpec::drop_tail(
            bouncer,
            bouncer,
            Rate::from_gbps(1),
            SimDuration::ZERO,
            1 << 20,
        ));
        let portal = handle.add_portal(
            &mut sim,
            peer,
            bouncer,
            ingress,
            SimDuration::from_millis(5),
        );
        let egress = sim.add_link(LinkSpec::drop_tail(
            bouncer,
            portal,
            Rate::from_gbps(1),
            SimDuration::ZERO,
            1 << 20,
        ));
        assert_eq!(egress, egress_guess);
        // Partition 0 serves: one packet, 6 hops of budget.
        if rank == 0 {
            let pkt = Packet::new(FlowId(1), bouncer, bouncer, 1000, 6u64);
            sim.core().send_on(egress, pkt);
        }
        sim
    }

    fn run_pingpong(threads: usize) -> (Vec<Vec<(u64, u64)>>, ShardRun<()>) {
        let log: Mutex<Vec<Vec<(u64, u64)>>> = Mutex::new(vec![Vec::new(), Vec::new()]);
        let run = run_sharded(
            2,
            threads,
            None,
            build_pingpong,
            |rank, sim: &mut Simulator<u64>| {
                let b = sim.node_as::<Bouncer>(NodeId(0)).unwrap();
                log.lock().unwrap()[rank] = b.arrivals.clone();
            },
        );
        (log.into_inner().unwrap(), run)
    }

    #[test]
    fn pingpong_crosses_shards_on_schedule() {
        let (log, run) = run_pingpong(1);
        // 6 hops of budget -> 7 arrivals total, alternating partitions:
        // hop k arrives at k * (serialization + 5 ms). 1000 B at 1 Gbps
        // = 8 us serialization on the egress link.
        let hop_ns = 8_000 + 5_000_000;
        assert_eq!(log[1].len(), 4); // odd hops 1, 3, 5, 7 land on partition 1
        assert_eq!(log[0].len(), 3); // even hops 2, 4, 6 on partition 0
        for (i, &(t, budget)) in log[1].iter().enumerate() {
            let hop = (2 * i + 1) as u64;
            assert_eq!(t, hop * hop_ns, "hop {hop} arrival time");
            assert_eq!(budget, 7 - hop);
        }
        for (i, &(t, budget)) in log[0].iter().enumerate() {
            let hop = (2 * i + 2) as u64;
            assert_eq!(t, hop * hop_ns, "hop {hop} arrival time");
            assert_eq!(budget, 7 - hop);
        }
        assert_eq!(run.cross_messages, 7);
        let live: usize = run.hygiene.iter().map(|h| h.live_packets).sum();
        assert_eq!(live, 0, "cross-shard run must drain its arenas");
    }

    #[test]
    fn thread_count_is_invisible() {
        let (log1, run1) = run_pingpong(1);
        let (log2, run2) = run_pingpong(2);
        assert_eq!(log1, log2);
        assert_eq!(run1.rounds, run2.rounds);
        assert_eq!(run1.cross_messages, run2.cross_messages);
    }

    #[test]
    fn horizon_cuts_the_run_short() {
        // 5 ms per hop: a 12 ms horizon admits hops 1 and 2 only.
        let log: Mutex<Vec<Vec<(u64, u64)>>> = Mutex::new(vec![Vec::new(), Vec::new()]);
        let run = run_sharded(
            2,
            2,
            Some(SimTime::from_nanos(12_000_000)),
            build_pingpong,
            |rank, sim: &mut Simulator<u64>| {
                let b = sim.node_as::<Bouncer>(NodeId(0)).unwrap();
                log.lock().unwrap()[rank] = b.arrivals.clone();
            },
        );
        let log = log.into_inner().unwrap();
        assert_eq!(log[1].len(), 1);
        assert_eq!(log[0].len(), 1);
        // Hop 3 was cut off mid-flight: its packet sits in an arena.
        let live: usize = run.hygiene.iter().map(|h| h.live_packets).sum();
        assert!(live > 0, "horizon cut must strand the in-flight hop");
    }

    #[test]
    // The assert fires on a worker; `thread::scope` re-raises it under its
    // own message.
    #[should_panic(expected = "scoped thread panicked")]
    fn zero_lookahead_is_rejected() {
        run_sharded(
            2,
            1,
            None,
            |rank, handle: &mut ShardHandle<u64>| {
                let mut sim: Simulator<u64> = Simulator::new(rank as u64);
                let n = sim.add_node(Box::new(Bouncer {
                    egress: LinkId(0),
                    arrivals: Vec::new(),
                }));
                handle.add_portal(&mut sim, 1 - rank, n, LinkId(0), SimDuration::ZERO);
                sim
            },
            |_, _| (),
        );
    }

    /// Virtual-time view of a telemetry record — everything that must be
    /// byte-identical across thread counts (wall_* fields excluded).
    fn virtual_fields(t: &WindowTelemetry) -> (u64, usize, u64, u64, u64, u64, u64, u64, u64, u64) {
        (
            t.window,
            t.part,
            t.w_end_ns,
            t.events,
            t.deposited,
            t.injected,
            t.mailbox_max,
            t.wheel_depth,
            t.arena_live,
            t.arena_hiwater,
        )
    }

    #[test]
    fn telemetry_virtual_fields_are_thread_invariant() {
        let run_with = |threads: usize| {
            run_sharded_with(
                2,
                threads,
                None,
                ShardHooks {
                    telemetry: true,
                    ..ShardHooks::default()
                },
                build_pingpong,
                |_, _: &mut Simulator<u64>| (),
            )
        };
        let t1 = run_with(1).telemetry.expect("telemetry armed");
        let t2 = run_with(2).telemetry.expect("telemetry armed");
        assert!(!t1.is_empty());
        // Canonical order, one record per (window, part) that executed.
        for w in t1.windows(2) {
            assert!((w[0].window, w[0].part) < (w[1].window, w[1].part));
        }
        let v1: Vec<_> = t1.iter().map(virtual_fields).collect();
        let v2: Vec<_> = t2.iter().map(virtual_fields).collect();
        assert_eq!(v1, v2, "virtual telemetry must not see the thread count");
        // Sanity on content: windows fire events and the cross totals
        // reconcile with the run counters.
        let events: u64 = t1.iter().map(|t| t.events).sum();
        assert!(events > 0);
        let injected: u64 = t1.iter().map(|t| t.injected).sum();
        assert_eq!(injected, 7, "each hop crosses once");
    }

    #[test]
    fn telemetry_off_returns_none() {
        let (_, run) = run_pingpong(2);
        assert!(run.telemetry.is_none());
    }

    #[test]
    fn progress_probe_feeds_heartbeat() {
        let beats: Mutex<Vec<(u64, u64, u64)>> = Mutex::new(Vec::new());
        let beat_sink = |b: &Heartbeat| {
            beats.lock().unwrap().push((b.round, b.now_ns, b.done));
        };
        let probe = |_rank: usize, sim: &mut Simulator<u64>| {
            sim.node_as::<Bouncer>(NodeId(0)).unwrap().arrivals.len() as u64
        };
        let run = run_sharded_with(
            2,
            2,
            None,
            ShardHooks {
                telemetry: false,
                progress: Some(&probe),
                heartbeat: Some(&beat_sink),
            },
            build_pingpong,
            |_, _: &mut Simulator<u64>| (),
        );
        let beats = beats.into_inner().unwrap();
        // One beat per round after the first; rounds strictly increase and
        // done (total arrivals) is monotone, ending at the full 7.
        assert!(!beats.is_empty());
        for w in beats.windows(2) {
            assert!(w[0].0 < w[1].0, "rounds increase");
            assert!(w[0].1 <= w[1].1, "virtual time advances");
            assert!(w[0].2 <= w[1].2, "progress is monotone");
        }
        assert_eq!(beats.last().unwrap().2, 7);
        assert!(run.rounds as usize >= beats.len());
    }

    #[test]
    fn portal_free_partitions_run_independently() {
        // No portals: lookahead is None, each partition drains in one
        // unbounded window.
        let run = run_sharded(
            3,
            2,
            None,
            |rank, _handle: &mut ShardHandle<u64>| {
                let mut sim: Simulator<u64> = Simulator::new(rank as u64);
                let n = sim.add_node(Box::new(Bouncer {
                    egress: LinkId(0),
                    arrivals: Vec::new(),
                }));
                let l = sim.add_link(LinkSpec::drop_tail(
                    n,
                    n,
                    Rate::from_gbps(1),
                    SimDuration::from_micros(10),
                    1 << 20,
                ));
                sim.core()
                    .send_on(l, Packet::new(FlowId(0), n, n, 500, 0u64));
                sim
            },
            |_, sim: &mut Simulator<u64>| sim.node_as::<Bouncer>(NodeId(0)).unwrap().arrivals.len(),
        );
        assert_eq!(run.results, vec![1, 1, 1]);
        assert_eq!(run.cross_messages, 0);
    }
}

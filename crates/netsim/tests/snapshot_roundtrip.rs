//! Engine snapshot round-trip tests.
//!
//! The contract under test: saving mid-run, rebuilding the topology from
//! scratch, restoring, and running on must be *observationally identical*
//! to never having stopped — same delivery times, same stats, same event
//! count, and a re-save at the same instant must be byte-identical to the
//! original snapshot.

use netsim::engine::{Ctx, Simulator};
use netsim::link::LinkSpec;
use netsim::loss::LossModel;
use netsim::node::{Node, TimerId};
use netsim::queue::{CoDel, DropTail};
use netsim::snap::{SnapError, SnapReader, SnapWriter};
use netsim::time::{Rate, SimDuration, SimTime};
use netsim::{FlowId, LinkId, NodeId, Packet};
use std::any::Any;

/// Chatty source: every tick it sends a random burst of randomly sized
/// packets and re-arms its timer at a random interval, so the engine RNG,
/// the timer table, the link queue, and in-flight packets are all hot at
/// any save point.
struct Chatter {
    out: LinkId,
    peer: NodeId,
    sent: u64,
    timer: Option<(TimerId, u64)>,
}

impl Node<u64> for Chatter {
    fn on_packet(&mut self, _pkt: Packet<u64>, _ctx: &mut Ctx<'_, u64>) {}
    fn on_timer(&mut self, _id: TimerId, _token: u64, ctx: &mut Ctx<'_, u64>) {
        let burst = 1 + ctx.rng().index(4);
        for _ in 0..burst {
            let size = 200 + ctx.rng().index(1301) as u32;
            self.sent += 1;
            let src = ctx.node_id();
            ctx.send(
                self.out,
                Packet::new(FlowId(1), src, self.peer, size, self.sent),
            );
        }
        let gap = SimDuration::from_micros(100 + ctx.rng().index(900) as u64);
        let tok = self.sent;
        self.timer = Some((ctx.set_timer(gap, tok), tok));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Sink: records `(time, tag)` for every delivery.
struct Sink {
    got: Vec<(SimTime, u64)>,
}

impl Node<u64> for Sink {
    fn on_packet(&mut self, pkt: Packet<u64>, ctx: &mut Ctx<'_, u64>) {
        self.got.push((ctx.now(), pkt.payload));
    }
    fn on_timer(&mut self, _id: TimerId, _token: u64, _ctx: &mut Ctx<'_, u64>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Build the standard test rig: chatter -> bursty-loss bottleneck -> sink.
/// `kick` arms the chatter's first timer; a rig being restored from a
/// snapshot must stay inert (the armed timer comes back with the snapshot).
fn build(seed: u64, kick: bool) -> (Simulator<u64>, NodeId, NodeId, LinkId) {
    let mut sim: Simulator<u64> = Simulator::new(seed);
    let a = sim.add_node(Box::new(Chatter {
        out: LinkId(0),
        peer: NodeId(1),
        sent: 0,
        timer: None,
    }));
    let b = sim.add_node(Box::new(Sink { got: vec![] }));
    let l = sim.add_link(LinkSpec {
        src: a,
        dst: b,
        rate: Rate::from_mbps(2),
        delay: SimDuration::from_millis(5),
        queue: Box::new(DropTail::new(6000)),
        loss: LossModel::wifi_bursty(),
    });
    // The chatter captured LinkId(0)/NodeId(1) above; assert the guess held.
    assert_eq!(l, LinkId(0));
    assert_eq!(b, NodeId(1));
    if kick {
        sim.core().set_timer(a, SimDuration::ZERO, 0);
    }
    (sim, a, b, l)
}

fn ms(x: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(x)
}

/// Everything observable we compare between runs.
#[derive(Debug, PartialEq)]
struct Observed {
    now: SimTime,
    events_processed: u64,
    deliveries: Vec<(SimTime, u64)>,
    sent: u64,
    tx_packets: u64,
    wire_lost: u64,
    delivered: u64,
    q_enqueued: u64,
    q_dropped: u64,
}

fn observe(sim: &Simulator<u64>, a: NodeId, b: NodeId, l: LinkId) -> Observed {
    let ls = sim.link_stats(l);
    let qs = sim.queue_stats(l);
    Observed {
        now: sim.now(),
        events_processed: sim.events_processed(),
        deliveries: sim.node_as::<Sink>(b).unwrap().got.clone(),
        sent: sim.node_as::<Chatter>(a).unwrap().sent,
        tx_packets: ls.tx_packets,
        wire_lost: ls.wire_lost,
        delivered: ls.delivered,
        q_enqueued: qs.enqueued,
        q_dropped: qs.dropped,
    }
}

#[test]
fn restore_resumes_bit_identically() {
    // Uninterrupted reference run to 200ms.
    let (mut reference, ra, rb, rl) = build(42, true);
    reference.run_until(ms(200));
    let want = observe(&reference, ra, rb, rl);

    // Interrupted run: stop at 60ms, snapshot, throw the simulator away.
    let (mut first, fa, fb, _fl) = build(42, true);
    first.run_until(ms(60));
    let mut w = SnapWriter::new();
    first.save_snapshot(&mut w).unwrap();
    // Node dynamic state rides alongside the engine snapshot (hosts have
    // their own codecs; the test carries it by hand).
    let chat_sent = first.node_as::<Chatter>(fa).unwrap().sent;
    let chat_timer = first.node_as::<Chatter>(fa).unwrap().timer;
    let sink_got = first.node_as::<Sink>(fb).unwrap().got.clone();
    let bytes = w.into_bytes();
    drop(first);

    // Fresh topology, restore, resume to 200ms.
    let (mut resumed, a2, b2, l2) = build(42, false);
    let mut r = SnapReader::new(&bytes);
    resumed.restore_snapshot(&mut r).unwrap();
    assert_eq!(r.remaining(), 0, "snapshot has trailing bytes");
    {
        let c = resumed.node_as_mut::<Chatter>(a2).unwrap();
        c.sent = chat_sent;
        c.timer = chat_timer;
    }
    resumed.node_as_mut::<Sink>(b2).unwrap().got = sink_got;
    assert_eq!(resumed.now(), ms(60));
    resumed.run_until(ms(200));

    let got = observe(&resumed, a2, b2, l2);
    assert_eq!(got, want);
}

#[test]
fn resave_after_restore_is_byte_identical() {
    let (mut first, _a, _b, _l) = build(7, true);
    first.run_until(ms(45));
    let mut w1 = SnapWriter::new();
    first.save_snapshot(&mut w1).unwrap();
    let bytes1 = w1.into_bytes();

    let (mut resumed, _a2, _b2, _l2) = build(7, false);
    resumed
        .restore_snapshot(&mut SnapReader::new(&bytes1))
        .unwrap();
    let mut w2 = SnapWriter::new();
    resumed.save_snapshot(&mut w2).unwrap();
    assert_eq!(
        bytes1,
        w2.into_bytes(),
        "save -> restore -> save must be a fixed point"
    );
}

#[test]
fn saving_does_not_perturb_the_run() {
    let (mut plain, pa, pb, pl) = build(9, true);
    plain.run_until(ms(150));
    let want = observe(&plain, pa, pb, pl);

    let (mut saved, sa, sb, sl) = build(9, true);
    // Snapshot at several boundaries along the way; the run must not notice.
    for t in [20u64, 40, 60, 80, 100] {
        saved.run_until(ms(t));
        let mut w = SnapWriter::new();
        saved.save_snapshot(&mut w).unwrap();
    }
    saved.run_until(ms(150));
    assert_eq!(observe(&saved, sa, sb, sl), want);
}

#[test]
fn snapshot_refuses_codel_queues() {
    let mut sim: Simulator<u64> = Simulator::new(1);
    let a = sim.add_node(Box::new(Sink { got: vec![] }));
    let b = sim.add_node(Box::new(Sink { got: vec![] }));
    sim.add_link(LinkSpec {
        src: a,
        dst: b,
        rate: Rate::from_mbps(10),
        delay: SimDuration::from_millis(1),
        queue: Box::new(CoDel::new(100_000)),
        loss: LossModel::None,
    });
    let mut w = SnapWriter::new();
    match sim.save_snapshot(&mut w) {
        Err(SnapError::Unsupported(msg)) => assert!(msg.contains("drop-tail"), "{msg}"),
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

#[test]
fn restore_refuses_used_simulator() {
    let (mut first, _a, _b, _l) = build(3, true);
    first.run_until(ms(30));
    let mut w = SnapWriter::new();
    first.save_snapshot(&mut w).unwrap();
    let bytes = w.into_bytes();

    // `first` has already run; restoring into it must fail.
    match first.restore_snapshot(&mut SnapReader::new(&bytes)) {
        Err(SnapError::Unsupported(msg)) => assert!(msg.contains("freshly built"), "{msg}"),
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

#[test]
fn restore_refuses_link_count_mismatch() {
    let (mut first, _a, _b, _l) = build(5, true);
    first.run_until(ms(30));
    let mut w = SnapWriter::new();
    first.save_snapshot(&mut w).unwrap();
    let bytes = w.into_bytes();

    // Fresh sim with an extra link: config drift must be detected.
    let (mut fresh, a2, b2, _l2) = build(5, false);
    fresh.add_link(LinkSpec {
        src: b2,
        dst: a2,
        rate: Rate::from_mbps(1),
        delay: SimDuration::from_millis(1),
        queue: Box::new(DropTail::new(10_000)),
        loss: LossModel::None,
    });
    match fresh.restore_snapshot(&mut SnapReader::new(&bytes)) {
        Err(SnapError::Unsupported(msg)) => assert!(msg.contains("config drift"), "{msg}"),
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

//! Substrate conservation laws, checked over randomized traffic with the
//! trace hook: every packet offered to the network is eventually delivered,
//! dropped by a queue, or dropped by the wire — nothing is duplicated or
//! lost silently. Cases are drawn from a seeded [`SimRng`] so every run
//! checks the same corpus.

use netsim::engine::TraceEvent;
use netsim::link::LinkSpec;
use netsim::loss::LossModel;
use netsim::node::{Node, TimerId};
use netsim::packet::{FlowId, Packet};
use netsim::queue::DropTail;
use netsim::rng::SimRng;
use netsim::time::{Rate, SimDuration};
use netsim::{Ctx, Simulator};
use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

struct Count(u64);
impl Node<u32> for Count {
    fn on_packet(&mut self, _p: Packet<u32>, _c: &mut Ctx<'_, u32>) {
        self.0 += 1;
    }
    fn on_timer(&mut self, _i: TimerId, _t: u64, _c: &mut Ctx<'_, u32>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn offered_equals_delivered_plus_dropped() {
    let mut gen = SimRng::new(0xC0_05E4);
    for case in 0..32 {
        let seed = gen.index(1000) as u64;
        let n = 1 + gen.index(399) as u64;
        let buf_pkts = 1 + gen.index(19) as u64;
        let loss_p = gen.uniform_range(0.0, 0.4);
        let rate_kbps = 50 + gen.index(4950) as u64;

        let mut sim: Simulator<u32> = Simulator::new(seed);
        let a = sim.add_node(Box::new(Count(0)));
        let b = sim.add_node(Box::new(Count(0)));
        let l = sim.add_link(LinkSpec {
            src: a,
            dst: b,
            rate: Rate::from_kbps(rate_kbps),
            delay: SimDuration::from_millis(5),
            queue: Box::new(DropTail::new(buf_pkts * 1500)),
            loss: LossModel::Bernoulli { p: loss_p },
        });

        let deliveries = Rc::new(RefCell::new(0u64));
        let queue_drops = Rc::new(RefCell::new(0u64));
        let wire_drops = Rc::new(RefCell::new(0u64));
        let (d2, q2, w2) = (deliveries.clone(), queue_drops.clone(), wire_drops.clone());
        sim.set_tracer(Box::new(move |_, ev| match ev {
            TraceEvent::Deliver { .. } => *d2.borrow_mut() += 1,
            TraceEvent::QueueDrop { .. } => *q2.borrow_mut() += 1,
            TraceEvent::WireDrop { .. } => *w2.borrow_mut() += 1,
            TraceEvent::TxStart { .. } => {}
        }));

        // Random-ish offered traffic: bursts with gaps.
        let mut rng = SimRng::new(seed ^ 77);
        let mut sent = 0u64;
        for i in 0..n {
            let burst = 1 + rng.index(5) as u64;
            for _ in 0..burst {
                sim.core()
                    .send_on(l, Packet::new(FlowId(i), a, b, 1500, 0u32));
                sent += 1;
            }
            // Let some time pass between bursts.
            let gap = SimDuration::from_micros(rng.index(20_000) as u64);
            let t = sim.now() + gap;
            sim.run_until(t);
        }
        sim.run_to_completion(sent * 10 + 1000);

        let delivered = *deliveries.borrow();
        let qd = *queue_drops.borrow();
        let wd = *wire_drops.borrow();
        assert_eq!(
            delivered + qd + wd,
            sent,
            "case {case} (seed {seed}): conservation violated"
        );
        // Node-level receive count agrees with the trace.
        assert_eq!(sim.node_as::<Count>(b).unwrap().0, delivered, "case {case}");
        // Link stats agree: transmitted = offered - queue drops.
        assert_eq!(sim.link_stats(l).tx_packets, sent - qd, "case {case}");
        assert_eq!(sim.link_stats(l).wire_lost, wd, "case {case}");
        assert_eq!(sim.queue_stats(l).dropped, qd, "case {case}");
        // Queue fully drained.
        assert_eq!(
            sim.queue_stats(l).enqueued,
            sim.queue_stats(l).dequeued,
            "case {case}"
        );
    }
}

//! Substrate conservation laws, checked over randomized traffic with the
//! trace hook: every packet offered to the network is eventually delivered,
//! dropped by a queue, or dropped by the wire — nothing is duplicated or
//! lost silently. Cases are drawn from a seeded [`SimRng`] so every run
//! checks the same corpus.

use netsim::engine::TraceEvent;
use netsim::link::LinkSpec;
use netsim::loss::LossModel;
use netsim::node::{Node, TimerId};
use netsim::packet::{FlowId, Packet};
use netsim::queue::DropTail;
use netsim::rng::SimRng;
use netsim::time::{Rate, SimDuration};
use netsim::{Ctx, Simulator};
use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

struct Count(u64);
impl Node<u32> for Count {
    fn on_packet(&mut self, _p: Packet<u32>, _c: &mut Ctx<'_, u32>) {
        self.0 += 1;
    }
    fn on_timer(&mut self, _i: TimerId, _t: u64, _c: &mut Ctx<'_, u32>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn offered_equals_delivered_plus_dropped() {
    let mut gen = SimRng::new(0xC0_05E4);
    for case in 0..32 {
        let seed = gen.index(1000) as u64;
        let n = 1 + gen.index(399) as u64;
        let buf_pkts = 1 + gen.index(19) as u64;
        let loss_p = gen.uniform_range(0.0, 0.4);
        let rate_kbps = 50 + gen.index(4950) as u64;

        let mut sim: Simulator<u32> = Simulator::new(seed);
        let a = sim.add_node(Box::new(Count(0)));
        let b = sim.add_node(Box::new(Count(0)));
        let l = sim.add_link(LinkSpec {
            src: a,
            dst: b,
            rate: Rate::from_kbps(rate_kbps),
            delay: SimDuration::from_millis(5),
            queue: Box::new(DropTail::new(buf_pkts * 1500)),
            loss: LossModel::Bernoulli { p: loss_p },
        });

        let deliveries = Rc::new(RefCell::new(0u64));
        let queue_drops = Rc::new(RefCell::new(0u64));
        let wire_drops = Rc::new(RefCell::new(0u64));
        let (d2, q2, w2) = (deliveries.clone(), queue_drops.clone(), wire_drops.clone());
        sim.set_tracer(Box::new(move |_, ev| match ev {
            TraceEvent::Deliver { .. } => *d2.borrow_mut() += 1,
            TraceEvent::QueueDrop { .. } => *q2.borrow_mut() += 1,
            TraceEvent::WireDrop { .. } => *w2.borrow_mut() += 1,
            TraceEvent::TxStart { .. } => {}
            // No faults installed in this corpus; these must never fire.
            TraceEvent::FaultDrop { .. }
            | TraceEvent::Blackhole { .. }
            | TraceEvent::Duplicate { .. }
            | TraceEvent::CorruptDrop { .. } => panic!("fault event without faults"),
        }));

        // Random-ish offered traffic: bursts with gaps.
        let mut rng = SimRng::new(seed ^ 77);
        let mut sent = 0u64;
        for i in 0..n {
            let burst = 1 + rng.index(5) as u64;
            for _ in 0..burst {
                sim.core()
                    .send_on(l, Packet::new(FlowId(i), a, b, 1500, 0u32));
                sent += 1;
            }
            // Let some time pass between bursts.
            let gap = SimDuration::from_micros(rng.index(20_000) as u64);
            let t = sim.now() + gap;
            sim.run_until(t);
        }
        sim.run_to_completion(sent * 10 + 1000);

        let delivered = *deliveries.borrow();
        let qd = *queue_drops.borrow();
        let wd = *wire_drops.borrow();
        assert_eq!(
            delivered + qd + wd,
            sent,
            "case {case} (seed {seed}): conservation violated"
        );
        // Node-level receive count agrees with the trace.
        assert_eq!(sim.node_as::<Count>(b).unwrap().0, delivered, "case {case}");
        // Link stats agree: transmitted = offered - queue drops.
        assert_eq!(sim.link_stats(l).tx_packets, sent - qd, "case {case}");
        assert_eq!(sim.link_stats(l).wire_lost, wd, "case {case}");
        assert_eq!(sim.queue_stats(l).dropped, qd, "case {case}");
        // Queue fully drained.
        assert_eq!(
            sim.queue_stats(l).enqueued,
            sim.queue_stats(l).dequeued,
            "case {case}"
        );
    }
}

/// Conservation with every fault class active at once: packets offered to a
/// faulted link are each accounted for exactly once (down-drop, queue drop,
/// wire drop, blackhole, corrupt-drop, or delivery), and duplication adds
/// copies that are themselves conserved.
#[test]
fn fault_pipeline_conserves_packets() {
    use netsim::time::SimTime;
    use netsim::FaultSpec;

    let mut gen = SimRng::new(0xFA_017);
    for case in 0..24 {
        let seed = gen.index(1000) as u64;
        let n = 50 + gen.index(300) as u64;
        let dup_p = gen.uniform_range(0.0, 0.4);
        let corrupt_p = gen.uniform_range(0.0, 0.3);
        let reorder_p = gen.uniform_range(0.0, 0.8);
        let loss_p = gen.uniform_range(0.0, 0.2);
        let t = |ms: u64| SimTime::ZERO + SimDuration::from_millis(ms);

        let mut sim: Simulator<u32> = Simulator::new(seed);
        let a = sim.add_node(Box::new(Count(0)));
        let b = sim.add_node(Box::new(Count(0)));
        let l = sim.add_link(LinkSpec {
            src: a,
            dst: b,
            rate: Rate::from_mbps(2),
            delay: SimDuration::from_millis(5),
            queue: Box::new(DropTail::new(8 * 1500)),
            loss: LossModel::Bernoulli { p: loss_p },
        });
        sim.set_link_faults(
            l,
            FaultSpec::none()
                .down_window(t(40), t(80))
                .blackhole_window(t(120), t(160))
                .with_duplication(dup_p)
                .with_corruption(corrupt_p)
                .with_reorder(reorder_p, SimDuration::from_millis(20))
                .rate_step(t(100), Rate::from_mbps(1))
                .delay_step(t(100), SimDuration::from_millis(15)),
        );

        let counts = Rc::new(RefCell::new([0u64; 7]));
        let c2 = counts.clone();
        sim.set_tracer(Box::new(move |_, ev| {
            let i = match ev {
                TraceEvent::Deliver { .. } => 0,
                TraceEvent::QueueDrop { .. } => 1,
                TraceEvent::WireDrop { .. } => 2,
                TraceEvent::FaultDrop { .. } => 3,
                TraceEvent::Blackhole { .. } => 4,
                TraceEvent::Duplicate { .. } => 5,
                TraceEvent::CorruptDrop { .. } => 6,
                TraceEvent::TxStart { .. } => return,
            };
            c2.borrow_mut()[i] += 1;
        }));

        let mut rng = SimRng::new(seed ^ 31);
        let mut sent = 0u64;
        for i in 0..n {
            sim.core()
                .send_on(l, Packet::new(FlowId(i), a, b, 1500, 0u32));
            sent += 1;
            let gap = SimDuration::from_micros(rng.index(10_000) as u64);
            let until = sim.now() + gap;
            sim.run_until(until);
        }
        sim.run_to_completion(sent * 10 + 1000);

        let [delivered, qd, wd, fault_dropped, blackholed, duplicated, corrupt_dropped] =
            *counts.borrow();
        let stats = sim.link_stats(l);
        // Offer-side conservation: every offered packet was down-dropped,
        // queue-dropped, or fully serialized (queue drains at completion).
        assert_eq!(stats.offered, sent, "case {case} (seed {seed})");
        assert_eq!(
            fault_dropped + qd + stats.tx_packets,
            sent,
            "case {case} (seed {seed}): offer-side conservation"
        );
        // Wire-side conservation: serialized packets plus duplicate copies
        // all either dropped (wire, blackhole, corrupt) or delivered.
        assert_eq!(
            stats.tx_packets + duplicated,
            wd + blackholed + corrupt_dropped + delivered,
            "case {case} (seed {seed}): wire-side conservation"
        );
        // Stats agree with the trace.
        assert_eq!(stats.down_dropped, fault_dropped, "case {case}");
        assert_eq!(stats.blackholed, blackholed, "case {case}");
        assert_eq!(stats.duplicated, duplicated, "case {case}");
        assert_eq!(stats.wire_lost, wd, "case {case}");
        assert_eq!(sim.core().corrupt_dropped(), corrupt_dropped, "case {case}");
        assert_eq!(sim.node_as::<Count>(b).unwrap().0, delivered, "case {case}");
        // Corrupt copies: every marked packet yields >= 1 corrupt-drop
        // unless wire loss or a blackhole took it first, and duplication can
        // raise the drop count above the mark count.
        assert!(
            corrupt_dropped <= stats.corrupt_marked + duplicated,
            "case {case}: corrupt drops {corrupt_dropped} > marked {} + dup {duplicated}",
            stats.corrupt_marked
        );
        sim.assert_drained();
    }
}

/// Trace events and stats counters move atomically: after *every* engine
/// step, the tracer's running counts equal the corresponding [`LinkStats`]
/// and corrupt-drop counters exactly. An observer can therefore never see a
/// trace event whose stats increment hasn't landed yet (or vice versa) —
/// the contract the flight recorder's merged exports rely on.
#[test]
fn trace_events_and_stats_move_in_lockstep() {
    use netsim::time::SimTime;
    use netsim::FaultSpec;

    let t = |ms: u64| SimTime::ZERO + SimDuration::from_millis(ms);
    let mut sim: Simulator<u32> = Simulator::new(0x10C5);
    let a = sim.add_node(Box::new(Count(0)));
    let b = sim.add_node(Box::new(Count(0)));
    let l = sim.add_link(LinkSpec {
        src: a,
        dst: b,
        rate: Rate::from_mbps(2),
        delay: SimDuration::from_millis(5),
        queue: Box::new(DropTail::new(6 * 1500)),
        loss: LossModel::Bernoulli { p: 0.15 },
    });
    sim.set_link_faults(
        l,
        FaultSpec::none()
            .down_window(t(30), t(60))
            .blackhole_window(t(90), t(120))
            .with_duplication(0.3)
            .with_corruption(0.2)
            .with_reorder(0.5, SimDuration::from_millis(15)),
    );

    // [deliver, queue_drop, wire_drop, fault_drop, blackhole, dup, corrupt]
    let counts = Rc::new(RefCell::new([0u64; 7]));
    let c2 = counts.clone();
    sim.set_tracer(Box::new(move |_, ev| {
        let i = match ev {
            TraceEvent::Deliver { .. } => 0,
            TraceEvent::QueueDrop { .. } => 1,
            TraceEvent::WireDrop { .. } => 2,
            TraceEvent::FaultDrop { .. } => 3,
            TraceEvent::Blackhole { .. } => 4,
            TraceEvent::Duplicate { .. } => 5,
            TraceEvent::CorruptDrop { .. } => 6,
            TraceEvent::TxStart { .. } => return,
        };
        c2.borrow_mut()[i] += 1;
    }));

    let mut rng = SimRng::new(0xBEEF);
    for i in 0..120u64 {
        sim.core()
            .send_on(l, Packet::new(FlowId(i), a, b, 1500, 0u32));
        let gap = SimDuration::from_micros(500 + rng.index(4_000) as u64);
        let until = sim.now() + gap;
        // Step one event at a time so the lockstep assertion runs at every
        // observable instant, not just at quiescence.
        let mut steps = 0u64;
        while sim.next_event_time().is_some_and(|at| at <= until) {
            assert!(sim.step());
            steps += 1;
            assert!(steps < 100_000, "runaway");
            let [delivered, qd, wd, fd, bh, dup, cd] = *counts.borrow();
            let stats = sim.link_stats(l);
            assert_eq!(stats.wire_lost, wd, "after step {steps}");
            assert_eq!(stats.down_dropped, fd, "after step {steps}");
            assert_eq!(stats.blackholed, bh, "after step {steps}");
            assert_eq!(stats.duplicated, dup, "after step {steps}");
            assert_eq!(sim.queue_stats(l).dropped, qd, "after step {steps}");
            assert_eq!(sim.core().corrupt_dropped(), cd, "after step {steps}");
            assert_eq!(
                sim.node_as::<Count>(b).unwrap().0,
                delivered,
                "after step {steps}"
            );
        }
    }
    sim.run_to_completion(10_000);
    let [delivered, qd, _, fd, bh, dup, cd] = *counts.borrow();
    let stats = sim.link_stats(l);
    assert_eq!(fd + qd + stats.tx_packets, stats.offered);
    assert_eq!(
        stats.tx_packets + dup,
        stats.wire_lost + bh + cd + delivered
    );
    assert!(delivered > 0 && stats.wire_lost > 0, "corpus too tame");
}

/// Cross-shard conservation: when a topology is split across partitions
/// (see `netsim::shard`), the wire-side equation must close exactly at the
/// boundary — every packet delivered to a portal by the source egress link
/// reappears as exactly one injected arrival on the destination's ingress
/// stub — and the per-partition arenas must all be empty at drain.
#[test]
fn wire_equation_closes_across_shard_boundaries() {
    use netsim::link::LinkStats;
    use netsim::shard::{run_sharded, ShardHandle};
    use netsim::{LinkId, NodeId};

    /// Paced source: sends `remaining` packets with seeded random gaps.
    struct Gen {
        egress: LinkId,
        remaining: u64,
        rng: SimRng,
        sent: u64,
    }
    impl Node<u32> for Gen {
        fn on_packet(&mut self, _p: Packet<u32>, _c: &mut Ctx<'_, u32>) {}
        fn on_timer(&mut self, _i: TimerId, _t: u64, ctx: &mut Ctx<'_, u32>) {
            self.remaining -= 1;
            self.sent += 1;
            let me = ctx.node_id();
            ctx.send(
                self.egress,
                Packet::new(FlowId(self.sent), me, me, 1200, 0u32),
            );
            if self.remaining > 0 {
                let gap = SimDuration::from_micros(50 + self.rng.index(3000) as u64);
                ctx.set_timer(gap, 0);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    const N: u64 = 300;

    // Two symmetric partitions: node 0 receives (Count), node 1 generates,
    // link 0 is the ingress stub, link 1 the lossy egress into the portal.
    let build = |rank: usize, handle: &mut ShardHandle<u32>| {
        let mut sim: Simulator<u32> = Simulator::new(0x5AD + rank as u64);
        let sink = sim.add_node(Box::new(Count(0)));
        let gen = sim.add_node(Box::new(Gen {
            egress: LinkId(1),
            remaining: N,
            rng: SimRng::new(100 + rank as u64),
            sent: 0,
        }));
        let ingress = sim.add_link(LinkSpec::drop_tail(
            sink,
            sink,
            Rate::from_mbps(100),
            SimDuration::ZERO,
            1 << 22,
        ));
        let portal = handle.add_portal(
            &mut sim,
            1 - rank,
            NodeId(0),
            ingress,
            SimDuration::from_millis(5),
        );
        let egress = sim.add_link(LinkSpec {
            src: gen,
            dst: portal,
            rate: Rate::from_mbps(10),
            delay: SimDuration::from_millis(1),
            queue: Box::new(DropTail::new(1 << 22)),
            loss: LossModel::Bernoulli { p: 0.15 },
        });
        assert_eq!(egress, LinkId(1));
        sim.core().set_timer(gen, SimDuration::from_micros(10), 0);
        sim
    };
    let finish = |_rank: usize, sim: &mut Simulator<u32>| {
        let received = sim.node_as::<Count>(NodeId(0)).unwrap().0;
        let sent = sim.node_as::<Gen>(NodeId(1)).unwrap().sent;
        (
            received,
            sent,
            sim.link_stats(LinkId(0)),
            sim.link_stats(LinkId(1)),
        )
    };

    for threads in [1usize, 2] {
        let run = run_sharded(2, threads, None, build, finish);
        let sides: Vec<(u64, u64, LinkStats, LinkStats)> = run.results;
        let mut crossings = 0;
        for p in 0..2 {
            let (received, sent, ref ingress, ref egress) = sides[p];
            let (_, _, _, ref peer_egress) = sides[1 - p];
            assert_eq!(sent, N, "partition {p} offered everything");
            // Boundary equation: packets the peer's egress delivered into
            // its portal == arrivals injected on our ingress stub ==
            // packets our sink saw.
            assert_eq!(
                ingress.delivered, peer_egress.delivered,
                "partition {p}: boundary books don't close (threads {threads})"
            );
            assert_eq!(received, ingress.delivered, "partition {p}: sink count");
            // Egress-side equation: everything serialized was either lost
            // on the wire or handed to the portal.
            assert_eq!(
                egress.tx_packets,
                egress.delivered + egress.wire_lost,
                "partition {p}: egress wire books"
            );
            assert_eq!(egress.offered, N, "partition {p}: no queue losses expected");
            assert!(egress.wire_lost > 0, "corpus too tame to test loss");
            crossings += egress.delivered;
        }
        assert_eq!(
            run.cross_messages, crossings,
            "crossing tally (threads {threads})"
        );
        // Arena hygiene: packets crossed by value, so at drain no shard
        // arena may hold a live slot.
        let live: usize = run.hygiene.iter().map(|h| h.live_packets).sum();
        assert_eq!(live, 0, "live packets stranded across shard arenas");
        assert!(
            run.hygiene.iter().all(|h| h.is_clean()),
            "shard hygiene unclean at drain"
        );
    }
}

/// A faulted run is fully determined by `(seed, spec)`: identical seeds give
/// identical delivery schedules, and the fault stream is independent of the
/// engine RNG (installing a noop-ish fault spec doesn't shift wire loss).
#[test]
fn fault_runs_replay_from_seed_and_spec() {
    use netsim::FaultSpec;

    let run = |seed: u64, with_faults: bool| {
        let mut sim: Simulator<u32> = Simulator::new(seed);
        let a = sim.add_node(Box::new(Count(0)));
        let b = sim.add_node(Box::new(Count(0)));
        let l = sim.add_link(LinkSpec {
            src: a,
            dst: b,
            rate: Rate::from_mbps(5),
            delay: SimDuration::from_millis(10),
            queue: Box::new(DropTail::new(200 * 1500)),
            loss: LossModel::Bernoulli { p: 0.1 },
        });
        if with_faults {
            sim.set_link_faults(
                l,
                FaultSpec::none()
                    .with_duplication(0.2)
                    .with_reorder(0.5, SimDuration::from_millis(30)),
            );
        }
        let deliveries = Rc::new(RefCell::new(Vec::new()));
        let d2 = deliveries.clone();
        sim.set_tracer(Box::new(move |at, ev| {
            if let TraceEvent::Deliver { packet, .. } = ev {
                d2.borrow_mut().push((at, *packet));
            }
        }));
        for i in 0..200 {
            sim.core()
                .send_on(l, Packet::new(FlowId(i), a, b, 1500, 0u32));
        }
        sim.run_to_completion(20_000);
        let wire_lost = sim.link_stats(l).wire_lost;
        let log = deliveries.borrow().clone();
        (log, wire_lost)
    };
    assert_eq!(run(3, true), run(3, true), "same (seed, spec) must replay");
    assert_ne!(run(3, true).0, run(4, true).0, "seed must matter");
    // The fault substream is private: the engine's wire-loss draws are
    // byte-identical whether or not faults are installed.
    assert_eq!(
        run(5, false).1,
        run(5, true).1,
        "fault draws must not perturb the engine RNG"
    );
}

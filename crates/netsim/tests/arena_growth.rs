//! Packet-arena growth under deep standing backlogs — the engine-level
//! counterpart of the `event_queue_hold/depth_20k_1e6_events` bench
//! shape. The arena must size itself by the *peak number of packets
//! simultaneously in flight*, not by the number of packets ever sent:
//! a second wave through the same link must recycle the first wave's
//! slots without growing the slab, and after quiescence the hygiene
//! report must show zero parked packets.

use netsim::link::LinkSpec;
use netsim::loss::LossModel;
use netsim::node::{Node, TimerId};
use netsim::packet::{FlowId, Packet};
use netsim::queue::DropTail;
use netsim::time::{Rate, SimDuration};
use netsim::{Ctx, Simulator};
use std::any::Any;

struct Count(u64);
impl Node<u32> for Count {
    fn on_packet(&mut self, _p: Packet<u32>, _c: &mut Ctx<'_, u32>) {
        self.0 += 1;
    }
    fn on_timer(&mut self, _i: TimerId, _t: u64, _c: &mut Ctx<'_, u32>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

const DEPTH: usize = 20_000;

#[test]
fn arena_capacity_tracks_peak_backlog_not_packets_sent() {
    let mut sim: Simulator<u32> = Simulator::new(7);
    let a = sim.add_node(Box::new(Count(0)));
    let b = sim.add_node(Box::new(Count(0)));
    let l = sim.add_link(LinkSpec {
        src: a,
        dst: b,
        rate: Rate::from_mbps(500),
        delay: SimDuration::from_millis(1),
        // Buffer sized for the whole wave: this test is about growth,
        // so nothing may be queue-dropped.
        queue: Box::new(DropTail::new(DEPTH as u64 * 1500)),
        loss: LossModel::Bernoulli { p: 0.0 },
    });

    // Wave 1: a 20k-deep standing backlog, all parked at once.
    for i in 0..DEPTH {
        sim.core()
            .send_on(l, Packet::new(FlowId(i as u64), a, b, 1500, 0u32));
    }
    assert_eq!(sim.core().live_packets(), DEPTH);
    assert_eq!(
        sim.core().packet_arena_capacity(),
        DEPTH,
        "arena must allocate exactly one slot per parked packet"
    );

    sim.run_to_completion(10 * DEPTH as u64);
    assert_eq!(sim.node_as::<Count>(b).unwrap().0, DEPTH as u64);
    let report = sim.hygiene_report();
    assert_eq!(
        report.live_packets, 0,
        "packets leaked after drain: {report:?}"
    );

    // Wave 2: the same depth again. Every slot freed by wave 1 must be
    // reused — any capacity growth here means release is leaking slots.
    for i in 0..DEPTH {
        sim.core()
            .send_on(l, Packet::new(FlowId(i as u64), a, b, 1500, 0u32));
    }
    assert_eq!(sim.core().live_packets(), DEPTH);
    assert_eq!(
        sim.core().packet_arena_capacity(),
        DEPTH,
        "second wave grew the arena: slots are not being recycled"
    );

    sim.run_to_completion(10 * DEPTH as u64);
    assert_eq!(sim.node_as::<Count>(b).unwrap().0, 2 * DEPTH as u64);
    assert_eq!(sim.core().packet_arena_capacity(), DEPTH);
    sim.assert_drained();
}

/// A trickle that never backlogs more than a handful of packets must keep
/// the arena tiny no matter how many packets pass through — the property
/// that makes one growing allocation per simulator acceptable for
/// minute-long traces.
#[test]
fn arena_stays_small_when_backlog_is_shallow() {
    let mut sim: Simulator<u32> = Simulator::new(11);
    let a = sim.add_node(Box::new(Count(0)));
    let b = sim.add_node(Box::new(Count(0)));
    let l = sim.add_link(LinkSpec {
        src: a,
        dst: b,
        rate: Rate::from_mbps(100),
        delay: SimDuration::from_micros(200),
        queue: Box::new(DropTail::new(64 * 1500)),
        loss: LossModel::Bernoulli { p: 0.0 },
    });

    for i in 0..5_000u64 {
        sim.core()
            .send_on(l, Packet::new(FlowId(i), a, b, 1500, 0u32));
        // Drain fully every 4 packets: peak in-flight stays single-digit.
        if i % 4 == 3 {
            let t = sim.now() + SimDuration::from_millis(2);
            sim.run_until(t);
        }
    }
    sim.run_to_completion(100_000);
    assert_eq!(sim.node_as::<Count>(b).unwrap().0, 5_000);
    assert!(
        sim.core().packet_arena_capacity() <= 16,
        "trickle traffic grew the arena to {} slots",
        sim.core().packet_arena_capacity()
    );
    assert_eq!(sim.hygiene_report().live_packets, 0);
}

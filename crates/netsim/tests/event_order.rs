//! Randomized equivalence test for the calendar-queue event engine.
//!
//! The reference model is the contract the old `BinaryHeap` engine
//! satisfied and the goldens depend on: timers fire in ascending
//! `(at, scheduling order)`, cancellations suppress dispatch, and a timer
//! scheduled *behind* an already-peeked queue head still fires in its
//! correct global position. The test drives identical seeded workloads —
//! schedule / cancel / step / peek interleavings across every bucket and
//! horizon boundary — through the real engine and through a sorted list,
//! and demands identical firing sequences.

use netsim::time::SimTime;
use netsim::{Ctx, Node, Packet, Simulator, TimerId};
use std::any::Any;

#[derive(Default)]
struct Recorder {
    fired: Vec<(u64, u64)>,
}

impl Node<u32> for Recorder {
    fn on_packet(&mut self, _p: Packet<u32>, _c: &mut Ctx<'_, u32>) {}
    fn on_timer(&mut self, _id: TimerId, token: u64, c: &mut Ctx<'_, u32>) {
        self.fired.push((c.now().as_nanos(), token));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct ModelEntry {
    at: u64,
    /// Scheduling order; the engine's tiebreaker for equal `at`.
    ord: u64,
    token: u64,
    cancelled: bool,
}

fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 11
}

/// Deltas chosen to land everywhere interesting relative to the wheel
/// geometry: same bucket, neighbouring buckets, mid-window, past the L1
/// segment (~134 ms, so the L2 wheel parks it), many segments out, and —
/// the last two — past the whole L2 span (~9.2 min), which exercises the
/// overflow heap and the cascade that refills L2 from it. With batch
/// drains these also interleave run consumption with pushes into every
/// tier, so a bucket sorted once per refill must still merge correctly
/// against inbox entries that arrive mid-run.
const DELTAS: [u64; 10] = [
    0,
    1,
    40_000,
    200_000,
    5_000_000,
    300_000_000,
    700_000_000,
    3_000_000_000,
    600_000_000_000,
    3_000_000_000_000,
];

fn run_workload(seed: u64, ops: usize) {
    let mut sim: Simulator<u32> = Simulator::new(1);
    let node = sim.add_node(Box::new(Recorder::default()));
    let mut rng = seed;
    let mut model: Vec<ModelEntry> = Vec::new();
    let mut live: Vec<(TimerId, usize)> = Vec::new(); // (id, model index)
    let mut next_token = 0u64;

    for _ in 0..ops {
        match lcg(&mut rng) % 10 {
            // Schedule (the bulk of the mix).
            0..=4 => {
                let d =
                    DELTAS[(lcg(&mut rng) % DELTAS.len() as u64) as usize] + lcg(&mut rng) % 977;
                let at = sim.now().as_nanos() + d;
                let id = sim
                    .core()
                    .set_timer_at(node, SimTime::from_nanos(at), next_token);
                model.push(ModelEntry {
                    at,
                    ord: next_token,
                    token: next_token,
                    cancelled: false,
                });
                live.push((id, model.len() - 1));
                next_token += 1;
            }
            // Peek, then schedule at/before the observed head: reproduces
            // the run-until-clamp pattern where the queue head has been
            // inspected (advancing the wheel cursor) before a new earlier
            // event is pushed.
            5 => {
                let Some(head) = sim.next_event_time() else {
                    continue;
                };
                let now = sim.now().as_nanos();
                let span = head.as_nanos() - now;
                let at = now + if span == 0 { 0 } else { lcg(&mut rng) % span };
                let id = sim
                    .core()
                    .set_timer_at(node, SimTime::from_nanos(at), next_token);
                model.push(ModelEntry {
                    at,
                    ord: next_token,
                    token: next_token,
                    cancelled: false,
                });
                live.push((id, model.len() - 1));
                next_token += 1;
            }
            // Cancel a random live timer.
            6 => {
                if live.is_empty() {
                    continue;
                }
                let k = (lcg(&mut rng) % live.len() as u64) as usize;
                let (id, mi) = live.swap_remove(k);
                sim.core().cancel_timer(id);
                model[mi].cancelled = true;
            }
            // Dispatch a few events.
            _ => {
                for _ in 0..(lcg(&mut rng) % 4) {
                    if !sim.step() {
                        break;
                    }
                }
                // Timers at or before `now` may already have fired; drop
                // them from the cancellable set (cancelling a fired timer
                // is a no-op in the engine but not in the model).
                let now = sim.now().as_nanos();
                live.retain(|&(_, mi)| model[mi].at > now);
            }
        }
    }
    sim.run_to_completion(10 * ops as u64);

    let mut expect: Vec<(u64, u64, u64)> = model
        .iter()
        .filter(|e| !e.cancelled)
        .map(|e| (e.at, e.ord, e.token))
        .collect();
    expect.sort_unstable();
    let expect: Vec<(u64, u64)> = expect.into_iter().map(|(at, _, tok)| (at, tok)).collect();

    let rec = sim.node_as::<Recorder>(node).expect("recorder node");
    assert_eq!(
        rec.fired, expect,
        "seed {seed}: engine firing order diverged from the sorted-list model"
    );
}

#[test]
fn randomized_schedules_match_sorted_list_model() {
    for seed in [7, 1009, 88_172_645, 0xDEAD_BEEF] {
        run_workload(seed, 4_000);
    }
}

#[test]
fn cancellation_heavy_workload_matches_model() {
    // A mix where most timers are cancelled exercises compaction (retain)
    // and stale-entry skipping together.
    for seed in [3, 404] {
        let mut sim: Simulator<u32> = Simulator::new(2);
        let node = sim.add_node(Box::new(Recorder::default()));
        let mut rng = seed;
        let mut expect: Vec<(u64, u64, u64)> = Vec::new();
        for token in 0..30_000u64 {
            let at = sim.now().as_nanos() + lcg(&mut rng) % 2_000_000_000;
            let id = sim
                .core()
                .set_timer_at(node, SimTime::from_nanos(at), token);
            if lcg(&mut rng) % 10 < 9 {
                sim.core().cancel_timer(id);
            } else {
                expect.push((at, token, token));
            }
        }
        sim.run_to_completion(100_000);
        expect.sort_unstable();
        let expect: Vec<(u64, u64)> = expect.into_iter().map(|(at, _, t)| (at, t)).collect();
        let rec = sim.node_as::<Recorder>(node).expect("recorder node");
        assert_eq!(rec.fired, expect, "seed {seed}");
    }
}

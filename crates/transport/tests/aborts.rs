//! Give-up behaviour under pathological networks: a flow facing a dead
//! path must reach [`FlowOutcome::Aborted`] in bounded virtual time and
//! leave nothing behind — no live timers, no undrained queues. This is
//! the transport half of the fault-injection contract (the netsim half is
//! covered by `crates/netsim/tests/conservation.rs`).

use netsim::topology::{build_path, PathSpec};
use netsim::{FaultSpec, FlowId, Rate, SimDuration, SimTime};
use transport::reno::{RenoConfig, RenoEngine};
use transport::scoreboard::AckOutcome;
use transport::sender::Ops;
use transport::strategy::Strategy;
use transport::wire::{AckHeader, SegId};
use transport::{AbortReason, FlowOutcome, Host, TransportSim, MAX_RTO_RETRIES, MAX_SYN_RETRIES};

/// Minimal window-driven strategy (same shape as the chassis tests).
struct MiniTcp(RenoEngine);

impl Strategy for MiniTcp {
    fn name(&self) -> &'static str {
        "MiniTcp"
    }
    fn on_established(&mut self, ops: &mut Ops<'_, '_>) {
        self.0.on_established(ops);
    }
    fn on_ack(&mut self, ops: &mut Ops<'_, '_>, _a: &AckHeader, o: &AckOutcome) {
        self.0.on_ack(ops, o);
    }
    fn on_loss_detected(&mut self, ops: &mut Ops<'_, '_>, l: &[SegId]) {
        self.0.on_loss(ops, l);
    }
    fn on_rto(&mut self, ops: &mut Ops<'_, '_>) {
        self.0.on_rto(ops);
    }
}

fn t(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

fn run_with_down_window(down_from_ms: u64, bytes: u64) -> (TransportSim, transport::FlowRecord) {
    let spec = PathSpec::clean(Rate::from_mbps(10), SimDuration::from_millis(40))
        .with_faults(FaultSpec::none().down_window(t(down_from_ms), t(100_000_000)));
    let mut sim = TransportSim::new(99);
    let net = build_path(&mut sim, &spec, |_| Box::new(Host::new()));
    sim.with_node_mut::<Host, _>(net.sender, |h, _| h.wire(net.sender, net.forward));
    sim.with_node_mut::<Host, _>(net.receiver, |h, _| h.wire(net.receiver, net.reverse));
    sim.with_node_mut::<Host, _>(net.sender, |h, core| {
        h.start_flow(
            core,
            FlowId(1),
            net.receiver,
            bytes,
            Box::new(MiniTcp(RenoEngine::new(RenoConfig::default()))),
        )
    });
    sim.run_to_completion(10_000_000);
    let rec = sim.node_as::<Host>(net.sender).unwrap().completed()[0].clone();
    (sim, rec)
}

/// A path that is dead from the start: the handshake gives up after
/// [`MAX_SYN_RETRIES`] SYN retransmissions (~31 s of backoff) and the
/// simulation drains to nothing — no orphaned RTO timer keeps it alive.
#[test]
fn dead_path_aborts_handshake() {
    let (sim, rec) = run_with_down_window(0, 100_000);
    assert_eq!(rec.outcome, FlowOutcome::Aborted(AbortReason::SynTimeout));
    assert!(!rec.outcome.is_completed());
    // Original SYN plus every allowed retry, none beyond.
    assert_eq!(rec.counters.syn_sent as u32, 1 + MAX_SYN_RETRIES);
    // Give-up time: 1+2+4+8+16+32 s of doubling from the 1 s initial RTO
    // (the final backed-off timer must expire before the check trips).
    assert!(
        rec.fct >= SimDuration::from_secs(63) && rec.fct < SimDuration::from_secs(70),
        "SYN give-up at {}",
        rec.fct
    );
    sim.assert_drained();
}

/// The link dies mid-transfer: the established connection retransmits
/// with exponential backoff, gives up after [`MAX_RTO_RETRIES`] dry
/// timeouts, and reports `MaxRetransmits` rather than hanging forever.
#[test]
fn mid_flow_blackout_aborts_established_connection() {
    // 10 Mbps moves ~250 KB in the first 200 ms; 2 MB is still in flight
    // when the link dies.
    let (sim, rec) = run_with_down_window(200, 2_000_000);
    assert_eq!(
        rec.outcome,
        FlowOutcome::Aborted(AbortReason::MaxRetransmits)
    );
    assert!(rec.counters.rto_events >= MAX_RTO_RETRIES as u64);
    // Bounded give-up: ~63 s of backoff after the last progress.
    assert!(
        rec.fct < SimDuration::from_secs(80),
        "give-up too slow: {}",
        rec.fct
    );
    sim.assert_drained();
}

/// Control: the same path with the fault window starting after the flow
/// finishes completes normally — the give-up logic never fires early.
#[test]
fn late_window_does_not_disturb_completion() {
    let (sim, rec) = run_with_down_window(30_000, 100_000);
    assert_eq!(rec.outcome, FlowOutcome::Completed);
    assert_eq!(rec.counters.rto_events, 0);
    sim.assert_drained();
}

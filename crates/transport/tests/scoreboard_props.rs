//! Property-based tests of the sender scoreboard against a reference
//! model: pipe accounting, loss marking and coverage must stay consistent
//! under arbitrary interleavings of transmissions and ACKs.

use proptest::prelude::*;
use transport::scoreboard::Scoreboard;
use transport::wire::{AckHeader, SackBlocks, SegId, MSS};

const SEGS: u32 = 24;

#[derive(Debug, Clone)]
enum Op {
    /// Transmit segment (modulo the flow size).
    Tx(SegId),
    /// Deliver an ACK with cumulative point and up to two SACK ranges.
    Ack(SegId, Option<(SegId, SegId)>, Option<(SegId, SegId)>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..SEGS).prop_map(Op::Tx),
        (
            0u32..=SEGS,
            proptest::option::of((0u32..SEGS, 1u32..6)),
            proptest::option::of((0u32..SEGS, 1u32..6))
        )
            .prop_map(|(cum, a, b)| {
                let norm = |r: Option<(u32, u32)>| {
                    r.map(|(s, l)| (s, (s + l).min(SEGS)))
                        .filter(|(s, e)| s < e)
                };
                Op::Ack(cum, norm(a), norm(b))
            }),
    ]
}

/// Reference model: per-seg delivered set implied by the ACK stream.
#[derive(Default)]
struct Model {
    covered: [bool; SEGS as usize],
    outstanding: [u32; SEGS as usize],
    cum: u32,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn scoreboard_matches_reference(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut b = Scoreboard::new(SEGS as u64 * MSS as u64, SEGS);
        let mut m = Model::default();

        for op in ops {
            match op {
                Op::Tx(seg) => {
                    // Only transmit uncovered segments (like real senders).
                    if !m.covered[seg as usize] {
                        b.on_transmit(seg);
                        m.outstanding[seg as usize] += 1;
                    }
                }
                Op::Ack(cum, s1, s2) => {
                    // ACK streams never regress: clamp to the model's cum.
                    let cum = cum.max(m.cum);
                    // Only ACK what was actually sent at least once in the
                    // model (receivers can't ack undelivered data); relax by
                    // accepting any cum/sack — the scoreboard must tolerate
                    // that too, but coverage accounting below only checks
                    // one direction.
                    let mut ranges = Vec::new();
                    for r in [s1, s2].into_iter().flatten() {
                        ranges.push(r);
                    }
                    let ack = AckHeader {
                        cum,
                        sack: SackBlocks::from_ranges(&ranges),
                        for_seg: cum.min(SEGS - 1),
                        echo_tx_time: netsim::SimTime::ZERO,
                        window: 141_000,
                    };
                    b.on_ack(&ack);
                    for seg in m.cum..cum.min(SEGS) {
                        m.covered[seg as usize] = true;
                        m.outstanding[seg as usize] = 0;
                    }
                    m.cum = cum.min(SEGS);
                    for (s, e) in ranges {
                        for seg in s..e {
                            m.covered[seg as usize] = true;
                            m.outstanding[seg as usize] = 0;
                        }
                    }
                }
            }

            // Invariants after every step:
            // 1. Coverage agrees with the model.
            for seg in 0..SEGS {
                prop_assert_eq!(
                    b.is_covered(seg),
                    m.covered[seg as usize] || seg < m.cum,
                    "coverage mismatch at {}", seg
                );
            }
            // 2. cum agrees.
            prop_assert_eq!(b.cum_ack(), m.cum);
            // 3. A segment is never both covered and marked lost.
            for seg in 0..SEGS {
                prop_assert!(!(b.is_covered(seg) && b.is_lost(seg)), "covered+lost {}", seg);
            }
            // 4. Lost segments count no pipe; pipe is bounded by what the
            //    model thinks is outstanding.
            let model_pipe: u64 = (0..SEGS)
                .filter(|&s| !m.covered[s as usize] && s >= m.cum)
                .map(|s| m.outstanding[s as usize] as u64 * MSS as u64)
                .sum();
            prop_assert!(
                b.pipe_bytes() <= model_pipe,
                "pipe {} exceeds model {}", b.pipe_bytes(), model_pipe
            );
            // 5. complete() iff every segment cum-acked.
            prop_assert_eq!(b.complete(), m.cum >= SEGS);
        }
    }

    /// After an RTO, the pipe is empty and every uncovered sent segment is
    /// marked lost; covered segments never are.
    #[test]
    fn rto_invariants(
        txs in prop::collection::vec(0u32..SEGS, 1..40),
        cum in 0u32..SEGS,
        sack_start in 0u32..SEGS,
        sack_len in 1u32..8,
    ) {
        let mut b = Scoreboard::new(SEGS as u64 * MSS as u64, SEGS);
        for t in txs {
            b.on_transmit(t);
        }
        let e = (sack_start + sack_len).min(SEGS);
        let ranges = if sack_start < e { vec![(sack_start, e)] } else { vec![] };
        b.on_ack(&AckHeader {
            cum,
            sack: SackBlocks::from_ranges(&ranges),
            for_seg: 0,
            echo_tx_time: netsim::SimTime::ZERO,
            window: 141_000,
        });
        b.on_rto();
        prop_assert_eq!(b.pipe_bytes(), 0);
        for seg in 0..SEGS {
            if b.is_covered(seg) {
                prop_assert!(!b.is_lost(seg), "covered segment {} marked lost", seg);
            } else if b.was_sent(seg) {
                prop_assert!(b.is_lost(seg), "sent uncovered segment {} not lost after RTO", seg);
            } else {
                prop_assert!(!b.is_lost(seg), "never-sent segment {} lost", seg);
            }
        }
    }

    /// acked_bytes is monotone along any ACK stream and capped at the flow
    /// size.
    #[test]
    fn acked_bytes_monotone(acks in prop::collection::vec((0u32..=SEGS, 0u32..SEGS, 1u32..6), 1..40)) {
        let mut b = Scoreboard::new(SEGS as u64 * MSS as u64, SEGS);
        for s in 0..SEGS {
            b.on_transmit(s);
        }
        let mut last = 0u64;
        let mut cum_floor = 0u32;
        for (cum, ss, sl) in acks {
            let cum = cum.max(cum_floor);
            cum_floor = cum;
            let e = (ss + sl).min(SEGS);
            let ranges = if ss < e { vec![(ss, e)] } else { vec![] };
            b.on_ack(&AckHeader {
                cum,
                sack: SackBlocks::from_ranges(&ranges),
                for_seg: 0,
                echo_tx_time: netsim::SimTime::ZERO,
                window: 141_000,
            });
            let now = b.acked_bytes();
            prop_assert!(now >= last, "acked_bytes regressed: {} -> {}", last, now);
            prop_assert!(now <= SEGS as u64 * MSS as u64);
            last = now;
        }
    }
}

//! Property-style tests of the sender scoreboard against a reference
//! model: pipe accounting, loss marking and coverage must stay consistent
//! under arbitrary interleavings of transmissions and ACKs. Cases are
//! generated from a seeded [`SimRng`] so every run checks the same corpus.

use netsim::rng::SimRng;
use transport::scoreboard::Scoreboard;
use transport::wire::{AckHeader, SackBlocks, SegId, MSS};

const SEGS: u32 = 24;

#[derive(Debug, Clone)]
enum Op {
    /// Transmit segment (modulo the flow size).
    Tx(SegId),
    /// Deliver an ACK with cumulative point and up to two SACK ranges.
    Ack(SegId, Option<(SegId, SegId)>, Option<(SegId, SegId)>),
}

fn random_op(rng: &mut SimRng) -> Op {
    if rng.chance(0.5) {
        Op::Tx(rng.index(SEGS as usize) as u32)
    } else {
        let cum = rng.index(SEGS as usize + 1) as u32;
        let sack_range = |rng: &mut SimRng| -> Option<(u32, u32)> {
            if rng.chance(0.5) {
                let s = rng.index(SEGS as usize) as u32;
                let l = 1 + rng.index(5) as u32;
                let e = (s + l).min(SEGS);
                (s < e).then_some((s, e))
            } else {
                None
            }
        };
        let a = sack_range(rng);
        let b = sack_range(rng);
        Op::Ack(cum, a, b)
    }
}

/// Reference model: per-seg delivered set implied by the ACK stream.
#[derive(Default)]
struct Model {
    covered: [bool; SEGS as usize],
    outstanding: [u32; SEGS as usize],
    cum: u32,
}

#[test]
fn scoreboard_matches_reference() {
    let mut rng = SimRng::new(0x5c0_12e);
    for case in 0..256 {
        let n_ops = 1 + rng.index(119);
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng)).collect();
        let mut b = Scoreboard::new(SEGS as u64 * MSS as u64, SEGS);
        let mut m = Model::default();

        for op in &ops {
            match *op {
                Op::Tx(seg) => {
                    // Only transmit uncovered segments (like real senders).
                    if !m.covered[seg as usize] {
                        b.on_transmit(seg);
                        m.outstanding[seg as usize] += 1;
                    }
                }
                Op::Ack(cum, s1, s2) => {
                    // ACK streams never regress: clamp to the model's cum.
                    let cum = cum.max(m.cum);
                    let mut ranges = Vec::new();
                    for r in [s1, s2].into_iter().flatten() {
                        ranges.push(r);
                    }
                    let ack = AckHeader {
                        cum,
                        sack: SackBlocks::from_ranges(&ranges),
                        for_seg: cum.min(SEGS - 1),
                        echo_tx_time: netsim::SimTime::ZERO,
                        window: 141_000,
                    };
                    b.on_ack(&ack);
                    for seg in m.cum..cum.min(SEGS) {
                        m.covered[seg as usize] = true;
                        m.outstanding[seg as usize] = 0;
                    }
                    m.cum = cum.min(SEGS);
                    for (s, e) in ranges {
                        for seg in s..e {
                            m.covered[seg as usize] = true;
                            m.outstanding[seg as usize] = 0;
                        }
                    }
                }
            }

            // Invariants after every step:
            // 1. Coverage agrees with the model.
            for seg in 0..SEGS {
                assert_eq!(
                    b.is_covered(seg),
                    m.covered[seg as usize] || seg < m.cum,
                    "case {case}: coverage mismatch at {seg}"
                );
            }
            // 2. cum agrees.
            assert_eq!(b.cum_ack(), m.cum, "case {case}");
            // 3. A segment is never both covered and marked lost.
            for seg in 0..SEGS {
                assert!(
                    !(b.is_covered(seg) && b.is_lost(seg)),
                    "case {case}: covered+lost {seg}"
                );
            }
            // 4. Lost segments count no pipe; pipe is bounded by what the
            //    model thinks is outstanding.
            let model_pipe: u64 = (0..SEGS)
                .filter(|&s| !m.covered[s as usize] && s >= m.cum)
                .map(|s| m.outstanding[s as usize] as u64 * MSS as u64)
                .sum();
            assert!(
                b.pipe_bytes() <= model_pipe,
                "case {case}: pipe {} exceeds model {}",
                b.pipe_bytes(),
                model_pipe
            );
            // 5. complete() iff every segment cum-acked.
            assert_eq!(b.complete(), m.cum >= SEGS, "case {case}");
        }
    }
}

/// After an RTO, the pipe is empty and every uncovered sent segment is
/// marked lost; covered segments never are.
#[test]
fn rto_invariants() {
    let mut rng = SimRng::new(0x270);
    for case in 0..256 {
        let n_txs = 1 + rng.index(39);
        let txs: Vec<u32> = (0..n_txs)
            .map(|_| rng.index(SEGS as usize) as u32)
            .collect();
        let cum = rng.index(SEGS as usize) as u32;
        let sack_start = rng.index(SEGS as usize) as u32;
        let sack_len = 1 + rng.index(7) as u32;
        let mut b = Scoreboard::new(SEGS as u64 * MSS as u64, SEGS);
        for &t in &txs {
            b.on_transmit(t);
        }
        let e = (sack_start + sack_len).min(SEGS);
        let ranges = if sack_start < e {
            vec![(sack_start, e)]
        } else {
            vec![]
        };
        b.on_ack(&AckHeader {
            cum,
            sack: SackBlocks::from_ranges(&ranges),
            for_seg: 0,
            echo_tx_time: netsim::SimTime::ZERO,
            window: 141_000,
        });
        b.on_rto();
        assert_eq!(b.pipe_bytes(), 0, "case {case}");
        for seg in 0..SEGS {
            if b.is_covered(seg) {
                assert!(
                    !b.is_lost(seg),
                    "case {case}: covered segment {seg} marked lost"
                );
            } else if b.was_sent(seg) {
                assert!(
                    b.is_lost(seg),
                    "case {case}: sent uncovered segment {seg} not lost after RTO"
                );
            } else {
                assert!(
                    !b.is_lost(seg),
                    "case {case}: never-sent segment {seg} lost"
                );
            }
        }
    }
}

/// acked_bytes is monotone along any ACK stream and capped at the flow
/// size.
#[test]
fn acked_bytes_monotone() {
    let mut rng = SimRng::new(0xACED);
    for case in 0..256 {
        let n_acks = 1 + rng.index(39);
        let acks: Vec<(u32, u32, u32)> = (0..n_acks)
            .map(|_| {
                (
                    rng.index(SEGS as usize + 1) as u32,
                    rng.index(SEGS as usize) as u32,
                    1 + rng.index(5) as u32,
                )
            })
            .collect();
        let mut b = Scoreboard::new(SEGS as u64 * MSS as u64, SEGS);
        for s in 0..SEGS {
            b.on_transmit(s);
        }
        let mut last = 0u64;
        let mut cum_floor = 0u32;
        for &(cum, ss, sl) in &acks {
            let cum = cum.max(cum_floor);
            cum_floor = cum;
            let e = (ss + sl).min(SEGS);
            let ranges = if ss < e { vec![(ss, e)] } else { vec![] };
            b.on_ack(&AckHeader {
                cum,
                sack: SackBlocks::from_ranges(&ranges),
                for_seg: 0,
                echo_tx_time: netsim::SimTime::ZERO,
                window: 141_000,
            });
            let now = b.acked_bytes();
            assert!(
                now >= last,
                "case {case}: acked_bytes regressed: {last} -> {now}"
            );
            assert!(now <= SEGS as u64 * MSS as u64, "case {case}");
            last = now;
        }
    }
}

//! Integration tests of the sender chassis and host plumbing: handshake
//! retries, timer routing, the completion bus, and delivery traces.

use netsim::loss::LossModel;
use netsim::topology::{build_path, PathSpec};
use netsim::{FlowId, Rate, SimDuration};
use transport::host::completion_bus;
use transport::reno::{RenoConfig, RenoEngine};
use transport::scoreboard::AckOutcome;
use transport::sender::Ops;
use transport::strategy::Strategy;
use transport::wire::{AckHeader, SegId, SendClass};
use transport::{Host, TransportSim};

/// Minimal window-driven strategy for chassis tests.
struct MiniTcp(RenoEngine);

impl MiniTcp {
    fn new() -> Self {
        MiniTcp(RenoEngine::new(RenoConfig::default()))
    }
}

impl Strategy for MiniTcp {
    fn name(&self) -> &'static str {
        "MiniTcp"
    }
    fn on_established(&mut self, ops: &mut Ops<'_, '_>) {
        self.0.on_established(ops);
    }
    fn on_ack(&mut self, ops: &mut Ops<'_, '_>, _a: &AckHeader, o: &AckOutcome) {
        self.0.on_ack(ops, o);
    }
    fn on_loss_detected(&mut self, ops: &mut Ops<'_, '_>, l: &[SegId]) {
        self.0.on_loss(ops, l);
    }
    fn on_rto(&mut self, ops: &mut Ops<'_, '_>) {
        self.0.on_rto(ops);
    }
}

fn rig(spec: &PathSpec, seed: u64) -> (TransportSim, netsim::topology::PathNet) {
    let mut sim = TransportSim::new(seed);
    let net = build_path(&mut sim, spec, |_| Box::new(Host::new()));
    sim.with_node_mut::<Host, _>(net.sender, |h, _| h.wire(net.sender, net.forward));
    sim.with_node_mut::<Host, _>(net.receiver, |h, _| h.wire(net.receiver, net.reverse));
    (sim, net)
}

#[test]
fn syn_retries_back_off_exponentially() {
    let mut spec = PathSpec::clean(Rate::from_mbps(50), SimDuration::from_millis(40));
    // Drop the first two SYNs.
    spec.loss = LossModel::DropList {
        ordinals: vec![1, 2],
    };
    let (mut sim, net) = rig(&spec, 1);
    sim.with_node_mut::<Host, _>(net.sender, |h, core| {
        h.start_flow(
            core,
            FlowId(1),
            net.receiver,
            20_000,
            Box::new(MiniTcp::new()),
        )
    });
    sim.run_to_completion(1_000_000);
    let rec = sim.node_as::<Host>(net.sender).unwrap().completed()[0].clone();
    assert_eq!(rec.counters.syn_sent, 3);
    // Two handshake timeouts: 1 s + 2 s of backoff before the third SYN.
    let fct = rec.fct.as_millis_f64();
    assert!(fct > 3000.0 && fct < 3400.0, "fct {fct}ms");
}

#[test]
fn completion_bus_receives_records_in_order() {
    let spec = PathSpec::clean(Rate::from_mbps(50), SimDuration::from_millis(20));
    let (mut sim, net) = rig(&spec, 2);
    let bus = completion_bus();
    sim.with_node_mut::<Host, _>(net.sender, |h, _| h.set_bus(bus.clone()));
    for i in 0..3u64 {
        sim.with_node_mut::<Host, _>(net.sender, |h, core| {
            h.start_flow(
                core,
                FlowId(i + 1),
                net.receiver,
                10_000 * (i + 1),
                Box::new(MiniTcp::new()),
            )
        });
    }
    sim.run_to_completion(1_000_000);
    let drained: Vec<_> = bus.borrow_mut().drain(..).collect();
    assert_eq!(drained.len(), 3);
    // Smaller flows complete first (same start, same path).
    assert!(drained[0].bytes <= drained[1].bytes);
    // Host keeps its own copy too.
    assert_eq!(
        sim.node_as::<Host>(net.sender).unwrap().completed().len(),
        3
    );
}

#[test]
fn delivery_traces_cover_the_flow() {
    let spec = PathSpec::clean(Rate::from_mbps(50), SimDuration::from_millis(20));
    let (mut sim, net) = rig(&spec, 3);
    sim.with_node_mut::<Host, _>(net.receiver, |h, _| {
        h.timelines = Some(transport::trace::DeliveryTimelines::new(10_000_000))
    });
    sim.with_node_mut::<Host, _>(net.sender, |h, core| {
        h.start_flow(
            core,
            FlowId(1),
            net.receiver,
            50_000,
            Box::new(MiniTcp::new()),
        )
    });
    sim.run_to_completion(1_000_000);
    let host = sim.node_as::<Host>(net.receiver).unwrap();
    let tb = host
        .timelines
        .as_ref()
        .and_then(|tl| tl.get(FlowId(1)))
        .expect("trace recorded");
    let total: f64 = tb.series().iter().map(|&(_, v)| v).sum();
    assert!((total - 50_000.0).abs() < 1.0, "trace bytes {total}");
}

#[test]
fn receiver_handles_duplicate_syn() {
    // A retransmitted SYN must get a fresh SYN-ACK, not a second receiver.
    let mut spec = PathSpec::clean(Rate::from_mbps(50), SimDuration::from_millis(40));
    // Drop the first SYN-ACK (reverse ordinal 1), forcing a SYN retry.
    spec.reverse_loss = LossModel::DropList { ordinals: vec![1] };
    let (mut sim, net) = rig(&spec, 4);
    sim.with_node_mut::<Host, _>(net.sender, |h, core| {
        h.start_flow(
            core,
            FlowId(1),
            net.receiver,
            20_000,
            Box::new(MiniTcp::new()),
        )
    });
    sim.run_to_completion(1_000_000);
    let sender = sim.node_as::<Host>(net.sender).unwrap();
    assert_eq!(sender.completed().len(), 1);
    assert_eq!(sender.completed()[0].counters.syn_sent, 2);
    let receiver = sim.node_as::<Host>(net.receiver).unwrap();
    assert_eq!(
        receiver.receivers().count(),
        1,
        "duplicate SYN must not duplicate state"
    );
    assert_eq!(receiver.stray_packets, 0);
}

#[test]
fn stray_data_is_counted_not_fatal() {
    let spec = PathSpec::clean(Rate::from_mbps(50), SimDuration::from_millis(10));
    let (mut sim, net) = rig(&spec, 5);
    // Inject a data packet for a flow the receiver never saw a SYN for.
    let pkt = netsim::Packet::new(
        FlowId(99),
        net.sender,
        net.receiver,
        1500,
        transport::Header::Data(transport::wire::DataHeader {
            seg: 0,
            class: SendClass::New,
        }),
    );
    sim.core().send_on(net.forward, pkt);
    sim.run_to_completion(100);
    assert_eq!(sim.node_as::<Host>(net.receiver).unwrap().stray_packets, 1);
}

#[test]
fn late_acks_after_completion_are_ignored() {
    // Proactive duplicates keep generating ACKs after the flow completes;
    // the sender endpoint is gone and the host must shrug them off.
    let spec = PathSpec::clean(Rate::from_mbps(50), SimDuration::from_millis(40));
    let (mut sim, net) = rig(&spec, 6);
    sim.with_node_mut::<Host, _>(net.sender, |h, core| {
        h.start_flow(
            core,
            FlowId(1),
            net.receiver,
            30_000,
            Box::new(baselines_proactive()),
        )
    });
    sim.run_to_completion(1_000_000);
    let host = sim.node_as::<Host>(net.sender).unwrap();
    assert_eq!(host.completed().len(), 1);
    assert_eq!(host.active_senders(), 0);
}

fn baselines_proactive() -> baselines::ProactiveTcp {
    baselines::ProactiveTcp::new()
}

#[test]
fn no_timer_leak_under_heavy_loss() {
    // Regression test: each RTO used to leak a live timer (the chassis
    // re-arm overwrote the slot the strategy's retransmission had armed),
    // doubling the timer population per timeout. Under sustained loss this
    // exploded exponentially. After a lossy run, the number of live timers
    // must be bounded by a small constant per active flow.
    let mut spec = PathSpec::clean(Rate::from_mbps(5), SimDuration::from_millis(40));
    spec.loss = LossModel::Bernoulli { p: 0.3 };
    let (mut sim, net) = rig(&spec, 9);
    for i in 0..4u64 {
        sim.with_node_mut::<Host, _>(net.sender, |h, core| {
            h.start_flow(
                core,
                FlowId(i + 1),
                net.receiver,
                200_000,
                Box::new(MiniTcp::new()),
            )
        });
    }
    // Run for 30 virtual seconds (plenty of RTO cycles at 30% loss).
    sim.run_until(netsim::SimTime::ZERO + SimDuration::from_secs(30));
    let live = sim.core().live_timer_count();
    let active = sim.node_as::<Host>(net.sender).unwrap().active_senders();
    assert!(
        live <= active * 3 + 2,
        "timer leak: {live} live timers for {active} active flows"
    );
    // And the flows do eventually finish.
    sim.run_to_completion(50_000_000);
    assert_eq!(
        sim.node_as::<Host>(net.sender).unwrap().completed().len(),
        4
    );
}

//! Adversarial property tests for the ACK-path data structures: the
//! fault-injection layer can duplicate, reorder, and overlap ACK/SACK
//! information arbitrarily, so [`RangeSet`] and [`Scoreboard`] must be
//! insensitive to delivery order and redundancy. Cases are drawn from a
//! seeded [`SimRng`] so every run checks the same corpus.

use netsim::rng::SimRng;
use transport::rangeset::RangeSet;
use transport::scoreboard::Scoreboard;
use transport::wire::{AckHeader, SackBlocks, SegId, MSS};

const SEGS: u32 = 32;

fn shuffle<T>(items: &mut [T], rng: &mut SimRng) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.index(i + 1));
    }
}

fn random_ranges(rng: &mut SimRng, n: usize, max_start: u32, max_len: u32) -> Vec<(u32, u32)> {
    (0..n)
        .map(|_| {
            let s = rng.index(max_start as usize) as u32;
            (s, s + 1 + rng.index(max_len as usize) as u32)
        })
        .collect()
}

/// Insertion is a set union: duplicating every op and applying the stream
/// in a random order yields exactly the same set, still coalesced.
#[test]
fn rangeset_insensitive_to_duplication_and_order() {
    let mut rng = SimRng::new(0xAD5E7);
    for case in 0..256 {
        let n_ops = 1 + rng.index(30);
        let ops = random_ranges(&mut rng, n_ops, 150, 12);

        let mut in_order = RangeSet::new();
        for &(s, e) in &ops {
            in_order.insert_range(s, e);
        }

        // Each op twice, shuffled.
        let mut doubled: Vec<(u32, u32)> = ops.iter().chain(ops.iter()).copied().collect();
        shuffle(&mut doubled, &mut rng);
        let mut scrambled = RangeSet::new();
        for &(s, e) in &doubled {
            scrambled.insert_range(s, e);
        }

        assert_eq!(in_order, scrambled, "case {case} ops {ops:?}");
        assert_eq!(in_order.len(), scrambled.len(), "case {case}");
        // Replaying any op adds nothing.
        for &(s, e) in &ops {
            assert_eq!(
                scrambled.insert_range(s, e),
                0,
                "case {case}: duplicate insert [{s}, {e}) added values"
            );
        }
        // Still disjoint, sorted, coalesced.
        let ranges: Vec<_> = scrambled.iter_ranges().collect();
        for w in ranges.windows(2) {
            assert!(w[0].1 < w[1].0, "case {case}: not coalesced: {ranges:?}");
        }
    }
}

fn ack(cum: SegId, ranges: &[(SegId, SegId)]) -> AckHeader {
    AckHeader {
        cum,
        sack: SackBlocks::from_ranges(ranges),
        for_seg: cum.min(SEGS - 1),
        echo_tx_time: netsim::SimTime::ZERO,
        window: 141_000,
    }
}

/// Observable acknowledgement state of a scoreboard (the parts that must
/// not depend on ACK delivery order or duplication).
fn coverage_fingerprint(b: &Scoreboard) -> (SegId, Vec<bool>, u64, bool) {
    (
        b.cum_ack(),
        (0..SEGS).map(|s| b.is_covered(s)).collect(),
        b.acked_bytes(),
        b.complete(),
    )
}

/// A duplicated ACK (network duplication or a fault-layer copy) must be a
/// no-op: same coverage, same pipe, flagged as a duplicate.
#[test]
fn scoreboard_duplicate_acks_are_noops() {
    let mut rng = SimRng::new(0xD0_D0);
    for case in 0..256 {
        let mut b = Scoreboard::new(SEGS as u64 * MSS as u64, SEGS);
        for s in 0..SEGS {
            b.on_transmit(s);
        }
        // A few warm-up ACKs to land in a random state.
        let mut cum = 0u32;
        for _ in 0..rng.index(6) {
            cum = cum.max(rng.index(SEGS as usize) as u32);
            let n_sacks = rng.index(3);
            let sacks = random_ranges(&mut rng, n_sacks, SEGS - 1, 6)
                .into_iter()
                .map(|(s, e)| (s, e.min(SEGS)))
                .filter(|(s, e)| s < e)
                .collect::<Vec<_>>();
            b.on_ack(&ack(cum, &sacks));
        }
        let n_sacks = 1 + rng.index(2);
        let sacks = random_ranges(&mut rng, n_sacks, SEGS - 1, 6)
            .into_iter()
            .map(|(s, e)| (s, e.min(SEGS)))
            .filter(|(s, e)| s < e)
            .collect::<Vec<_>>();
        let the_ack = ack(cum.max(rng.index(SEGS as usize) as u32), &sacks);
        b.on_ack(&the_ack);

        let before = coverage_fingerprint(&b);
        let pipe = b.pipe_bytes();
        let out = b.on_ack(&the_ack);
        assert!(
            out.is_duplicate,
            "case {case}: exact replay not flagged as duplicate"
        );
        assert!(!out.cum_advanced, "case {case}");
        assert_eq!(out.newly_acked_bytes, 0, "case {case}");
        assert_eq!(coverage_fingerprint(&b), before, "case {case}");
        assert_eq!(b.pipe_bytes(), pipe, "case {case}");
    }
}

/// Reordered delivery of an ACK stream (stale cumulative points arriving
/// after fresh ones, overlapping SACK ranges in any order) converges to
/// the same coverage as in-order delivery: the cumulative point never
/// regresses and coverage is the union of everything acknowledged.
#[test]
fn scoreboard_reordered_ack_stream_converges() {
    let mut rng = SimRng::new(0x5EA50);
    for case in 0..256 {
        // Monotone "as sent by the receiver" ACK stream with random
        // (frequently overlapping) SACK blocks above the cumulative point.
        let n = 2 + rng.index(18);
        let mut cum = 0u32;
        let mut stream: Vec<AckHeader> = Vec::new();
        for _ in 0..n {
            if rng.chance(0.7) {
                cum = (cum + rng.index(4) as u32).min(SEGS);
            }
            let n_sacks = rng.index(3);
            let sacks = random_ranges(&mut rng, n_sacks, SEGS - 1, 8)
                .into_iter()
                .map(|(s, e)| (s, e.min(SEGS)))
                .filter(|(s, e)| s < e)
                .collect::<Vec<_>>();
            stream.push(ack(cum, &sacks));
        }

        let run = |acks: &[AckHeader]| {
            let mut b = Scoreboard::new(SEGS as u64 * MSS as u64, SEGS);
            for s in 0..SEGS {
                b.on_transmit(s);
            }
            let mut high_cum = 0u32;
            for a in acks {
                b.on_ack(a);
                high_cum = high_cum.max(a.cum);
                assert_eq!(
                    b.cum_ack(),
                    high_cum,
                    "case {case}: cumulative point must never regress"
                );
            }
            coverage_fingerprint(&b)
        };

        let in_order = run(&stream);
        let mut permuted = stream.clone();
        shuffle(&mut permuted, &mut rng);
        let reordered = run(&permuted);
        assert_eq!(
            in_order, reordered,
            "case {case}: coverage depends on ACK delivery order"
        );
    }
}

//! The on-wire header carried in every simulated packet.
//!
//! Mirrors the paper's setup (§4.1): schemes are implemented over a
//! UDP-based transport (UDT) with selective ACKs; segments are 1500 bytes
//! on the wire including headers. The receiver echoes the data packet's
//! transmit timestamp in each ACK, which gives senders exact RTT samples
//! (equivalent to TCP timestamps) and gives PCP its dispersion measurements.

use netsim::snap::{SnapError, SnapPayload, SnapReader, SnapWriter};
use netsim::SimTime;

/// Maximum payload bytes per segment (1500-byte wire size minus headers).
pub const MSS: u32 = 1460;
/// Header overhead added to every data segment.
pub const HEADER_BYTES: u32 = 40;
/// Full-size data segment on the wire (paper §4.1: 1500 bytes w/ header).
pub const SEG_WIRE_BYTES: u32 = MSS + HEADER_BYTES;
/// Pure-ACK / SYN / SYN-ACK wire size.
pub const CTRL_WIRE_BYTES: u32 = 40;
/// Default advertised flow-control window (paper §4.1: 141 KB, as in
/// Windows XP; also Halfback's default Pacing Threshold).
pub const DEFAULT_FCW_BYTES: u32 = 141_000;

/// Index of a segment within a flow (0-based).
pub type SegId = u32;

/// Why a data segment was transmitted — drives the retransmission
/// accounting the paper reports (Figs. 5 and 10(b) count *normal*
/// retransmissions; ROPR/Proactive copies are tracked separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendClass {
    /// First transmission of this segment.
    New,
    /// Reactive retransmission after SACK-based loss detection (a "normal"
    /// retransmission in the paper's terms).
    FastRetx,
    /// Reactive retransmission after an RTO (also "normal").
    RtoRetx,
    /// Tail-loss-probe retransmission (Reactive TCP's PTO; counted normal).
    ProbeRetx,
    /// Proactive copy: Halfback's ROPR or Proactive TCP's duplicate.
    Proactive,
}

impl SendClass {
    /// True for the classes the paper counts as "normal retransmissions".
    pub fn is_normal_retx(self) -> bool {
        matches!(
            self,
            SendClass::FastRetx | SendClass::RtoRetx | SendClass::ProbeRetx
        )
    }

    /// True for proactive (loss-anticipating) copies.
    pub fn is_proactive(self) -> bool {
        matches!(self, SendClass::Proactive)
    }

    /// True for any transmission that is not the first copy.
    pub fn is_retransmission(self) -> bool {
        !matches!(self, SendClass::New)
    }
}

/// Up to four SACK ranges, mirroring real TCP's option-space limit.
/// Each block is a half-open segment range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SackBlocks {
    blocks: [(SegId, SegId); 4],
    len: u8,
}

impl SackBlocks {
    /// No SACK information.
    pub const EMPTY: SackBlocks = SackBlocks {
        blocks: [(0, 0); 4],
        len: 0,
    };

    /// Build from up to four ranges (extra ranges are dropped).
    pub fn from_ranges(ranges: &[(SegId, SegId)]) -> Self {
        let mut s = SackBlocks::EMPTY;
        for &r in ranges.iter().take(4) {
            debug_assert!(r.0 < r.1, "empty SACK range {r:?}");
            s.blocks[s.len as usize] = r;
            s.len += 1;
        }
        s
    }

    /// The ranges present.
    pub fn ranges(&self) -> &[(SegId, SegId)] {
        &self.blocks[..self.len as usize]
    }

    /// True if no ranges are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Header of a data segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataHeader {
    /// Segment index within the flow.
    pub seg: SegId,
    /// Transmission class (first copy, reactive retx, proactive copy…).
    pub class: SendClass,
}

/// Header of an acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckHeader {
    /// Cumulative ACK: all segments `< cum` have been received.
    pub cum: SegId,
    /// Selective acknowledgement ranges above `cum`.
    pub sack: SackBlocks,
    /// The segment whose arrival triggered this ACK.
    pub for_seg: SegId,
    /// Echo of the triggering data packet's transmit timestamp (exact RTT
    /// samples, Karn-safe — equivalent to TCP timestamps).
    pub echo_tx_time: SimTime,
    /// Receiver's advertised flow-control window in bytes.
    pub window: u32,
}

/// PCP probe packet: one element of a packet train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeHeader {
    /// Train sequence number (per connection).
    pub train: u32,
    /// Position within the train.
    pub idx: u32,
    /// Train length.
    pub len: u32,
}

/// Receiver's reply to a probe, echoing timing for dispersion measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeAckHeader {
    /// Train sequence number.
    pub train: u32,
    /// Position within the train.
    pub idx: u32,
    /// Train length.
    pub len: u32,
    /// When the probe left the sender (echoed).
    pub sent_at: SimTime,
    /// When the probe reached the receiver.
    pub recv_at: SimTime,
}

/// Every message the simulated transport can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Header {
    /// Connection request. Carries the flow's total size in bytes so the
    /// receiver can size its bookkeeping (the simulator's stand-in for an
    /// application-level content-length).
    Syn {
        /// Total flow size in bytes.
        flow_bytes: u64,
    },
    /// Connection accept; advertises the receiver window.
    SynAck {
        /// Advertised flow-control window in bytes.
        window: u32,
    },
    /// A data segment.
    Data(DataHeader),
    /// An acknowledgement.
    Ack(AckHeader),
    /// A PCP bandwidth probe.
    Probe(ProbeHeader),
    /// Reply to a probe.
    ProbeAck(ProbeAckHeader),
}

impl SendClass {
    fn snap_tag(self) -> u8 {
        match self {
            SendClass::New => 0,
            SendClass::FastRetx => 1,
            SendClass::RtoRetx => 2,
            SendClass::ProbeRetx => 3,
            SendClass::Proactive => 4,
        }
    }

    fn from_snap_tag(tag: u8) -> Result<Self, SnapError> {
        Ok(match tag {
            0 => SendClass::New,
            1 => SendClass::FastRetx,
            2 => SendClass::RtoRetx,
            3 => SendClass::ProbeRetx,
            4 => SendClass::Proactive,
            _ => {
                return Err(SnapError::Tag {
                    ty: "SendClass",
                    tag,
                })
            }
        })
    }
}

impl SnapPayload for Header {
    fn encode(&self, w: &mut SnapWriter) {
        match *self {
            Header::Syn { flow_bytes } => {
                w.u8(0);
                w.u64(flow_bytes);
            }
            Header::SynAck { window } => {
                w.u8(1);
                w.u32(window);
            }
            Header::Data(DataHeader { seg, class }) => {
                w.u8(2);
                w.u32(seg);
                w.u8(class.snap_tag());
            }
            Header::Ack(AckHeader {
                cum,
                sack,
                for_seg,
                echo_tx_time,
                window,
            }) => {
                w.u8(3);
                w.u32(cum);
                w.u8(sack.len);
                for &(s, e) in sack.ranges() {
                    w.u32(s);
                    w.u32(e);
                }
                w.u32(for_seg);
                w.u64(echo_tx_time.as_nanos());
                w.u32(window);
            }
            Header::Probe(ProbeHeader { train, idx, len }) => {
                w.u8(4);
                w.u32(train);
                w.u32(idx);
                w.u32(len);
            }
            Header::ProbeAck(ProbeAckHeader {
                train,
                idx,
                len,
                sent_at,
                recv_at,
            }) => {
                w.u8(5);
                w.u32(train);
                w.u32(idx);
                w.u32(len);
                w.u64(sent_at.as_nanos());
                w.u64(recv_at.as_nanos());
            }
        }
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Header::Syn {
                flow_bytes: r.u64()?,
            },
            1 => Header::SynAck { window: r.u32()? },
            2 => Header::Data(DataHeader {
                seg: r.u32()?,
                class: SendClass::from_snap_tag(r.u8()?)?,
            }),
            3 => {
                let cum = r.u32()?;
                let n = r.u8()?;
                if n > 4 {
                    return Err(SnapError::Tag {
                        ty: "SackBlocks.len",
                        tag: n,
                    });
                }
                let mut ranges = [(0u32, 0u32); 4];
                for slot in ranges.iter_mut().take(n as usize) {
                    *slot = (r.u32()?, r.u32()?);
                }
                Header::Ack(AckHeader {
                    cum,
                    sack: SackBlocks {
                        blocks: ranges,
                        len: n,
                    },
                    for_seg: r.u32()?,
                    echo_tx_time: SimTime::from_nanos(r.u64()?),
                    window: r.u32()?,
                })
            }
            4 => Header::Probe(ProbeHeader {
                train: r.u32()?,
                idx: r.u32()?,
                len: r.u32()?,
            }),
            5 => Header::ProbeAck(ProbeAckHeader {
                train: r.u32()?,
                idx: r.u32()?,
                len: r.u32()?,
                sent_at: SimTime::from_nanos(r.u64()?),
                recv_at: SimTime::from_nanos(r.u64()?),
            }),
            tag => return Err(SnapError::Tag { ty: "Header", tag }),
        })
    }
}

/// Number of segments needed for a flow of `bytes` payload bytes.
pub fn segment_count(bytes: u64) -> u32 {
    if bytes == 0 {
        return 0;
    }
    bytes.div_ceil(MSS as u64).min(u32::MAX as u64) as u32
}

/// Payload bytes carried by segment `seg` of a flow of `total_bytes`.
pub fn seg_payload_bytes(total_bytes: u64, seg: SegId) -> u32 {
    let n = segment_count(total_bytes);
    debug_assert!(
        seg < n,
        "segment {seg} out of range for {total_bytes} bytes"
    );
    if seg + 1 < n {
        MSS
    } else {
        let rem = (total_bytes - (n as u64 - 1) * MSS as u64) as u32;
        if rem == 0 {
            MSS
        } else {
            rem
        }
    }
}

/// On-wire size of segment `seg` of a flow of `total_bytes`.
pub fn seg_wire_bytes(total_bytes: u64, seg: SegId) -> u32 {
    seg_payload_bytes(total_bytes, seg) + HEADER_BYTES
}

/// Total wire bytes (data direction, first copies only) of a flow,
/// excluding handshake — used by utilization targeting.
pub fn flow_wire_bytes(total_bytes: u64) -> u64 {
    let n = segment_count(total_bytes) as u64;
    total_bytes + n * HEADER_BYTES as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_count_rounds_up() {
        assert_eq!(segment_count(0), 0);
        assert_eq!(segment_count(1), 1);
        assert_eq!(segment_count(MSS as u64), 1);
        assert_eq!(segment_count(MSS as u64 + 1), 2);
        assert_eq!(segment_count(100_000), 69); // 100 KB / 1460 = 68.49...
    }

    #[test]
    fn last_segment_carries_remainder() {
        let total = 100_000u64;
        let n = segment_count(total);
        let sum: u64 = (0..n).map(|s| seg_payload_bytes(total, s) as u64).sum();
        assert_eq!(sum, total);
        assert_eq!(seg_payload_bytes(total, 0), MSS);
        assert_eq!(seg_payload_bytes(total, n - 1), (total % MSS as u64) as u32);
    }

    #[test]
    fn exact_multiple_has_full_last_segment() {
        let total = (MSS as u64) * 10;
        let n = segment_count(total);
        assert_eq!(n, 10);
        assert_eq!(seg_payload_bytes(total, 9), MSS);
    }

    #[test]
    fn wire_bytes_include_headers() {
        assert_eq!(seg_wire_bytes(MSS as u64, 0), SEG_WIRE_BYTES);
        assert_eq!(flow_wire_bytes(100_000), 100_000 + 69 * 40);
    }

    #[test]
    fn sack_blocks_cap_at_four() {
        let s = SackBlocks::from_ranges(&[(1, 2), (3, 4), (5, 6), (7, 8), (9, 10)]);
        assert_eq!(s.ranges().len(), 4);
        assert_eq!(s.ranges()[3], (7, 8));
        assert!(SackBlocks::EMPTY.is_empty());
    }

    #[test]
    fn header_snapshot_roundtrip() {
        let headers = [
            Header::Syn {
                flow_bytes: 123_456,
            },
            Header::SynAck { window: 141_000 },
            Header::Data(DataHeader {
                seg: 42,
                class: SendClass::Proactive,
            }),
            Header::Ack(AckHeader {
                cum: 7,
                sack: SackBlocks::from_ranges(&[(9, 12), (20, 21)]),
                for_seg: 11,
                echo_tx_time: SimTime::from_nanos(987_654_321),
                window: 64_000,
            }),
            Header::Probe(ProbeHeader {
                train: 2,
                idx: 3,
                len: 8,
            }),
            Header::ProbeAck(ProbeAckHeader {
                train: 2,
                idx: 3,
                len: 8,
                sent_at: SimTime::from_nanos(10),
                recv_at: SimTime::from_nanos(20),
            }),
        ];
        let mut w = SnapWriter::new();
        for h in &headers {
            h.encode(&mut w);
        }
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        for h in &headers {
            assert_eq!(*h, Header::decode(&mut r).unwrap());
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn send_class_accounting() {
        assert!(!SendClass::New.is_retransmission());
        assert!(SendClass::FastRetx.is_normal_retx());
        assert!(SendClass::RtoRetx.is_normal_retx());
        assert!(SendClass::ProbeRetx.is_normal_retx());
        assert!(SendClass::Proactive.is_proactive());
        assert!(!SendClass::Proactive.is_normal_retx());
        assert!(SendClass::Proactive.is_retransmission());
    }
}

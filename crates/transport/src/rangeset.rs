//! A set of `u32` values stored as disjoint half-open ranges.
//!
//! Used by the receiver (which segments have arrived) and by the sender's
//! scoreboard (which segments have been SACKed). Ranges keep memory bounded
//! even for the 100 MB long flows in the Fig. 13 experiments.

use std::collections::BTreeMap;

/// An ordered set of disjoint, coalesced half-open ranges `[start, end)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeSet {
    // start -> end, disjoint and non-adjacent (always coalesced).
    ranges: BTreeMap<u32, u32>,
    count: u64,
}

impl RangeSet {
    /// Empty set.
    pub fn new() -> Self {
        RangeSet::default()
    }

    /// Number of values in the set.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True if no values are present.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Insert a single value; returns true if it was newly added.
    pub fn insert(&mut self, v: u32) -> bool {
        self.insert_range(v, v + 1) > 0
    }

    /// Insert `[start, end)`; returns how many values were newly added.
    pub fn insert_range(&mut self, start: u32, end: u32) -> u64 {
        if start >= end {
            return 0;
        }
        // Fast paths against the predecessor range (the one with the
        // greatest start <= `start`): in-order arrivals and sequential
        // transmissions nearly always extend it in place, and duplicates
        // land inside it. Both avoid the remove/re-insert churn below.
        if let Some((&ps, &pe)) = self.ranges.range(..=start).next_back() {
            if pe >= end {
                return 0;
            }
            if pe >= start {
                let follower = self
                    .ranges
                    .range((std::ops::Bound::Excluded(ps), std::ops::Bound::Unbounded))
                    .next()
                    .map(|(&s, _)| s);
                // The follower must stay disjoint and non-adjacent.
                if follower.is_none_or(|fs| fs > end) {
                    let added = (end - pe) as u64;
                    *self.ranges.get_mut(&ps).expect("predecessor exists") = end;
                    self.count += added;
                    return added;
                }
            }
        }
        let mut new_start = start;
        let mut new_end = end;
        // Remove all ranges overlapping or adjacent to the insertion,
        // tracking how much of the insertion they already covered.
        let mut added: u64 = (end - start) as u64;
        let mut to_remove = Vec::new();
        // Candidate ranges: any with start <= new_end, ending >= new_start.
        for (&s, &e) in self.ranges.range(..=new_end) {
            if e >= new_start {
                to_remove.push((s, e));
            }
        }
        for (s, e) in to_remove {
            // Subtract the overlap with [start, end) from `added`.
            let ov_start = s.max(start);
            let ov_end = e.min(end);
            if ov_start < ov_end {
                added -= (ov_end - ov_start) as u64;
            }
            new_start = new_start.min(s);
            new_end = new_end.max(e);
            self.ranges.remove(&s);
        }
        self.ranges.insert(new_start, new_end);
        self.count += added;
        added
    }

    /// Does the set contain `v`?
    pub fn contains(&self, v: u32) -> bool {
        match self.ranges.range(..=v).next_back() {
            Some((_, &e)) => v < e,
            None => false,
        }
    }

    /// The smallest value `>= from` *not* in the set.
    pub fn first_missing_from(&self, from: u32) -> u32 {
        let mut v = from;
        while let Some((&s, &e)) = self.ranges.range(..=v).next_back() {
            if v < e && v >= s {
                v = e;
            } else {
                break;
            }
        }
        v
    }

    /// Iterate the stored ranges in ascending order.
    pub fn iter_ranges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.ranges.iter().map(|(&s, &e)| (s, e))
    }

    /// The complement within `[lo, hi)`: maximal ranges of values NOT in
    /// the set, ascending. Lets callers process only new values when
    /// merging a large, mostly-overlapping range (the SACK hot path).
    pub fn missing_within(&self, lo: u32, hi: u32) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        self.missing_within_into(lo, hi, &mut out);
        out
    }

    /// [`missing_within`], but clearing and filling a caller-supplied
    /// buffer so a hot loop (the scoreboard's per-ACK walk) can reuse its
    /// allocation.
    pub fn missing_within_into(&self, lo: u32, hi: u32, out: &mut Vec<(u32, u32)>) {
        out.clear();
        if lo >= hi {
            return;
        }
        let mut cursor = lo;
        // Start from any range containing/preceding `lo`.
        if let Some((_, &e)) = self.ranges.range(..=lo).next_back() {
            if e > cursor {
                cursor = e;
            }
        }
        for (&s, &e) in self.ranges.range(lo..) {
            if s >= hi {
                break;
            }
            if s > cursor {
                out.push((cursor, s.min(hi)));
            }
            if e > cursor {
                cursor = e;
            }
            if cursor >= hi {
                return;
            }
        }
        if cursor < hi {
            out.push((cursor, hi));
        }
    }

    /// Ranges intersected with `[lo, hi)`, ascending, without allocating —
    /// the receiver's SACK builder calls this once per data packet.
    pub fn ranges_within_iter(&self, lo: u32, hi: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        // A range starting at or before `lo` can still straddle it.
        let head = self
            .ranges
            .range(..=lo)
            .next_back()
            .map(|(&s, &e)| (s, e))
            .filter(|&(_, e)| e > lo);
        head.into_iter()
            .chain(
                self.ranges
                    .range((std::ops::Bound::Excluded(lo), std::ops::Bound::Unbounded))
                    .map(|(&s, &e)| (s, e)),
            )
            .take_while(move |&(s, _)| s < hi)
            .map(move |(s, e)| (s.max(lo), e.min(hi)))
            .filter(|&(s, e)| s < e)
    }

    /// Ranges intersected with `[lo, hi)`, ascending.
    pub fn ranges_within(&self, lo: u32, hi: u32) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (&s, &e) in &self.ranges {
            if e <= lo {
                continue;
            }
            if s >= hi {
                break;
            }
            out.push((s.max(lo), e.min(hi)));
        }
        out
    }

    /// Number of set values strictly greater than `v`.
    pub fn count_above(&self, v: u32) -> u64 {
        let mut n = 0u64;
        for (&s, &e) in self.ranges.range(..) {
            if e <= v + 1 {
                continue;
            }
            n += (e - s.max(v + 1)) as u64;
        }
        n
    }

    /// Serialize into the engine checkpoint codec: ranges ascending, so
    /// the bytes are deterministic for a given set.
    pub fn save(&self, w: &mut netsim::snap::SnapWriter) {
        w.usize(self.ranges.len());
        for (&s, &e) in &self.ranges {
            w.u32(s);
            w.u32(e);
        }
        w.u64(self.count);
    }

    /// Rebuild a set saved by [`RangeSet::save`].
    pub fn load(r: &mut netsim::snap::SnapReader<'_>) -> Result<Self, netsim::snap::SnapError> {
        let n = r.usize()?;
        let mut ranges = BTreeMap::new();
        for _ in 0..n {
            let s = r.u32()?;
            let e = r.u32()?;
            ranges.insert(s, e);
        }
        let count = r.u64()?;
        Ok(RangeSet { ranges, count })
    }

    /// Remove everything below `v` (bookkeeping once the cumulative ACK
    /// passes; keeps the map small for long flows).
    pub fn prune_below(&mut self, v: u32) {
        let mut to_fix = Vec::new();
        for (&s, &e) in self.ranges.range(..) {
            if s >= v {
                break;
            }
            to_fix.push((s, e));
        }
        for (s, e) in to_fix {
            self.ranges.remove(&s);
            if e > v {
                self.ranges.insert(v, e);
                self.count -= (v - s) as u64;
            } else {
                self.count -= (e - s) as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::rng::SimRng;
    use std::collections::BTreeSet;

    #[test]
    fn insert_and_contains() {
        let mut r = RangeSet::new();
        assert!(r.insert(5));
        assert!(!r.insert(5));
        assert!(r.contains(5));
        assert!(!r.contains(4));
        assert!(!r.contains(6));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn adjacent_ranges_coalesce() {
        let mut r = RangeSet::new();
        r.insert_range(0, 5);
        r.insert_range(5, 10);
        assert_eq!(r.iter_ranges().collect::<Vec<_>>(), vec![(0, 10)]);
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn overlapping_insert_counts_only_new() {
        let mut r = RangeSet::new();
        assert_eq!(r.insert_range(0, 10), 10);
        assert_eq!(r.insert_range(5, 15), 5);
        assert_eq!(r.insert_range(0, 15), 0);
        assert_eq!(r.len(), 15);
    }

    #[test]
    fn bridge_insert_merges_three() {
        let mut r = RangeSet::new();
        r.insert_range(0, 3);
        r.insert_range(6, 9);
        r.insert_range(3, 6);
        assert_eq!(r.iter_ranges().collect::<Vec<_>>(), vec![(0, 9)]);
    }

    #[test]
    fn first_missing_walks_through_ranges() {
        let mut r = RangeSet::new();
        r.insert_range(0, 3);
        r.insert_range(4, 7);
        assert_eq!(r.first_missing_from(0), 3);
        assert_eq!(r.first_missing_from(3), 3);
        assert_eq!(r.first_missing_from(4), 7);
        assert_eq!(r.first_missing_from(10), 10);
    }

    #[test]
    fn count_above_counts_strictly_greater() {
        let mut r = RangeSet::new();
        r.insert_range(0, 5); // {0..4}
        r.insert_range(8, 10); // {8, 9}
        assert_eq!(r.count_above(2), 2 + 2); // {3,4,8,9}
        assert_eq!(r.count_above(4), 2);
        assert_eq!(r.count_above(9), 0);
    }

    #[test]
    fn prune_below_trims() {
        let mut r = RangeSet::new();
        r.insert_range(0, 10);
        r.insert_range(20, 30);
        r.prune_below(25);
        assert_eq!(r.iter_ranges().collect::<Vec<_>>(), vec![(25, 30)]);
        assert_eq!(r.len(), 5);
        assert!(!r.contains(5));
        assert!(r.contains(26));
    }

    #[test]
    fn ranges_within_clips() {
        let mut r = RangeSet::new();
        r.insert_range(0, 10);
        r.insert_range(20, 30);
        assert_eq!(r.ranges_within(5, 25), vec![(5, 10), (20, 25)]);
        assert_eq!(r.ranges_within(10, 20), vec![]);
    }

    /// Random `(start, len)` insert operations for the reference tests.
    fn random_ops(
        rng: &mut SimRng,
        max_ops: usize,
        max_start: u32,
        max_len: u32,
    ) -> Vec<(u32, u32)> {
        let n = rng.index(max_ops + 1);
        (0..n)
            .map(|_| {
                (
                    rng.index(max_start as usize) as u32,
                    1 + rng.index(max_len as usize - 1) as u32,
                )
            })
            .collect()
    }

    /// RangeSet agrees with a reference BTreeSet on arbitrary operations.
    #[test]
    fn matches_reference_set() {
        let mut rng = SimRng::new(0xA11CE);
        for case in 0..256 {
            let ops = random_ops(&mut rng, 60, 200, 20);
            let mut rs = RangeSet::new();
            let mut reference = BTreeSet::new();
            for &(start, len) in &ops {
                let end = start + len;
                rs.insert_range(start, end);
                for v in start..end {
                    reference.insert(v);
                }
                assert_eq!(rs.len(), reference.len() as u64, "case {case} ops {ops:?}");
            }
            for v in 0u32..240 {
                assert_eq!(
                    rs.contains(v),
                    reference.contains(&v),
                    "case {case} value {v} ops {ops:?}"
                );
            }
            // Ranges must be disjoint, sorted and coalesced.
            let ranges: Vec<_> = rs.iter_ranges().collect();
            for w in ranges.windows(2) {
                assert!(
                    w[0].1 < w[1].0,
                    "case {case}: ranges {ranges:?} not coalesced"
                );
            }
        }
    }

    /// first_missing_from matches a linear scan of the reference.
    #[test]
    fn first_missing_matches_reference() {
        let mut rng = SimRng::new(0xF157);
        for case in 0..256 {
            let ops = random_ops(&mut rng, 30, 100, 10);
            let probe = rng.index(120) as u32;
            let mut rs = RangeSet::new();
            let mut reference = BTreeSet::new();
            for &(start, len) in &ops {
                rs.insert_range(start, start + len);
                for v in start..start + len {
                    reference.insert(v);
                }
            }
            let mut expect = probe;
            while reference.contains(&expect) {
                expect += 1;
            }
            assert_eq!(
                rs.first_missing_from(probe),
                expect,
                "case {case} probe {probe} ops {ops:?}"
            );
        }
    }

    /// count_above matches a linear scan.
    #[test]
    fn count_above_matches_reference() {
        let mut rng = SimRng::new(0xC07);
        for case in 0..256 {
            let ops = random_ops(&mut rng, 30, 100, 10);
            let probe = rng.index(120) as u32;
            let mut rs = RangeSet::new();
            let mut reference = BTreeSet::new();
            for &(start, len) in &ops {
                rs.insert_range(start, start + len);
                for v in start..start + len {
                    reference.insert(v);
                }
            }
            let expect = reference.iter().filter(|&&v| v > probe).count() as u64;
            assert_eq!(
                rs.count_above(probe),
                expect,
                "case {case} probe {probe} ops {ops:?}"
            );
        }
    }
}

#[cfg(test)]
mod missing_tests {
    use super::*;
    use netsim::rng::SimRng;

    #[test]
    fn missing_within_basic() {
        let mut r = RangeSet::new();
        r.insert_range(2, 5);
        r.insert_range(8, 10);
        assert_eq!(r.missing_within(0, 12), vec![(0, 2), (5, 8), (10, 12)]);
        assert_eq!(r.missing_within(3, 4), vec![]);
        assert_eq!(r.missing_within(4, 9), vec![(5, 8)]);
        assert_eq!(RangeSet::new().missing_within(1, 3), vec![(1, 3)]);
        assert_eq!(r.missing_within(5, 5), vec![]);
    }

    #[test]
    fn missing_within_matches_reference() {
        let mut rng = SimRng::new(0x6a95);
        for case in 0..256 {
            let n_ops = rng.index(21);
            let ops: Vec<(u32, u32)> = (0..n_ops)
                .map(|_| (rng.index(80) as u32, 1 + rng.index(9) as u32))
                .collect();
            let lo = rng.index(90) as u32;
            let len = rng.index(30) as u32;
            let mut rs = RangeSet::new();
            let mut member = std::collections::BTreeSet::new();
            for &(s, l) in &ops {
                rs.insert_range(s, s + l);
                for v in s..s + l {
                    member.insert(v);
                }
            }
            let hi = lo + len;
            let gaps = rs.missing_within(lo, hi);
            // Flatten and compare against a linear scan.
            let mut expect = Vec::new();
            for v in lo..hi {
                if !member.contains(&v) {
                    expect.push(v);
                }
            }
            let mut got = Vec::new();
            for (s, e) in &gaps {
                assert!(s < e, "case {case} ops {ops:?}");
                for v in *s..*e {
                    got.push(v);
                }
            }
            assert_eq!(got, expect, "case {case} [{lo}, {hi}) ops {ops:?}");
            // Gaps must be disjoint and sorted.
            for w in gaps.windows(2) {
                assert!(w[0].1 <= w[1].0, "case {case} gaps {gaps:?}");
            }
        }
    }
}

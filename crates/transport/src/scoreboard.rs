//! Sender-side scoreboard: which segments are ACKed/SACKed, which are deemed
//! lost, and how many bytes are estimated to be in flight ("pipe").
//!
//! Loss detection follows SACK-based TCP (RFC 6675's DupThresh rule): an
//! unacknowledged segment is deemed lost once three segments above it have
//! been selectively acknowledged. A segment marked lost stays lost until it
//! is acknowledged; if its retransmission is lost too, recovery falls to the
//! RTO — exactly the failure mode the paper highlights for JumpStart's
//! bursty retransmissions.

use crate::rangeset::RangeSet;
use crate::wire::{seg_payload_bytes, AckHeader, SegId};

/// Duplicate-ACK (SACK-count) threshold for loss detection.
pub const DUP_THRESH: u64 = 3;

/// What an incoming ACK changed.
#[derive(Debug, Clone, Default)]
pub struct AckOutcome {
    /// The cumulative ACK advanced.
    pub cum_advanced: bool,
    /// Payload bytes newly acknowledged (cumulatively or selectively).
    pub newly_acked_bytes: u64,
    /// Segments newly deemed lost by the DupThresh rule, ascending.
    pub newly_lost: Vec<SegId>,
    /// This ACK acknowledged nothing new (a pure duplicate).
    pub is_duplicate: bool,
}

/// Per-flow sender scoreboard.
#[derive(Debug, Clone)]
pub struct Scoreboard {
    total_bytes: u64,
    total_segs: u32,
    /// Next expected by the receiver: all segments `< cum` are delivered.
    cum: SegId,
    /// Selectively acknowledged segments above `cum`.
    sacked: RangeSet,
    /// Segments currently deemed lost (unacked, DupThresh exceeded or RTO).
    lost: RangeSet,
    /// Copies of each segment currently presumed in flight.
    outstanding: Vec<u8>,
    /// Whether each segment has ever been transmitted.
    sent_once: RangeSet,
    /// Segments transmitted more than once. The DupThresh rule must not
    /// re-mark these lost — the SACK count above them stays satisfied
    /// forever, so re-marking would retransmit on every ACK. If the
    /// retransmission is lost too, only the RTO recovers it (RFC 6675's
    /// behaviour, and exactly the JumpStart failure mode the paper
    /// describes: "the sender needs to wait until timeout when the
    /// retransmitted packets are lost").
    retransmitted: RangeSet,
    /// Estimated payload bytes in flight.
    pipe_bytes: u64,
    /// Highest segment ever transmitted, +1 (0 when nothing sent).
    high_sent: u32,
    /// Naive loss re-marking: each (re)transmission of a segment gets its
    /// own DupThresh chance — once three *further* segments are SACKed
    /// after a retransmission, the segment is deemed lost again and
    /// retransmitted again. This models JumpStart's fallback stack, whose
    /// "propensity to retransmit the same packets multiple times" the paper
    /// names as the root of its unsafety (§2.2, §4.3.2, §4.3.3). Careful
    /// RFC 6675-style stacks never re-mark; only the RTO recovers a lost
    /// retransmission.
    naive_remarking: bool,
    /// Monotonic count of segments ever newly SACKed (never decreases,
    /// unlike the pruned `sacked` set).
    total_sacked_ever: u64,
    /// `total_sacked_ever` at each segment's most recent transmission.
    sacked_at_tx: Vec<u64>,
    /// Reused gap buffer for `on_ack`'s SACK-block walk (amortizes the
    /// per-ACK allocation away).
    sack_gap_scratch: Vec<(u32, u32)>,
}

impl Scoreboard {
    /// New scoreboard for a flow of `total_bytes` split into `total_segs`.
    pub fn new(total_bytes: u64, total_segs: u32) -> Self {
        Scoreboard {
            total_bytes,
            total_segs,
            cum: 0,
            sacked: RangeSet::new(),
            lost: RangeSet::new(),
            outstanding: vec![0; total_segs as usize],
            sent_once: RangeSet::new(),
            retransmitted: RangeSet::new(),
            pipe_bytes: 0,
            high_sent: 0,
            naive_remarking: false,
            total_sacked_ever: 0,
            sacked_at_tx: vec![0; total_segs as usize],
            sack_gap_scratch: Vec::new(),
        }
    }

    /// Enable naive loss re-marking (see the field docs); used by JumpStart.
    pub fn set_naive_remarking(&mut self, naive: bool) {
        self.naive_remarking = naive;
    }

    /// Total segments in the flow.
    pub fn total_segs(&self) -> u32 {
        self.total_segs
    }

    /// Total payload bytes in the flow.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Payload bytes of one segment.
    pub fn seg_bytes(&self, seg: SegId) -> u32 {
        seg_payload_bytes(self.total_bytes, seg)
    }

    /// Cumulative ACK point (all segments below are delivered).
    pub fn cum_ack(&self) -> SegId {
        self.cum
    }

    /// True when every segment is cumulatively acknowledged.
    pub fn complete(&self) -> bool {
        self.cum >= self.total_segs
    }

    /// Estimated payload bytes in flight.
    pub fn pipe_bytes(&self) -> u64 {
        self.pipe_bytes
    }

    /// Highest segment id ever sent plus one (0 = nothing sent yet).
    pub fn high_sent(&self) -> u32 {
        self.high_sent
    }

    /// Next segment that has never been transmitted, if any.
    pub fn next_unsent(&self) -> Option<SegId> {
        let v = self.sent_once.first_missing_from(0);
        (v < self.total_segs).then_some(v)
    }

    /// Is `seg` covered (cumulatively or selectively acknowledged)?
    pub fn is_covered(&self, seg: SegId) -> bool {
        seg < self.cum || self.sacked.contains(seg)
    }

    /// Is `seg` currently marked lost?
    pub fn is_lost(&self, seg: SegId) -> bool {
        self.lost.contains(seg)
    }

    /// Has `seg` ever been transmitted?
    pub fn was_sent(&self, seg: SegId) -> bool {
        self.sent_once.contains(seg)
    }

    /// Has `seg` been transmitted more than once?
    pub fn was_retransmitted(&self, seg: SegId) -> bool {
        self.retransmitted.contains(seg)
    }

    /// First segment not yet covered, if any.
    pub fn first_uncovered(&self) -> Option<SegId> {
        let mut v = self.cum;
        loop {
            if v >= self.total_segs {
                return None;
            }
            if !self.sacked.contains(v) {
                return Some(v);
            }
            v = self.sacked.first_missing_from(v);
        }
    }

    /// Uncovered segments in `[lo, hi)`, ascending (capped at `max`).
    pub fn uncovered_in(&self, lo: SegId, hi: SegId, max: usize) -> Vec<SegId> {
        let mut out = Vec::new();
        let mut v = lo.max(self.cum);
        while v < hi && out.len() < max {
            if self.sacked.contains(v) {
                v = self.sacked.first_missing_from(v);
                continue;
            }
            out.push(v);
            v += 1;
        }
        out
    }

    /// Highest uncovered segment strictly below `hi`, scanning down.
    pub fn highest_uncovered_below(&self, hi: SegId) -> Option<SegId> {
        let mut v = hi.min(self.total_segs);
        while v > self.cum {
            v -= 1;
            if !self.sacked.contains(v) {
                return Some(v);
            }
        }
        None
    }

    /// Record a transmission of `seg`.
    pub fn on_transmit(&mut self, seg: SegId) {
        assert!(
            seg < self.total_segs,
            "transmit of out-of-range segment {seg}"
        );
        if self.sent_once.contains(seg) {
            self.retransmitted.insert(seg);
        }
        self.sent_once.insert(seg);
        self.sacked_at_tx[seg as usize] = self.total_sacked_ever;
        self.high_sent = self.high_sent.max(seg + 1);
        let o = &mut self.outstanding[seg as usize];
        *o = o.saturating_add(1);
        self.pipe_bytes += self.seg_bytes(seg) as u64;
        // A retransmission of a lost segment puts it back in flight; clear
        // the lost mark so pipe accounting and retransmission policies treat
        // it as outstanding again.
        // (It will be re-marked only by an RTO, not by the DupThresh rule.)
        if self.lost.contains(seg) {
            self.remove_lost(seg);
        }
    }

    fn remove_lost(&mut self, seg: SegId) {
        // RangeSet lacks remove; rebuild the (tiny) lost set without `seg`.
        let mut nl = RangeSet::new();
        for (s, e) in self.lost.iter_ranges() {
            if seg >= s && seg < e {
                if s < seg {
                    nl.insert_range(s, seg);
                }
                if seg + 1 < e {
                    nl.insert_range(seg + 1, e);
                }
            } else {
                nl.insert_range(s, e);
            }
        }
        self.lost = nl;
    }

    fn resolve_flight(&mut self, seg: SegId) {
        let o = std::mem::take(&mut self.outstanding[seg as usize]);
        if o > 0 {
            self.pipe_bytes = self
                .pipe_bytes
                .saturating_sub(self.seg_bytes(seg) as u64 * o as u64);
        }
    }

    /// Process an incoming ACK; returns what changed.
    pub fn on_ack(&mut self, ack: &AckHeader) -> AckOutcome {
        let mut out = AckOutcome::default();
        let old_cum = self.cum;

        // Cumulative advance.
        if ack.cum > self.cum {
            for seg in self.cum..ack.cum {
                if !self.sacked.contains(seg) {
                    out.newly_acked_bytes += self.seg_bytes(seg) as u64;
                }
                self.resolve_flight(seg);
                if self.lost.contains(seg) {
                    self.remove_lost(seg);
                }
            }
            self.cum = ack.cum;
            self.sacked.prune_below(self.cum);
            self.lost.prune_below(self.cum);
            self.retransmitted.prune_below(self.cum);
            out.cum_advanced = true;
        }

        // Selective blocks: touch only the segments this ACK newly covers
        // (blocks can span the whole receive window; iterating every member
        // per ACK would be quadratic for big windows).
        let mut gaps = std::mem::take(&mut self.sack_gap_scratch);
        for &(s, e) in ack.sack.ranges() {
            let s = s.max(self.cum);
            if s >= e {
                continue;
            }
            self.sacked.missing_within_into(s, e, &mut gaps);
            for &(gs, ge) in &gaps {
                for seg in gs..ge {
                    out.newly_acked_bytes += self.seg_bytes(seg) as u64;
                    self.total_sacked_ever += 1;
                    self.resolve_flight(seg);
                    if self.lost.contains(seg) {
                        self.remove_lost(seg);
                    }
                }
            }
            self.sacked.insert_range(s, e);
        }
        self.sack_gap_scratch = gaps;

        out.is_duplicate = !out.cum_advanced && out.newly_acked_bytes == 0;

        // DupThresh loss detection: an uncovered segment with >= 3 SACKed
        // segments above it is deemed lost. Walk the SACKed ranges once,
        // ascending, visiting only the holes between them — O(holes),
        // independent of window width. The count of SACKed segments above a
        // hole is `total - below`, where `below` accumulates as the walk
        // passes each range, so `newly_lost` comes out already sorted with
        // no scratch allocation.
        let total_sacked = self.sacked.len();
        if total_sacked >= DUP_THRESH {
            let total_bytes = self.total_bytes;
            let naive = self.naive_remarking;
            let ever = self.total_sacked_ever;
            let mut below: u64 = 0;
            let mut hole_lo = self.cum;
            for (rs, re) in self.sacked.iter_ranges() {
                if total_sacked - below < DUP_THRESH {
                    // This hole — and every later one — has too few SACKed
                    // segments above it.
                    break;
                }
                for v in hole_lo.max(self.cum)..rs {
                    let eligible = if self.retransmitted.contains(v) {
                        // A retransmitted segment: careful stacks never
                        // re-mark; the naive stack re-marks once DupThresh
                        // further segments were SACKed after the
                        // retransmission.
                        naive && ever >= self.sacked_at_tx[v as usize] + DUP_THRESH
                    } else {
                        true
                    };
                    if !self.lost.contains(v) && self.outstanding[v as usize] > 0 && eligible {
                        self.lost.insert(v);
                        // resolve_flight, inlined: the SACK range iterator
                        // pins `self.sacked`, so only disjoint fields may be
                        // borrowed here.
                        let o = std::mem::take(&mut self.outstanding[v as usize]);
                        if o > 0 {
                            self.pipe_bytes = self.pipe_bytes.saturating_sub(
                                seg_payload_bytes(total_bytes, v) as u64 * o as u64,
                            );
                        }
                        out.newly_lost.push(v);
                    }
                }
                below += (re - rs) as u64;
                hole_lo = re;
            }
        }

        let _ = old_cum;
        out
    }

    /// An RTO fired: everything unacknowledged is presumed gone from the
    /// network; pipe resets and uncovered in-flight segments are marked lost.
    pub fn on_rto(&mut self) {
        for seg in self.cum..self.high_sent {
            if !self.is_covered(seg) && self.sent_once.contains(seg) {
                self.lost.insert(seg);
            }
            self.outstanding[seg as usize] = 0;
        }
        self.pipe_bytes = 0;
    }

    /// Lost segments, ascending, capped at `max`.
    pub fn lost_segments(&self, max: usize) -> Vec<SegId> {
        let mut out = Vec::new();
        for (s, e) in self.lost.iter_ranges() {
            for v in s..e {
                if out.len() >= max {
                    return out;
                }
                out.push(v);
            }
        }
        out
    }

    /// Lowest segment currently marked lost, without allocating — the
    /// send loops poll this once per transmitted segment.
    pub fn first_lost(&self) -> Option<SegId> {
        self.lost.iter_ranges().next().map(|(s, _)| s)
    }

    /// Count of segments currently marked lost.
    pub fn lost_count(&self) -> u64 {
        self.lost.len()
    }

    /// Serialize into the engine checkpoint codec. The scratch buffer is
    /// transient and excluded.
    pub fn save(&self, w: &mut netsim::snap::SnapWriter) {
        w.u64(self.total_bytes);
        w.u32(self.total_segs);
        w.u32(self.cum);
        self.sacked.save(w);
        self.lost.save(w);
        w.bytes(&self.outstanding);
        self.sent_once.save(w);
        self.retransmitted.save(w);
        w.u64(self.pipe_bytes);
        w.u32(self.high_sent);
        w.bool(self.naive_remarking);
        w.u64(self.total_sacked_ever);
        w.usize(self.sacked_at_tx.len());
        for &v in &self.sacked_at_tx {
            w.u64(v);
        }
    }

    /// Rebuild a scoreboard saved by [`Scoreboard::save`].
    pub fn load(r: &mut netsim::snap::SnapReader<'_>) -> Result<Self, netsim::snap::SnapError> {
        let total_bytes = r.u64()?;
        let total_segs = r.u32()?;
        let cum = r.u32()?;
        let sacked = RangeSet::load(r)?;
        let lost = RangeSet::load(r)?;
        let outstanding = r.bytes()?.to_vec();
        let sent_once = RangeSet::load(r)?;
        let retransmitted = RangeSet::load(r)?;
        let pipe_bytes = r.u64()?;
        let high_sent = r.u32()?;
        let naive_remarking = r.bool()?;
        let total_sacked_ever = r.u64()?;
        let n = r.usize()?;
        let mut sacked_at_tx = Vec::with_capacity(n);
        for _ in 0..n {
            sacked_at_tx.push(r.u64()?);
        }
        Ok(Scoreboard {
            total_bytes,
            total_segs,
            cum,
            sacked,
            lost,
            outstanding,
            sent_once,
            retransmitted,
            pipe_bytes,
            high_sent,
            naive_remarking,
            total_sacked_ever,
            sacked_at_tx,
            sack_gap_scratch: Vec::new(),
        })
    }

    /// Payload bytes cumulatively+selectively acknowledged so far.
    pub fn acked_bytes(&self) -> u64 {
        let mut b = 0u64;
        for seg in 0..self.cum {
            b += self.seg_bytes(seg) as u64;
        }
        for (s, e) in self.sacked.iter_ranges() {
            for seg in s.max(self.cum)..e {
                b += self.seg_bytes(seg) as u64;
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{SackBlocks, MSS};
    use netsim::SimTime;

    fn ack(cum: SegId, sack: &[(SegId, SegId)]) -> AckHeader {
        AckHeader {
            cum,
            sack: SackBlocks::from_ranges(sack),
            for_seg: cum,
            echo_tx_time: SimTime::ZERO,
            window: 141_000,
        }
    }

    fn board(n: u32) -> Scoreboard {
        Scoreboard::new(n as u64 * MSS as u64, n)
    }

    #[test]
    fn transmit_and_ack_pipe_accounting() {
        let mut b = board(10);
        for s in 0..5 {
            b.on_transmit(s);
        }
        assert_eq!(b.pipe_bytes(), 5 * MSS as u64);
        let out = b.on_ack(&ack(2, &[]));
        assert!(out.cum_advanced);
        assert_eq!(out.newly_acked_bytes, 2 * MSS as u64);
        assert_eq!(b.pipe_bytes(), 3 * MSS as u64);
        assert_eq!(b.cum_ack(), 2);
        assert!(!b.complete());
    }

    #[test]
    fn sack_reduces_pipe_and_marks_lost_after_dupthresh() {
        let mut b = board(10);
        for s in 0..6 {
            b.on_transmit(s);
        }
        // Segment 1 lost; SACKs for 2, 3, 4 arrive one at a time.
        b.on_ack(&ack(1, &[(2, 3)]));
        b.on_ack(&ack(1, &[(2, 4)]));
        assert_eq!(b.lost_count(), 0, "below DupThresh");
        let out = b.on_ack(&ack(1, &[(2, 5)]));
        assert_eq!(out.newly_lost, vec![1]);
        assert!(b.is_lost(1));
        // Lost segment no longer counts toward pipe.
        assert_eq!(b.pipe_bytes(), (MSS as u64)); // only seg 5 in flight
    }

    #[test]
    fn retransmit_clears_lost_and_restores_pipe() {
        let mut b = board(10);
        for s in 0..6 {
            b.on_transmit(s);
        }
        b.on_ack(&ack(1, &[(2, 5)]));
        assert!(b.is_lost(1));
        b.on_transmit(1);
        assert!(!b.is_lost(1));
        assert!(b.pipe_bytes() >= 2 * MSS as u64);
        // Finally the retransmission is ACKed.
        let out = b.on_ack(&ack(5, &[]));
        assert!(out.cum_advanced);
        assert_eq!(b.cum_ack(), 5);
    }

    #[test]
    fn duplicate_ack_detected() {
        let mut b = board(4);
        b.on_transmit(0);
        b.on_ack(&ack(1, &[]));
        let out = b.on_ack(&ack(1, &[]));
        assert!(out.is_duplicate);
    }

    #[test]
    fn completion() {
        let mut b = board(3);
        for s in 0..3 {
            b.on_transmit(s);
        }
        b.on_ack(&ack(3, &[]));
        assert!(b.complete());
        assert_eq!(b.pipe_bytes(), 0);
    }

    #[test]
    fn rto_marks_uncovered_lost_and_zeroes_pipe() {
        let mut b = board(8);
        for s in 0..6 {
            b.on_transmit(s);
        }
        b.on_ack(&ack(2, &[(4, 5)]));
        b.on_rto();
        assert_eq!(b.pipe_bytes(), 0);
        assert!(b.is_lost(2));
        assert!(b.is_lost(3));
        assert!(!b.is_lost(4), "SACKed segment must not be marked lost");
        assert!(b.is_lost(5));
        assert!(!b.is_lost(6), "never-sent segment is not lost");
        assert_eq!(b.lost_segments(10), vec![2, 3, 5]);
    }

    #[test]
    fn uncovered_queries() {
        let mut b = board(10);
        for s in 0..8 {
            b.on_transmit(s);
        }
        b.on_ack(&ack(2, &[(4, 6)]));
        assert_eq!(b.first_uncovered(), Some(2));
        assert_eq!(b.uncovered_in(0, 8, 10), vec![2, 3, 6, 7]);
        assert_eq!(b.highest_uncovered_below(8), Some(7));
        assert_eq!(b.highest_uncovered_below(7), Some(6));
        assert_eq!(b.highest_uncovered_below(4), Some(3));
        assert_eq!(b.next_unsent(), Some(8));
    }

    #[test]
    fn acked_bytes_counts_cum_and_sack() {
        let mut b = board(10);
        for s in 0..8 {
            b.on_transmit(s);
        }
        b.on_ack(&ack(2, &[(4, 6)]));
        assert_eq!(b.acked_bytes(), 4 * MSS as u64);
    }

    #[test]
    fn last_segment_partial_bytes() {
        let total = MSS as u64 + 500;
        let mut b = Scoreboard::new(total, 2);
        b.on_transmit(0);
        b.on_transmit(1);
        assert_eq!(b.pipe_bytes(), total);
        b.on_ack(&ack(2, &[]));
        assert!(b.complete());
        assert_eq!(b.pipe_bytes(), 0);
    }

    #[test]
    fn old_sack_below_cum_is_ignored() {
        let mut b = board(10);
        for s in 0..6 {
            b.on_transmit(s);
        }
        b.on_ack(&ack(5, &[]));
        let out = b.on_ack(&ack(5, &[(1, 3)]));
        assert!(out.is_duplicate);
        assert_eq!(b.pipe_bytes(), MSS as u64); // seg 5 still out
    }
}

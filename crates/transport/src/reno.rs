//! A SACK-based NewReno-style congestion control engine.
//!
//! This is the piece most schemes share: slow start from a configurable
//! initial window, congestion avoidance, fast retransmit/recovery driven by
//! the scoreboard's SACK loss detection, and RTO recovery. Baselines wrap
//! it directly (TCP, TCP-10, Reactive, Proactive, TCP-Cache); JumpStart
//! falls back to it after its paced first RTT (with `burst_retransmit` for
//! its line-rate loss recovery); Halfback seeds it from the ROPR bandwidth
//! estimate when a flow exceeds the Pacing Threshold.

use crate::scoreboard::AckOutcome;
use crate::sender::Ops;
use crate::trace::FlowEvent;
use crate::wire::{SegId, SendClass, MSS};

/// Static configuration of a [`RenoEngine`].
#[derive(Debug, Clone)]
pub struct RenoConfig {
    /// Initial congestion window in segments (paper default 2; TCP-10
    /// uses 10).
    pub icw_segments: u32,
    /// Initial slow-start threshold in bytes (`None` = effectively infinite).
    pub initial_ssthresh: Option<u64>,
    /// JumpStart mode: on loss detection, retransmit every lost segment
    /// immediately, ignoring the congestion window ("bursty retransmission",
    /// §2.2).
    pub burst_retransmit: bool,
    /// Proactive TCP mode: transmit two copies of every new segment, both
    /// charged against the window (\[18\]; §2.2 "doubles the workload").
    pub duplicate_new_segments: bool,
}

impl Default for RenoConfig {
    fn default() -> Self {
        RenoConfig {
            icw_segments: 2,
            initial_ssthresh: None,
            burst_retransmit: false,
            duplicate_new_segments: false,
        }
    }
}

/// The engine's live state.
#[derive(Debug, Clone)]
pub struct RenoEngine {
    cfg: RenoConfig,
    cwnd: u64,
    ssthresh: u64,
    in_recovery: bool,
    recovery_point: SegId,
    /// Segments at or above this index are never sent as *new* data (used
    /// by Halfback while its aggressive phase owns the paced prefix);
    /// retransmissions are unaffected.
    max_new_seg: Option<SegId>,
    /// Proactive mode: duplicates owed because the window was full when
    /// their segment was first sent ("two copies of every packet" means
    /// every packet, so the twin is sent as soon as the window opens).
    dup_owed: Vec<SegId>,
}

impl RenoEngine {
    /// Create an engine with the given configuration.
    pub fn new(cfg: RenoConfig) -> Self {
        let cwnd = cfg.icw_segments as u64 * MSS as u64;
        let ssthresh = cfg.initial_ssthresh.unwrap_or(u64::MAX / 2);
        RenoEngine {
            cfg,
            cwnd,
            ssthresh,
            in_recovery: false,
            recovery_point: 0,
            max_new_seg: None,
            dup_owed: Vec::new(),
        }
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd
    }

    /// Current slow-start threshold in bytes.
    pub fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    /// Overwrite the window (Halfback fallback seeds `s * RTT`; TCP-Cache
    /// restores a cached window).
    pub fn set_cwnd(&mut self, cwnd_bytes: u64) {
        self.cwnd = cwnd_bytes.max(MSS as u64);
    }

    /// Overwrite the slow-start threshold.
    pub fn set_ssthresh(&mut self, ssthresh_bytes: u64) {
        self.ssthresh = ssthresh_bytes.max(2 * MSS as u64);
    }

    /// In fast recovery?
    pub fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    /// Restrict new-data transmission to segments below `limit` (`None`
    /// lifts the restriction). Retransmissions are never restricted.
    pub fn set_new_data_limit(&mut self, limit: Option<SegId>) {
        self.max_new_seg = limit;
    }

    /// Effective send window: min(cwnd, advertised flow-control window).
    pub fn effective_window(&self, ops: &Ops<'_, '_>) -> u64 {
        self.cwnd.min(ops.window_bytes() as u64)
    }

    /// Serialize into the engine checkpoint codec (configuration and live
    /// window state both ride along, so a restored strategy needs no
    /// re-configuration).
    pub fn save(&self, w: &mut netsim::snap::SnapWriter) {
        w.u32(self.cfg.icw_segments);
        w.bool(self.cfg.initial_ssthresh.is_some());
        w.u64(self.cfg.initial_ssthresh.unwrap_or(0));
        w.bool(self.cfg.burst_retransmit);
        w.bool(self.cfg.duplicate_new_segments);
        w.u64(self.cwnd);
        w.u64(self.ssthresh);
        w.bool(self.in_recovery);
        w.u32(self.recovery_point);
        w.bool(self.max_new_seg.is_some());
        w.u32(self.max_new_seg.unwrap_or(0));
        w.usize(self.dup_owed.len());
        for &s in &self.dup_owed {
            w.u32(s);
        }
    }

    /// Rebuild an engine saved by [`RenoEngine::save`].
    pub fn load(r: &mut netsim::snap::SnapReader<'_>) -> Result<Self, netsim::snap::SnapError> {
        let icw_segments = r.u32()?;
        let has_ssthresh = r.bool()?;
        let initial_ssthresh_val = r.u64()?;
        let cfg = RenoConfig {
            icw_segments,
            initial_ssthresh: has_ssthresh.then_some(initial_ssthresh_val),
            burst_retransmit: r.bool()?,
            duplicate_new_segments: r.bool()?,
        };
        let cwnd = r.u64()?;
        let ssthresh = r.u64()?;
        let in_recovery = r.bool()?;
        let recovery_point = r.u32()?;
        let has_limit = r.bool()?;
        let limit_val = r.u32()?;
        let n = r.usize()?;
        let mut dup_owed = Vec::with_capacity(n);
        for _ in 0..n {
            dup_owed.push(r.u32()?);
        }
        Ok(RenoEngine {
            cfg,
            cwnd,
            ssthresh,
            in_recovery,
            recovery_point,
            max_new_seg: has_limit.then_some(limit_val),
            dup_owed,
        })
    }

    /// Handshake done: open with the initial window.
    pub fn on_established(&mut self, ops: &mut Ops<'_, '_>) {
        self.fill(ops, SendClass::FastRetx);
    }

    /// Transmit as much as the window allows: pending (lost-marked)
    /// retransmissions first, then new data. `retx_class` records why a
    /// retransmission happened (FastRetx in normal operation, RtoRetx from
    /// the RTO handler).
    pub fn fill(&mut self, ops: &mut Ops<'_, '_>, retx_class: SendClass) {
        loop {
            let wnd = self.effective_window(ops);
            if ops.board().pipe_bytes() + MSS as u64 > wnd {
                return;
            }
            // Pending retransmissions take priority.
            if let Some(seg) = ops.board().first_lost() {
                ops.send_segment(seg, retx_class);
                continue;
            }
            // Owed proactive duplicates next (skipping covered segments).
            if self.cfg.duplicate_new_segments {
                while let Some(&seg) = self.dup_owed.last() {
                    if ops.board().is_covered(seg) {
                        self.dup_owed.pop();
                        continue;
                    }
                    ops.send_segment(seg, SendClass::Proactive);
                    self.dup_owed.pop();
                    break;
                }
                if ops.board().pipe_bytes() + MSS as u64 > self.effective_window(ops) {
                    return;
                }
            }
            // Then new data.
            match ops.board().next_unsent() {
                Some(seg) if self.max_new_seg.is_none_or(|lim| seg < lim) => {
                    ops.send_segment(seg, SendClass::New);
                    if self.cfg.duplicate_new_segments {
                        // Second copy, charged to the window like the first;
                        // if the window is full the twin is owed and goes
                        // out as soon as space opens.
                        let wnd = self.effective_window(ops);
                        if ops.board().pipe_bytes() + MSS as u64 <= wnd {
                            ops.send_segment(seg, SendClass::Proactive);
                        } else {
                            self.dup_owed.push(seg);
                        }
                    }
                }
                _ => return,
            }
        }
    }

    /// Emit a `CwndUpdate` trace event if the window state moved away from
    /// `prev` — before the subsequent `fill`, so the update precedes the
    /// sends it causes in the recorded stream.
    fn trace_window(&self, ops: &mut Ops<'_, '_>, prev: (u64, u64)) {
        if (self.cwnd, self.ssthresh) != prev {
            ops.record(FlowEvent::CwndUpdate {
                cwnd: self.cwnd,
                ssthresh: self.ssthresh,
            });
        }
    }

    /// Window growth plus recovery bookkeeping; call from `Strategy::on_ack`.
    pub fn on_ack(&mut self, ops: &mut Ops<'_, '_>, outcome: &AckOutcome) {
        let prev = (self.cwnd, self.ssthresh);
        if self.in_recovery {
            if ops.board().cum_ack() >= self.recovery_point {
                self.in_recovery = false;
                self.cwnd = self.ssthresh.max(MSS as u64);
            }
        } else if outcome.newly_acked_bytes > 0 {
            if self.cwnd < self.ssthresh {
                // Slow start with byte counting.
                self.cwnd += outcome.newly_acked_bytes;
            } else {
                // Congestion avoidance: ~one MSS per RTT.
                let inc = (MSS as u64 * MSS as u64 / self.cwnd.max(1)).max(1);
                self.cwnd += inc;
            }
        }
        self.trace_window(ops, prev);
        self.fill(ops, SendClass::FastRetx);
    }

    /// SACK loss detection fired; enter (or continue) fast recovery.
    pub fn on_loss(&mut self, ops: &mut Ops<'_, '_>, _newly_lost: &[SegId]) {
        if !self.in_recovery {
            let prev = (self.cwnd, self.ssthresh);
            self.in_recovery = true;
            self.recovery_point = ops.board().high_sent();
            self.ssthresh = (self.cwnd / 2).max(2 * MSS as u64);
            self.cwnd = self.ssthresh;
            self.trace_window(ops, prev);
        }
        if self.cfg.burst_retransmit {
            // JumpStart: blast every pending retransmission immediately.
            loop {
                let lost = ops.board().lost_segments(64);
                if lost.is_empty() {
                    break;
                }
                for seg in lost {
                    ops.send_segment(seg, SendClass::FastRetx);
                }
            }
        } else {
            self.fill(ops, SendClass::FastRetx);
        }
    }

    /// RTO fired (scoreboard already reset); slow-start restart.
    pub fn on_rto(&mut self, ops: &mut Ops<'_, '_>) {
        let prev = (self.cwnd, self.ssthresh);
        self.ssthresh = (self.cwnd / 2).max(2 * MSS as u64);
        self.cwnd = MSS as u64;
        self.in_recovery = false;
        self.trace_window(ops, prev);
        if self.cfg.burst_retransmit {
            // JumpStart: every unacknowledged packet goes out again in one
            // line-rate burst (§2.2: "will aggressively burst out all lost
            // packets and will often incur even more loss"). If part of
            // this burst is dropped, only the next (backed-off) RTO can
            // recover it — the paper's collapse mechanism.
            loop {
                let lost = ops.board().lost_segments(64);
                if lost.is_empty() {
                    break;
                }
                for seg in lost {
                    ops.send_segment(seg, SendClass::RtoRetx);
                }
            }
            return;
        }
        // Standard TCP: retransmit the first uncovered segment; the ACK
        // clock rebuilds from there.
        if let Some(seg) = ops.board().first_uncovered() {
            ops.send_segment(seg, SendClass::RtoRetx);
        }
    }
}

// Unit tests for RenoEngine live in `tests/reno_behaviour.rs` style module
// tests inside the baselines crate, where a full simulator harness exists;
// pure-state tests below cover the window arithmetic.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_window_matches_config() {
        let e = RenoEngine::new(RenoConfig::default());
        assert_eq!(e.cwnd(), 2 * MSS as u64);
        let e10 = RenoEngine::new(RenoConfig {
            icw_segments: 10,
            ..Default::default()
        });
        assert_eq!(e10.cwnd(), 10 * MSS as u64);
    }

    #[test]
    fn setters_clamp() {
        let mut e = RenoEngine::new(RenoConfig::default());
        e.set_cwnd(0);
        assert_eq!(e.cwnd(), MSS as u64);
        e.set_ssthresh(0);
        assert_eq!(e.ssthresh(), 2 * MSS as u64);
        e.set_cwnd(100_000);
        assert_eq!(e.cwnd(), 100_000);
    }
}

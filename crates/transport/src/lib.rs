//! # transport — the shared transport layer of the Halfback reproduction
//!
//! Everything all eight schemes have in common, mirroring the paper's
//! methodology (§4.1: all schemes implemented over UDT with selective ACKs,
//! 1500-byte segments, 141 KB receive window, sender-side changes only):
//!
//! * [`wire`] — the packet header carried through `netsim`
//! * [`host`] — the simulator node holding sender/receiver endpoints
//! * [`sender`] — the sender chassis (handshake, timers, accounting)
//! * [`strategy`] — the policy trait each scheme implements
//! * [`receiver`] — the scheme-independent receive side (SACK, ACK-per-packet)
//! * [`scoreboard`] — SACK scoreboard, loss detection, pipe estimation
//! * [`reno`] — the shared NewReno engine baselines compose
//! * [`rtt`] — RFC 6298 RTT/RTO estimation
//! * [`rangeset`] — coalescing integer range sets
//! * [`trace`] — flight recorder: typed flow events + delivery timelines
//!
//! Protocol implementations live in the `baselines` crate (TCP, TCP-10,
//! TCP-Cache, Reactive, Proactive, JumpStart, PCP) and the `core` crate
//! (Halfback and its ablations).

#![warn(missing_docs)]

pub mod fasthash;
pub mod host;
pub mod rangeset;
pub mod receiver;
pub mod reno;
pub mod rtt;
pub mod scoreboard;
pub mod sender;
pub mod strategy;
pub mod trace;
pub mod wire;

pub use host::{completion_bus, CompletionBus, Host};
pub use sender::{
    AbortReason, Counters, FlowOutcome, FlowRecord, Ops, SenderConn, MAX_RTO_RETRIES,
    MAX_SYN_RETRIES,
};
pub use strategy::{PaceAction, Strategy};
pub use trace::{DeliveryTimelines, FlightRecorder, FlowEvent, FlowEventRecord};
pub use wire::{Header, SegId, SendClass, DEFAULT_FCW_BYTES, MSS};

/// Convenience alias: a simulator carrying transport packets.
pub type TransportSim = netsim::Simulator<Header>;

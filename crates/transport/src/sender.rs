//! The sender chassis shared by every scheme.
//!
//! Owns the mechanics common to all eight protocols: the SYN handshake,
//! the scoreboard, RTT estimation and the retransmission timer, the pacing
//! and probe timers, and per-flow accounting ([`FlowRecord`]). Policy is
//! delegated to a [`Strategy`].

use crate::host::HostCore;
use crate::rtt::RttEstimator;
use crate::scoreboard::Scoreboard;
use crate::strategy::{PaceAction, Strategy};
use crate::trace::FlowEvent;
use crate::wire::{
    seg_wire_bytes, segment_count, AckHeader, DataHeader, Header, ProbeAckHeader, ProbeHeader,
    SegId, SendClass, CTRL_WIRE_BYTES, DEFAULT_FCW_BYTES, MSS,
};
use netsim::engine::EngineCore;
use netsim::rng::SimRng;
use netsim::{Ctx, FlowId, LinkId, NodeId, Packet, SimDuration, SimTime, TimerId};

/// Which chassis timer a host token routes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Retransmission timeout (also drives SYN retries).
    Rto,
    /// Pacing tick.
    Pace,
    /// Probe timeout (tail loss probe).
    Pto,
    /// Strategy-defined timer carrying a strategy token.
    User(u64),
}

/// Connection phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    SynSent,
    Established,
    Done,
    /// Terminal give-up state: the retransmission or SYN retry budget was
    /// exhausted (pathological path). Surfaced as [`FlowOutcome::Aborted`].
    Aborted,
}

/// Why a flow gave up (see [`FlowOutcome::Aborted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// [`MAX_RTO_RETRIES`] consecutive retransmission timeouts without any
    /// cumulative progress.
    MaxRetransmits,
    /// [`MAX_SYN_RETRIES`] SYN retransmissions went unanswered.
    SynTimeout,
}

impl AbortReason {
    /// Stable name used in trace output and summaries.
    pub fn as_str(self) -> &'static str {
        match self {
            AbortReason::MaxRetransmits => "max_retransmits",
            AbortReason::SynTimeout => "syn_timeout",
        }
    }
}

/// How a flow ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowOutcome {
    /// Every payload byte was cumulatively acknowledged.
    Completed,
    /// The sender gave up; the flow is over but the data never fully
    /// arrived.
    Aborted(AbortReason),
}

impl FlowOutcome {
    /// Did the flow deliver all its data?
    pub fn is_completed(&self) -> bool {
        matches!(self, FlowOutcome::Completed)
    }
}

/// Consecutive RTO-driven retransmission rounds (without cumulative
/// progress) before an established connection aborts. Six rounds with the
/// 1 s minimum RTO and binary backoff means giving up ~63 s after the last
/// forward progress — the ballpark of Linux's `tcp_retries2`-governed
/// give-up, scaled down for simulation horizons.
pub const MAX_RTO_RETRIES: u32 = 6;

/// SYN retransmissions before the handshake aborts (Linux default
/// `tcp_syn_retries` is 6; we give up one earlier, ~63 s in).
pub const MAX_SYN_RETRIES: u32 = 5;

/// Per-flow transmission accounting (the quantities the paper reports).
#[derive(Debug, Clone, Copy, Default)]
pub struct Counters {
    /// Data packets transmitted (all classes).
    pub data_packets_sent: u64,
    /// Normal (reactive) retransmissions: fast-retransmit, RTO, probe.
    pub normal_retx: u64,
    /// Proactive copies (ROPR / Proactive TCP duplicates).
    pub proactive_retx: u64,
    /// RTO events.
    pub rto_events: u64,
    /// Total wire bytes sent (data + control).
    pub wire_bytes_sent: u64,
    /// ACK packets received.
    pub acks_received: u64,
    /// PCP probe packets sent.
    pub probes_sent: u64,
    /// SYN (re)transmissions.
    pub syn_sent: u64,
}

impl Counters {
    /// Serialize into the engine checkpoint codec.
    pub fn save(&self, w: &mut netsim::snap::SnapWriter) {
        w.u64(self.data_packets_sent);
        w.u64(self.normal_retx);
        w.u64(self.proactive_retx);
        w.u64(self.rto_events);
        w.u64(self.wire_bytes_sent);
        w.u64(self.acks_received);
        w.u64(self.probes_sent);
        w.u64(self.syn_sent);
    }

    /// Rebuild counters saved by [`Counters::save`].
    pub fn load(r: &mut netsim::snap::SnapReader<'_>) -> Result<Self, netsim::snap::SnapError> {
        Ok(Counters {
            data_packets_sent: r.u64()?,
            normal_retx: r.u64()?,
            proactive_retx: r.u64()?,
            rto_events: r.u64()?,
            wire_bytes_sent: r.u64()?,
            acks_received: r.u64()?,
            probes_sent: r.u64()?,
            syn_sent: r.u64()?,
        })
    }
}

/// Final record of a completed flow.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// Flow id.
    pub flow: FlowId,
    /// Strategy name.
    pub protocol: &'static str,
    /// Payload bytes.
    pub bytes: u64,
    /// When the sender issued the first SYN.
    pub start: SimTime,
    /// When the handshake completed.
    pub established_at: SimTime,
    /// When the final cumulative ACK arrived at the sender.
    pub done_at: SimTime,
    /// Flow completion time including connection setup (paper §4.2.1).
    pub fct: SimDuration,
    /// Transmission accounting.
    pub counters: Counters,
    /// Smallest RTT sample observed.
    pub min_rtt: Option<SimDuration>,
    /// How the flow ended. For aborted flows `done_at`/`fct` record the
    /// give-up instant, not a completion.
    pub outcome: FlowOutcome,
}

/// Mutable per-flow sender state (everything but the strategy box).
pub struct SenderState {
    pub(crate) flow: FlowId,
    pub(crate) local: NodeId,
    pub(crate) peer: NodeId,
    pub(crate) egress: LinkId,
    pub(crate) total_bytes: u64,
    pub(crate) window_bytes: u32,
    pub(crate) phase: Phase,
    pub(crate) start_time: SimTime,
    pub(crate) established_at: Option<SimTime>,
    pub(crate) syn_sent_at: SimTime,
    pub(crate) board: Scoreboard,
    pub(crate) rtt: RttEstimator,
    pub(crate) counters: Counters,
    pub(crate) proto_name: &'static str,
    rto_timer: Option<(TimerId, u64)>,
    pace_timer: Option<(TimerId, u64)>,
    pace_interval: SimDuration,
    pto_timer: Option<(TimerId, u64)>,
    user_timers: Vec<(TimerId, u64)>,
}

/// The chassis view handed to strategies.
pub struct Ops<'a, 'b> {
    pub(crate) st: &'a mut SenderState,
    pub(crate) shared: &'a mut HostCore,
    pub(crate) ctx: &'a mut Ctx<'b, Header>,
}

impl<'a, 'b> Ops<'a, 'b> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// Engine RNG (deterministic, seeded per run).
    pub fn rng(&mut self) -> &mut SimRng {
        self.ctx.rng()
    }

    /// The scoreboard.
    pub fn board(&self) -> &Scoreboard {
        &self.st.board
    }

    /// The RTT estimator.
    pub fn rtt(&self) -> &RttEstimator {
        &self.st.rtt
    }

    /// Accounting so far.
    pub fn counters(&self) -> &Counters {
        &self.st.counters
    }

    /// Payload size of the flow in bytes.
    pub fn flow_bytes(&self) -> u64 {
        self.st.total_bytes
    }

    /// Number of segments in the flow.
    pub fn total_segs(&self) -> u32 {
        self.st.board.total_segs()
    }

    /// Receiver's advertised flow-control window in bytes.
    pub fn window_bytes(&self) -> u32 {
        self.st.window_bytes
    }

    /// Maximum segment payload size.
    pub fn mss(&self) -> u32 {
        MSS
    }

    /// When the handshake completed (valid in every strategy hook).
    pub fn established_at(&self) -> SimTime {
        self.st.established_at.unwrap_or(self.st.start_time)
    }

    /// Record a transport trace event for this flow (no-op unless the host
    /// has a flight recorder installed). Strategies use this for events the
    /// chassis cannot see, e.g. Halfback's ROPR/ACK meet point.
    #[inline]
    pub fn record(&mut self, event: FlowEvent) {
        self.shared.record(self.ctx.now(), self.st.flow, event);
    }

    /// Transmit one segment with the given class. Updates the scoreboard
    /// and accounting, and makes sure the RTO is armed.
    pub fn send_segment(&mut self, seg: SegId, class: SendClass) {
        debug_assert!(seg < self.total_segs());
        let wire = seg_wire_bytes(self.st.total_bytes, seg);
        let pkt = Packet::new(
            self.st.flow,
            self.st.local,
            self.st.peer,
            wire,
            Header::Data(DataHeader { seg, class }),
        );
        self.ctx.send(self.st.egress, pkt);
        self.st.board.on_transmit(seg);
        self.st.counters.data_packets_sent += 1;
        self.st.counters.wire_bytes_sent += wire as u64;
        if class.is_normal_retx() {
            self.st.counters.normal_retx += 1;
        } else if class.is_proactive() {
            self.st.counters.proactive_retx += 1;
        }
        self.record(FlowEvent::SegmentSent {
            seg,
            class,
            wire_bytes: wire,
        });
        if self.st.rto_timer.is_none() {
            let after = self.st.rtt.rto();
            self.arm_rto(after);
        }
    }

    /// Send a PCP probe packet of `wire_bytes`.
    pub fn send_probe(&mut self, train: u32, idx: u32, len: u32, wire_bytes: u32) {
        let pkt = Packet::new(
            self.st.flow,
            self.st.local,
            self.st.peer,
            wire_bytes,
            Header::Probe(ProbeHeader { train, idx, len }),
        );
        self.ctx.send(self.st.egress, pkt);
        self.st.counters.probes_sent += 1;
        self.st.counters.wire_bytes_sent += wire_bytes as u64;
    }

    /// Start (or restart) the pacing timer with the given tick interval.
    /// The first tick fires one interval from now.
    pub fn start_pacing(&mut self, interval: SimDuration) {
        self.stop_pacing();
        let interval = interval.max(SimDuration::from_nanos(1));
        self.st.pace_interval = interval;
        let token = self.shared.alloc_token(self.st.flow, TimerKind::Pace);
        let id = self.ctx.set_timer(interval, token);
        self.st.pace_timer = Some((id, token));
        self.record(FlowEvent::PacingStarted {
            interval_ns: interval.as_nanos(),
        });
    }

    /// Change the tick interval used when the current tick re-arms.
    pub fn set_pace_interval(&mut self, interval: SimDuration) {
        self.st.pace_interval = interval.max(SimDuration::from_nanos(1));
    }

    /// The current pacing interval.
    pub fn pace_interval(&self) -> SimDuration {
        self.st.pace_interval
    }

    /// Cancel the pacing timer.
    pub fn stop_pacing(&mut self) {
        if let Some((id, token)) = self.st.pace_timer.take() {
            self.ctx.cancel_timer(id);
            self.shared.drop_token(token);
            self.record(FlowEvent::PacingStopped);
        }
    }

    /// Is the pacing timer armed?
    pub fn pacing_active(&self) -> bool {
        self.st.pace_timer.is_some()
    }

    /// Arm (or re-arm) the probe timeout.
    pub fn arm_pto(&mut self, after: SimDuration) {
        self.cancel_pto();
        let token = self.shared.alloc_token(self.st.flow, TimerKind::Pto);
        let id = self.ctx.set_timer(after, token);
        self.st.pto_timer = Some((id, token));
    }

    /// Cancel the probe timeout.
    pub fn cancel_pto(&mut self) {
        if let Some((id, token)) = self.st.pto_timer.take() {
            self.ctx.cancel_timer(id);
            self.shared.drop_token(token);
        }
    }

    /// Arm a strategy timer that will arrive via `Strategy::on_user_timer`.
    pub fn arm_user_timer(&mut self, after: SimDuration, token: u64) {
        let host_token = self
            .shared
            .alloc_token(self.st.flow, TimerKind::User(token));
        let id = self.ctx.set_timer(after, host_token);
        self.st.user_timers.push((id, host_token));
    }

    fn arm_rto(&mut self, after: SimDuration) {
        self.cancel_rto();
        let token = self.shared.alloc_token(self.st.flow, TimerKind::Rto);
        let id = self.ctx.set_timer(after, token);
        self.st.rto_timer = Some((id, token));
    }

    fn cancel_rto(&mut self) {
        if let Some((id, token)) = self.st.rto_timer.take() {
            self.ctx.cancel_timer(id);
            self.shared.drop_token(token);
        }
    }
}

/// A sender endpoint: chassis state plus the plugged-in strategy.
pub struct SenderConn {
    state: SenderState,
    strategy: Option<Box<dyn Strategy>>,
}

impl SenderConn {
    /// Create a sender for a flow of `bytes` payload bytes.
    pub fn new(
        flow: FlowId,
        local: NodeId,
        peer: NodeId,
        egress: LinkId,
        bytes: u64,
        strategy: Box<dyn Strategy>,
    ) -> Self {
        assert!(bytes > 0, "flows must carry at least one byte");
        let segs = segment_count(bytes);
        let proto_name = strategy.name();
        let mut board = Scoreboard::new(bytes, segs);
        board.set_naive_remarking(strategy.naive_loss_remarking());
        SenderConn {
            state: SenderState {
                flow,
                local,
                peer,
                egress,
                total_bytes: bytes,
                window_bytes: DEFAULT_FCW_BYTES,
                phase: Phase::SynSent,
                start_time: SimTime::ZERO,
                established_at: None,
                syn_sent_at: SimTime::ZERO,
                board,
                rtt: RttEstimator::new(),
                counters: Counters::default(),
                proto_name,
                rto_timer: None,
                pace_timer: None,
                pace_interval: SimDuration::from_millis(1),
                pto_timer: None,
                user_timers: Vec::new(),
            },
            strategy: Some(strategy),
        }
    }

    /// Protocol name.
    pub fn protocol(&self) -> &'static str {
        self.state.proto_name
    }

    /// The flow id.
    pub fn flow(&self) -> FlowId {
        self.state.flow
    }

    /// Has the flow reached a terminal state (completed or aborted)?
    pub fn is_done(&self) -> bool {
        matches!(self.state.phase, Phase::Done | Phase::Aborted)
    }

    /// Highest cumulative ACK the sender has seen, in segments. Exposed so
    /// invariant checkers can assert it never moves backwards.
    pub fn cum_ack(&self) -> u32 {
        self.state.board.cum_ack()
    }

    /// Total segments in the flow (for cross-endpoint invariant checks).
    pub fn total_segs(&self) -> u32 {
        self.state.board.total_segs()
    }

    /// Read-only accounting.
    pub fn counters(&self) -> &Counters {
        &self.state.counters
    }

    /// Override the minimum RTO (sensitivity studies).
    pub fn set_min_rto(&mut self, floor: SimDuration) {
        self.state.rtt.set_min_rto(floor);
    }

    /// Debug snapshot: (bytes, data packets sent, normal retx, rto events,
    /// rto timer armed?, cum ack, high sent, pipe bytes, current rto ms).
    pub fn debug_state(&self) -> (u64, u64, u64, u64, bool, u32, u32, u64, f64) {
        (
            self.state.total_bytes,
            self.state.counters.data_packets_sent,
            self.state.counters.normal_retx,
            self.state.counters.rto_events,
            self.state.rto_timer.is_some(),
            self.state.board.cum_ack(),
            self.state.board.high_sent(),
            self.state.board.pipe_bytes(),
            self.state.rtt.rto().as_millis_f64(),
        )
    }

    /// Serialize the full sender state — chassis and strategy — into the
    /// engine checkpoint codec. Timer ids are written verbatim: the engine
    /// snapshot restores its timer slot table bit-exactly, so the ids stay
    /// valid across a restore.
    pub fn save(&self, w: &mut netsim::snap::SnapWriter) {
        fn timer_opt(w: &mut netsim::snap::SnapWriter, t: Option<(TimerId, u64)>) {
            w.bool(t.is_some());
            let (id, tok) = t.unwrap_or((TimerId(0), 0));
            w.u64(id.0);
            w.u64(tok);
        }
        let st = &self.state;
        w.u64(st.flow.0);
        w.u32(st.local.0);
        w.u32(st.peer.0);
        w.u32(st.egress.0);
        w.u64(st.total_bytes);
        w.u32(st.window_bytes);
        w.u8(match st.phase {
            Phase::SynSent => 0,
            Phase::Established => 1,
            Phase::Done => 2,
            Phase::Aborted => 3,
        });
        w.u64(st.start_time.as_nanos());
        w.bool(st.established_at.is_some());
        w.u64(st.established_at.map_or(0, |t| t.as_nanos()));
        w.u64(st.syn_sent_at.as_nanos());
        st.board.save(w);
        st.rtt.save(w);
        st.counters.save(w);
        timer_opt(w, st.rto_timer);
        timer_opt(w, st.pace_timer);
        w.u64(st.pace_interval.as_nanos());
        timer_opt(w, st.pto_timer);
        w.usize(st.user_timers.len());
        for &(id, tok) in &st.user_timers {
            w.u64(id.0);
            w.u64(tok);
        }
        let strategy = self.strategy.as_ref().expect("strategy re-entrancy");
        w.str(strategy.name());
        strategy.save_state(w);
    }

    /// Rebuild a sender saved by [`SenderConn::save`]. `strategy` must be a
    /// freshly constructed strategy of the same scheme (validated by name);
    /// its dynamic state is restored through [`Strategy::load_state`].
    pub fn load(
        r: &mut netsim::snap::SnapReader<'_>,
        mut strategy: Box<dyn Strategy>,
    ) -> Result<Self, netsim::snap::SnapError> {
        fn timer_opt(
            r: &mut netsim::snap::SnapReader<'_>,
        ) -> Result<Option<(TimerId, u64)>, netsim::snap::SnapError> {
            let some = r.bool()?;
            let id = r.u64()?;
            let tok = r.u64()?;
            Ok(some.then_some((TimerId(id), tok)))
        }
        let flow = FlowId(r.u64()?);
        let local = NodeId(r.u32()?);
        let peer = NodeId(r.u32()?);
        let egress = LinkId(r.u32()?);
        let total_bytes = r.u64()?;
        let window_bytes = r.u32()?;
        let phase = match r.u8()? {
            0 => Phase::SynSent,
            1 => Phase::Established,
            2 => Phase::Done,
            3 => Phase::Aborted,
            tag => return Err(netsim::snap::SnapError::Tag { ty: "Phase", tag }),
        };
        let start_time = SimTime::from_nanos(r.u64()?);
        let has_established = r.bool()?;
        let established_ns = r.u64()?;
        let syn_sent_at = SimTime::from_nanos(r.u64()?);
        let board = Scoreboard::load(r)?;
        let rtt = RttEstimator::load(r)?;
        let counters = Counters::load(r)?;
        let rto_timer = timer_opt(r)?;
        let pace_timer = timer_opt(r)?;
        let pace_interval = SimDuration::from_nanos(r.u64()?);
        let pto_timer = timer_opt(r)?;
        let n_user = r.usize()?;
        let mut user_timers = Vec::with_capacity(n_user);
        for _ in 0..n_user {
            let id = r.u64()?;
            let tok = r.u64()?;
            user_timers.push((TimerId(id), tok));
        }
        let saved_name = r.str()?;
        if saved_name != strategy.name() {
            return Err(netsim::snap::SnapError::Unsupported(format!(
                "sender for flow {flow:?} was saved with strategy {saved_name:?}, \
                 restore offered {:?} (config drift?)",
                strategy.name()
            )));
        }
        strategy.load_state(r)?;
        let proto_name = strategy.name();
        Ok(SenderConn {
            state: SenderState {
                flow,
                local,
                peer,
                egress,
                total_bytes,
                window_bytes,
                phase,
                start_time,
                established_at: has_established.then_some(SimTime::from_nanos(established_ns)),
                syn_sent_at,
                board,
                rtt,
                counters,
                proto_name,
                rto_timer,
                pace_timer,
                pace_interval,
                pto_timer,
                user_timers,
            },
            strategy: Some(strategy),
        })
    }

    /// Kick off the connection: send the SYN and arm the handshake timer.
    /// Called from outside dispatch, so it uses the engine core directly.
    pub fn start(&mut self, shared: &mut HostCore, core: &mut EngineCore<Header>) {
        let now = core.now();
        self.state.start_time = now;
        self.send_syn_via(shared, core);
    }

    fn send_syn_via(&mut self, shared: &mut HostCore, core: &mut EngineCore<Header>) {
        let st = &mut self.state;
        st.syn_sent_at = core.now();
        st.counters.syn_sent += 1;
        st.counters.wire_bytes_sent += CTRL_WIRE_BYTES as u64;
        shared.record(
            core.now(),
            st.flow,
            FlowEvent::SynSent {
                attempt: st.counters.syn_sent as u32,
            },
        );
        let pkt = Packet::new(
            st.flow,
            st.local,
            st.peer,
            CTRL_WIRE_BYTES,
            Header::Syn {
                flow_bytes: st.total_bytes,
            },
        );
        core.send_on(st.egress, pkt);
        // Handshake timer via the RTO slot.
        if let Some((id, token)) = st.rto_timer.take() {
            core.cancel_timer(id);
            shared.drop_token(token);
        }
        let token = shared.alloc_token(st.flow, TimerKind::Rto);
        let id = core.set_timer(st.local, st.rtt.rto(), token);
        st.rto_timer = Some((id, token));
    }

    fn with_ops<R>(
        &mut self,
        shared: &mut HostCore,
        ctx: &mut Ctx<'_, Header>,
        f: impl FnOnce(&mut dyn Strategy, &mut Ops<'_, '_>) -> R,
    ) -> R {
        let mut strategy = self.strategy.take().expect("strategy re-entrancy");
        let r = {
            let mut ops = Ops {
                st: &mut self.state,
                shared,
                ctx,
            };
            f(strategy.as_mut(), &mut ops)
        };
        self.strategy = Some(strategy);
        r
    }

    /// Handle the SYN-ACK: sample the RTT, note the advertised window, and
    /// hand control to the strategy.
    pub fn handle_syn_ack(
        &mut self,
        shared: &mut HostCore,
        ctx: &mut Ctx<'_, Header>,
        window: u32,
    ) {
        if self.state.phase != Phase::SynSent {
            return; // duplicate SYN-ACK
        }
        let now = ctx.now();
        let sample = now.saturating_since(self.state.syn_sent_at);
        self.state.rtt.on_sample(sample);
        self.state.rtt.reset_backoff();
        self.state.window_bytes = window;
        self.state.phase = Phase::Established;
        self.state.established_at = Some(now);
        shared.record(now, self.state.flow, FlowEvent::Established { window });
        self.with_ops(shared, ctx, |s, ops| s.on_established(ops));
        self.rearm_rto_after_progress(shared, ctx);
    }

    /// Handle a data ACK.
    pub fn handle_ack(
        &mut self,
        shared: &mut HostCore,
        ctx: &mut Ctx<'_, Header>,
        ack: &AckHeader,
    ) {
        if self.state.phase != Phase::Established {
            return;
        }
        let now = ctx.now();
        self.state.counters.acks_received += 1;
        let sample = now.saturating_since(ack.echo_tx_time);
        self.state.rtt.on_sample(sample);
        self.state.window_bytes = ack.window;

        let outcome = self.state.board.on_ack(ack);
        if outcome.cum_advanced {
            self.state.rtt.reset_backoff();
        }
        shared.record(
            now,
            self.state.flow,
            FlowEvent::AckReceived {
                cum: self.state.board.cum_ack(),
                newly_acked_bytes: outcome.newly_acked_bytes,
            },
        );
        // Restart the retransmission timer only on *cumulative* progress
        // (RFC 6298: "an ACK that acknowledges new data"). Healthy SACK
        // recovery advances the cumulative point every RTT (the first hole
        // is retransmitted immediately and its ACK moves SND.UNA), so with
        // the 1 s minimum RTO this never fires spuriously. Restarting on
        // mere SACK progress instead creates a livelock under heavy loss:
        // holes whose retransmissions were lost can only be repaired by the
        // RTO, but the RTO keeps getting pushed out by SACKs while the
        // window keeps blasting new data — a sustained line-rate storm.
        let made_progress = outcome.cum_advanced;
        if self.state.board.complete() {
            self.finish(shared, ctx);
            return;
        }
        if !outcome.newly_lost.is_empty() {
            let lost = &outcome.newly_lost;
            self.with_ops(shared, ctx, |s, ops| s.on_loss_detected(ops, lost));
            if self.state.board.complete() {
                self.finish(shared, ctx);
                return;
            }
        }
        self.with_ops(shared, ctx, |s, ops| s.on_ack(ops, ack, &outcome));
        if self.state.board.complete() {
            self.finish(shared, ctx);
            return;
        }
        if made_progress {
            self.rearm_rto_after_progress(shared, ctx);
        }
    }

    /// Handle a probe ACK (PCP).
    pub fn handle_probe_ack(
        &mut self,
        shared: &mut HostCore,
        ctx: &mut Ctx<'_, Header>,
        pa: &ProbeAckHeader,
    ) {
        if self.state.phase != Phase::Established {
            return;
        }
        self.with_ops(shared, ctx, |s, ops| s.on_probe_ack(ops, pa));
    }

    /// Route a fired timer.
    pub fn handle_timer(
        &mut self,
        shared: &mut HostCore,
        ctx: &mut Ctx<'_, Header>,
        kind: TimerKind,
    ) {
        match kind {
            TimerKind::Rto => self.handle_rto(shared, ctx),
            TimerKind::Pace => self.handle_pace(shared, ctx),
            TimerKind::Pto => {
                self.state.pto_timer = None;
                if self.state.phase == Phase::Established {
                    self.with_ops(shared, ctx, |s, ops| s.on_pto(ops));
                    self.finish_if_complete(shared, ctx);
                }
            }
            TimerKind::User(token) => {
                if self.state.phase == Phase::Established {
                    self.with_ops(shared, ctx, |s, ops| s.on_user_timer(ops, token));
                    self.finish_if_complete(shared, ctx);
                }
            }
        }
    }

    fn handle_rto(&mut self, shared: &mut HostCore, ctx: &mut Ctx<'_, Header>) {
        self.state.rto_timer = None;
        match self.state.phase {
            Phase::SynSent => {
                // Handshake timeout: back off and resend the SYN, up to the
                // retry cap — a SYN blackhole must not retry forever. This
                // path runs inside dispatch, so reconstruct core access via
                // ctx. `backoff_level` counts retries: it only resets when
                // the SYN-ACK arrives.
                if self.state.rtt.backoff_level() >= MAX_SYN_RETRIES {
                    self.abort(shared, ctx, AbortReason::SynTimeout);
                    return;
                }
                self.state.rtt.backoff();
                let st = &mut self.state;
                st.syn_sent_at = ctx.now();
                st.counters.syn_sent += 1;
                st.counters.wire_bytes_sent += CTRL_WIRE_BYTES as u64;
                shared.record(
                    ctx.now(),
                    st.flow,
                    FlowEvent::SynSent {
                        attempt: st.counters.syn_sent as u32,
                    },
                );
                let pkt = Packet::new(
                    st.flow,
                    st.local,
                    st.peer,
                    CTRL_WIRE_BYTES,
                    Header::Syn {
                        flow_bytes: st.total_bytes,
                    },
                );
                ctx.send(st.egress, pkt);
                let token = shared.alloc_token(st.flow, TimerKind::Rto);
                let id = ctx.set_timer(st.rtt.rto(), token);
                st.rto_timer = Some((id, token));
            }
            Phase::Established => {
                // Give up after MAX_RTO_RETRIES consecutive timeouts with no
                // cumulative progress (`backoff_level` resets on every new
                // cumulative ACK, so it counts exactly those).
                if self.state.rtt.backoff_level() >= MAX_RTO_RETRIES {
                    self.abort(shared, ctx, AbortReason::MaxRetransmits);
                    return;
                }
                self.state.counters.rto_events += 1;
                shared.record(
                    ctx.now(),
                    self.state.flow,
                    FlowEvent::RtoFired {
                        backoff_level: self.state.rtt.backoff_level(),
                    },
                );
                self.state.rtt.backoff();
                self.state.board.on_rto();
                self.with_ops(shared, ctx, |s, ops| s.on_rto(ops));
                if self.finish_if_complete(shared, ctx) {
                    return;
                }
                // Re-arm with the backed-off RTO — replacing the timer the
                // strategy's retransmission just armed (send_segment arms
                // one when the slot is empty). Overwriting the slot without
                // cancelling would leak a live timer per timeout, and since
                // each leaked fire repeats the cycle, the timer population
                // doubles per RTO: an exponential explosion under loss.
                if let Some((id, token)) = self.state.rto_timer.take() {
                    ctx.cancel_timer(id);
                    shared.drop_token(token);
                }
                let after = self.state.rtt.rto();
                let token = shared.alloc_token(self.state.flow, TimerKind::Rto);
                let id = ctx.set_timer(after, token);
                self.state.rto_timer = Some((id, token));
            }
            Phase::Done | Phase::Aborted => {}
        }
    }

    fn handle_pace(&mut self, shared: &mut HostCore, ctx: &mut Ctx<'_, Header>) {
        self.state.pace_timer = None;
        if self.state.phase != Phase::Established {
            return;
        }
        let action = self.with_ops(shared, ctx, |s, ops| s.on_pace_tick(ops));
        if self.finish_if_complete(shared, ctx) {
            return;
        }
        if action == PaceAction::Continue {
            // Replace (never overwrite) any pacing timer the strategy armed
            // during the tick via start_pacing.
            if let Some((id, token)) = self.state.pace_timer.take() {
                ctx.cancel_timer(id);
                shared.drop_token(token);
            }
            let interval = self.state.pace_interval;
            let token = shared.alloc_token(self.state.flow, TimerKind::Pace);
            let id = ctx.set_timer(interval, token);
            self.state.pace_timer = Some((id, token));
        }
    }

    fn rearm_rto_after_progress(&mut self, shared: &mut HostCore, ctx: &mut Ctx<'_, Header>) {
        if let Some((id, token)) = self.state.rto_timer.take() {
            ctx.cancel_timer(id);
            shared.drop_token(token);
        }
        // Only arm while unacknowledged data exists; a sender that has sent
        // nothing yet (e.g. PCP while probing) must not time out — its own
        // probe timers drive it.
        if self.state.board.high_sent() <= self.state.board.cum_ack() {
            return;
        }
        let after = self.state.rtt.rto();
        let token = shared.alloc_token(self.state.flow, TimerKind::Rto);
        let id = ctx.set_timer(after, token);
        self.state.rto_timer = Some((id, token));
    }

    fn finish_if_complete(&mut self, shared: &mut HostCore, ctx: &mut Ctx<'_, Header>) -> bool {
        if self.state.phase == Phase::Established && self.state.board.complete() {
            self.finish(shared, ctx);
            true
        } else {
            false
        }
    }

    fn finish(&mut self, shared: &mut HostCore, ctx: &mut Ctx<'_, Header>) {
        self.with_ops(shared, ctx, |s, ops| s.on_complete(ops));
        self.state.phase = Phase::Done;
        self.teardown(shared, ctx, FlowOutcome::Completed);
    }

    /// Terminal give-up: cancel everything and report the flow as aborted.
    /// The strategy's `on_complete` is *not* invoked — the flow did not
    /// complete, and strategies must not send on an aborted connection.
    fn abort(&mut self, shared: &mut HostCore, ctx: &mut Ctx<'_, Header>, reason: AbortReason) {
        self.state.phase = Phase::Aborted;
        self.teardown(shared, ctx, FlowOutcome::Aborted(reason));
    }

    /// Cancel every timer this flow owns and emit its [`FlowRecord`].
    fn teardown(&mut self, shared: &mut HostCore, ctx: &mut Ctx<'_, Header>, outcome: FlowOutcome) {
        let now = ctx.now();
        if let Some((id, token)) = self.state.rto_timer.take() {
            ctx.cancel_timer(id);
            shared.drop_token(token);
        }
        if let Some((id, token)) = self.state.pace_timer.take() {
            ctx.cancel_timer(id);
            shared.drop_token(token);
        }
        if let Some((id, token)) = self.state.pto_timer.take() {
            ctx.cancel_timer(id);
            shared.drop_token(token);
        }
        for (id, token) in self.state.user_timers.drain(..) {
            ctx.cancel_timer(id);
            shared.drop_token(token);
        }
        let fct = now.saturating_since(self.state.start_time);
        shared.record(
            now,
            self.state.flow,
            match outcome {
                FlowOutcome::Completed => FlowEvent::Completed {
                    fct_ns: fct.as_nanos(),
                },
                FlowOutcome::Aborted(reason) => FlowEvent::Aborted {
                    reason: reason.as_str(),
                },
            },
        );
        let record = FlowRecord {
            flow: self.state.flow,
            protocol: self.state.proto_name,
            bytes: self.state.total_bytes,
            start: self.state.start_time,
            established_at: self.state.established_at.unwrap_or(self.state.start_time),
            done_at: now,
            fct,
            counters: self.state.counters,
            min_rtt: self.state.rtt.min_rtt(),
            outcome,
        };
        shared.flow_done(record);
    }
}

//! Transport-level flight recorder: typed flow events and per-flow
//! delivery timelines.
//!
//! The netsim engine already exposes wire-level [`netsim::engine::TraceEvent`]s
//! through its optional tracer. This module extends that bus one layer up:
//! [`FlowEvent`] describes what the *transport* did — handshake transitions,
//! every segment transmission with its [`SendClass`], cumulative-ACK
//! progress, congestion-window updates, RTO fires, pacing releases, the
//! Halfback ROPR/ACK meet point, and terminal outcomes. Each host owns an
//! optional bounded [`FlightRecorder`] ring; when it is `None` (the default)
//! every emission site reduces to a null check, so the packet hot path stays
//! allocation-free exactly as without tracing.
//!
//! Determinism contract: events are stamped with [`SimTime`] and [`FlowId`]
//! at emission, inside the deterministic event loop, and buffered in
//! emission order. A run's recorded stream is therefore a pure function of
//! `(scenario, seed)` — byte-identical across repeats and across any
//! `--jobs N`, which `scenarios/tests/harness_determinism.rs` asserts.

use crate::fasthash::FastMap;
use crate::wire::{SegId, SendClass};
use netsim::stats::TimeBinned;
use netsim::{FlowId, SimTime};
use std::collections::VecDeque;

/// A transport-level trace event (see module docs for the taxonomy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowEvent {
    /// A SYN left the sender (`attempt` counts retransmissions from 1).
    SynSent {
        /// 1 for the first SYN, incrementing per handshake retry.
        attempt: u32,
    },
    /// The handshake completed; the flow is established.
    Established {
        /// Receiver-advertised flow-control window in bytes.
        window: u32,
    },
    /// A data segment left the sender.
    SegmentSent {
        /// Segment index.
        seg: SegId,
        /// Why it was sent (new data, reactive retx, proactive copy...).
        class: SendClass,
        /// On-wire size including headers.
        wire_bytes: u32,
    },
    /// An ACK arrived at the sender (after the scoreboard was updated).
    AckReceived {
        /// Cumulative ACK point after this ACK.
        cum: SegId,
        /// Bytes newly acknowledged (cumulatively or via SACK) by this ACK.
        newly_acked_bytes: u64,
    },
    /// The congestion controller changed its window state.
    CwndUpdate {
        /// Congestion window in bytes.
        cwnd: u64,
        /// Slow-start threshold in bytes.
        ssthresh: u64,
    },
    /// The retransmission timer fired on an established connection.
    RtoFired {
        /// Consecutive backoffs without cumulative progress (pre-backoff).
        backoff_level: u32,
    },
    /// The pacing timer was started (or restarted).
    PacingStarted {
        /// Tick interval in nanoseconds.
        interval_ns: u64,
    },
    /// The pacing timer was cancelled.
    PacingStopped,
    /// Halfback's descending ROPR cursor met the advancing cumulative ACK:
    /// the proactive-retransmission phase is exhausted. The paper's "≈ 50%"
    /// claim is `cursor / batch_segs ≈ 0.5` on a lossless path.
    RoprMeet {
        /// Where the descending cursor stopped.
        cursor: SegId,
        /// The cumulative ACK at the meet instant.
        cum_ack: SegId,
        /// Segments in the paced batch.
        batch_segs: u32,
    },
    /// A data segment arrived at the receiver.
    Delivered {
        /// Segment index carried by the arriving packet.
        seg: SegId,
        /// Receiver's cumulative point after this arrival.
        cum: SegId,
        /// In-order payload bytes delivered so far.
        delivered_bytes: u64,
    },
    /// Every payload byte was cumulatively acknowledged.
    Completed {
        /// Flow completion time (SYN to final ACK) in nanoseconds.
        fct_ns: u64,
    },
    /// The sender gave up.
    Aborted {
        /// Abort reason (display name of [`crate::sender::AbortReason`]).
        reason: &'static str,
    },
}

/// One recorded event: when, which flow, what.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEventRecord {
    /// Emission instant.
    pub at: SimTime,
    /// The flow the event belongs to.
    pub flow: FlowId,
    /// The event.
    pub event: FlowEvent,
}

/// A bounded ring of [`FlowEventRecord`]s, per host. When full, the oldest
/// event is evicted (and counted), so a runaway flow cannot grow memory —
/// the recorder is a flight recorder, not an unbounded log.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    buf: VecDeque<FlowEventRecord>,
    evicted: u64,
}

impl FlightRecorder {
    /// Default ring capacity: comfortably holds every event of a short-flow
    /// trace (a 100 KB flow emits a few hundred events end to end).
    pub const DEFAULT_CAP: usize = 65_536;

    /// A recorder holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "flight recorder needs a positive capacity");
        FlightRecorder {
            cap,
            buf: VecDeque::with_capacity(cap.min(1024)),
            evicted: 0,
        }
    }

    /// Append an event, evicting the oldest when full.
    pub fn record(&mut self, at: SimTime, flow: FlowId, event: FlowEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(FlowEventRecord { at, flow, event });
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlowEventRecord> {
        self.buf.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

/// Per-flow delivered-byte timelines recorded at a receiver host (the
/// Fig. 15 throughput traces). Replaces the old ad-hoc `delivery_traces`
/// map: the final partial bin is closed at the flow-completion instant, so
/// rate conversion no longer under-reports the last bin.
#[derive(Debug)]
pub struct DeliveryTimelines {
    bin_ns: u64,
    flows: FastMap<FlowId, TimeBinned>,
}

impl DeliveryTimelines {
    /// Timelines with the given bin width in nanoseconds.
    pub fn new(bin_ns: u64) -> Self {
        assert!(bin_ns > 0);
        DeliveryTimelines {
            bin_ns,
            flows: FastMap::default(),
        }
    }

    /// Record `bytes` delivered for `flow` at `t_ns`.
    pub fn record(&mut self, flow: FlowId, t_ns: u64, bytes: f64) {
        self.flows
            .entry(flow)
            .or_insert_with(|| TimeBinned::new(self.bin_ns))
            .add(t_ns, bytes);
    }

    /// Close `flow`'s timeline at its completion instant.
    pub fn close(&mut self, flow: FlowId, t_ns: u64) {
        if let Some(tb) = self.flows.get_mut(&flow) {
            tb.close_at(t_ns);
        }
    }

    /// The timeline recorded for `flow`, if any.
    pub fn get(&self, flow: FlowId) -> Option<&TimeBinned> {
        self.flows.get(&flow)
    }

    /// Bin width in nanoseconds.
    pub fn bin_ns(&self) -> u64 {
        self.bin_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> (SimTime, FlowId, FlowEvent) {
        (
            SimTime::ZERO + netsim::SimDuration::from_nanos(i),
            FlowId(1),
            FlowEvent::AckReceived {
                cum: i as u32,
                newly_acked_bytes: 1460,
            },
        )
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5 {
            let (at, flow, e) = ev(i);
            r.record(at, flow, e);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.evicted(), 2);
        let cums: Vec<u32> = r
            .events()
            .map(|rec| match rec.event {
                FlowEvent::AckReceived { cum, .. } => cum,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(cums, vec![2, 3, 4], "oldest events evicted first");
    }

    #[test]
    fn timelines_close_final_bin() {
        let mut tl = DeliveryTimelines::new(1_000_000);
        tl.record(FlowId(1), 0, 1000.0);
        tl.record(FlowId(1), 1_000_000, 500.0);
        tl.close(FlowId(1), 1_500_000);
        let tb = tl.get(FlowId(1)).unwrap();
        assert_eq!(tb.end_ns(), Some(1_500_000));
        assert!(tl.get(FlowId(2)).is_none());
        // Closing an unknown flow is a no-op, not a panic.
        tl.close(FlowId(2), 10);
    }
}

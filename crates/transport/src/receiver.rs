//! The receive side of a connection.
//!
//! Identical for every scheme (the paper implements all mechanisms over UDT
//! with selective ACKs and only varies the sender): ACK every arriving data
//! segment immediately (no delayed ACKs — Halfback's ROPR is clocked by the
//! per-packet ACK stream), advertise a fixed 141 KB window, echo transmit
//! timestamps, and answer PCP probes with receive timestamps.

use crate::rangeset::RangeSet;
use crate::wire::{
    segment_count, AckHeader, DataHeader, Header, ProbeAckHeader, ProbeHeader, SackBlocks, SegId,
    CTRL_WIRE_BYTES, DEFAULT_FCW_BYTES,
};
use netsim::{FlowId, NodeId, Packet, SimTime};

/// Receive-side record of one flow.
#[derive(Debug)]
pub struct ReceiverConn {
    flow: FlowId,
    peer: NodeId,
    local: NodeId,
    total_segs: u32,
    total_bytes: u64,
    window: u32,
    received: RangeSet,
    cum: SegId,
    /// Time the first SYN arrived.
    pub syn_at: SimTime,
    /// Time the flow became fully received, if it has.
    pub complete_at: Option<SimTime>,
    /// Distinct payload bytes delivered so far.
    pub delivered_bytes: u64,
    /// Data packets that duplicated already-received segments.
    pub dup_segments: u64,
    /// Total data packets received.
    pub data_packets: u64,
    /// Optional arrival log: (time, segment, transmission class) per data
    /// packet, in arrival order (the Fig. 3 timeline view). Enabled via
    /// [`crate::host::Host::log_arrivals`].
    pub arrivals: Option<Vec<(SimTime, SegId, crate::wire::SendClass)>>,
}

impl ReceiverConn {
    /// Advertised window for bulk transfers (window scaling in effect; lets
    /// a long background flow actually fill large router buffers, which is
    /// what produces the bufferbloat the Fig. 10 sweep measures).
    pub const BULK_FCW_BYTES: u32 = 2_000_000;
    /// Flows above this size advertise [`Self::BULK_FCW_BYTES`].
    pub const BULK_THRESHOLD_BYTES: u64 = 2_000_000;

    /// Create receiver state upon a SYN.
    pub fn new(flow: FlowId, local: NodeId, peer: NodeId, flow_bytes: u64, now: SimTime) -> Self {
        ReceiverConn {
            flow,
            peer,
            local,
            total_segs: segment_count(flow_bytes),
            total_bytes: flow_bytes,
            window: if flow_bytes > Self::BULK_THRESHOLD_BYTES {
                Self::BULK_FCW_BYTES
            } else {
                DEFAULT_FCW_BYTES
            },
            received: RangeSet::new(),
            cum: 0,
            syn_at: now,
            complete_at: None,
            dup_segments: 0,
            delivered_bytes: 0,
            data_packets: 0,
            arrivals: None,
        }
    }

    /// The flow id.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Total payload size of the flow.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// True once every segment has arrived.
    pub fn complete(&self) -> bool {
        self.cum >= self.total_segs
    }

    /// Cumulative receive point: all segments `< cum` have arrived.
    pub fn cum(&self) -> SegId {
        self.cum
    }

    /// The SYN-ACK reply (also used for retransmitted SYNs).
    pub fn syn_ack(&self) -> Packet<Header> {
        Packet::new(
            self.flow,
            self.local,
            self.peer,
            CTRL_WIRE_BYTES,
            Header::SynAck {
                window: self.window,
            },
        )
    }

    /// Process a data segment; returns the ACK to send back.
    pub fn on_data(
        &mut self,
        hdr: &DataHeader,
        pkt_sent_at: SimTime,
        now: SimTime,
    ) -> Packet<Header> {
        self.data_packets += 1;
        if let Some(log) = self.arrivals.as_mut() {
            log.push((now, hdr.seg, hdr.class));
        }
        let seg = hdr.seg;
        if seg < self.total_segs {
            if self.received.insert(seg) {
                self.delivered_bytes +=
                    crate::wire::seg_payload_bytes(self.total_bytes, seg) as u64;
            } else {
                self.dup_segments += 1;
            }
            let new_cum = self.received.first_missing_from(self.cum);
            if new_cum > self.cum {
                self.cum = new_cum;
            }
            if self.complete() && self.complete_at.is_none() {
                self.complete_at = Some(now);
            }
        }
        let ack = AckHeader {
            cum: self.cum,
            sack: self.sack_blocks(seg),
            for_seg: seg,
            echo_tx_time: pkt_sent_at,
            window: self.window,
        };
        Packet::new(
            self.flow,
            self.local,
            self.peer,
            CTRL_WIRE_BYTES,
            Header::Ack(ack),
        )
    }

    /// Serialize into the engine checkpoint codec. The arrival log is
    /// debug-only instrumentation and is excluded (open-loop service runs
    /// never enable it); a restored receiver starts with logging off.
    pub fn save(&self, w: &mut netsim::snap::SnapWriter) {
        w.u64(self.flow.0);
        w.u32(self.peer.0);
        w.u32(self.local.0);
        w.u32(self.total_segs);
        w.u64(self.total_bytes);
        w.u32(self.window);
        self.received.save(w);
        w.u32(self.cum);
        w.u64(self.syn_at.as_nanos());
        w.bool(self.complete_at.is_some());
        w.u64(self.complete_at.map_or(0, |t| t.as_nanos()));
        w.u64(self.delivered_bytes);
        w.u64(self.dup_segments);
        w.u64(self.data_packets);
    }

    /// Rebuild a receiver saved by [`ReceiverConn::save`].
    pub fn load(r: &mut netsim::snap::SnapReader<'_>) -> Result<Self, netsim::snap::SnapError> {
        let flow = FlowId(r.u64()?);
        let peer = NodeId(r.u32()?);
        let local = NodeId(r.u32()?);
        let total_segs = r.u32()?;
        let total_bytes = r.u64()?;
        let window = r.u32()?;
        let received = RangeSet::load(r)?;
        let cum = r.u32()?;
        let syn_at = SimTime::from_nanos(r.u64()?);
        let has_complete = r.bool()?;
        let complete_ns = r.u64()?;
        Ok(ReceiverConn {
            flow,
            peer,
            local,
            total_segs,
            total_bytes,
            window,
            received,
            cum,
            syn_at,
            complete_at: has_complete.then_some(SimTime::from_nanos(complete_ns)),
            delivered_bytes: r.u64()?,
            dup_segments: r.u64()?,
            data_packets: r.u64()?,
            arrivals: None,
        })
    }

    /// Answer a PCP probe with echoed timing.
    pub fn on_probe(
        &self,
        hdr: &ProbeHeader,
        pkt_sent_at: SimTime,
        now: SimTime,
    ) -> Packet<Header> {
        let pa = ProbeAckHeader {
            train: hdr.train,
            idx: hdr.idx,
            len: hdr.len,
            sent_at: pkt_sent_at,
            recv_at: now,
        };
        Packet::new(
            self.flow,
            self.local,
            self.peer,
            CTRL_WIRE_BYTES,
            Header::ProbeAck(pa),
        )
    }

    /// Build up to four SACK blocks: the block containing the segment that
    /// triggered this ACK first (most-recent-first, like real TCP), then the
    /// highest remaining blocks above the cumulative point.
    fn sack_blocks(&self, for_seg: SegId) -> SackBlocks {
        if self.cum >= self.total_segs {
            return SackBlocks::EMPTY;
        }
        // Single forward pass, no allocation: remember the block containing
        // `for_seg` plus a ring of the four highest blocks. Four slots
        // always suffice — if the triggering block is among the last four
        // it occupies one of the output slots anyway.
        let mut trig: Option<(SegId, SegId)> = None;
        let mut ring = [(0u32, 0u32); 4];
        let mut seen = 0usize;
        for (s, e) in self.received.ranges_within_iter(self.cum, self.total_segs) {
            if for_seg >= s && for_seg < e {
                trig = Some((s, e));
            }
            ring[seen % 4] = (s, e);
            seen += 1;
        }
        // Triggering block first (most-recent-first, like real TCP), then
        // the highest others descending.
        let mut blocks = [(0u32, 0u32); 4];
        let mut len = 0usize;
        if let Some(t) = trig {
            blocks[0] = t;
            len = 1;
        }
        for i in 0..seen.min(4) {
            if len >= 4 {
                break;
            }
            let blk = ring[(seen - 1 - i) % 4];
            if Some(blk) != trig {
                blocks[len] = blk;
                len += 1;
            }
        }
        SackBlocks::from_ranges(&blocks[..len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::SendClass;

    fn data(seg: SegId) -> DataHeader {
        DataHeader {
            seg,
            class: SendClass::New,
        }
    }

    fn recv(n_bytes: u64) -> ReceiverConn {
        ReceiverConn::new(FlowId(1), NodeId(1), NodeId(0), n_bytes, SimTime::ZERO)
    }

    fn ack_of(pkt: &Packet<Header>) -> AckHeader {
        match pkt.payload {
            Header::Ack(a) => a,
            ref other => panic!("expected ACK, got {other:?}"),
        }
    }

    #[test]
    fn in_order_delivery_advances_cum() {
        let mut r = recv(5 * 1460);
        for seg in 0..5 {
            let ack = ack_of(&r.on_data(&data(seg), SimTime::ZERO, SimTime::ZERO));
            assert_eq!(ack.cum, seg + 1);
            assert!(ack.sack.is_empty());
        }
        assert!(r.complete());
        assert_eq!(r.delivered_bytes, 5 * 1460);
    }

    #[test]
    fn gap_generates_sack() {
        let mut r = recv(5 * 1460);
        r.on_data(&data(0), SimTime::ZERO, SimTime::ZERO);
        // Segment 1 missing; 2 arrives.
        let ack = ack_of(&r.on_data(&data(2), SimTime::ZERO, SimTime::ZERO));
        assert_eq!(ack.cum, 1);
        assert_eq!(ack.sack.ranges(), &[(2, 3)]);
        // 4 arrives: triggering block first, then the other.
        let ack = ack_of(&r.on_data(&data(4), SimTime::ZERO, SimTime::ZERO));
        assert_eq!(ack.cum, 1);
        assert_eq!(ack.sack.ranges()[0], (4, 5));
        assert!(ack.sack.ranges().contains(&(2, 3)));
        // Hole fills: cum jumps past contiguous SACKed range.
        let ack = ack_of(&r.on_data(&data(1), SimTime::ZERO, SimTime::ZERO));
        assert_eq!(ack.cum, 3);
    }

    #[test]
    fn duplicates_are_counted_and_still_acked() {
        let mut r = recv(3 * 1460);
        r.on_data(&data(0), SimTime::ZERO, SimTime::ZERO);
        let ack = ack_of(&r.on_data(&data(0), SimTime::ZERO, SimTime::ZERO));
        assert_eq!(ack.cum, 1);
        assert_eq!(r.dup_segments, 1);
        assert_eq!(r.delivered_bytes, 1460);
    }

    #[test]
    fn completion_timestamp_recorded_once() {
        let mut r = recv(2 * 1460);
        let t1 = SimTime::from_nanos(10);
        let t2 = SimTime::from_nanos(20);
        r.on_data(&data(0), SimTime::ZERO, t1);
        r.on_data(&data(1), SimTime::ZERO, t1);
        assert_eq!(r.complete_at, Some(t1));
        r.on_data(&data(1), SimTime::ZERO, t2);
        assert_eq!(r.complete_at, Some(t1), "completion time must not move");
    }

    #[test]
    fn echo_timestamp_passthrough() {
        let mut r = recv(1460);
        let sent = SimTime::from_nanos(123_456);
        let ack = ack_of(&r.on_data(&data(0), sent, SimTime::from_nanos(999_999)));
        assert_eq!(ack.echo_tx_time, sent);
    }

    #[test]
    fn probe_ack_echoes_times() {
        let r = recv(1460);
        let p = ProbeHeader {
            train: 2,
            idx: 1,
            len: 5,
        };
        let sent = SimTime::from_nanos(50);
        let now = SimTime::from_nanos(80);
        let pkt = r.on_probe(&p, sent, now);
        match pkt.payload {
            Header::ProbeAck(pa) => {
                assert_eq!(pa.train, 2);
                assert_eq!(pa.sent_at, sent);
                assert_eq!(pa.recv_at, now);
            }
            other => panic!("expected ProbeAck, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_segment_ignored_but_acked() {
        let mut r = recv(2 * 1460);
        let ack = ack_of(&r.on_data(&data(7), SimTime::ZERO, SimTime::ZERO));
        assert_eq!(ack.cum, 0);
        assert_eq!(r.delivered_bytes, 0);
    }

    #[test]
    fn sack_blocks_capped_at_four() {
        let mut r = recv(20 * 1460);
        // Create 6 separate holes: receive even segments 2,4,...,12.
        for seg in [2u32, 4, 6, 8, 10, 12] {
            r.on_data(&data(seg), SimTime::ZERO, SimTime::ZERO);
        }
        let ack = ack_of(&r.on_data(&data(14), SimTime::ZERO, SimTime::ZERO));
        assert_eq!(ack.sack.ranges().len(), 4);
        assert_eq!(ack.sack.ranges()[0], (14, 15), "triggering block first");
    }
}

//! RTT estimation and retransmission timeout per RFC 6298.
//!
//! Because every ACK echoes the data packet's transmit timestamp
//! ([`crate::wire::AckHeader::echo_tx_time`]), every sample is exact and
//! Karn's problem does not arise.

use netsim::SimDuration;

/// Smoothed RTT estimator with RFC 6298 RTO computation.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rtt: Option<SimDuration>,
    latest: Option<SimDuration>,
    rto_backoff: u32,
    min_rto: SimDuration,
    max_rto: SimDuration,
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl RttEstimator {
    /// Initial RTO before any sample (RFC 6298: 1 s).
    pub const INITIAL_RTO: SimDuration = SimDuration::from_millis(1000);

    /// Fresh estimator with the RFC 6298 1 s floor and a 60 s ceiling.
    ///
    /// The 1 s minimum matters for reproducing the paper: timeouts are
    /// *expensive* (the paper's PlanetLab TCP mean of 1883 ms for 100 KB
    /// flows, and the seconds-scale collapse in Figs. 12/17, are RTO-
    /// dominated), which is exactly why JumpStart's lost line-rate
    /// retransmission bursts hurt and Halfback's timeout-avoiding ROPR
    /// wins.
    pub fn new() -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rtt: None,
            latest: None,
            rto_backoff: 0,
            min_rto: SimDuration::from_secs(1),
            max_rto: SimDuration::from_secs(60),
        }
    }

    /// Override the minimum RTO (tests and sensitivity studies).
    pub fn set_min_rto(&mut self, min: SimDuration) {
        self.min_rto = min;
    }

    /// Incorporate a sample (RFC 6298 EWMA: alpha = 1/8, beta = 1/4).
    pub fn on_sample(&mut self, sample: SimDuration) {
        self.latest = Some(sample);
        self.min_rtt = Some(match self.min_rtt {
            Some(m) => m.min(sample),
            None => sample,
        });
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                let err = if sample > srtt {
                    sample - srtt
                } else {
                    srtt - sample
                };
                // rttvar = 3/4 rttvar + 1/4 |err|, rounded to nearest:
                // truncating each term separately loses up to 3 ns per
                // update and biases both estimators below the true mean.
                self.rttvar =
                    SimDuration::from_nanos((3 * self.rttvar.as_nanos() + err.as_nanos() + 2) / 4);
                // srtt = 7/8 srtt + 1/8 sample, rounded to nearest.
                self.srtt = Some(SimDuration::from_nanos(
                    (7 * srtt.as_nanos() + sample.as_nanos() + 4) / 8,
                ));
            }
        }
    }

    /// Smoothed RTT, if any sample has arrived.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// The most recent sample.
    pub fn latest(&self) -> Option<SimDuration> {
        self.latest
    }

    /// Smallest sample seen.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt
    }

    /// Current RTO including exponential backoff.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            None => Self::INITIAL_RTO,
            Some(srtt) => {
                // RTO = SRTT + max(G, 4*RTTVAR); clock granularity ~ 1 ms.
                let var4 = self
                    .rttvar
                    .saturating_mul(4)
                    .max(SimDuration::from_millis(1));
                srtt + var4
            }
        };
        let backed = base.saturating_mul(1u64 << self.rto_backoff.min(16));
        backed.max(self.min_rto).min(self.max_rto)
    }

    /// Double the RTO (called on each timeout).
    pub fn backoff(&mut self) {
        self.rto_backoff = (self.rto_backoff + 1).min(16);
    }

    /// Reset backoff (called when an ACK of new data arrives).
    pub fn reset_backoff(&mut self) {
        self.rto_backoff = 0;
    }

    /// The current backoff exponent (for tests and reporting).
    pub fn backoff_level(&self) -> u32 {
        self.rto_backoff
    }

    /// Serialize into the engine checkpoint codec.
    pub fn save(&self, w: &mut netsim::snap::SnapWriter) {
        let dur_opt = |w: &mut netsim::snap::SnapWriter, d: Option<SimDuration>| {
            w.bool(d.is_some());
            w.u64(d.map_or(0, |d| d.as_nanos()));
        };
        dur_opt(w, self.srtt);
        w.u64(self.rttvar.as_nanos());
        dur_opt(w, self.min_rtt);
        dur_opt(w, self.latest);
        w.u32(self.rto_backoff);
        w.u64(self.min_rto.as_nanos());
        w.u64(self.max_rto.as_nanos());
    }

    /// Rebuild an estimator saved by [`RttEstimator::save`].
    pub fn load(r: &mut netsim::snap::SnapReader<'_>) -> Result<Self, netsim::snap::SnapError> {
        let dur_opt = |r: &mut netsim::snap::SnapReader<'_>| -> Result<_, netsim::snap::SnapError> {
            let some = r.bool()?;
            let ns = r.u64()?;
            Ok(some.then(|| SimDuration::from_nanos(ns)))
        };
        Ok(RttEstimator {
            srtt: dur_opt(r)?,
            rttvar: SimDuration::from_nanos(r.u64()?),
            min_rtt: dur_opt(r)?,
            latest: dur_opt(r)?,
            rto_backoff: r.u32()?,
            min_rto: SimDuration::from_nanos(r.u64()?),
            max_rto: SimDuration::from_nanos(r.u64()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: fn(u64) -> SimDuration = SimDuration::from_millis;

    #[test]
    fn initial_rto_is_one_second() {
        let e = RttEstimator::new();
        assert_eq!(e.rto(), SimDuration::from_millis(1000));
        assert_eq!(e.srtt(), None);
    }

    #[test]
    fn first_sample_seeds_srtt() {
        let mut e = RttEstimator::new();
        e.on_sample(MS(60));
        assert_eq!(e.srtt(), Some(MS(60)));
        // RTO = 60 + 4*30 = 180ms, floored at the RFC's 1 s minimum.
        assert_eq!(e.rto(), MS(1000));
        // With a Linux-style floor the computed value shows through.
        e.set_min_rto(MS(100));
        assert_eq!(e.rto(), MS(180));
    }

    #[test]
    fn steady_samples_converge() {
        let mut e = RttEstimator::new();
        e.set_min_rto(MS(1));
        for _ in 0..100 {
            e.on_sample(MS(80));
        }
        let srtt = e.srtt().unwrap();
        assert!(srtt >= MS(79) && srtt <= MS(81), "srtt {srtt}");
        // Variance decays toward zero; RTO approaches srtt + floor-var.
        assert!(e.rto() < MS(250), "rto {}", e.rto());
    }

    /// Regression for the truncating integer EWMAs: on a constant 60 ms
    /// stream whose nanosecond count is not divisible by 8, the old
    /// `(x/8)*7 + s/8` arithmetic lost the remainders every update and
    /// settled tens of nanoseconds *below* the true RTT (and likewise for
    /// rttvar). Round-to-nearest keeps srtt pinned to the sample exactly.
    #[test]
    fn constant_rtt_converges_without_downward_bias() {
        let sample = SimDuration::from_nanos(60_000_001);
        let mut e = RttEstimator::new();
        for _ in 0..200 {
            e.on_sample(sample);
        }
        assert_eq!(e.srtt(), Some(sample), "srtt must not drift below 60 ms");
        // Variance decays toward zero but the 1 ms granularity floor keeps
        // RTO at srtt + 1 ms — never below the path RTT.
        e.set_min_rto(MS(1));
        assert!(e.rto() >= sample + MS(1), "rto {}", e.rto());
        assert!(e.rto() <= sample + MS(2), "rto {}", e.rto());
    }

    #[test]
    fn backoff_doubles_and_resets() {
        let mut e = RttEstimator::new();
        e.set_min_rto(MS(1));
        e.on_sample(MS(100));
        let base = e.rto();
        e.backoff();
        assert_eq!(e.rto(), base.saturating_mul(2));
        e.backoff();
        assert_eq!(e.rto(), base.saturating_mul(4));
        e.reset_backoff();
        assert_eq!(e.rto(), base);
    }

    /// Regression for the give-up path added with transport hardening:
    /// the full backoff schedule doubles per timeout, clamps at the 60 s
    /// ceiling, and the first cumulative ACK restores the exact RFC 6298
    /// value (`srtt + max(G, 4*rttvar)`), with `backoff_level` tracking
    /// the consecutive-timeout count the abort thresholds are checked
    /// against.
    #[test]
    fn backoff_schedule_doubles_clamps_and_resets() {
        let mut e = RttEstimator::new();
        e.set_min_rto(MS(1));
        e.on_sample(MS(200));
        // RFC 6298 on the first sample: srtt = 200, rttvar = 100.
        let rfc = MS(200) + MS(100).saturating_mul(4);
        assert_eq!(e.rto(), rfc);

        // Each timeout doubles the RTO until the 60 s ceiling clamps it.
        let mut expected = rfc;
        for level in 1..=10u32 {
            e.backoff();
            assert_eq!(e.backoff_level(), level, "level counts every timeout");
            expected = expected.saturating_mul(2).min(SimDuration::from_secs(60));
            assert_eq!(e.rto(), expected, "after {level} timeouts");
        }
        assert_eq!(e.rto(), SimDuration::from_secs(60), "clamped at max_rto");

        // New cumulative progress: back to the RFC 6298 value, not some
        // partially decayed one, and the abort counter restarts from zero.
        e.reset_backoff();
        assert_eq!(e.backoff_level(), 0);
        assert_eq!(e.rto(), rfc);
    }

    #[test]
    fn rto_respects_ceiling() {
        let mut e = RttEstimator::new();
        e.on_sample(SimDuration::from_secs(5));
        for _ in 0..20 {
            e.backoff();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(60));
    }

    #[test]
    fn min_rtt_tracks_smallest() {
        let mut e = RttEstimator::new();
        e.on_sample(MS(90));
        e.on_sample(MS(60));
        e.on_sample(MS(120));
        assert_eq!(e.min_rtt(), Some(MS(60)));
        assert_eq!(e.latest(), Some(MS(120)));
    }

    #[test]
    fn variance_reacts_to_jitter() {
        let mut e = RttEstimator::new();
        for i in 0..50 {
            e.on_sample(if i % 2 == 0 { MS(50) } else { MS(150) });
        }
        // High jitter must keep RTO well above srtt.
        assert!(e.rto() > MS(200), "rto {}", e.rto());
    }
}

//! A deterministic multiply-mix hasher for per-packet map lookups.
//!
//! Host state is keyed by flow ids and timer tokens — small, mostly
//! sequential integers. The std `RandomState`/SipHash pair showed up in
//! end-to-end profiles on every packet and timer arm; one multiply by a
//! 64-bit odd constant distributes sequential keys well enough for these
//! maps. Determinism across processes is a bonus, not a requirement:
//! nothing output-facing iterates these maps (the golden byte-identity
//! tests pass under the per-process random SipHash keys, which proves it).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Multiply-mix hasher for integer-keyed maps.
#[derive(Default)]
pub struct MixHasher(u64);

impl Hasher for MixHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(MIX);
        }
    }
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(MIX);
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// A `HashMap` with [`MixHasher`] in place of SipHash.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<MixHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_keys_hash_distinctly() {
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..10_000 {
            let mut h = MixHasher::default();
            h.write_u64(k);
            assert!(seen.insert(h.finish()), "collision at {k}");
        }
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for k in 0..1000u64 {
            m.insert(k, k * 2);
        }
        for k in 0..1000u64 {
            assert_eq!(m.get(&k), Some(&(k * 2)));
        }
    }
}
